//! Property-based exactness tests: every exact baseline equals brute force
//! on arbitrary point sets, ranks and queries; SFT's approximation contract
//! holds for arbitrary budgets.

use proptest::prelude::*;
use rknn_baselines::{MRkNNCoP, NaiveRknn, RdnnTree, Sft, Tpl};
use rknn_core::{BruteForce, Dataset, Euclidean, PointId, SearchStats};
use rknn_index::{KnnIndex, LinearScan};
use std::collections::HashSet;

fn arb_points() -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(-40.0f64..40.0, 2), 8..70)
}

fn truth(ds: &std::sync::Arc<Dataset>, q: PointId, k: usize) -> Vec<PointId> {
    let bf = BruteForce::new(ds.clone(), Euclidean);
    let mut st = SearchStats::new();
    bf.rknn(q, k, &mut st).iter().map(|n| n.id).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn exact_methods_equal_brute_force(
        pts in arb_points(),
        k in 1usize..6,
        qi in 0usize..70,
    ) {
        let ds = Dataset::from_rows(&pts).unwrap().into_shared();
        let q = qi % ds.len();
        let forward = LinearScan::build(ds.clone(), Euclidean);
        let want = truth(&ds, q, k);
        let mut st = SearchStats::new();

        let naive: Vec<_> =
            NaiveRknn::new(k).query(&forward, q, &mut st).iter().map(|n| n.id).collect();
        prop_assert_eq!(&naive, &want, "naive");

        let rdnn = RdnnTree::build(ds.clone(), Euclidean, k, &forward);
        let got: Vec<_> = rdnn.query(q, &mut st).iter().map(|n| n.id).collect();
        prop_assert_eq!(&got, &want, "rdnn");

        let tpl = Tpl::build(ds.clone(), Euclidean);
        let got: Vec<_> = tpl.query(q, k, &mut st).iter().map(|n| n.id).collect();
        prop_assert_eq!(&got, &want, "tpl");

        let cop = MRkNNCoP::build(ds.clone(), Euclidean, k.max(2), &forward);
        let got: Vec<_> = cop.query(q, k, &forward, &mut st).iter().map(|n| n.id).collect();
        prop_assert_eq!(&got, &want, "mrknncop");
    }

    #[test]
    fn sft_contract_precision_and_budget_bounded_recall(
        pts in arb_points(),
        k in 1usize..5,
        alpha_x10 in 10u32..80,
        qi in 0usize..70,
    ) {
        let alpha = alpha_x10 as f64 / 10.0;
        let ds = Dataset::from_rows(&pts).unwrap().into_shared();
        let q = qi % ds.len();
        let forward = LinearScan::build(ds.clone(), Euclidean);
        let want: HashSet<_> = truth(&ds, q, k).into_iter().collect();
        let mut st = SearchStats::new();
        let sft = Sft::new(k, alpha);
        let got = sft.query(&forward, q, &mut st);
        // Perfect precision for any alpha.
        for n in &got {
            prop_assert!(want.contains(&n.id), "SFT false positive");
        }
        // Every true member within the candidate budget's forward rank is
        // found: SFT misses only reverse neighbors whose forward rank from
        // q exceeds α·k.
        let budget = sft.candidate_budget();
        let forward_nn = forward.knn(ds.point(q), budget, Some(q), &mut st);
        let reachable: HashSet<_> = forward_nn.iter().map(|n| n.id).collect();
        let got_ids: HashSet<_> = got.iter().map(|n| n.id).collect();
        for member in want.iter().filter(|m| reachable.contains(m)) {
            prop_assert!(
                got_ids.contains(member),
                "SFT missed reachable member {member}"
            );
        }
    }

    #[test]
    fn mrknncop_bounds_cover_every_true_dk(
        pts in arb_points(),
        k_max in 2usize..8,
    ) {
        let ds = Dataset::from_rows(&pts).unwrap().into_shared();
        let forward = LinearScan::build(ds.clone(), Euclidean);
        let cop = MRkNNCoP::build(ds.clone(), Euclidean, k_max, &forward);
        let bf = BruteForce::new(ds.clone(), Euclidean);
        let mut st = SearchStats::new();
        for (i, lines) in cop.lines().iter().enumerate() {
            for k in 1..=k_max.min(ds.len() - 1) {
                let dk = bf.dk(i, k, &mut st).expect("k within range");
                prop_assert!(
                    lines.lower(k) <= dk * (1.0 + 1e-9) + 1e-12,
                    "lower bound violated at point {i}, k={k}"
                );
                prop_assert!(
                    lines.upper(k) >= dk * (1.0 - 1e-9) - 1e-12,
                    "upper bound violated at point {i}, k={k}"
                );
            }
        }
    }
}
