//! TPL — the filter–refinement method of Tao, Papadias & Lian \[43\],
//! in the "k-trim" flavor the paper benchmarks.
//!
//! A single best-first traversal of an R-tree generates candidates in
//! ascending distance from the query while *trimming* entries dominated by
//! already-found candidates:
//!
//! * a **point** `p` is pruned when `k` candidates are strictly closer to
//!   `p` than the query is (it lies on the far side of `k` perpendicular
//!   bisectors);
//! * a **node** is pruned when, for `k` candidates `c`,
//!   `maxdist(N, c) < mindist(N, q)` — the conservative min/max-distance
//!   variant of bisector trimming used by the incremental extensions of TPL
//!   (\[30\]; see `DESIGN.md` §4 for the substitution note).
//!
//! Surviving candidates are verified exactly with count range queries. The
//! method needs no precomputation beyond the R-tree itself — the cheapest
//! setup in the study — but "the performance of the pruning procedure
//! rapidly diminishes as either the neighborhood rank k or the data
//! dimensionality grows" (§2.2), which our high-dimensional experiments
//! reproduce.

use rknn_core::{Dataset, Metric, Neighbor, PointId, SearchStats};
use rknn_index::{KnnIndex, RTree};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The TPL method over an STR-packed R-tree.
#[derive(Debug)]
pub struct Tpl<M: Metric> {
    tree: RTree<M>,
    build_time: Duration,
}

impl<M: Metric + Clone> Tpl<M> {
    /// Builds the R-tree substrate (the only setup TPL needs).
    pub fn build(ds: Arc<Dataset>, metric: M) -> Self {
        let start = Instant::now();
        let tree = RTree::build(ds, metric);
        Tpl { tree, build_time: start.elapsed() }
    }

    /// Wall-clock tree construction time.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// The underlying R-tree.
    pub fn forward_index(&self) -> &RTree<M> {
        &self.tree
    }

    /// Exact reverse-kNN of dataset point `q`.
    pub fn query(&self, q: PointId, k: usize, stats: &mut SearchStats) -> Vec<Neighbor> {
        let qp = self.tree.point(q).to_vec();
        self.query_inner(&qp, Some(q), k, stats)
    }

    /// Exact reverse-kNN of an arbitrary location.
    pub fn query_at(&self, q: &[f64], k: usize, stats: &mut SearchStats) -> Vec<Neighbor> {
        self.query_inner(q, None, k, stats)
    }

    fn query_inner(
        &self,
        q: &[f64],
        exclude: Option<PointId>,
        k: usize,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        assert!(k >= 1, "k must be positive");
        let metric = self.tree.metric();
        // Best-first traversal by mindist so candidates arrive roughly in
        // ascending distance, maximizing trimming power.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut heap: BinaryHeap<(Reverse<rknn_core::OrderedF64>, usize)> = BinaryHeap::new();
        let root = self.tree.root_id();
        heap.push((
            Reverse(rknn_core::OrderedF64::new(self.tree.min_dist(q, self.tree.node_mbr(root)))),
            root,
        ));
        let mut candidates: Vec<Neighbor> = Vec::new();
        while let Some((_, node)) = heap.pop() {
            stats.count_node();
            // Node trimming: count candidates that dominate the whole MBR.
            let mbr = self.tree.node_mbr(node);
            let min_q = self.tree.min_dist(q, mbr);
            let mut dominators = 0usize;
            for c in &candidates {
                if self.tree.max_dist(self.tree.point(c.id), mbr) < min_q {
                    dominators += 1;
                    if dominators >= k {
                        break;
                    }
                }
            }
            if dominators >= k {
                continue;
            }
            match self.tree.node_children(node) {
                Some(children) => {
                    for &c in children {
                        let lb = self.tree.min_dist(q, self.tree.node_mbr(c));
                        heap.push((Reverse(rknn_core::OrderedF64::new(lb)), c));
                    }
                }
                None => {
                    for &p in self.tree.node_entries(node).unwrap() {
                        if Some(p) == exclude {
                            continue;
                        }
                        stats.count_dist();
                        let dpq = metric.dist(self.tree.point(p), q);
                        // Point trimming: k candidates strictly closer to p
                        // than q is ⇒ p cannot be a reverse neighbor.
                        let mut closer = 0usize;
                        for c in &candidates {
                            stats.count_dist();
                            if metric.dist(self.tree.point(p), self.tree.point(c.id)) < dpq {
                                closer += 1;
                                if closer >= k {
                                    break;
                                }
                            }
                        }
                        if closer < k {
                            candidates.push(Neighbor::new(p, dpq));
                        }
                    }
                }
            }
        }
        // Refinement: exact count range queries against the tree.
        let mut out = Vec::new();
        for cand in candidates {
            let closer =
                self.tree.range_count(self.tree.point(cand.id), cand.dist, true, Some(cand.id), stats);
            if closer < k {
                out.push(cand);
            }
        }
        rknn_core::neighbor::sort_neighbors(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rknn_core::{BruteForce, Euclidean};

    fn uniform(n: usize, dim: usize, seed: u64) -> Arc<Dataset> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> =
            (0..n).map(|_| (0..dim).map(|_| rng.random::<f64>() * 10.0).collect()).collect();
        Dataset::from_rows(&rows).unwrap().into_shared()
    }

    #[test]
    fn exact_against_brute_force() {
        let ds = uniform(250, 2, 140);
        let tpl = Tpl::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds, Euclidean);
        let mut st = SearchStats::new();
        for k in [1usize, 4, 12] {
            for q in [0usize, 125, 249] {
                let got: Vec<_> = tpl.query(q, k, &mut st).iter().map(|n| n.id).collect();
                let want: Vec<_> = bf.rknn(q, k, &mut st).iter().map(|n| n.id).collect();
                assert_eq!(got, want, "k={k} q={q}");
            }
        }
    }

    #[test]
    fn exact_in_higher_dimensions_too() {
        // Trimming degrades in high dimensions but must stay exact.
        let ds = uniform(150, 12, 141);
        let tpl = Tpl::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds, Euclidean);
        let mut st = SearchStats::new();
        for q in [3usize, 77] {
            let got: Vec<_> = tpl.query(q, 5, &mut st).iter().map(|n| n.id).collect();
            let want: Vec<_> = bf.rknn(q, 5, &mut st).iter().map(|n| n.id).collect();
            assert_eq!(got, want, "q={q}");
        }
    }

    #[test]
    fn external_queries() {
        let ds = uniform(180, 2, 142);
        let tpl = Tpl::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds, Euclidean);
        let mut st = SearchStats::new();
        let q = vec![5.0, 5.0];
        let got: Vec<_> = tpl.query_at(&q, 2, &mut st).iter().map(|n| n.id).collect();
        let want: Vec<_> = bf.rknn_external(&q, 2, &mut st).iter().map(|n| n.id).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn build_time_is_recorded() {
        let ds = uniform(100, 2, 143);
        let tpl = Tpl::build(ds, Euclidean);
        assert!(tpl.build_time() > Duration::ZERO);
    }
}
