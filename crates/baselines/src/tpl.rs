//! TPL — the filter–refinement method of Tao, Papadias & Lian \[43\],
//! in the "k-trim" flavor the paper benchmarks.
//!
//! A single best-first traversal of an R-tree generates candidates in
//! ascending distance from the query while *trimming* entries dominated by
//! already-found candidates:
//!
//! * a **point** `p` is pruned when `k` candidates are strictly closer to
//!   `p` than the query is (it lies on the far side of `k` perpendicular
//!   bisectors);
//! * a **node** is pruned when, for `k` candidates `c`,
//!   `maxdist(N, c) < mindist(N, q)` — the conservative min/max-distance
//!   variant of bisector trimming used by the incremental extensions of TPL
//!   (\[30\]; see `DESIGN.md` §4 for the substitution note).
//!
//! Surviving candidates are verified exactly with count range queries. The
//! method needs no precomputation beyond the R-tree itself — the cheapest
//! setup in the study — but "the performance of the pruning procedure
//! rapidly diminishes as either the neighborhood rank k or the data
//! dimensionality grows" (§2.2), which our high-dimensional experiments
//! reproduce.

use crate::common::verify_rknn;
use rknn_core::bestfirst::Popped;
use rknn_core::{CursorScratch, Dataset, Metric, Neighbor, PointId, SearchStats};
use rknn_index::{KnnIndex, RTree};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-worker working memory for [`Tpl::query_with`]: the cursor scratch
/// (whose best-first queue doubles as TPL's node heap) plus the candidate
/// buffer, reused across queries.
#[derive(Debug, Clone, Default)]
pub struct TplScratch {
    /// Cursor storage; its [`rknn_core::TreeScratch`] queue carries the
    /// generation traversal, and the refinement verification cursors reuse
    /// the same buffers.
    pub cursor: CursorScratch,
    /// Surviving candidates of the generation phase.
    pub candidates: Vec<Neighbor>,
}

impl TplScratch {
    /// Empty scratch.
    pub fn new() -> Self {
        TplScratch::default()
    }
}

/// The TPL method over an STR-packed R-tree.
#[derive(Debug)]
pub struct Tpl<M: Metric> {
    tree: RTree<M>,
    build_time: Duration,
}

impl<M: Metric + Clone> Tpl<M> {
    /// Builds the R-tree substrate (the only setup TPL needs).
    pub fn build(ds: Arc<Dataset>, metric: M) -> Self {
        let start = Instant::now();
        let tree = RTree::build(ds, metric);
        Tpl {
            tree,
            build_time: start.elapsed(),
        }
    }

    /// Wall-clock tree construction time.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// The underlying R-tree.
    pub fn forward_index(&self) -> &RTree<M> {
        &self.tree
    }

    /// Exact reverse-kNN of dataset point `q`, allocating fresh working
    /// memory. Batch callers should hold one [`TplScratch`] per worker and
    /// use [`Tpl::query_with`].
    pub fn query(&self, q: PointId, k: usize, stats: &mut SearchStats) -> Vec<Neighbor> {
        self.query_with(q, k, &mut TplScratch::new(), stats)
    }

    /// Exact reverse-kNN of dataset point `q` against caller-owned working
    /// memory.
    pub fn query_with(
        &self,
        q: PointId,
        k: usize,
        scratch: &mut TplScratch,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        let qp = self.tree.point(q).to_vec();
        self.query_inner(&qp, Some(q), k, scratch, stats)
    }

    /// Exact reverse-kNN of an arbitrary location.
    pub fn query_at(&self, q: &[f64], k: usize, stats: &mut SearchStats) -> Vec<Neighbor> {
        self.query_inner(q, None, k, &mut TplScratch::new(), stats)
    }

    fn query_inner(
        &self,
        q: &[f64],
        exclude: Option<PointId>,
        k: usize,
        scratch: &mut TplScratch,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        assert!(k >= 1, "k must be positive");
        let metric = self.tree.metric();
        let TplScratch { cursor, candidates } = scratch;
        candidates.clear();
        // Best-first traversal by mindist so candidates arrive roughly in
        // ascending distance, maximizing trimming power. The queue is the
        // scratch's reusable best-first heap (released again before the
        // refinement phase opens verification cursors on the same scratch).
        let queue = &mut cursor.tree.queue;
        queue.clear();
        let root = self.tree.root_id();
        queue.push_node(root, self.tree.min_dist(q, self.tree.node_mbr(root)), 0.0);
        stats.count_push();
        while let Some(Popped::Node { id: node, .. }) = queue.pop() {
            stats.count_node();
            // Node trimming: count candidates that dominate the whole MBR.
            let mbr = self.tree.node_mbr(node);
            let min_q = self.tree.min_dist(q, mbr);
            let mut dominators = 0usize;
            for c in candidates.iter() {
                if self.tree.max_dist(self.tree.point(c.id), mbr) < min_q {
                    dominators += 1;
                    if dominators >= k {
                        break;
                    }
                }
            }
            if dominators >= k {
                continue;
            }
            match self.tree.node_children(node) {
                Some(children) => {
                    for &c in children {
                        let lb = self.tree.min_dist(q, self.tree.node_mbr(c));
                        queue.push_node(c, lb, 0.0);
                        stats.count_push();
                    }
                }
                None => {
                    for &p in self.tree.node_entries(node).unwrap() {
                        if Some(p) == exclude {
                            continue;
                        }
                        stats.count_dist();
                        let dpq = metric.dist(self.tree.point(p), q);
                        // Point trimming: k candidates strictly closer to p
                        // than q is ⇒ p cannot be a reverse neighbor. Each
                        // bisector distance only matters below d(p, q), so
                        // its accumulation is abandoned there.
                        let mut closer = 0usize;
                        for c in candidates.iter() {
                            stats.count_dist();
                            if metric
                                .dist_lt(self.tree.point(p), self.tree.point(c.id), dpq)
                                .is_some()
                            {
                                closer += 1;
                                if closer >= k {
                                    break;
                                }
                            }
                        }
                        if closer < k {
                            candidates.push(Neighbor::new(p, dpq));
                        }
                    }
                }
            }
        }
        // Refinement: exact verification against the tree through the
        // bounded, scratch-reusing cursor.
        let mut out = Vec::new();
        for cand in candidates.iter() {
            if verify_rknn(&self.tree, cand.id, cand.dist, k, cursor, stats) {
                out.push(*cand);
            }
        }
        rknn_core::neighbor::sort_neighbors(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rknn_core::{BruteForce, Euclidean};

    fn uniform(n: usize, dim: usize, seed: u64) -> Arc<Dataset> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.random::<f64>() * 10.0).collect())
            .collect();
        Dataset::from_rows(&rows).unwrap().into_shared()
    }

    #[test]
    fn exact_against_brute_force() {
        let ds = uniform(250, 2, 140);
        let tpl = Tpl::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds, Euclidean);
        let mut st = SearchStats::new();
        for k in [1usize, 4, 12] {
            for q in [0usize, 125, 249] {
                let got: Vec<_> = tpl.query(q, k, &mut st).iter().map(|n| n.id).collect();
                let want: Vec<_> = bf.rknn(q, k, &mut st).iter().map(|n| n.id).collect();
                assert_eq!(got, want, "k={k} q={q}");
            }
        }
    }

    #[test]
    fn exact_in_higher_dimensions_too() {
        // Trimming degrades in high dimensions but must stay exact.
        let ds = uniform(150, 12, 141);
        let tpl = Tpl::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds, Euclidean);
        let mut st = SearchStats::new();
        for q in [3usize, 77] {
            let got: Vec<_> = tpl.query(q, 5, &mut st).iter().map(|n| n.id).collect();
            let want: Vec<_> = bf.rknn(q, 5, &mut st).iter().map(|n| n.id).collect();
            assert_eq!(got, want, "q={q}");
        }
    }

    #[test]
    fn external_queries() {
        let ds = uniform(180, 2, 142);
        let tpl = Tpl::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds, Euclidean);
        let mut st = SearchStats::new();
        let q = vec![5.0, 5.0];
        let got: Vec<_> = tpl.query_at(&q, 2, &mut st).iter().map(|n| n.id).collect();
        let want: Vec<_> = bf
            .rknn_external(&q, 2, &mut st)
            .iter()
            .map(|n| n.id)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn build_time_is_recorded() {
        let ds = uniform(100, 2, 143);
        let tpl = Tpl::build(ds, Euclidean);
        assert!(tpl.build_time() > Duration::ZERO);
    }
}
