//! Shared verification primitives.

use rknn_core::{Metric, PointId, SearchStats};
use rknn_index::KnnIndex;

/// Verifies whether dataset point `x` at distance `d_xq` from the query is
/// a reverse k-nearest neighbor: `d_k(x) ≥ d(x, q)` (the Korn–Muthukrishnan
/// characterization, computed with a forward kNN query against `index`).
///
/// When the index holds fewer than `k` other points, `x` is trivially a
/// reverse neighbor.
pub fn verify_rknn<M, I>(index: &I, x: PointId, d_xq: f64, k: usize, stats: &mut SearchStats) -> bool
where
    M: Metric,
    I: KnnIndex<M> + ?Sized,
{
    let nn = index.knn(index.point(x), k, Some(x), stats);
    if nn.len() < k {
        return true;
    }
    nn[k - 1].dist >= d_xq
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknn_core::{Dataset, Euclidean};
    use rknn_index::LinearScan;

    #[test]
    fn verifies_the_dk_test() {
        // Points on a line at 0, 1, 2, 10.
        let ds = Dataset::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![10.0]])
            .unwrap()
            .into_shared();
        let idx = LinearScan::build(ds, Euclidean);
        let mut st = SearchStats::new();
        // Is point 1 a reverse-1NN of point 0? d_1(1) = 1 = d(1, 0) → yes.
        assert!(verify_rknn(&idx, 1, 1.0, 1, &mut st));
        // Is point 3 (at 10) a reverse-1NN of point 0? d_1(3) = 8 < 10 → no.
        assert!(!verify_rknn(&idx, 3, 10.0, 1, &mut st));
        // k larger than the dataset: trivially true.
        assert!(verify_rknn(&idx, 3, 10.0, 10, &mut st));
    }
}
