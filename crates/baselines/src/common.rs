//! Shared verification primitives.

use rknn_core::{CursorScratch, Metric, PointId, SearchStats};
use rknn_index::KnnIndex;

/// Verifies whether dataset point `x` at distance `d_xq` from the query is
/// a reverse k-nearest neighbor: `d_k(x) ≥ d(x, q)` (the Korn–Muthukrishnan
/// characterization), equivalently *fewer than `k` other points lie
/// strictly inside the ball of radius `d(x, q)` around `x`*.
///
/// The forward query runs through [`KnnIndex::cursor_bounded`] with the
/// caller's scratch, so every substrate answers it allocation-amortized and
/// threshold-pruned ([`Metric::dist_lt`] early abandonment in the bounded
/// selection heaps and tree emission frontiers) instead of through the
/// allocating boxed `knn` path. The stream is nondecreasing, so the drain
/// stops at the first entry at distance `≥ d_xq` (verdict: member) or at the
/// `k`-th entry strictly below it (verdict: non-member) — often well before
/// `k` entries.
///
/// When the index holds fewer than `k` other points, `x` is trivially a
/// reverse neighbor.
pub fn verify_rknn<M, I>(
    index: &I,
    x: PointId,
    d_xq: f64,
    k: usize,
    scratch: &mut CursorScratch,
    stats: &mut SearchStats,
) -> bool
where
    M: Metric,
    I: KnnIndex<M> + ?Sized,
{
    let mut cursor = index.cursor_bounded(index.point(x), Some(x), k, scratch);
    let mut closer = 0usize;
    let verdict = loop {
        match cursor.next() {
            Some(n) if n.dist < d_xq => {
                closer += 1;
                if closer >= k {
                    break false;
                }
            }
            // Nondecreasing stream: every later entry is ≥ d_xq too, so
            // x's census can never reach k.
            Some(_) => break true,
            // Index exhausted below k other points: trivially a member.
            None => break true,
        }
    };
    stats.absorb(&cursor.stats());
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknn_core::{Dataset, Euclidean};
    use rknn_index::{CoverTree, LinearScan};

    #[test]
    fn verifies_the_dk_test() {
        // Points on a line at 0, 1, 2, 10.
        let ds = Dataset::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![10.0]])
            .unwrap()
            .into_shared();
        let idx = LinearScan::build(ds, Euclidean);
        let mut st = SearchStats::new();
        let mut scratch = CursorScratch::new();
        // Is point 1 a reverse-1NN of point 0? d_1(1) = 1 = d(1, 0) → yes.
        assert!(verify_rknn(&idx, 1, 1.0, 1, &mut scratch, &mut st));
        // Is point 3 (at 10) a reverse-1NN of point 0? d_1(3) = 8 < 10 → no.
        assert!(!verify_rknn(&idx, 3, 10.0, 1, &mut scratch, &mut st));
        // k larger than the dataset: trivially true.
        assert!(verify_rknn(&idx, 3, 10.0, 10, &mut scratch, &mut st));
    }

    #[test]
    fn agrees_with_the_boxed_knn_characterization_on_any_substrate() {
        let ds = rknn_data::uniform_cube(150, 3, 77).into_shared();
        let scan = LinearScan::build(ds.clone(), Euclidean);
        let cover = CoverTree::build(ds.clone(), Euclidean);
        let mut st = SearchStats::new();
        let mut scratch = CursorScratch::new();
        for k in [1usize, 4, 9] {
            for x in [0usize, 60, 149] {
                for q in [1usize, 70] {
                    let d_xq = Euclidean.dist(ds.point(x), ds.point(q));
                    let nn = scan.knn(ds.point(x), k, Some(x), &mut st);
                    let want = nn.len() < k || nn[k - 1].dist >= d_xq;
                    assert_eq!(
                        verify_rknn(&scan, x, d_xq, k, &mut scratch, &mut st),
                        want,
                        "scan k={k} x={x} q={q}"
                    );
                    assert_eq!(
                        verify_rknn(&cover, x, d_xq, k, &mut scratch, &mut st),
                        want,
                        "cover k={k} x={x} q={q}"
                    );
                }
            }
        }
    }
}
