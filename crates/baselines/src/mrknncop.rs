//! MRkNNCoP — conservative kNN-distance models in an M-tree \[3\].
//!
//! "The pruning strategy relies on the assumption that the kNN distances
//! … fit a formula for the fractal dimension FD involving the neighborhood
//! size k" (§2.1): `log d_k` is modeled as an affine function of `log k`.
//! For every point we fit the least-squares slope of that curve over
//! `k = 1 … k_max` and shift the intercept up/down until the line bounds
//! every observed distance — yielding *conservative* lower/upper bounds
//! `lb_p(k) ≤ d_k(p) ≤ ub_p(k)` for all supported `k` (the original paper
//! computes the optimal such lines via convex hulls; the shifted
//! least-squares lines are marginally looser but equally sound, see
//! `DESIGN.md` §4).
//!
//! Queries traverse an M-tree whose nodes aggregate subtree-maximum upper
//! line coefficients: a subtree is pruned when even its most generous upper
//! bound cannot reach the query. Leaf survivors split into *certain hits*
//! (`d ≤ lb`) and *candidates* (`d ≤ ub`) that are verified with forward
//! kNN queries. Results are exact for any `k ≤ k_max`.
//!
//! Precomputation — a `k_max`-NN query per dataset point plus the tree
//! build — is exactly the cost the paper's Figures 3–6 and 9 put on
//! the scales against RDT's zero setup.

use crate::common::verify_rknn;
use rknn_core::{CursorScratch, Dataset, Metric, Neighbor, PointId, SearchStats};
use rknn_index::{KnnIndex, MTree};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-point conservative bound lines for `ln d_k = a + b·ln k`.
#[derive(Debug, Clone, Copy)]
pub struct BoundLines {
    /// Lower-bound intercept.
    pub lo_a: f64,
    /// Lower-bound slope.
    pub lo_b: f64,
    /// Upper-bound intercept.
    pub up_a: f64,
    /// Upper-bound slope.
    pub up_b: f64,
}

impl BoundLines {
    /// Fits conservative lines to the kNN distances `d_1 … d_kmax`
    /// (ascending). Zero distances are clamped to `f64::MIN_POSITIVE`
    /// before taking logarithms, which only loosens the lower bound.
    pub fn fit(knn_dists: &[f64]) -> Self {
        let m = knn_dists.len();
        debug_assert!(m >= 1);
        let xs: Vec<f64> = (1..=m).map(|k| (k as f64).ln()).collect();
        let ys: Vec<f64> = knn_dists
            .iter()
            .map(|&d| d.max(f64::MIN_POSITIVE).ln())
            .collect();
        // Least-squares slope; degenerate spreads fall back to slope 0.
        let n = m as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for (x, y) in xs.iter().zip(&ys) {
            sxx += (x - mx) * (x - mx);
            sxy += (x - mx) * (y - my);
        }
        // d_k is nondecreasing in k, so the LS slope is nonnegative on real
        // inputs; clamp defensively for degenerate cases.
        let b = if sxx > 0.0 { (sxy / sxx).max(0.0) } else { 0.0 };
        let mut up_a = f64::NEG_INFINITY;
        let mut lo_a = f64::INFINITY;
        for (x, y) in xs.iter().zip(&ys) {
            up_a = up_a.max(y - b * x);
            lo_a = lo_a.min(y - b * x);
        }
        // Log-space safety margin: the exp/ln round trip can land 1 ulp on
        // the wrong side of d_k, and boundary cases (d(x, q) exactly equal
        // to d_k(x), i.e. q *is* the k-th neighbor) are common for queries
        // drawn from the dataset. A relative 1e-9 widening keeps the bounds
        // conservative without affecting pruning power.
        up_a += 1e-9;
        lo_a -= 1e-9;
        BoundLines {
            lo_a,
            lo_b: b,
            up_a,
            up_b: b,
        }
    }

    /// The conservative lower bound `lb(k)`.
    #[inline]
    pub fn lower(&self, k: usize) -> f64 {
        (self.lo_a + self.lo_b * (k as f64).ln()).exp()
    }

    /// The conservative upper bound `ub(k)`.
    #[inline]
    pub fn upper(&self, k: usize) -> f64 {
        (self.up_a + self.up_b * (k as f64).ln()).exp()
    }
}

/// The MRkNNCoP index: bound lines + M-tree with subtree aggregates.
#[derive(Debug)]
pub struct MRkNNCoP<M: Metric> {
    tree: MTree<M>,
    lines: Vec<BoundLines>,
    /// Per-M-tree-node subtree maxima of `(up_a, up_b)`.
    node_agg: Vec<(f64, f64)>,
    k_max: usize,
    precompute_time: Duration,
    precompute_stats: SearchStats,
}

impl<M: Metric + Clone> MRkNNCoP<M> {
    /// Builds the index: `k_max`-NN precomputation for every point (served
    /// by `forward`), bound-line fitting, M-tree construction and aggregate
    /// propagation.
    pub fn build<I>(ds: Arc<Dataset>, metric: M, k_max: usize, forward: &I) -> Self
    where
        I: KnnIndex<M> + ?Sized,
    {
        assert!(k_max >= 1, "k_max must be positive");
        let start = Instant::now();
        let mut stats = SearchStats::new();
        let mut lines = Vec::with_capacity(ds.len());
        for i in 0..ds.len() {
            let nn = forward.knn(ds.point(i), k_max, Some(i), &mut stats);
            let dists: Vec<f64> = if nn.is_empty() {
                vec![f64::MIN_POSITIVE]
            } else {
                nn.iter().map(|n| n.dist).collect()
            };
            lines.push(BoundLines::fit(&dists));
        }
        let tree = MTree::build(ds, metric);
        // Propagate subtree maxima of the upper-line coefficients. Taking
        // the componentwise max of (a, b) over a subtree over-approximates
        // max_p ub_p(k) for every k ≥ 1 because ln k ≥ 0.
        let mut node_agg = vec![(f64::NEG_INFINITY, f64::NEG_INFINITY); tree.node_count()];
        fn aggregate<M: Metric>(
            tree: &MTree<M>,
            lines: &[BoundLines],
            agg: &mut Vec<(f64, f64)>,
            node: usize,
        ) -> (f64, f64) {
            let mut best = (f64::NEG_INFINITY, f64::NEG_INFINITY);
            let n = tree.node(node);
            for e in n.entries.clone() {
                let sub = match e.child {
                    None => (lines[e.pivot].up_a, lines[e.pivot].up_b),
                    Some(c) => aggregate(tree, lines, agg, c),
                };
                best.0 = best.0.max(sub.0);
                best.1 = best.1.max(sub.1);
            }
            agg[node] = best;
            best
        }
        aggregate(&tree, &lines, &mut node_agg, tree.root_id());
        MRkNNCoP {
            tree,
            lines,
            node_agg,
            k_max,
            precompute_time: start.elapsed(),
            precompute_stats: stats,
        }
    }

    /// Maximum reverse rank supported by the fitted bounds.
    pub fn k_max(&self) -> usize {
        self.k_max
    }

    /// Wall-clock precomputation time.
    pub fn precompute_time(&self) -> Duration {
        self.precompute_time
    }

    /// Work spent in precomputation.
    pub fn precompute_stats(&self) -> SearchStats {
        self.precompute_stats
    }

    /// The fitted bound lines (exposed for tests and diagnostics).
    pub fn lines(&self) -> &[BoundLines] {
        &self.lines
    }

    /// Exact reverse-kNN of dataset point `q` for any `k ≤ k_max`,
    /// allocating fresh working memory. Batch callers should hold one
    /// [`CursorScratch`] per worker and use [`MRkNNCoP::query_with`].
    ///
    /// `verify` serves the forward kNN queries of the refinement step (the
    /// paper uses the same backing index for both roles).
    pub fn query<I>(
        &self,
        q: PointId,
        k: usize,
        verify: &I,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor>
    where
        I: KnnIndex<M> + ?Sized,
    {
        self.query_with(q, k, verify, &mut CursorScratch::new(), stats)
    }

    /// Exact reverse-kNN of dataset point `q` for any `k ≤ k_max` against
    /// caller-owned working memory.
    ///
    /// The containment traversal prunes its query–pivot evaluations with
    /// [`Metric::dist_le`]: a subtree is descended only when `d(q, pivot) ≤
    /// bound + radius` (the closed-ball reading of `mindist ≤ bound`), and
    /// a leaf point's distance accumulation is abandoned past its
    /// conservative upper bound `ub_p(k)`. Refinement runs through
    /// [`verify_rknn`]'s bounded verification cursor over `scratch`.
    pub fn query_with<I>(
        &self,
        q: PointId,
        k: usize,
        verify: &I,
        scratch: &mut CursorScratch,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor>
    where
        I: KnnIndex<M> + ?Sized,
    {
        assert!(k >= 1 && k <= self.k_max, "k must be within 1..=k_max");
        let metric = self.tree.metric();
        let qp = self.tree.point(q).to_vec();
        let ln_k = (k as f64).ln();
        let mut certain = Vec::new();
        let mut candidates: Vec<Neighbor> = Vec::new();
        let mut stack = vec![self.tree.root_id()];
        while let Some(node) = stack.pop() {
            stats.count_node();
            let n = self.tree.node(node);
            for e in &n.entries {
                match e.child {
                    Some(c) => {
                        stats.count_dist();
                        let (agg_a, agg_b) = self.node_agg[c];
                        let bound = (agg_a + agg_b * ln_k).exp();
                        // `(d − radius)⁺ ≤ bound` ⟺ `d ≤ bound + radius`
                        // for the nonnegative `bound`, so the pivot
                        // evaluation can be abandoned past the sum.
                        if metric
                            .dist_le(&qp, self.tree.point(e.pivot), bound + e.radius)
                            .is_some()
                        {
                            stack.push(c);
                        }
                    }
                    None => {
                        let p = e.pivot;
                        if p == q {
                            continue;
                        }
                        stats.count_dist();
                        let lines = &self.lines[p];
                        if let Some(d) = metric.dist_le(&qp, self.tree.point(p), lines.upper(k)) {
                            if d <= lines.lower(k) {
                                certain.push(Neighbor::new(p, d));
                            } else {
                                candidates.push(Neighbor::new(p, d));
                            }
                        }
                    }
                }
            }
        }
        for cand in candidates {
            if verify_rknn(verify, cand.id, cand.dist, k, scratch, stats) {
                certain.push(cand);
            }
        }
        rknn_core::neighbor::sort_neighbors(&mut certain);
        certain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rknn_core::{BruteForce, Euclidean};
    use rknn_index::LinearScan;

    fn uniform(n: usize, dim: usize, seed: u64) -> Arc<Dataset> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.random::<f64>() * 10.0).collect())
            .collect();
        Dataset::from_rows(&rows).unwrap().into_shared()
    }

    #[test]
    fn bound_lines_bracket_the_curve() {
        // Power-law distances d_k = 0.3·k^(1/2).
        let dists: Vec<f64> = (1..=50).map(|k| 0.3 * (k as f64).sqrt()).collect();
        let lines = BoundLines::fit(&dists);
        for (i, &d) in dists.iter().enumerate() {
            let k = i + 1;
            assert!(lines.lower(k) <= d * (1.0 + 1e-9), "lb violated at k={k}");
            assert!(lines.upper(k) >= d * (1.0 - 1e-9), "ub violated at k={k}");
        }
        // On an exact power law both lines are tight.
        assert!((lines.upper(25) / lines.lower(25) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bound_lines_handle_zero_distances() {
        let lines = BoundLines::fit(&[0.0, 0.0, 1.0, 2.0]);
        assert!(lines.lower(1) <= f64::MIN_POSITIVE * 2.0);
        assert!(lines.upper(4) >= 2.0 * (1.0 - 1e-9));
    }

    #[test]
    fn exact_against_brute_force() {
        let ds = uniform(300, 3, 120);
        let forward = LinearScan::build(ds.clone(), Euclidean);
        let cop = MRkNNCoP::build(ds.clone(), Euclidean, 20, &forward);
        let bf = BruteForce::new(ds, Euclidean);
        let mut st = SearchStats::new();
        for k in [1usize, 7, 20] {
            for q in [0usize, 123, 299] {
                let got: Vec<_> = cop
                    .query(q, k, &forward, &mut st)
                    .iter()
                    .map(|n| n.id)
                    .collect();
                let want: Vec<_> = bf.rknn(q, k, &mut st).iter().map(|n| n.id).collect();
                assert_eq!(got, want, "k={k} q={q}");
            }
        }
    }

    #[test]
    fn precomputation_is_accounted() {
        let ds = uniform(100, 2, 121);
        let forward = LinearScan::build(ds.clone(), Euclidean);
        let cop = MRkNNCoP::build(ds, Euclidean, 10, &forward);
        assert!(
            cop.precompute_stats().dist_computations >= 100 * 99 / 2,
            "k_max-NN for every point is the dominant precomputation cost"
        );
        assert_eq!(cop.k_max(), 10);
        assert!(cop.precompute_time() > Duration::ZERO);
        assert_eq!(cop.lines().len(), 100);
    }

    #[test]
    #[should_panic(expected = "within 1..=k_max")]
    fn rejects_k_beyond_kmax() {
        let ds = uniform(50, 2, 122);
        let forward = LinearScan::build(ds.clone(), Euclidean);
        let cop = MRkNNCoP::build(ds, Euclidean, 5, &forward);
        let mut st = SearchStats::new();
        let _ = cop.query(0, 6, &forward, &mut st);
    }
}
