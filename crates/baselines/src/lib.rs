//! Reverse-kNN baselines from the paper's comparison study (§7.1).
//!
//! * [`NaiveRknn`] — exact reference with zero precomputation: one
//!   verification per dataset point. The upper envelope of query cost.
//! * [`Sft`] — the approximate SFT heuristic of Singh et al. \[40\]:
//!   an `α·k`-NN candidate set, pairwise filtering, and count range
//!   queries. Recall bounded by the candidate budget.
//! * [`MRkNNCoP`] — Achtert et al. \[3\]: conservative log–log regression
//!   bounds on every point's kNN-distance curve, aggregated in an M-tree.
//!   Exact for any `k ≤ k_max`, at heavy precomputation cost.
//! * [`RdnnTree`] — Yang & Lin \[51\]: an R-tree carrying each point's kNN
//!   distance with subtree maxima; exact containment queries for one fixed
//!   `k` per tree.
//! * [`Tpl`] — Tao et al. \[43\] (the paper's "k-trim" variant): single
//!   R-tree traversal with bisector point pruning and min/max-distance node
//!   trimming, range-count refinement. Exact, no precomputation beyond the
//!   tree; query cost degrades with dimension and k.
//!
//! Every method reports [`rknn_core::SearchStats`] and its precomputation
//! wall-clock time so the evaluation can regenerate the paper's
//! query-vs-precomputation tradeoffs (Figures 3–6, 8, 9).
//!
//! All five methods also implement the algorithm-generic
//! [`rknn_rdt::algorithm::RknnAlgorithm`] lifecycle (see [`algorithm`]), so
//! they execute — batch-parallel, scratch-reusing, threshold-pruned —
//! through the exact same driver as RDT itself.

#![warn(missing_docs)]

pub mod algorithm;
pub mod common;
pub mod mrknncop;
pub mod naive;
pub mod rdnn;
pub mod sft;
pub mod tpl;

pub use algorithm::{MrknncopAlgorithm, RdnnAlgorithm, TplAlgorithm};
pub use common::verify_rknn;
pub use mrknncop::MRkNNCoP;
pub use naive::NaiveRknn;
pub use rdnn::RdnnTree;
pub use sft::{Sft, SftScratch};
pub use tpl::{Tpl, TplScratch};
