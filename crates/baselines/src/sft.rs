//! SFT — the approximate heuristic of Singh, Ferhatosmanoglu & Tosun \[40\].
//!
//! "Query processing begins with the extraction of an αk-NN set (for α ≥ 1)
//! of the query point as an initial set of candidates. The algorithm
//! subsequently employs two refinement strategies for the removal of false
//! positives: the outcome of local distance computations among pairs of
//! candidate points is first used for filtering, and the remaining false
//! positives are then eliminated using count range queries." (§2.2)
//!
//! Recall is governed by α: a reverse neighbor whose forward rank from the
//! query exceeds `α·k` is simply never examined. Every *reported* point is
//! verified, so SFT has perfect precision.

use rknn_core::{Metric, Neighbor, PointId, SearchStats};
use rknn_index::KnnIndex;

/// The SFT heuristic.
#[derive(Debug, Clone, Copy)]
pub struct Sft {
    k: usize,
    alpha: f64,
}

impl Sft {
    /// Creates a handle for reverse rank `k` and candidate multiplier
    /// `alpha ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `alpha < 1`.
    pub fn new(k: usize, alpha: f64) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(alpha >= 1.0 && alpha.is_finite(), "alpha must be >= 1");
        Sft { k, alpha }
    }

    /// The candidate multiplier.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of forward neighbors fetched as candidates.
    pub fn candidate_budget(&self) -> usize {
        (self.alpha * self.k as f64).ceil() as usize
    }

    /// Approximate reverse-kNN of dataset point `q`.
    pub fn query<M, I>(&self, index: &I, q: PointId, stats: &mut SearchStats) -> Vec<Neighbor>
    where
        M: Metric,
        I: KnnIndex<M> + ?Sized,
    {
        let metric = index.metric();
        let budget = self.candidate_budget();
        let candidates = index.knn(index.point(q), budget, Some(q), stats);

        // Filter 1: local distance computations among candidate pairs.
        // A candidate with k closer candidates cannot be a reverse neighbor.
        let m = candidates.len();
        let mut alive: Vec<bool> = vec![true; m];
        for i in 0..m {
            let xi = index.point(candidates[i].id);
            let mut closer = 0usize;
            for (j, other) in candidates.iter().enumerate() {
                if i == j {
                    continue;
                }
                stats.count_dist();
                if metric.dist(xi, index.point(other.id)) < candidates[i].dist {
                    closer += 1;
                    if closer >= self.k {
                        alive[i] = false;
                        break;
                    }
                }
            }
        }

        // Filter 2: count range queries eliminate the remaining false
        // positives exactly.
        let mut out = Vec::new();
        for (i, cand) in candidates.iter().enumerate() {
            if !alive[i] {
                continue;
            }
            let closer =
                index.range_count(index.point(cand.id), cand.dist, true, Some(cand.id), stats);
            if closer < self.k {
                out.push(*cand);
            }
        }
        rknn_core::neighbor::sort_neighbors(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rknn_core::{BruteForce, Dataset, Euclidean};
    use rknn_index::LinearScan;
    use std::sync::Arc;

    fn uniform(n: usize, dim: usize, seed: u64) -> Arc<Dataset> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> =
            (0..n).map(|_| (0..dim).map(|_| rng.random::<f64>() * 10.0).collect()).collect();
        Dataset::from_rows(&rows).unwrap().into_shared()
    }

    #[test]
    fn perfect_precision_at_any_alpha() {
        let ds = uniform(300, 3, 110);
        let idx = LinearScan::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds, Euclidean);
        let mut st = SearchStats::new();
        for alpha in [1.0, 2.0, 4.0] {
            let sft = Sft::new(5, alpha);
            for q in [0usize, 150] {
                let truth: std::collections::HashSet<_> =
                    bf.rknn(q, 5, &mut st).iter().map(|n| n.id).collect();
                for n in sft.query(&idx, q, &mut st) {
                    assert!(truth.contains(&n.id), "alpha={alpha} q={q}");
                }
            }
        }
    }

    #[test]
    fn recall_monotone_in_alpha_and_exact_at_large_alpha() {
        let ds = uniform(400, 2, 111);
        let idx = LinearScan::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds, Euclidean);
        let mut st = SearchStats::new();
        let q = 7;
        let truth: std::collections::HashSet<_> =
            bf.rknn(q, 10, &mut st).iter().map(|n| n.id).collect();
        let mut prev = 0.0;
        for alpha in [1.0, 2.0, 8.0, 40.0] {
            let got = Sft::new(10, alpha).query(&idx, q, &mut st);
            let recall = if truth.is_empty() {
                1.0
            } else {
                got.iter().filter(|n| truth.contains(&n.id)).count() as f64 / truth.len() as f64
            };
            assert!(recall >= prev - 1e-12, "recall must grow with alpha");
            prev = recall;
        }
        assert!((prev - 1.0).abs() < 1e-12, "alpha covering n recovers everything");
    }

    #[test]
    fn candidate_budget_rounds_up() {
        assert_eq!(Sft::new(10, 1.5).candidate_budget(), 15);
        assert_eq!(Sft::new(3, 1.1).candidate_budget(), 4);
    }

    #[test]
    #[should_panic(expected = "alpha must be >= 1")]
    fn rejects_alpha_below_one() {
        let _ = Sft::new(3, 0.5);
    }
}
