//! SFT — the approximate heuristic of Singh, Ferhatosmanoglu & Tosun \[40\].
//!
//! "Query processing begins with the extraction of an αk-NN set (for α ≥ 1)
//! of the query point as an initial set of candidates. The algorithm
//! subsequently employs two refinement strategies for the removal of false
//! positives: the outcome of local distance computations among pairs of
//! candidate points is first used for filtering, and the remaining false
//! positives are then eliminated using count range queries." (§2.2)
//!
//! Recall is governed by α: a reverse neighbor whose forward rank from the
//! query exceeds `α·k` is simply never examined. Every *reported* point is
//! verified, so SFT has perfect precision.

use crate::common::verify_rknn;
use rknn_core::{CursorScratch, Metric, Neighbor, PointId, SearchStats};
use rknn_index::KnnIndex;

/// Per-worker working memory for [`Sft::query_with`]: the cursor scratch
/// plus the candidate and liveness buffers of the two filter stages, all
/// reused across queries.
#[derive(Debug, Clone, Default)]
pub struct SftScratch {
    /// Storage for the index cursors (candidate retrieval and
    /// verification).
    pub cursor: CursorScratch,
    /// The `α·k` retrieved candidates.
    pub candidates: Vec<Neighbor>,
    /// Liveness flags of the pairwise filter, row-aligned with
    /// `candidates`.
    pub alive: Vec<bool>,
}

impl SftScratch {
    /// Empty scratch.
    pub fn new() -> Self {
        SftScratch::default()
    }
}

/// The SFT heuristic.
#[derive(Debug, Clone, Copy)]
pub struct Sft {
    k: usize,
    alpha: f64,
}

impl Sft {
    /// Creates a handle for reverse rank `k` and candidate multiplier
    /// `alpha ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `alpha < 1`.
    pub fn new(k: usize, alpha: f64) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(alpha >= 1.0 && alpha.is_finite(), "alpha must be >= 1");
        Sft { k, alpha }
    }

    /// The candidate multiplier.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of forward neighbors fetched as candidates.
    pub fn candidate_budget(&self) -> usize {
        (self.alpha * self.k as f64).ceil() as usize
    }

    /// Approximate reverse-kNN of dataset point `q`, allocating fresh
    /// working memory. Batch callers should hold one [`SftScratch`] per
    /// worker and use [`Sft::query_with`].
    pub fn query<M, I>(&self, index: &I, q: PointId, stats: &mut SearchStats) -> Vec<Neighbor>
    where
        M: Metric,
        I: KnnIndex<M> + ?Sized,
    {
        self.query_with(index, q, &mut SftScratch::new(), stats)
    }

    /// Approximate reverse-kNN of dataset point `q` against caller-owned
    /// working memory.
    ///
    /// The candidate set streams out of a bounded cursor over the scratch
    /// (threshold-pruned selection instead of the allocating boxed `knn`
    /// path), the pairwise filter abandons each candidate-pair distance
    /// against the candidate's query distance via [`Metric::dist_lt`], and
    /// the final count range queries run through [`verify_rknn`]'s bounded
    /// verification cursor.
    pub fn query_with<M, I>(
        &self,
        index: &I,
        q: PointId,
        scratch: &mut SftScratch,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor>
    where
        M: Metric,
        I: KnnIndex<M> + ?Sized,
    {
        let metric = index.metric();
        let budget = self.candidate_budget();
        let SftScratch {
            cursor,
            candidates,
            alive,
        } = scratch;
        candidates.clear();
        {
            let mut cur = index.cursor_bounded(index.point(q), Some(q), budget, cursor);
            while candidates.len() < budget {
                match cur.next() {
                    Some(n) => candidates.push(n),
                    None => break,
                }
            }
            stats.absorb(&cur.stats());
        }

        // Filter 1: local distance computations among candidate pairs.
        // A candidate with k closer candidates cannot be a reverse
        // neighbor. Each pair distance only matters below the candidate's
        // query distance, so its accumulation is abandoned there.
        let m = candidates.len();
        alive.clear();
        alive.resize(m, true);
        for i in 0..m {
            let xi = index.point(candidates[i].id);
            let mut closer = 0usize;
            for (j, other) in candidates.iter().enumerate() {
                if i == j {
                    continue;
                }
                stats.count_dist();
                if metric
                    .dist_lt(xi, index.point(other.id), candidates[i].dist)
                    .is_some()
                {
                    closer += 1;
                    if closer >= self.k {
                        alive[i] = false;
                        break;
                    }
                }
            }
        }

        // Filter 2: exact verification eliminates the remaining false
        // positives.
        let mut out = Vec::new();
        for (i, cand) in candidates.iter().enumerate() {
            if !alive[i] {
                continue;
            }
            if verify_rknn(index, cand.id, cand.dist, self.k, cursor, stats) {
                out.push(*cand);
            }
        }
        rknn_core::neighbor::sort_neighbors(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rknn_core::{BruteForce, Dataset, Euclidean};
    use rknn_index::LinearScan;
    use std::sync::Arc;

    fn uniform(n: usize, dim: usize, seed: u64) -> Arc<Dataset> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.random::<f64>() * 10.0).collect())
            .collect();
        Dataset::from_rows(&rows).unwrap().into_shared()
    }

    #[test]
    fn perfect_precision_at_any_alpha() {
        let ds = uniform(300, 3, 110);
        let idx = LinearScan::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds, Euclidean);
        let mut st = SearchStats::new();
        for alpha in [1.0, 2.0, 4.0] {
            let sft = Sft::new(5, alpha);
            for q in [0usize, 150] {
                let truth: std::collections::HashSet<_> =
                    bf.rknn(q, 5, &mut st).iter().map(|n| n.id).collect();
                for n in sft.query(&idx, q, &mut st) {
                    assert!(truth.contains(&n.id), "alpha={alpha} q={q}");
                }
            }
        }
    }

    #[test]
    fn recall_monotone_in_alpha_and_exact_at_large_alpha() {
        let ds = uniform(400, 2, 111);
        let idx = LinearScan::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds, Euclidean);
        let mut st = SearchStats::new();
        let q = 7;
        let truth: std::collections::HashSet<_> =
            bf.rknn(q, 10, &mut st).iter().map(|n| n.id).collect();
        let mut prev = 0.0;
        for alpha in [1.0, 2.0, 8.0, 40.0] {
            let got = Sft::new(10, alpha).query(&idx, q, &mut st);
            let recall = if truth.is_empty() {
                1.0
            } else {
                got.iter().filter(|n| truth.contains(&n.id)).count() as f64 / truth.len() as f64
            };
            assert!(recall >= prev - 1e-12, "recall must grow with alpha");
            prev = recall;
        }
        assert!(
            (prev - 1.0).abs() < 1e-12,
            "alpha covering n recovers everything"
        );
    }

    #[test]
    fn candidate_budget_rounds_up() {
        assert_eq!(Sft::new(10, 1.5).candidate_budget(), 15);
        assert_eq!(Sft::new(3, 1.1).candidate_budget(), 4);
    }

    #[test]
    #[should_panic(expected = "alpha must be >= 1")]
    fn rejects_alpha_below_one() {
        let _ = Sft::new(3, 0.5);
    }
}
