//! Exact reverse-kNN with zero precomputation.
//!
//! One candidate verification per dataset point, each served by a bounded,
//! threshold-pruned forward cursor against the index ([`verify_rknn`]).
//! This is the method every other
//! baseline is trying to beat on query time; it needs no setup at all and
//! is exact for every `k`.

use crate::common::verify_rknn;
use rknn_core::{CursorScratch, Metric, Neighbor, PointId, SearchStats};
use rknn_index::KnnIndex;

/// Naive exact reverse-kNN over any forward index.
#[derive(Debug, Clone, Copy)]
pub struct NaiveRknn {
    k: usize,
}

impl NaiveRknn {
    /// Creates a handle for reverse rank `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        NaiveRknn { k }
    }

    /// The reverse rank.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Exact reverse-kNN of dataset point `q`, allocating fresh working
    /// memory. Batch callers should hold one [`CursorScratch`] per worker
    /// and use [`NaiveRknn::query_with`].
    pub fn query<M, I>(&self, index: &I, q: PointId, stats: &mut SearchStats) -> Vec<Neighbor>
    where
        M: Metric,
        I: KnnIndex<M> + ?Sized,
    {
        self.query_with(index, q, &mut CursorScratch::new(), stats)
    }

    /// Exact reverse-kNN of dataset point `q` against caller-owned working
    /// memory.
    ///
    /// For every point `x ≠ q`, verifies the `d_k(x) ≥ d(x, q)` test
    /// (equivalently: fewer than `k` points strictly closer to `x` than `q`
    /// is, ties included) through [`verify_rknn`] — a bounded,
    /// threshold-pruned forward cursor over `scratch` rather than the
    /// allocating boxed count-range path.
    pub fn query_with<M, I>(
        &self,
        index: &I,
        q: PointId,
        scratch: &mut CursorScratch,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor>
    where
        M: Metric,
        I: KnnIndex<M> + ?Sized,
    {
        let qp = index.point(q).to_vec();
        let metric = index.metric();
        let mut out = Vec::new();
        for x in 0..index.num_points() {
            if x == q {
                continue;
            }
            stats.count_dist();
            let d = metric.dist(index.point(x), &qp);
            if verify_rknn(index, x, d, self.k, scratch, stats) {
                out.push(Neighbor::new(x, d));
            }
        }
        rknn_core::neighbor::sort_neighbors(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rknn_core::{BruteForce, Dataset, Euclidean};
    use rknn_index::{CoverTree, LinearScan};
    use std::sync::Arc;

    fn uniform(n: usize, dim: usize, seed: u64) -> Arc<Dataset> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.random::<f64>() * 10.0).collect())
            .collect();
        Dataset::from_rows(&rows).unwrap().into_shared()
    }

    #[test]
    fn agrees_with_brute_force_reference() {
        let ds = uniform(250, 3, 100);
        let idx = LinearScan::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds, Euclidean);
        let mut st = SearchStats::new();
        for k in [1usize, 5, 20] {
            let method = NaiveRknn::new(k);
            for q in [0usize, 100, 249] {
                let got: Vec<_> = method
                    .query(&idx, q, &mut st)
                    .iter()
                    .map(|n| n.id)
                    .collect();
                let want: Vec<_> = bf.rknn(q, k, &mut st).iter().map(|n| n.id).collect();
                assert_eq!(got, want, "k={k} q={q}");
            }
        }
    }

    #[test]
    fn substrate_independent() {
        let ds = uniform(200, 2, 101);
        let scan = LinearScan::build(ds.clone(), Euclidean);
        let cover = CoverTree::build(ds, Euclidean);
        let method = NaiveRknn::new(4);
        let mut st = SearchStats::new();
        for q in [3usize, 77] {
            assert_eq!(
                method
                    .query(&scan, q, &mut st)
                    .iter()
                    .map(|n| n.id)
                    .collect::<Vec<_>>(),
                method
                    .query(&cover, q, &mut st)
                    .iter()
                    .map(|n| n.id)
                    .collect::<Vec<_>>(),
            );
        }
    }
}
