//! The five baselines as [`RknnAlgorithm`] implementations.
//!
//! Every method of the paper's comparison study plugs into the
//! algorithm-generic batch driver of `rknn_rdt::algorithm`: free methods
//! ([`NaiveRknn`], [`Sft`]) implement the trait directly with a no-op
//! `prepare`, while the precomputation-heavy methods get adapter structs
//! ([`TplAlgorithm`], [`MrknncopAlgorithm`], [`RdnnAlgorithm`]) that defer
//! their builds to [`RknnAlgorithm::prepare`] — so the driver's uniform
//! precompute-time reporting covers exactly the setup cost the paper's
//! Figures 3–6 and 9 charge them with.
//!
//! All adapters answer the all-points protocol (query located at dataset
//! point `q`, self-excluding) and route their hot loops through per-worker
//! scratch and threshold-pruned distances; see the individual method
//! modules for what is pruned where.

use crate::mrknncop::MRkNNCoP;
use crate::naive::NaiveRknn;
use crate::rdnn::RdnnTree;
use crate::sft::{Sft, SftScratch};
use crate::tpl::{Tpl, TplScratch};
use rknn_core::{CursorScratch, Dataset, Metric, PointId, SearchStats};
use rknn_index::KnnIndex;
use rknn_rdt::algorithm::{BasicAnswer, MaintenanceCost, RknnAlgorithm};
use std::sync::Arc;
use std::time::Duration;

impl<M, I> RknnAlgorithm<M, I> for NaiveRknn
where
    M: Metric,
    I: KnnIndex<M> + ?Sized,
{
    type Worker = CursorScratch;
    type Answer = BasicAnswer;

    fn name(&self) -> String {
        "naive".to_string()
    }

    fn make_worker(&self, _index: &I) -> CursorScratch {
        CursorScratch::new()
    }

    fn query(&self, index: &I, q: PointId, worker: &mut CursorScratch) -> BasicAnswer {
        let mut stats = SearchStats::new();
        let result = self.query_with(index, q, worker, &mut stats);
        BasicAnswer { result, stats }
    }
}

impl<M, I> RknnAlgorithm<M, I> for Sft
where
    M: Metric,
    I: KnnIndex<M> + ?Sized,
{
    type Worker = SftScratch;
    type Answer = BasicAnswer;

    fn name(&self) -> String {
        format!("SFT(α={})", self.alpha())
    }

    fn make_worker(&self, _index: &I) -> SftScratch {
        SftScratch::new()
    }

    fn query(&self, index: &I, q: PointId, worker: &mut SftScratch) -> BasicAnswer {
        let mut stats = SearchStats::new();
        let result = self.query_with(index, q, worker, &mut stats);
        BasicAnswer { result, stats }
    }
}

/// TPL as a prepared algorithm: [`RknnAlgorithm::prepare`] builds the
/// method's own R-tree over the dataset (its only setup), and queries run
/// the trimmed generation + verified refinement against it. The shared
/// forward index is unused — TPL is self-contained, which is exactly the
/// "cheapest setup" position it occupies in the study.
#[derive(Debug)]
pub struct TplAlgorithm<M: Metric + Clone> {
    k: usize,
    ds: Arc<Dataset>,
    metric: M,
    tree: Option<Arc<Tpl<M>>>,
}

impl<M: Metric + Clone> TplAlgorithm<M> {
    /// An unprepared TPL handle for reverse rank `k`.
    pub fn new(ds: Arc<Dataset>, metric: M, k: usize) -> Self {
        assert!(k >= 1, "k must be positive");
        TplAlgorithm {
            k,
            ds,
            metric,
            tree: None,
        }
    }

    /// A handle answering a different rank `k` over the **same** prepared
    /// R-tree (shared, not rebuilt) — TPL's structure is k-independent, so
    /// re-ranking costs nothing.
    pub fn with_rank(&self, k: usize) -> Self {
        assert!(k >= 1, "k must be positive");
        TplAlgorithm {
            k,
            ds: self.ds.clone(),
            metric: self.metric.clone(),
            tree: self.tree.clone(),
        }
    }

    /// The prepared TPL structure, if [`RknnAlgorithm::prepare`] ran.
    pub fn inner(&self) -> Option<&Tpl<M>> {
        self.tree.as_deref()
    }
}

impl<M, I> RknnAlgorithm<M, I> for TplAlgorithm<M>
where
    M: Metric + Clone,
    I: KnnIndex<M> + ?Sized,
{
    type Worker = TplScratch;
    type Answer = BasicAnswer;

    fn name(&self) -> String {
        "TPL".to_string()
    }

    fn prepare(&mut self, _index: &I) {
        self.tree = Some(Arc::new(Tpl::build(self.ds.clone(), self.metric.clone())));
    }

    fn precompute_time(&self) -> Duration {
        self.tree
            .as_ref()
            .map_or(Duration::ZERO, |t| t.build_time())
    }

    fn make_worker(&self, _index: &I) -> TplScratch {
        TplScratch::new()
    }

    fn query(&self, _index: &I, q: PointId, worker: &mut TplScratch) -> BasicAnswer {
        let tree = self
            .tree
            .as_ref()
            .expect("TplAlgorithm: query before prepare");
        let mut stats = SearchStats::new();
        let result = tree.query_with(q, self.k, worker, &mut stats);
        BasicAnswer { result, stats }
    }

    /// TPL's R-tree snapshots the dataset at `prepare`; there is no
    /// incremental repair — re-`prepare` against a fresh snapshot under
    /// churn (`apply_update` keeps the no-op default).
    fn maintenance_cost(&self) -> MaintenanceCost {
        MaintenanceCost::Rebuild
    }
}

/// MRkNNCoP as a prepared algorithm: [`RknnAlgorithm::prepare`] runs the
/// `k_max`-NN pass for every point *against the shared forward index*,
/// fits the conservative bound lines and builds the aggregate M-tree;
/// queries answer any `k ≤ k_max` with the same forward index serving the
/// refinement verifications.
#[derive(Debug)]
pub struct MrknncopAlgorithm<M: Metric + Clone> {
    k: usize,
    k_max: usize,
    ds: Arc<Dataset>,
    metric: M,
    index: Option<Arc<MRkNNCoP<M>>>,
}

impl<M: Metric + Clone> MrknncopAlgorithm<M> {
    /// An unprepared MRkNNCoP handle answering reverse rank `k` with bound
    /// lines fitted up to `k_max ≥ k`.
    pub fn new(ds: Arc<Dataset>, metric: M, k: usize, k_max: usize) -> Self {
        assert!(k >= 1 && k <= k_max, "k must be within 1..=k_max");
        MrknncopAlgorithm {
            k,
            k_max,
            ds,
            metric,
            index: None,
        }
    }

    /// A handle answering a different rank `k ≤ k_max` over the **same**
    /// prepared structure (shared, not rebuilt) — the paper's selling point
    /// for MRkNNCoP over the RdNN-Tree, whose structure is welded to one
    /// `k`.
    pub fn with_rank(&self, k: usize) -> Self {
        assert!(k >= 1 && k <= self.k_max, "k must be within 1..=k_max");
        MrknncopAlgorithm {
            k,
            k_max: self.k_max,
            ds: self.ds.clone(),
            metric: self.metric.clone(),
            index: self.index.clone(),
        }
    }

    /// The prepared MRkNNCoP structure, if [`RknnAlgorithm::prepare`] ran.
    pub fn inner(&self) -> Option<&MRkNNCoP<M>> {
        self.index.as_deref()
    }
}

impl<M, I> RknnAlgorithm<M, I> for MrknncopAlgorithm<M>
where
    M: Metric + Clone,
    I: KnnIndex<M> + ?Sized,
{
    type Worker = CursorScratch;
    type Answer = BasicAnswer;

    fn name(&self) -> String {
        "MRkNNCoP".to_string()
    }

    fn prepare(&mut self, index: &I) {
        self.index = Some(Arc::new(MRkNNCoP::build(
            self.ds.clone(),
            self.metric.clone(),
            self.k_max,
            index,
        )));
    }

    fn precompute_time(&self) -> Duration {
        self.index
            .as_ref()
            .map_or(Duration::ZERO, |i| i.precompute_time())
    }

    fn precompute_stats(&self) -> SearchStats {
        self.index
            .as_ref()
            .map_or_else(SearchStats::new, |i| i.precompute_stats())
    }

    fn make_worker(&self, _index: &I) -> CursorScratch {
        CursorScratch::new()
    }

    fn query(&self, index: &I, q: PointId, worker: &mut CursorScratch) -> BasicAnswer {
        let cop = self
            .index
            .as_ref()
            .expect("MrknncopAlgorithm: query before prepare");
        let mut stats = SearchStats::new();
        let result = cop.query_with(q, self.k, index, worker, &mut stats);
        BasicAnswer { result, stats }
    }

    /// The fitted bound lines and aggregate M-tree snapshot the dataset at
    /// `prepare`; conservative bounds do not survive inserts (a new point
    /// has no fitted line) — re-`prepare` under churn (`apply_update`
    /// keeps the no-op default).
    fn maintenance_cost(&self) -> MaintenanceCost {
        MaintenanceCost::Rebuild
    }
}

/// The RdNN-Tree as a prepared algorithm: [`RknnAlgorithm::prepare`] runs
/// the per-point `k`-NN pass against the shared forward index and bulk
/// loads the aux-augmented R-tree; queries are pure containment traversals
/// (no per-query verification, no worker state) and are exact for the
/// single `k` the tree was built with.
#[derive(Debug)]
pub struct RdnnAlgorithm<M: Metric + Clone> {
    k: usize,
    ds: Arc<Dataset>,
    metric: M,
    tree: Option<RdnnTree<M>>,
}

impl<M: Metric + Clone> RdnnAlgorithm<M> {
    /// An unprepared RdNN-Tree handle fixed at reverse rank `k`.
    pub fn new(ds: Arc<Dataset>, metric: M, k: usize) -> Self {
        assert!(k >= 1, "k must be positive");
        RdnnAlgorithm {
            k,
            ds,
            metric,
            tree: None,
        }
    }

    /// The prepared RdNN-Tree, if [`RknnAlgorithm::prepare`] ran.
    pub fn inner(&self) -> Option<&RdnnTree<M>> {
        self.tree.as_ref()
    }
}

impl<M, I> RknnAlgorithm<M, I> for RdnnAlgorithm<M>
where
    M: Metric + Clone,
    I: KnnIndex<M> + ?Sized,
{
    type Worker = ();
    type Answer = BasicAnswer;

    fn name(&self) -> String {
        "RdNN".to_string()
    }

    fn prepare(&mut self, index: &I) {
        self.tree = Some(RdnnTree::build(
            self.ds.clone(),
            self.metric.clone(),
            self.k,
            index,
        ));
    }

    fn precompute_time(&self) -> Duration {
        self.tree
            .as_ref()
            .map_or(Duration::ZERO, |t| t.precompute_time())
    }

    fn precompute_stats(&self) -> SearchStats {
        self.tree
            .as_ref()
            .map_or_else(SearchStats::new, |t| t.precompute_stats())
    }

    fn make_worker(&self, _index: &I) {}

    fn query(&self, _index: &I, q: PointId, _worker: &mut ()) -> BasicAnswer {
        let tree = self
            .tree
            .as_ref()
            .expect("RdnnAlgorithm: query before prepare");
        let mut stats = SearchStats::new();
        let result = tree.query(q, &mut stats);
        BasicAnswer { result, stats }
    }

    /// The aux-augmented R-tree stores every point's `d_k` at `prepare`
    /// time; an insert or delete can change the `d_k` of arbitrary other
    /// points, so the structure must be rebuilt under churn (`apply_update`
    /// keeps the no-op default).
    fn maintenance_cost(&self) -> MaintenanceCost {
        MaintenanceCost::Rebuild
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknn_core::Euclidean;
    use rknn_index::LinearScan;
    use rknn_rdt::algorithm::run_algorithm_batch;

    fn setup(n: usize, dim: usize, seed: u64) -> (Arc<Dataset>, LinearScan<Euclidean>) {
        let ds = rknn_data::uniform_cube(n, dim, seed).into_shared();
        let idx = LinearScan::build(ds.clone(), Euclidean);
        (ds, idx)
    }

    #[test]
    fn all_exact_adapters_agree_through_the_generic_driver() {
        let (ds, idx) = setup(220, 3, 900);
        let k = 4;
        let queries: Vec<PointId> = vec![0, 17, 119, 219];

        let naive = NaiveRknn::new(k);
        let reference = run_algorithm_batch(&naive, &idx, &queries, 2);

        let mut tpl = TplAlgorithm::new(ds.clone(), Euclidean, k);
        RknnAlgorithm::<_, LinearScan<Euclidean>>::prepare(&mut tpl, &idx);
        let mut cop = MrknncopAlgorithm::new(ds.clone(), Euclidean, k, 8);
        cop.prepare(&idx);
        let mut rdnn = RdnnAlgorithm::new(ds.clone(), Euclidean, k);
        rdnn.prepare(&idx);

        let tpl_out = run_algorithm_batch(&tpl, &idx, &queries, 2);
        let cop_out = run_algorithm_batch(&cop, &idx, &queries, 2);
        let rdnn_out = run_algorithm_batch(&rdnn, &idx, &queries, 2);
        for (i, want) in reference.answers.iter().enumerate() {
            assert_eq!(
                tpl_out.answers[i].result, want.result,
                "TPL q={}",
                queries[i]
            );
            assert_eq!(
                cop_out.answers[i].result, want.result,
                "CoP q={}",
                queries[i]
            );
            assert_eq!(
                rdnn_out.answers[i].result, want.result,
                "RdNN q={}",
                queries[i]
            );
        }
    }

    #[test]
    fn prepared_adapters_report_their_precomputation() {
        let (ds, idx) = setup(120, 2, 901);
        let mut rdnn = RdnnAlgorithm::new(ds.clone(), Euclidean, 3);
        assert_eq!(
            RknnAlgorithm::<_, LinearScan<Euclidean>>::precompute_time(&rdnn),
            Duration::ZERO
        );
        rdnn.prepare(&idx);
        assert!(RknnAlgorithm::<_, LinearScan<Euclidean>>::precompute_time(&rdnn) > Duration::ZERO);
        assert!(
            RknnAlgorithm::<_, LinearScan<Euclidean>>::precompute_stats(&rdnn).dist_computations
                > 0
        );

        let mut cop = MrknncopAlgorithm::new(ds, Euclidean, 3, 6);
        cop.prepare(&idx);
        assert!(
            RknnAlgorithm::<_, LinearScan<Euclidean>>::precompute_stats(&cop).dist_computations > 0
        );
    }

    #[test]
    fn sft_adapter_matches_the_direct_path() {
        let (_, idx) = setup(260, 2, 902);
        let sft = Sft::new(5, 4.0);
        let out = run_algorithm_batch(&sft, &idx, &[3, 100, 250], 1);
        let mut st = SearchStats::new();
        for (i, &q) in [3usize, 100, 250].iter().enumerate() {
            assert_eq!(out.answers[i].result, sft.query(&idx, q, &mut st), "q={q}");
        }
        assert_eq!(
            RknnAlgorithm::<_, LinearScan<Euclidean>>::name(&sft),
            "SFT(α=4)"
        );
    }

    #[test]
    #[should_panic(expected = "query before prepare")]
    fn unprepared_adapter_panics_clearly() {
        let (ds, idx) = setup(30, 2, 903);
        let tpl = TplAlgorithm::new(ds, Euclidean, 2);
        let _ = run_algorithm_batch(&tpl, &idx, &[0], 1);
    }
}
