//! The RdNN-Tree of Yang & Lin \[51\].
//!
//! An R-tree over the data points where every point carries its
//! (precomputed) kNN distance and every node the maximum kNN distance in
//! its subtree: "at each index node, the maximum of the kNN distances of
//! the points (hypersphere radii) is aggregated within the subtree rooted
//! at this node" (§2.1). A reverse-kNN query is then a containment
//! traversal: report `p` iff `d(q, p) ≤ d_k(p)`, prune nodes whose MBR is
//! farther from `q` than the subtree maximum.
//!
//! The structure answers exact RkNN queries *for the single `k` it was
//! built with* — "an independent R-Tree would be required for each possible
//! value of k" is precisely the limitation the paper holds against it —
//! and its precomputation (a kNN query per point) dominates setup cost.

use rknn_core::{Dataset, Metric, Neighbor, PointId, SearchStats};
use rknn_index::{KnnIndex, RTree};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An RdNN-Tree fixed at one reverse rank `k`.
#[derive(Debug)]
pub struct RdnnTree<M: Metric> {
    tree: RTree<M>,
    k: usize,
    precompute_time: Duration,
    precompute_stats: SearchStats,
}

impl<M: Metric + Clone> RdnnTree<M> {
    /// Builds the tree: one `k`-NN query per point (served by `forward`)
    /// followed by an aux-augmented R-tree bulk load.
    pub fn build<I>(ds: Arc<Dataset>, metric: M, k: usize, forward: &I) -> Self
    where
        I: KnnIndex<M> + ?Sized,
    {
        assert!(k >= 1, "k must be positive");
        let start = Instant::now();
        let mut stats = SearchStats::new();
        let mut dk = Vec::with_capacity(ds.len());
        for i in 0..ds.len() {
            let nn = forward.knn(ds.point(i), k, Some(i), &mut stats);
            // Fewer than k other points ⇒ every query is a reverse neighbor.
            let d = if nn.len() < k {
                f64::INFINITY
            } else {
                nn[k - 1].dist
            };
            dk.push(d);
        }
        // The R-tree stores finite aux values; clamp the degenerate case.
        let max_finite = dk
            .iter()
            .copied()
            .filter(|d| d.is_finite())
            .fold(0.0f64, f64::max);
        for d in dk.iter_mut() {
            if !d.is_finite() {
                *d = max_finite.max(1.0) * 1e6;
            }
        }
        let tree = RTree::build_with_aux(ds, metric, dk);
        RdnnTree {
            tree,
            k,
            precompute_time: start.elapsed(),
            precompute_stats: stats,
        }
    }

    /// The reverse rank the tree was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Wall-clock precomputation time (kNN pass + bulk load).
    pub fn precompute_time(&self) -> Duration {
        self.precompute_time
    }

    /// Work spent in precomputation.
    pub fn precompute_stats(&self) -> SearchStats {
        self.precompute_stats
    }

    /// Exact reverse-kNN of dataset point `q`.
    pub fn query(&self, q: PointId, stats: &mut SearchStats) -> Vec<Neighbor> {
        let qp = self.tree.point(q).to_vec();
        self.tree
            .aux_containment(&qp, stats)
            .into_iter()
            .filter(|n| n.id != q)
            .collect()
    }

    /// Exact reverse-kNN of an arbitrary location.
    pub fn query_at(&self, q: &[f64], stats: &mut SearchStats) -> Vec<Neighbor> {
        self.tree.aux_containment(q, stats)
    }

    /// The underlying R-tree (also a forward-kNN index, as in the paper).
    pub fn forward_index(&self) -> &RTree<M> {
        &self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rknn_core::{BruteForce, Euclidean};
    use rknn_index::LinearScan;

    fn uniform(n: usize, dim: usize, seed: u64) -> Arc<Dataset> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.random::<f64>() * 10.0).collect())
            .collect();
        Dataset::from_rows(&rows).unwrap().into_shared()
    }

    #[test]
    fn exact_against_brute_force() {
        let ds = uniform(300, 2, 130);
        let forward = LinearScan::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds.clone(), Euclidean);
        let mut st = SearchStats::new();
        for k in [1usize, 5, 15] {
            let rdnn = RdnnTree::build(ds.clone(), Euclidean, k, &forward);
            for q in [0usize, 150, 299] {
                let got: Vec<_> = rdnn.query(q, &mut st).iter().map(|n| n.id).collect();
                let want: Vec<_> = bf.rknn(q, k, &mut st).iter().map(|n| n.id).collect();
                assert_eq!(got, want, "k={k} q={q}");
            }
        }
    }

    #[test]
    fn query_prunes_against_scan() {
        // On clustered low-dimensional data the containment traversal must
        // touch far fewer points than n per query.
        let mut rng = SmallRng::seed_from_u64(131);
        let rows: Vec<Vec<f64>> = (0..2000)
            .map(|i| {
                let c = (i % 10) as f64 * 100.0;
                vec![c + rng.random::<f64>(), c + rng.random::<f64>()]
            })
            .collect();
        let ds = Dataset::from_rows(&rows).unwrap().into_shared();
        let forward = LinearScan::build(ds.clone(), Euclidean);
        let rdnn = RdnnTree::build(ds, Euclidean, 5, &forward);
        let mut st = SearchStats::new();
        let _ = rdnn.query(17, &mut st);
        assert!(
            st.dist_computations < 1000,
            "containment query should prune most clusters, did {} dist comps",
            st.dist_computations
        );
    }

    #[test]
    fn small_dataset_edge_case() {
        // k larger than the dataset: everything is everyone's reverse
        // neighbor.
        let ds = uniform(4, 2, 132);
        let forward = LinearScan::build(ds.clone(), Euclidean);
        let rdnn = RdnnTree::build(ds, Euclidean, 10, &forward);
        let mut st = SearchStats::new();
        assert_eq!(rdnn.query(0, &mut st).len(), 3);
    }

    #[test]
    fn doubles_as_forward_knn_index() {
        // The paper notes the RdNN-Tree answers both reverse and forward
        // NN queries from one structure; the underlying R-tree is exposed
        // for exactly that.
        let ds = uniform(150, 2, 134);
        let fwd = LinearScan::build(ds.clone(), Euclidean);
        let rdnn = RdnnTree::build(ds.clone(), Euclidean, 4, &fwd);
        let mut st = SearchStats::new();
        let via_rdnn = rdnn.forward_index().knn(ds.point(9), 6, Some(9), &mut st);
        let via_scan = fwd.knn(ds.point(9), 6, Some(9), &mut st);
        for (a, b) in via_rdnn.iter().zip(&via_scan) {
            assert!((a.dist - b.dist).abs() < 1e-9);
        }
    }

    #[test]
    fn external_query_location() {
        let ds = uniform(200, 2, 133);
        let forward = LinearScan::build(ds.clone(), Euclidean);
        let rdnn = RdnnTree::build(ds.clone(), Euclidean, 3, &forward);
        let bf = BruteForce::new(ds, Euclidean);
        let mut st = SearchStats::new();
        let q = vec![5.0, 5.0];
        let got: Vec<_> = rdnn.query_at(&q, &mut st).iter().map(|n| n.id).collect();
        let want: Vec<_> = bf
            .rknn_external(&q, 3, &mut st)
            .iter()
            .map(|n| n.id)
            .collect();
        assert_eq!(got, want);
    }
}
