//! Core primitives shared by every crate in the `rknn` workspace.
//!
//! This crate provides the executable counterpart of the notation in §3.1 of
//! *Dimensional Testing for Reverse k-Nearest Neighbor Search* (Casanova et
//! al., PVLDB 10(7), 2017):
//!
//! * [`Dataset`] — a finite point set `S ⊆ R^m` with validated, flat storage
//!   (rows zero-padded to a lane multiple in one 32-byte-aligned allocation
//!   for the SIMD tile kernels; all accessors stay logical);
//! * [`Metric`] — distance measures `d(x, y)` (Euclidean by default, plus the
//!   Minkowski family: the paper's analysis holds for any metric), including
//!   the one-query-to-many-rows [`Metric::dist_tile`] entry point;
//! * [`kernel`] — the runtime-dispatched SIMD reduction kernels behind every
//!   metric: scalar-unrolled / SSE2 / AVX2 backends sharing one canonical
//!   blocked accumulation order, bit-identical by construction
//!   (`RKNN_KERNEL` pins a backend), plus the opt-in fast tier
//!   ([`KernelTier`], `RKNN_KERNEL_TIER`) trading bit-identity for
//!   FMA/f32/sqrt-free throughput under ULP bounds;
//! * [`Neighbor`] and bounded heaps for k-nearest-neighbor collection;
//! * rank and ball-cardinality primitives (`ρ_S(q, x)`, `B≤_S(q, r)`,
//!   `d_k(q)`) in [`rank`];
//! * brute-force reference implementations of kNN and reverse-kNN used as
//!   ground truth throughout the workspace ([`brute`]);
//! * [`SearchStats`] — per-query work counters (distance computations, node
//!   visits) used by all indexes and algorithms for the paper's
//!   cost accounting;
//! * [`QueryScratch`] and friends ([`scratch`]) — reusable per-worker
//!   buffers (cursor storage, filter-set slots, a contiguous candidate
//!   coordinate tile, and the [`TreeScratch`] heaps of the tree-traversal
//!   core) that let batch drivers execute queries back to back without
//!   per-query allocation;
//! * [`bestfirst`] — the best-first priority queue of points and
//!   expandable nodes that incremental tree traversals are built on.
//!
//! # Conventions
//!
//! All rank-like quantities are **self-excluding**: `d_k(x)` is the distance
//! from `x` to its k-th nearest *other* point, and `x ∈ RkNN(q, k)` iff
//! `x ≠ q` and `d(x, q) ≤ d_k(x)`. Ties are assigned the maximum rank, as in
//! §3.1 of the paper. See `DESIGN.md` §2 for the full rationale (including
//! the witness-counter erratum in the paper's Algorithm 1 listing).

#![warn(missing_docs)]

pub mod bestfirst;
pub mod brute;
pub mod cancel;
pub mod dataset;
pub mod error;
pub mod float;
pub mod heap;
pub mod kernel;
pub mod metric;
pub mod neighbor;
pub mod rank;
pub mod scratch;
pub mod stats;

pub use brute::BruteForce;
pub use cancel::{CancelToken, Cancelled};
pub use dataset::{BuildStats, Dataset, DatasetBuilder, F32Rows, PaddedRows};
pub use error::CoreError;
pub use float::OrderedF64;
pub use heap::KnnHeap;
pub use kernel::KernelTier;
pub use metric::{Chebyshev, Euclidean, FullPrecision, Manhattan, Metric, Minkowski};
pub use neighbor::{Neighbor, PointId};
pub use scratch::{CandidateTile, CursorScratch, FilterCandidate, QueryScratch, TreeScratch};
pub use stats::SearchStats;
