//! Neighbor records and ordering adapters.

use crate::float::OrderedF64;
use std::cmp::Ordering;

/// Identifier of a point within a dataset (its row index).
pub type PointId = usize;

/// A `(point, distance)` pair produced by a neighbor search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// The point's id.
    pub id: PointId,
    /// Its distance from the query.
    pub dist: f64,
}

impl Neighbor {
    /// Creates a neighbor record.
    #[inline]
    pub fn new(id: PointId, dist: f64) -> Self {
        Neighbor { id, dist }
    }

    /// Compares by distance, breaking ties by id for determinism.
    #[inline]
    pub fn cmp_by_dist(&self, other: &Self) -> Ordering {
        OrderedF64(self.dist)
            .cmp(&OrderedF64(other.dist))
            .then_with(|| self.id.cmp(&other.id))
    }
}

/// Sorts neighbors ascending by distance (ties broken by id).
pub fn sort_neighbors(neighbors: &mut [Neighbor]) {
    neighbors.sort_by(Neighbor::cmp_by_dist);
}

/// Extracts just the ids of a neighbor list.
pub fn ids(neighbors: &[Neighbor]) -> Vec<PointId> {
    neighbors.iter().map(|n| n.id).collect()
}

/// Wrapper ordering a [`Neighbor`] as a *max*-heap element by distance
/// (largest distance = greatest). Used for bounded kNN heaps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaxByDist(pub Neighbor);

impl Eq for MaxByDist {}

impl PartialOrd for MaxByDist {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MaxByDist {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.cmp_by_dist(&other.0)
    }
}

/// Wrapper ordering a [`Neighbor`] as a *min*-heap element by distance when
/// used with [`std::collections::BinaryHeap`] (which is a max-heap).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinByDist(pub Neighbor);

impl Eq for MinByDist {}

impl PartialOrd for MinByDist {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MinByDist {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.cmp_by_dist(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn sorting_orders_by_distance_then_id() {
        let mut ns = vec![
            Neighbor::new(3, 2.0),
            Neighbor::new(1, 1.0),
            Neighbor::new(2, 2.0),
            Neighbor::new(0, 0.5),
        ];
        sort_neighbors(&mut ns);
        assert_eq!(ids(&ns), vec![0, 1, 2, 3]);
    }

    #[test]
    fn max_by_dist_heap_pops_farthest_first() {
        let mut h = BinaryHeap::new();
        h.push(MaxByDist(Neighbor::new(0, 1.0)));
        h.push(MaxByDist(Neighbor::new(1, 3.0)));
        h.push(MaxByDist(Neighbor::new(2, 2.0)));
        assert_eq!(h.pop().unwrap().0.id, 1);
        assert_eq!(h.pop().unwrap().0.id, 2);
        assert_eq!(h.pop().unwrap().0.id, 0);
    }

    #[test]
    fn min_by_dist_heap_pops_nearest_first() {
        let mut h = BinaryHeap::new();
        h.push(MinByDist(Neighbor::new(0, 1.0)));
        h.push(MinByDist(Neighbor::new(1, 3.0)));
        h.push(MinByDist(Neighbor::new(2, 2.0)));
        assert_eq!(h.pop().unwrap().0.id, 0);
        assert_eq!(h.pop().unwrap().0.id, 2);
        assert_eq!(h.pop().unwrap().0.id, 1);
    }

    #[test]
    fn tie_breaking_is_deterministic() {
        let a = MinByDist(Neighbor::new(5, 1.0));
        let b = MinByDist(Neighbor::new(6, 1.0));
        // Lower id pops first on ties (min-heap reverses, so higher id is "less").
        let mut h = BinaryHeap::new();
        h.push(b);
        h.push(a);
        assert_eq!(h.pop().unwrap().0.id, 5);
    }
}
