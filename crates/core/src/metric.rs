//! Distance measures.
//!
//! The paper's analysis (§5) holds for *any* metric — any distance for which
//! the triangle inequality holds. The experiments use the Euclidean distance
//! "so that our method could be tested against competitors that require it"
//! (§7.1); we default to [`Euclidean`] but also provide the rest of the
//! Minkowski family so metric-capable components (cover tree, VP-tree,
//! M-tree, RDT itself) can be exercised beyond L2.

use std::fmt::Debug;

/// A metric distance over coordinate vectors.
///
/// Implementations must satisfy the metric axioms on finite inputs:
/// non-negativity, identity of indiscernibles, symmetry, and the triangle
/// inequality. Property tests in this crate check these axioms for every
/// provided implementation.
pub trait Metric: Send + Sync + Debug {
    /// The distance `d(a, b)`.
    ///
    /// # Panics
    ///
    /// May panic if `a.len() != b.len()`.
    fn dist(&self, a: &[f64], b: &[f64]) -> f64;

    /// A human-readable name, used in experiment reports.
    fn name(&self) -> &'static str;

    /// Smallest distance from `q` to any point of the axis-aligned box
    /// `[lo, hi]` (the `MINDIST` of R-tree literature).
    ///
    /// Returns `None` when the metric does not support box lower bounds, in
    /// which case box-based indexes cannot be used with it.
    fn box_min_dist(&self, _q: &[f64], _lo: &[f64], _hi: &[f64]) -> Option<f64> {
        None
    }

    /// Largest distance from `q` to any point of the axis-aligned box
    /// `[lo, hi]` (the `MAXDIST` bound).
    fn box_max_dist(&self, _q: &[f64], _lo: &[f64], _hi: &[f64]) -> Option<f64> {
        None
    }
}

/// Accumulates per-coordinate gaps to the box `[lo, hi]`, then folds them
/// with the supplied norm. Shared by the Minkowski-family implementations.
#[inline]
fn box_gaps<F: FnMut(f64)>(q: &[f64], lo: &[f64], hi: &[f64], mut fold: F) {
    for i in 0..q.len() {
        let gap = if q[i] < lo[i] {
            lo[i] - q[i]
        } else if q[i] > hi[i] {
            q[i] - hi[i]
        } else {
            0.0
        };
        fold(gap);
    }
}

/// Per-coordinate farthest gap to the box `[lo, hi]`.
#[inline]
fn box_far_gaps<F: FnMut(f64)>(q: &[f64], lo: &[f64], hi: &[f64], mut fold: F) {
    for i in 0..q.len() {
        let gap = (q[i] - lo[i]).abs().max((hi[i] - q[i]).abs());
        fold(gap);
    }
}

/// The Euclidean (L2) distance — the paper's experimental metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Euclidean;

impl Euclidean {
    /// Squared Euclidean distance; cheaper when only comparisons are needed.
    #[inline]
    pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = 0.0;
        for i in 0..a.len() {
            let d = a[i] - b[i];
            acc += d * d;
        }
        acc
    }
}

impl Metric for Euclidean {
    #[inline]
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        Euclidean::dist_sq(a, b).sqrt()
    }

    fn name(&self) -> &'static str {
        "euclidean"
    }

    fn box_min_dist(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
        let mut acc = 0.0;
        box_gaps(q, lo, hi, |g| acc += g * g);
        Some(acc.sqrt())
    }

    fn box_max_dist(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
        let mut acc = 0.0;
        box_far_gaps(q, lo, hi, |g| acc += g * g);
        Some(acc.sqrt())
    }
}

/// The Manhattan (L1) distance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Manhattan;

impl Metric for Manhattan {
    #[inline]
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = 0.0;
        for i in 0..a.len() {
            acc += (a[i] - b[i]).abs();
        }
        acc
    }

    fn name(&self) -> &'static str {
        "manhattan"
    }

    fn box_min_dist(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
        let mut acc = 0.0;
        box_gaps(q, lo, hi, |g| acc += g);
        Some(acc)
    }

    fn box_max_dist(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
        let mut acc = 0.0;
        box_far_gaps(q, lo, hi, |g| acc += g);
        Some(acc)
    }
}

/// The Chebyshev (L∞) distance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Chebyshev;

impl Metric for Chebyshev {
    #[inline]
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc: f64 = 0.0;
        for i in 0..a.len() {
            acc = acc.max((a[i] - b[i]).abs());
        }
        acc
    }

    fn name(&self) -> &'static str {
        "chebyshev"
    }

    fn box_min_dist(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
        let mut acc: f64 = 0.0;
        box_gaps(q, lo, hi, |g| acc = acc.max(g));
        Some(acc)
    }

    fn box_max_dist(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
        let mut acc: f64 = 0.0;
        box_far_gaps(q, lo, hi, |g| acc = acc.max(g));
        Some(acc)
    }
}

/// The Minkowski (Lp) distance for `p ≥ 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Minkowski {
    p: f64,
}

impl Minkowski {
    /// Creates an Lp metric. `p` must be `≥ 1` for the triangle inequality
    /// to hold.
    ///
    /// # Panics
    ///
    /// Panics if `p < 1` or `p` is not finite.
    pub fn new(p: f64) -> Self {
        assert!(p.is_finite() && p >= 1.0, "Minkowski requires finite p >= 1");
        Minkowski { p }
    }

    /// The order `p`.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Metric for Minkowski {
    #[inline]
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = 0.0;
        for i in 0..a.len() {
            acc += (a[i] - b[i]).abs().powf(self.p);
        }
        acc.powf(1.0 / self.p)
    }

    fn name(&self) -> &'static str {
        "minkowski"
    }

    fn box_min_dist(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
        let mut acc = 0.0;
        box_gaps(q, lo, hi, |g| acc += g.powf(self.p));
        Some(acc.powf(1.0 / self.p))
    }

    fn box_max_dist(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
        let mut acc = 0.0;
        box_far_gaps(q, lo, hi, |g| acc += g.powf(self.p));
        Some(acc.powf(1.0 / self.p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn metrics() -> Vec<Box<dyn Metric>> {
        vec![
            Box::new(Euclidean),
            Box::new(Manhattan),
            Box::new(Chebyshev),
            Box::new(Minkowski::new(3.0)),
            Box::new(Minkowski::new(1.5)),
        ]
    }

    #[test]
    fn euclidean_matches_hand_computation() {
        let d = Euclidean.dist(&[0.0, 0.0], &[3.0, 4.0]);
        assert!((d - 5.0).abs() < 1e-12);
        assert!((Euclidean::dist_sq(&[0.0, 0.0], &[3.0, 4.0]) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan_and_chebyshev() {
        assert_eq!(Manhattan.dist(&[1.0, 2.0], &[4.0, 0.0]), 5.0);
        assert_eq!(Chebyshev.dist(&[1.0, 2.0], &[4.0, 0.0]), 3.0);
    }

    #[test]
    fn minkowski_interpolates() {
        // p = 1 equals Manhattan, p = 2 equals Euclidean.
        let a = [0.3, -1.2, 4.0];
        let b = [1.0, 0.0, -2.0];
        assert!((Minkowski::new(1.0).dist(&a, &b) - Manhattan.dist(&a, &b)).abs() < 1e-12);
        assert!((Minkowski::new(2.0).dist(&a, &b) - Euclidean.dist(&a, &b)).abs() < 1e-12);
        assert!((Minkowski::new(2.0).p() - 2.0).abs() < f64::EPSILON);
    }

    #[test]
    #[should_panic(expected = "p >= 1")]
    fn minkowski_rejects_sub_one_p() {
        let _ = Minkowski::new(0.5);
    }

    #[test]
    fn box_bounds_inside_point() {
        // A query inside the box has min dist 0.
        let lo = [0.0, 0.0];
        let hi = [2.0, 2.0];
        let q = [1.0, 1.5];
        for m in metrics() {
            assert_eq!(m.box_min_dist(&q, &lo, &hi).unwrap(), 0.0, "{}", m.name());
            let far = m.box_max_dist(&q, &lo, &hi).unwrap();
            // Farthest corner from (1, 1.5) is (0, 0) or (2, 0).
            assert!(far >= m.dist(&q, &[0.0, 0.0]) - 1e-12, "{}", m.name());
        }
    }

    proptest! {
        #[test]
        fn metric_axioms(
            a in proptest::collection::vec(-100.0f64..100.0, 4),
            b in proptest::collection::vec(-100.0f64..100.0, 4),
            c in proptest::collection::vec(-100.0f64..100.0, 4),
        ) {
            for m in metrics() {
                let dab = m.dist(&a, &b);
                let dba = m.dist(&b, &a);
                let dac = m.dist(&a, &c);
                let dcb = m.dist(&c, &b);
                prop_assert!(dab >= 0.0);
                prop_assert!((dab - dba).abs() < 1e-9, "symmetry failed for {}", m.name());
                prop_assert!(m.dist(&a, &a) < 1e-12);
                // Triangle inequality with a small slack for float rounding.
                prop_assert!(
                    dab <= dac + dcb + 1e-9 * (1.0 + dab.abs()),
                    "triangle inequality failed for {}: {} > {} + {}",
                    m.name(), dab, dac, dcb
                );
            }
        }

        #[test]
        fn box_bounds_bracket_all_contained_points(
            q in proptest::collection::vec(-10.0f64..10.0, 3),
            x in proptest::collection::vec(0.0f64..1.0, 3),
            lo in proptest::collection::vec(-5.0f64..0.0, 3),
            ext in proptest::collection::vec(0.0f64..5.0, 3),
        ) {
            let hi: Vec<f64> = lo.iter().zip(&ext).map(|(l, e)| l + e).collect();
            // x interpolated into the box.
            let p: Vec<f64> = lo
                .iter()
                .zip(&hi)
                .zip(&x)
                .map(|((l, h), t)| l + (h - l) * t)
                .collect();
            for m in metrics() {
                let d = m.dist(&q, &p);
                let min = m.box_min_dist(&q, &lo, &hi).unwrap();
                let max = m.box_max_dist(&q, &lo, &hi).unwrap();
                prop_assert!(min <= d + 1e-9, "{}: min {} > {}", m.name(), min, d);
                prop_assert!(max >= d - 1e-9, "{}: max {} < {}", m.name(), max, d);
            }
        }
    }
}
