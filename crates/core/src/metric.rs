//! Distance measures.
//!
//! The paper's analysis (§5) holds for *any* metric — any distance for which
//! the triangle inequality holds. The experiments use the Euclidean distance
//! "so that our method could be tested against competitors that require it"
//! (§7.1); we default to [`Euclidean`] but also provide the rest of the
//! Minkowski family so metric-capable components (cover tree, VP-tree,
//! M-tree, RDT itself) can be exercised beyond L2.

use std::fmt::Debug;

/// A metric distance over coordinate vectors.
///
/// Implementations must satisfy the metric axioms on finite inputs:
/// non-negativity, identity of indiscernibles, symmetry, and the triangle
/// inequality. Property tests in this crate check these axioms for every
/// provided implementation.
pub trait Metric: Send + Sync + Debug {
    /// The distance `d(a, b)`.
    ///
    /// # Panics
    ///
    /// May panic if `a.len() != b.len()`.
    fn dist(&self, a: &[f64], b: &[f64]) -> f64;

    /// Threshold-pruned distance: `Some(d(a, b))` when `d(a, b) < bound`,
    /// `None` otherwise.
    ///
    /// The contract is *decision equivalence* with [`Metric::dist`]: the
    /// returned option must be `Some(d)` exactly when `self.dist(a, b) <
    /// bound`, and the carried `d` must be the identical floating-point
    /// value `dist` would produce. Implementations are free to abandon the
    /// accumulation early once a monotone partial sum proves the bound
    /// unreachable (the standard early-abandonment trick of
    /// high-dimensional search); the Minkowski family here does exactly
    /// that, checking a partial squared / p-th-power accumulator every few
    /// coordinates. The default implementation evaluates the full distance.
    ///
    /// Callers that count distance computations should count a `dist_lt`
    /// call as **one** evaluation whether or not it abandoned early: early
    /// abandonment changes the per-evaluation coordinate work, not the
    /// number of evaluations.
    #[inline]
    fn dist_lt(&self, a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
        let d = self.dist(a, b);
        (d < bound).then_some(d)
    }

    /// Threshold-pruned distance for *selection* against a possibly
    /// unbounded threshold: like [`Metric::dist_lt`], except an infinite
    /// `bound` admits every distance — including distances that overflow to
    /// `+∞` on finite coordinates — instead of applying a strict comparison
    /// no infinite value can win.
    ///
    /// Use this wherever "no threshold yet" is encoded as `bound = +∞` (kNN
    /// heaps that are still filling, unbounded cursor streams): a
    /// completeness contract must not silently drop overflowing points.
    /// Keep [`Metric::dist_lt`] for genuine strict comparisons against
    /// finite radii.
    #[inline]
    fn dist_under(&self, a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
        if bound == f64::INFINITY {
            Some(self.dist(a, b))
        } else {
            self.dist_lt(a, b, bound)
        }
    }

    /// Threshold-pruned distance for *closed-ball* decisions: `Some(d(a,
    /// b))` when `d(a, b) <= bound`, `None` otherwise.
    ///
    /// Containment tests (`d(q, p) ≤ d_k(p)` in the RdNN-Tree, `d ≤ ub(k)`
    /// in MRkNNCoP) compare against inclusive radii, where the strict
    /// [`Metric::dist_lt`] would wrongly reject exact ties. For finite
    /// bounds, `d <= bound` is exactly `d < bound.next_up()`, so the
    /// default implementation inherits every metric's early-abandoning
    /// `dist_lt` unchanged; an infinite bound admits everything (including
    /// distances overflowing to `+∞`). Decision equivalence with
    /// [`Metric::dist`] and the one-call-one-evaluation counting convention
    /// carry over verbatim.
    #[inline]
    fn dist_le(&self, a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
        if bound == f64::INFINITY {
            Some(self.dist(a, b))
        } else {
            self.dist_lt(a, b, bound.next_up())
        }
    }

    /// A human-readable name, used in experiment reports.
    fn name(&self) -> &'static str;

    /// Smallest distance from `q` to any point of the axis-aligned box
    /// `[lo, hi]` (the `MINDIST` of R-tree literature).
    ///
    /// Returns `None` when the metric does not support box lower bounds, in
    /// which case box-based indexes cannot be used with it.
    fn box_min_dist(&self, _q: &[f64], _lo: &[f64], _hi: &[f64]) -> Option<f64> {
        None
    }

    /// Largest distance from `q` to any point of the axis-aligned box
    /// `[lo, hi]` (the `MAXDIST` bound).
    fn box_max_dist(&self, _q: &[f64], _lo: &[f64], _hi: &[f64]) -> Option<f64> {
        None
    }
}

/// Accumulates per-coordinate gaps to the box `[lo, hi]`, then folds them
/// with the supplied norm. Shared by the Minkowski-family implementations.
/// Zipped slice iteration lets the per-coordinate loop elide bounds checks.
#[inline]
fn box_gaps<F: FnMut(f64)>(q: &[f64], lo: &[f64], hi: &[f64], mut fold: F) {
    for ((&qi, &l), &h) in q.iter().zip(lo).zip(hi) {
        let gap = if qi < l {
            l - qi
        } else if qi > h {
            qi - h
        } else {
            0.0
        };
        fold(gap);
    }
}

/// Per-coordinate farthest gap to the box `[lo, hi]`.
#[inline]
fn box_far_gaps<F: FnMut(f64)>(q: &[f64], lo: &[f64], hi: &[f64], mut fold: F) {
    for ((&qi, &l), &h) in q.iter().zip(lo).zip(hi) {
        fold((qi - l).abs().max((h - qi).abs()));
    }
}

/// Coordinates consumed between checks of the early-abandonment partial
/// accumulator. Checking every coordinate would defeat vectorization of the
/// accumulation loop; a small block keeps both the check overhead and the
/// overshoot past the bound negligible.
const ABANDON_BLOCK: usize = 8;

/// Early-abandoning nonnegative accumulation: folds `term(a_i, b_i)` into a
/// running sum in strict left-to-right order (so a completed accumulation is
/// bit-identical to the plain loop) and returns `None` as soon as a partial
/// sum reaches `threshold`. Since every term is nonnegative and IEEE
/// addition is monotone, a partial sum at or above the threshold proves the
/// completed sum would be too.
#[inline]
fn abandoning_sum<T: Fn(f64, f64) -> f64>(
    a: &[f64],
    b: &[f64],
    threshold: f64,
    term: T,
) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    let mut a_rest = a;
    let mut b_rest = b;
    while a_rest.len() > ABANDON_BLOCK {
        let (a_blk, a_tail) = a_rest.split_at(ABANDON_BLOCK);
        let (b_blk, b_tail) = b_rest.split_at(ABANDON_BLOCK);
        for (&x, &y) in a_blk.iter().zip(b_blk) {
            acc += term(x, y);
        }
        if acc >= threshold {
            return None;
        }
        a_rest = a_tail;
        b_rest = b_tail;
    }
    for (&x, &y) in a_rest.iter().zip(b_rest) {
        acc += term(x, y);
    }
    Some(acc)
}

/// Adapter that disables threshold pruning on an inner metric: every
/// [`Metric::dist_lt`] call evaluates the full distance via the default
/// implementation.
///
/// This is the reference "sequential scalar path": benchmarks use it as
/// the un-optimized baseline, and equivalence tests run the same workload
/// through `FullPrecision<M>` and `M` to prove early abandonment changes
/// no decision, result, or counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FullPrecision<M>(pub M);

impl<M: Metric> Metric for FullPrecision<M> {
    #[inline]
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        self.0.dist(a, b)
    }

    // dist_lt deliberately NOT forwarded: the trait default computes the
    // full distance and compares, which is the point of this adapter.

    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn box_min_dist(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
        self.0.box_min_dist(q, lo, hi)
    }

    fn box_max_dist(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
        self.0.box_max_dist(q, lo, hi)
    }
}

/// The Euclidean (L2) distance — the paper's experimental metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Euclidean;

impl Euclidean {
    /// Squared Euclidean distance; cheaper when only comparisons are needed.
    #[inline]
    pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = 0.0;
        for (&x, &y) in a.iter().zip(b) {
            let d = x - y;
            acc += d * d;
        }
        acc
    }
}

impl Metric for Euclidean {
    #[inline]
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        Euclidean::dist_sq(a, b).sqrt()
    }

    #[inline]
    fn dist_lt(&self, a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
        // Abandon against the squared bound, inflated by a few ulps so that
        // a partial sum crossing the threshold *guarantees* sqrt(total) >=
        // bound (squaring the bound rounds, sqrt rounds back; without the
        // margin a one-ulp disagreement with the exact `dist < bound` test
        // would be possible at the boundary). A completed accumulation is
        // decided by the exact comparison, so decisions always match
        // `dist`.
        // The `.max` keeps a tiny positive bound (whose square underflows
        // to zero) from abandoning the exact-zero distance it still admits.
        let threshold = ((bound * bound) * (1.0 + 4.0 * f64::EPSILON)).max(f64::MIN_POSITIVE);
        let acc = abandoning_sum(a, b, threshold, |x, y| {
            let d = x - y;
            d * d
        })?;
        let d = acc.sqrt();
        (d < bound).then_some(d)
    }

    fn name(&self) -> &'static str {
        "euclidean"
    }

    fn box_min_dist(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
        let mut acc = 0.0;
        box_gaps(q, lo, hi, |g| acc += g * g);
        Some(acc.sqrt())
    }

    fn box_max_dist(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
        let mut acc = 0.0;
        box_far_gaps(q, lo, hi, |g| acc += g * g);
        Some(acc.sqrt())
    }
}

/// The Manhattan (L1) distance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Manhattan;

impl Metric for Manhattan {
    #[inline]
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = 0.0;
        for (&x, &y) in a.iter().zip(b) {
            acc += (x - y).abs();
        }
        acc
    }

    #[inline]
    fn dist_lt(&self, a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
        // L1 needs no transform of the bound, so no margin: the partial sum
        // is the distance prefix itself.
        let d = abandoning_sum(a, b, bound, |x, y| (x - y).abs())?;
        (d < bound).then_some(d)
    }

    fn name(&self) -> &'static str {
        "manhattan"
    }

    fn box_min_dist(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
        let mut acc = 0.0;
        box_gaps(q, lo, hi, |g| acc += g);
        Some(acc)
    }

    fn box_max_dist(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
        let mut acc = 0.0;
        box_far_gaps(q, lo, hi, |g| acc += g);
        Some(acc)
    }
}

/// The Chebyshev (L∞) distance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Chebyshev;

impl Metric for Chebyshev {
    #[inline]
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc: f64 = 0.0;
        for (&x, &y) in a.iter().zip(b) {
            acc = acc.max((x - y).abs());
        }
        acc
    }

    #[inline]
    fn dist_lt(&self, a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
        // The running maximum only grows, so any coordinate gap reaching the
        // bound settles the comparison immediately and exactly.
        debug_assert_eq!(a.len(), b.len());
        let mut acc: f64 = 0.0;
        for (&x, &y) in a.iter().zip(b) {
            acc = acc.max((x - y).abs());
            if acc >= bound {
                return None;
            }
        }
        Some(acc)
    }

    fn name(&self) -> &'static str {
        "chebyshev"
    }

    fn box_min_dist(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
        let mut acc: f64 = 0.0;
        box_gaps(q, lo, hi, |g| acc = acc.max(g));
        Some(acc)
    }

    fn box_max_dist(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
        let mut acc: f64 = 0.0;
        box_far_gaps(q, lo, hi, |g| acc = acc.max(g));
        Some(acc)
    }
}

/// The Minkowski (Lp) distance for `p ≥ 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Minkowski {
    p: f64,
}

impl Minkowski {
    /// Creates an Lp metric. `p` must be `≥ 1` for the triangle inequality
    /// to hold.
    ///
    /// # Panics
    ///
    /// Panics if `p < 1` or `p` is not finite.
    pub fn new(p: f64) -> Self {
        assert!(
            p.is_finite() && p >= 1.0,
            "Minkowski requires finite p >= 1"
        );
        Minkowski { p }
    }

    /// The order `p`.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Metric for Minkowski {
    #[inline]
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = 0.0;
        for (&x, &y) in a.iter().zip(b) {
            acc += (x - y).abs().powf(self.p);
        }
        acc.powf(1.0 / self.p)
    }

    #[inline]
    fn dist_lt(&self, a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
        // `powf` is only faithfully rounded, so the transformed threshold
        // gets a relative margin far wider than powf's error but far
        // narrower than any distance gap that matters; a completed
        // accumulation is again decided by the exact comparison.
        let threshold = (bound.powf(self.p) * (1.0 + 1e-12)).max(f64::MIN_POSITIVE);
        let p = self.p;
        let acc = abandoning_sum(a, b, threshold, |x, y| (x - y).abs().powf(p))?;
        let d = acc.powf(1.0 / self.p);
        (d < bound).then_some(d)
    }

    fn name(&self) -> &'static str {
        "minkowski"
    }

    fn box_min_dist(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
        let mut acc = 0.0;
        box_gaps(q, lo, hi, |g| acc += g.powf(self.p));
        Some(acc.powf(1.0 / self.p))
    }

    fn box_max_dist(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
        let mut acc = 0.0;
        box_far_gaps(q, lo, hi, |g| acc += g.powf(self.p));
        Some(acc.powf(1.0 / self.p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn metrics() -> Vec<Box<dyn Metric>> {
        vec![
            Box::new(Euclidean),
            Box::new(Manhattan),
            Box::new(Chebyshev),
            Box::new(Minkowski::new(3.0)),
            Box::new(Minkowski::new(1.5)),
        ]
    }

    #[test]
    fn euclidean_matches_hand_computation() {
        let d = Euclidean.dist(&[0.0, 0.0], &[3.0, 4.0]);
        assert!((d - 5.0).abs() < 1e-12);
        assert!((Euclidean::dist_sq(&[0.0, 0.0], &[3.0, 4.0]) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan_and_chebyshev() {
        assert_eq!(Manhattan.dist(&[1.0, 2.0], &[4.0, 0.0]), 5.0);
        assert_eq!(Chebyshev.dist(&[1.0, 2.0], &[4.0, 0.0]), 3.0);
    }

    #[test]
    fn minkowski_interpolates() {
        // p = 1 equals Manhattan, p = 2 equals Euclidean.
        let a = [0.3, -1.2, 4.0];
        let b = [1.0, 0.0, -2.0];
        assert!((Minkowski::new(1.0).dist(&a, &b) - Manhattan.dist(&a, &b)).abs() < 1e-12);
        assert!((Minkowski::new(2.0).dist(&a, &b) - Euclidean.dist(&a, &b)).abs() < 1e-12);
        assert!((Minkowski::new(2.0).p() - 2.0).abs() < f64::EPSILON);
    }

    #[test]
    #[should_panic(expected = "p >= 1")]
    fn minkowski_rejects_sub_one_p() {
        let _ = Minkowski::new(0.5);
    }

    #[test]
    fn dist_lt_agrees_on_exact_ties() {
        // Duplicate coordinate patterns make d(a, b) == bound exactly; the
        // strict-inequality contract must reject them, as `dist` would.
        let a = vec![1.25; 40];
        let b = vec![3.5; 40];
        for m in metrics() {
            let d = m.dist(&a, &b);
            assert_eq!(
                m.dist_lt(&a, &b, d),
                None,
                "{}: tie must be rejected",
                m.name()
            );
            let above = d * (1.0 + 1e-9);
            assert_eq!(m.dist_lt(&a, &b, above), Some(d), "{}", m.name());
        }
    }

    #[test]
    fn dist_le_admits_exact_ties_and_nothing_past_them() {
        let a = vec![1.25; 40];
        let b = vec![3.5; 40];
        for m in metrics() {
            let d = m.dist(&a, &b);
            assert_eq!(
                m.dist_le(&a, &b, d),
                Some(d),
                "{}: tie must be admitted",
                m.name()
            );
            assert_eq!(m.dist_le(&a, &b, d.next_down()), None, "{}", m.name());
            assert_eq!(m.dist_le(&a, &b, f64::INFINITY), Some(d), "{}", m.name());
            // Zero bound admits exactly the zero distance.
            assert_eq!(m.dist_le(&a, &a, 0.0), Some(0.0), "{}", m.name());
            assert_eq!(m.dist_le(&a, &b, 0.0), None, "{}", m.name());
        }
        // Overflowing distances are admitted at the infinite bound.
        let x = vec![1e200; 4];
        let y = vec![-1e200; 4];
        let d = Minkowski::new(3.0).dist(&x, &y);
        if d.is_infinite() {
            assert_eq!(Minkowski::new(3.0).dist_le(&x, &y, f64::INFINITY), Some(d));
            assert_eq!(Minkowski::new(3.0).dist_le(&x, &y, f64::MAX), None);
        }
    }

    #[test]
    fn dist_lt_handles_degenerate_bounds() {
        let a = vec![0.0; 20];
        let b = vec![1.0; 20];
        for m in metrics() {
            assert_eq!(m.dist_lt(&a, &b, 0.0), None, "{}", m.name());
            assert_eq!(
                m.dist_lt(&a, &b, f64::INFINITY),
                Some(m.dist(&a, &b)),
                "{}",
                m.name()
            );
            // Identical points are strictly below any positive bound.
            assert_eq!(m.dist_lt(&a, &a, 1e-300), Some(0.0), "{}", m.name());
        }
    }

    #[test]
    fn dist_under_admits_overflowing_distances_at_infinite_bound() {
        // Finite coordinates whose distance overflows to +∞: an infinite
        // bound (= "no threshold yet") must admit them, while any finite
        // bound keeps the strict dist_lt decision.
        let a = vec![1e200; 4];
        let b = vec![-1e200; 4];
        for m in metrics() {
            let d = m.dist(&a, &b);
            if d.is_infinite() {
                assert_eq!(m.dist_lt(&a, &b, f64::INFINITY), None, "{}", m.name());
                assert_eq!(m.dist_under(&a, &b, f64::INFINITY), Some(d), "{}", m.name());
            }
            assert_eq!(m.dist_under(&a, &b, 1.0), None, "{}", m.name());
            // Finite distances: dist_under coincides with dist_lt.
            let c = vec![0.5; 4];
            let z = vec![0.0; 4];
            let dcz = m.dist(&c, &z);
            assert_eq!(
                m.dist_under(&c, &z, f64::INFINITY),
                Some(dcz),
                "{}",
                m.name()
            );
            assert_eq!(
                m.dist_under(&c, &z, dcz),
                m.dist_lt(&c, &z, dcz),
                "{}",
                m.name()
            );
        }
    }

    #[test]
    fn box_bounds_inside_point() {
        // A query inside the box has min dist 0.
        let lo = [0.0, 0.0];
        let hi = [2.0, 2.0];
        let q = [1.0, 1.5];
        for m in metrics() {
            assert_eq!(m.box_min_dist(&q, &lo, &hi).unwrap(), 0.0, "{}", m.name());
            let far = m.box_max_dist(&q, &lo, &hi).unwrap();
            // Farthest corner from (1, 1.5) is (0, 0) or (2, 0).
            assert!(far >= m.dist(&q, &[0.0, 0.0]) - 1e-12, "{}", m.name());
        }
    }

    proptest! {
        #[test]
        fn dist_lt_is_decision_equivalent_to_dist(
            a in proptest::collection::vec(-100.0f64..100.0, 24),
            b in proptest::collection::vec(-100.0f64..100.0, 24),
            frac in 0.0f64..2.0,
        ) {
            for m in metrics() {
                let d = m.dist(&a, &b);
                let bound = d * frac;
                let got = m.dist_lt(&a, &b, bound);
                if d < bound {
                    prop_assert_eq!(got, Some(d), "{} bound={}", m.name(), bound);
                } else {
                    prop_assert_eq!(got, None, "{} bound={}", m.name(), bound);
                }
            }
        }

        #[test]
        fn metric_axioms(
            a in proptest::collection::vec(-100.0f64..100.0, 4),
            b in proptest::collection::vec(-100.0f64..100.0, 4),
            c in proptest::collection::vec(-100.0f64..100.0, 4),
        ) {
            for m in metrics() {
                let dab = m.dist(&a, &b);
                let dba = m.dist(&b, &a);
                let dac = m.dist(&a, &c);
                let dcb = m.dist(&c, &b);
                prop_assert!(dab >= 0.0);
                prop_assert!((dab - dba).abs() < 1e-9, "symmetry failed for {}", m.name());
                prop_assert!(m.dist(&a, &a) < 1e-12);
                // Triangle inequality with a small slack for float rounding.
                prop_assert!(
                    dab <= dac + dcb + 1e-9 * (1.0 + dab.abs()),
                    "triangle inequality failed for {}: {} > {} + {}",
                    m.name(), dab, dac, dcb
                );
            }
        }

        #[test]
        fn box_bounds_bracket_all_contained_points(
            q in proptest::collection::vec(-10.0f64..10.0, 3),
            x in proptest::collection::vec(0.0f64..1.0, 3),
            lo in proptest::collection::vec(-5.0f64..0.0, 3),
            ext in proptest::collection::vec(0.0f64..5.0, 3),
        ) {
            let hi: Vec<f64> = lo.iter().zip(&ext).map(|(l, e)| l + e).collect();
            // x interpolated into the box.
            let p: Vec<f64> = lo
                .iter()
                .zip(&hi)
                .zip(&x)
                .map(|((l, h), t)| l + (h - l) * t)
                .collect();
            for m in metrics() {
                let d = m.dist(&q, &p);
                let min = m.box_min_dist(&q, &lo, &hi).unwrap();
                let max = m.box_max_dist(&q, &lo, &hi).unwrap();
                prop_assert!(min <= d + 1e-9, "{}: min {} > {}", m.name(), min, d);
                prop_assert!(max >= d - 1e-9, "{}: max {} < {}", m.name(), max, d);
            }
        }
    }
}
