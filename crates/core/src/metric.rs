//! Distance measures.
//!
//! The paper's analysis (§5) holds for *any* metric — any distance for which
//! the triangle inequality holds. The experiments use the Euclidean distance
//! "so that our method could be tested against competitors that require it"
//! (§7.1); we default to [`struct@Euclidean`] but also provide the rest of the
//! Minkowski family so metric-capable components (cover tree, VP-tree,
//! M-tree, RDT itself) can be exercised beyond L2.
//!
//! All four provided metrics evaluate through the runtime-dispatched SIMD
//! kernels of [`crate::kernel`]: every accumulation — full distances,
//! early-abandoned [`Metric::dist_lt`] evaluations, the one-query-to-many
//! [`Metric::dist_tile`] kernel, and the box bounds — uses the same
//! canonical 4-lane blocked order, so results are bit-identical across the
//! scalar, SSE2 and AVX2 backends *and* across the one-to-one and tile entry
//! points.
//!
//! That bitwise guarantee describes the default **exact kernel tier**. The
//! Euclidean metric additionally supports the opt-in fast tiers of
//! [`kernel::KernelTier`] — FMA reductions, squared-domain screening, and
//! (under `fast-f32`) f32 storage on contiguous scans — which relax
//! bit-identity to ULP-bounded agreement; see the "Kernel tiers" section of
//! [`crate::kernel`] for the full contract and [`Euclidean::fast`] /
//! [`Euclidean::fast_f32`] for per-instance selection.

use crate::kernel::{self, KernelOps, KernelTier, LANES};
use std::fmt::Debug;

/// A metric distance over coordinate vectors.
///
/// Implementations must satisfy the metric axioms on finite inputs:
/// non-negativity, identity of indiscernibles, symmetry, and the triangle
/// inequality. Property tests in this crate check these axioms for every
/// provided implementation.
pub trait Metric: Send + Sync + Debug {
    /// The distance `d(a, b)`.
    ///
    /// # Panics
    ///
    /// May panic if `a.len() != b.len()`.
    fn dist(&self, a: &[f64], b: &[f64]) -> f64;

    /// Threshold-pruned distance: `Some(d(a, b))` when `d(a, b) < bound`,
    /// `None` otherwise.
    ///
    /// The contract is *decision equivalence* with [`Metric::dist`]: the
    /// returned option must be `Some(d)` exactly when `self.dist(a, b) <
    /// bound`, and the carried `d` must be the identical floating-point
    /// value `dist` would produce. Implementations are free to abandon the
    /// accumulation early once a monotone partial sum proves the bound
    /// unreachable (the standard early-abandonment trick of
    /// high-dimensional search); the Minkowski family here does exactly
    /// that, checking the combined 4-lane partial accumulator every
    /// [`kernel::CHECK_EVERY`] coordinates. The default implementation
    /// evaluates the full distance.
    ///
    /// Callers that count distance computations should count a `dist_lt`
    /// call as **one** evaluation whether or not it abandoned early: early
    /// abandonment changes the per-evaluation coordinate work, not the
    /// number of evaluations.
    #[inline]
    fn dist_lt(&self, a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
        let d = self.dist(a, b);
        (d < bound).then_some(d)
    }

    /// Threshold-pruned distance for *selection* against a possibly
    /// unbounded threshold: like [`Metric::dist_lt`], except an infinite
    /// `bound` admits every distance — including distances that overflow to
    /// `+∞` on finite coordinates — instead of applying a strict comparison
    /// no infinite value can win.
    ///
    /// Use this wherever "no threshold yet" is encoded as `bound = +∞` (kNN
    /// heaps that are still filling, unbounded cursor streams): a
    /// completeness contract must not silently drop overflowing points.
    /// Keep [`Metric::dist_lt`] for genuine strict comparisons against
    /// finite radii.
    ///
    /// **Tier contract.** The returned distance is the active
    /// [`Metric::tier`]'s `dist` value: bit-stable across backends, entry
    /// points and processes on the exact tier (the default — what tests,
    /// ground truth and the churn-identity contract use); on the fast tiers
    /// it is deterministic within one process but only ULP-bounded against
    /// the exact tier, and implementations may decide the threshold in a
    /// transformed domain (e.g. squared Euclidean) as long as decisions
    /// stay equivalent to that same tier's `dist`. Decision equivalence is
    /// always *within* a tier, never across tiers.
    #[inline]
    fn dist_under(&self, a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
        if bound == f64::INFINITY {
            Some(self.dist(a, b))
        } else {
            self.dist_lt(a, b, bound)
        }
    }

    /// Threshold-pruned distance for *closed-ball* decisions: `Some(d(a,
    /// b))` when `d(a, b) <= bound`, `None` otherwise.
    ///
    /// Containment tests (`d(q, p) ≤ d_k(p)` in the RdNN-Tree, `d ≤ ub(k)`
    /// in MRkNNCoP) compare against inclusive radii, where the strict
    /// [`Metric::dist_lt`] would wrongly reject exact ties. For finite
    /// bounds, `d <= bound` is exactly `d < bound.next_up()`, so the
    /// default implementation inherits every metric's early-abandoning
    /// `dist_lt` unchanged; an infinite bound admits everything (including
    /// distances overflowing to `+∞`). Decision equivalence with
    /// [`Metric::dist`] and the one-call-one-evaluation counting convention
    /// carry over verbatim.
    #[inline]
    fn dist_le(&self, a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
        if bound == f64::INFINITY {
            Some(self.dist(a, b))
        } else {
            self.dist_lt(a, b, bound.next_up())
        }
    }

    /// One query against a contiguous block of row-padded points: for each
    /// row `i`, `out[i]` is the distance when
    /// [`Metric::dist_under`]`(q, row_i, bounds[i])` would admit it, and
    /// `NaN` when it would prune — with the admitted value bit-identical to
    /// the one-to-one evaluation.
    ///
    /// `rows` holds `out.len()` rows of `stride` coordinates each, of which
    /// the first `dim` are the point and the remainder is padding;
    /// `bounds[i]` is row `i`'s pruning bound with `dist_under` semantics.
    /// The Minkowski-family implementations stream the whole padded row
    /// through the dispatched SIMD kernel — amortizing the per-call
    /// dispatch, bound transforms and threshold loads across the block, and
    /// letting the hardware prefetch sequential rows — which requires the
    /// caller to uphold the **padded-tile contract**: `stride` a multiple
    /// of [`kernel::LANES`], `q.len() == stride`, and every coordinate past
    /// `dim` (in `q` and in each row) equal on both sides (canonically
    /// `0.0`), so pad terms contribute `+0.0` and the canonical
    /// accumulation is untouched. When the layout does not satisfy the
    /// contract, implementations fall back to this default row-by-row
    /// evaluation over the logical slices.
    ///
    /// Callers that count distance computations count **one evaluation per
    /// row** they consume, exactly as if they had called `dist_under` per
    /// row.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths are inconsistent (`rows.len() !=
    /// out.len() * stride`, `bounds.len() != out.len()`, or `dim > stride`).
    fn dist_tile(
        &self,
        q: &[f64],
        rows: &[f64],
        stride: usize,
        dim: usize,
        bounds: &[f64],
        out: &mut [f64],
    ) {
        fallback_dist_tile(self, q, rows, stride, dim, bounds, out);
    }

    /// A human-readable name, used in experiment reports.
    fn name(&self) -> &'static str;

    /// The kernel tier this instance evaluates under (see
    /// [`kernel::KernelTier`]). The default — and the only tier most
    /// metrics implement — is the bit-identical exact tier.
    #[inline]
    fn tier(&self) -> KernelTier {
        KernelTier::Exact
    }

    /// Whether contiguous-scan callers should offer this metric f32 tiles
    /// via [`Metric::dist_tile_f32`] (true only for Euclidean under
    /// [`KernelTier::FastF32`]).
    #[inline]
    fn wants_f32_tiles(&self) -> bool {
        false
    }

    /// f32 variant of [`Metric::dist_tile`] over an f32 mirror of the rows
    /// (see [`crate::Dataset::f32_rows`]): full-sum f32 accumulation, f64
    /// sqrt, and a final distance-domain decision with `dist_under`
    /// semantics (`bounds[i] == +∞` admits everything, otherwise strict
    /// `d < bounds[i]`; pruned rows get `NaN`).
    ///
    /// Returns `true` when the tile was evaluated, `false` when this
    /// metric/tier does not support f32 tiles or the layout does not
    /// satisfy the f32 padded-tile contract (`stride32` a positive multiple
    /// of [`kernel::LANES_F32`], `q32.len() == stride32`, pads zero on both
    /// sides) — the caller must then fall back to the f64 path. The default
    /// implementation always declines.
    #[inline]
    fn dist_tile_f32(
        &self,
        _q32: &[f32],
        _rows32: &[f32],
        _stride32: usize,
        _dim: usize,
        _bounds: &[f64],
        _out: &mut [f64],
    ) -> bool {
        false
    }

    /// Smallest distance from `q` to any point of the axis-aligned box
    /// `[lo, hi]` (the `MINDIST` of R-tree literature).
    ///
    /// Returns `None` when the metric does not support box lower bounds, in
    /// which case box-based indexes cannot be used with it.
    fn box_min_dist(&self, _q: &[f64], _lo: &[f64], _hi: &[f64]) -> Option<f64> {
        None
    }

    /// Largest distance from `q` to any point of the axis-aligned box
    /// `[lo, hi]` (the `MAXDIST` bound).
    fn box_max_dist(&self, _q: &[f64], _lo: &[f64], _hi: &[f64]) -> Option<f64> {
        None
    }
}

/// Validates tile-call slice lengths shared by every implementation.
#[inline]
fn check_tile(rows: &[f64], stride: usize, dim: usize, bounds: &[f64], out: &mut [f64]) {
    assert!(dim <= stride, "tile dim {dim} exceeds stride {stride}");
    assert_eq!(rows.len(), out.len() * stride, "tile rows length mismatch");
    assert_eq!(bounds.len(), out.len(), "tile bounds length mismatch");
}

/// The default [`Metric::dist_tile`] body: row-by-row `dist_under` over the
/// logical (unpadded) slices. Factored out so kernel-backed implementations
/// can fall back to it when the padded-tile contract does not hold.
fn fallback_dist_tile<M: Metric + ?Sized>(
    metric: &M,
    q: &[f64],
    rows: &[f64],
    stride: usize,
    dim: usize,
    bounds: &[f64],
    out: &mut [f64],
) {
    check_tile(rows, stride, dim, bounds, out);
    if out.is_empty() {
        return;
    }
    let q = &q[..dim];
    for ((row, &b), o) in rows
        .chunks_exact(stride.max(1))
        .zip(bounds)
        .zip(out.iter_mut())
    {
        *o = metric.dist_under(q, &row[..dim], b).unwrap_or(f64::NAN);
    }
}

/// Whether a tile call satisfies the padded-tile contract well enough to go
/// through the SIMD kernels (pad *values* are the caller's obligation and
/// cannot be checked here without touching every row).
#[inline]
fn kernel_tile_ok(q: &[f64], stride: usize) -> bool {
    stride > 0 && stride.is_multiple_of(LANES) && q.len() == stride
}

/// Shared tile driver: per row, early-abandoning accumulation with
/// [`Metric::dist_under`] semantics. `transform` maps a finite distance
/// bound into the accumulator domain (conservatively, so abandonment proves
/// `d >= bound`); `finish` maps a completed accumulator back to a distance.
/// An infinite bound admits every row, so those rows skip the threshold
/// checks entirely and run the plain `full` reduction — the completed
/// accumulator is the same canonical value either way (and a hypothetical
/// abandonment at a partial of `+∞` would only ever stand in for a `+∞`
/// total, which `finish` maps to the same `+∞` distance).
#[inline]
#[allow(clippy::too_many_arguments)] // one slot per tile buffer; private helper
fn tile_via_until(
    q: &[f64],
    rows: &[f64],
    stride: usize,
    bounds: &[f64],
    out: &mut [f64],
    full: impl Fn(&[f64], &[f64]) -> f64,
    until: impl Fn(&[f64], &[f64], f64) -> Option<f64>,
    transform: impl Fn(f64) -> f64,
    finish: impl Fn(f64) -> f64,
) {
    for ((row, &b), o) in rows.chunks_exact(stride).zip(bounds).zip(out.iter_mut()) {
        *o = if b == f64::INFINITY {
            finish(full(q, row))
        } else {
            match until(q, row, transform(b)) {
                Some(acc) => {
                    let d = finish(acc);
                    if d < b {
                        d
                    } else {
                        f64::NAN
                    }
                }
                None => f64::NAN,
            }
        };
    }
}

/// Per-coordinate gap to the box `[lo, hi]` (zero inside).
#[inline(always)]
fn box_gap(qi: f64, l: f64, h: f64) -> f64 {
    if qi < l {
        l - qi
    } else if qi > h {
        qi - h
    } else {
        0.0
    }
}

/// Per-coordinate farthest gap to the box `[lo, hi]`.
#[inline(always)]
fn box_far_gap(qi: f64, l: f64, h: f64) -> f64 {
    (qi - l).abs().max((h - qi).abs())
}

/// Folds box-gap terms in the **canonical lane order** of
/// [`crate::kernel`]: term `i` into lane `i mod 4`, lanes combined as
/// `(l0 + l1) + (l2 + l3)`.
///
/// Sharing the canonical order with the point-to-point kernels is
/// load-bearing, not cosmetic: for a point `p` inside the box, each gap term
/// is `<=` the corresponding point term, and a same-order monotone
/// accumulation of smaller non-negative terms yields a smaller (or equal)
/// lane — so `box_min_dist(q, lo, hi) <= dist(q, p)` holds *exactly*, not
/// just up to rounding, and best-first traversals can use box bounds for
/// pruning without ever contradicting a point distance by one ulp. The
/// symmetric argument gives `box_max_dist >= dist` exactly.
#[inline]
fn box_fold_sum<G: Fn(f64, f64, f64) -> f64, T: Fn(f64) -> f64>(
    q: &[f64],
    lo: &[f64],
    hi: &[f64],
    gap: G,
    term: T,
) -> f64 {
    let mut l = [0.0f64; LANES];
    for (i, ((&qi, &lv), &hv)) in q.iter().zip(lo).zip(hi).enumerate() {
        l[i % LANES] += term(gap(qi, lv, hv));
    }
    (l[0] + l[1]) + (l[2] + l[3])
}

/// [`box_fold_sum`] under `max` instead of `+`.
#[inline]
fn box_fold_max<G: Fn(f64, f64, f64) -> f64>(q: &[f64], lo: &[f64], hi: &[f64], gap: G) -> f64 {
    let mut l = [0.0f64; LANES];
    for (i, ((&qi, &lv), &hv)) in q.iter().zip(lo).zip(hi).enumerate() {
        l[i % LANES] = l[i % LANES].max(gap(qi, lv, hv));
    }
    l[0].max(l[1]).max(l[2].max(l[3]))
}

/// The dispatched kernel table (cached per process).
#[inline]
fn ops() -> &'static KernelOps {
    kernel::selected()
}

/// Adapter that disables threshold pruning on an inner metric: every
/// [`Metric::dist_lt`] call evaluates the full distance via the default
/// implementation.
///
/// This is the reference "sequential scalar path": benchmarks use it as
/// the un-optimized baseline, and equivalence tests run the same workload
/// through `FullPrecision<M>` and `M` to prove early abandonment changes
/// no decision, result, or counter. (`dist_tile` likewise stays on the
/// unpruned row-by-row default.)
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FullPrecision<M>(pub M);

impl<M: Metric> Metric for FullPrecision<M> {
    #[inline]
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        self.0.dist(a, b)
    }

    // dist_lt and dist_tile deliberately NOT forwarded: the trait defaults
    // compute the full distance and compare, which is the point of this
    // adapter.

    fn name(&self) -> &'static str {
        self.0.name()
    }

    // The tier is forwarded for reporting honesty (dist forwards, so the
    // full evaluations really do run on the inner tier), but
    // `wants_f32_tiles` is NOT: FullPrecision stays on the unpruned f64
    // row-by-row default, which is its whole point.
    fn tier(&self) -> KernelTier {
        self.0.tier()
    }

    fn box_min_dist(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
        self.0.box_min_dist(q, lo, hi)
    }

    fn box_max_dist(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
        self.0.box_max_dist(q, lo, hi)
    }
}

/// The Euclidean (L2) distance — the paper's experimental metric.
///
/// Each instance carries an optional [`KernelTier`]: `None` (what the
/// same-named [`const@Euclidean`] constant and `Default` produce) defers to the
/// process default ([`kernel::selected_tier`], i.e. `RKNN_KERNEL_TIER` or
/// exact), while [`Euclidean::exact`] / [`Euclidean::fast`] /
/// [`Euclidean::fast_f32`] pin a tier per instance — which is how one
/// process compares tiers side by side (benchmarks, the fast-tier test
/// suite) without env-var races. Build and query an index with the *same*
/// tier: mixing tiers across one index's lifecycle mixes ULP-divergent
/// distance streams and voids the within-tier consistency contract.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Euclidean {
    tier: Option<KernelTier>,
}

/// The tier-deferring [`struct@Euclidean`] value: the spelling `Euclidean` keeps
/// working everywhere an instance is expected (the braced struct occupies
/// only the type namespace; this constant fills the value namespace).
#[allow(non_upper_case_globals)]
pub const Euclidean: Euclidean = Euclidean { tier: None };

/// The early-abandonment threshold for a finite Euclidean bound: the
/// squared bound, inflated by a few ulps so that a partial sum crossing the
/// threshold *guarantees* `sqrt(total) >= bound` (squaring the bound
/// rounds, sqrt rounds back; without the margin a one-ulp disagreement with
/// the exact `dist < bound` test would be possible at the boundary). A
/// completed accumulation is decided by the exact comparison, so decisions
/// always match `dist`. The `.max` keeps a tiny positive bound (whose
/// square underflows to zero) from abandoning the exact-zero distance it
/// still admits.
#[inline(always)]
fn euclid_threshold(bound: f64) -> f64 {
    ((bound * bound) * (1.0 + 4.0 * f64::EPSILON)).max(f64::MIN_POSITIVE)
}

/// Relative margin covering the fast tier's reassociation divergence from
/// the exact canonical order: `O(dim · ε)` with generous headroom. Box
/// bounds computed in the exact order dominate exact-order point distances
/// *exactly*, but fast-tier point distances may differ by a few ulps — so
/// under a fast tier the lower bound is deflated (and the upper inflated)
/// past that divergence before the dominance argument holds again.
#[inline]
fn fast_box_slack(dim: usize) -> f64 {
    (dim as f64 + 8.0) * 8.0 * f64::EPSILON
}

/// Fast-tier Euclidean tile body: FMA accumulation with squared-domain
/// screening. A row whose completed accumulation reaches the inflated
/// squared bound is rejected *without* a square root (the
/// [`euclid_threshold`] margin proves `sqrt(acc) >= bound`); survivors pay
/// the sqrt and the exact distance-domain comparison, so decisions are
/// equivalent to the fast-tier `dist` — the sqrt is deferred to answer
/// emission, exactly like the one-to-one fast `dist_lt`.
fn euclid_fast_tile(q: &[f64], rows: &[f64], stride: usize, bounds: &[f64], out: &mut [f64]) {
    let f = kernel::fast_ops();
    for ((row, &b), o) in rows.chunks_exact(stride).zip(bounds).zip(out.iter_mut()) {
        *o = if b == f64::INFINITY {
            f.sum_sq(q, row).sqrt()
        } else {
            let t = euclid_threshold(b);
            match f.sum_sq_until(q, row, t) {
                Some(acc) if acc < t => {
                    let d = acc.sqrt();
                    if d < b {
                        d
                    } else {
                        f64::NAN
                    }
                }
                _ => f64::NAN,
            }
        };
    }
}

impl Euclidean {
    /// An instance pinned to the exact (bit-identical) tier, ignoring
    /// `RKNN_KERNEL_TIER`. Ground truth and bit-identity tests use this.
    pub const fn exact() -> Euclidean {
        Euclidean::with_tier(KernelTier::Exact)
    }

    /// An instance pinned to the fast tier: FMA reductions and
    /// squared-domain screening, ULP-bounded against [`Euclidean::exact`].
    pub const fn fast() -> Euclidean {
        Euclidean::with_tier(KernelTier::Fast)
    }

    /// An instance pinned to the fast-f32 tier: [`Euclidean::fast`] plus
    /// f32 storage/compute on contiguous scans.
    pub const fn fast_f32() -> Euclidean {
        Euclidean::with_tier(KernelTier::FastF32)
    }

    /// An instance pinned to `tier`.
    pub const fn with_tier(tier: KernelTier) -> Euclidean {
        Euclidean { tier: Some(tier) }
    }

    /// The tier this instance resolves to (per-instance pin, else the
    /// process default).
    #[inline]
    fn mode(&self) -> KernelTier {
        match self.tier {
            Some(t) => t,
            None => kernel::selected_tier(),
        }
    }

    /// Squared Euclidean distance; cheaper when only comparisons are
    /// needed. Always evaluates on the exact tier (it is an associated
    /// function with no instance to carry a tier).
    #[inline]
    pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        ops().sum_sq(a, b)
    }
}

impl Metric for Euclidean {
    #[inline]
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        if self.mode().is_fast() {
            kernel::fast_ops().sum_sq(a, b).sqrt()
        } else {
            ops().sum_sq(a, b).sqrt()
        }
    }

    #[inline]
    fn dist_lt(&self, a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
        let t = euclid_threshold(bound);
        if self.mode().is_fast() {
            let acc = kernel::fast_ops().sum_sq_until(a, b, t)?;
            if acc >= t {
                // Squared-domain rejection: the inflated threshold proves
                // sqrt(acc) >= bound, so the sqrt is skipped entirely.
                return None;
            }
            let d = acc.sqrt();
            (d < bound).then_some(d)
        } else {
            let acc = ops().sum_sq_until(a, b, t)?;
            let d = acc.sqrt();
            (d < bound).then_some(d)
        }
    }

    fn dist_tile(
        &self,
        q: &[f64],
        rows: &[f64],
        stride: usize,
        dim: usize,
        bounds: &[f64],
        out: &mut [f64],
    ) {
        if !kernel_tile_ok(q, stride) {
            return fallback_dist_tile(self, q, rows, stride, dim, bounds, out);
        }
        check_tile(rows, stride, dim, bounds, out);
        if self.mode().is_fast() {
            return euclid_fast_tile(q, rows, stride, bounds, out);
        }
        let k = ops();
        tile_via_until(
            q,
            rows,
            stride,
            bounds,
            out,
            |a, b| k.sum_sq(a, b),
            |a, b, t| k.sum_sq_until(a, b, t),
            euclid_threshold,
            f64::sqrt,
        );
    }

    fn name(&self) -> &'static str {
        "euclidean"
    }

    #[inline]
    fn tier(&self) -> KernelTier {
        self.mode()
    }

    #[inline]
    fn wants_f32_tiles(&self) -> bool {
        self.mode().wants_f32()
    }

    fn dist_tile_f32(
        &self,
        q32: &[f32],
        rows32: &[f32],
        stride32: usize,
        dim: usize,
        bounds: &[f64],
        out: &mut [f64],
    ) -> bool {
        if !self.mode().wants_f32()
            || stride32 == 0
            || !stride32.is_multiple_of(kernel::LANES_F32)
            || q32.len() != stride32
            || dim > stride32
        {
            return false;
        }
        assert_eq!(
            rows32.len(),
            out.len() * stride32,
            "f32 tile rows length mismatch"
        );
        assert_eq!(bounds.len(), out.len(), "f32 tile bounds length mismatch");
        let f = kernel::fast_ops();
        for ((row, &b), o) in rows32
            .chunks_exact(stride32)
            .zip(bounds)
            .zip(out.iter_mut())
        {
            let d = f.sum_sq_f32(q32, row).sqrt();
            *o = if b == f64::INFINITY || d < b {
                d
            } else {
                f64::NAN
            };
        }
        true
    }

    fn box_min_dist(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
        let v = box_fold_sum(q, lo, hi, box_gap, |g| g * g).sqrt();
        Some(if self.mode().is_fast() {
            // Distances are non-negative in every tier, so the deflated
            // bound never needs to go below zero (a query inside the box
            // keeps its exact 0 bound).
            (v * (1.0 - fast_box_slack(q.len()))).next_down().max(0.0)
        } else {
            v
        })
    }

    fn box_max_dist(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
        let v = box_fold_sum(q, lo, hi, box_far_gap, |g| g * g).sqrt();
        Some(if self.mode().is_fast() {
            (v * (1.0 + fast_box_slack(q.len()))).next_up()
        } else {
            v
        })
    }
}

/// The Manhattan (L1) distance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Manhattan;

impl Metric for Manhattan {
    #[inline]
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        ops().sum_abs(a, b)
    }

    #[inline]
    fn dist_lt(&self, a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
        // L1 needs no transform of the bound, so no margin: the partial sum
        // is the distance prefix itself.
        let d = ops().sum_abs_until(a, b, bound)?;
        (d < bound).then_some(d)
    }

    fn dist_tile(
        &self,
        q: &[f64],
        rows: &[f64],
        stride: usize,
        dim: usize,
        bounds: &[f64],
        out: &mut [f64],
    ) {
        if !kernel_tile_ok(q, stride) {
            return fallback_dist_tile(self, q, rows, stride, dim, bounds, out);
        }
        check_tile(rows, stride, dim, bounds, out);
        let k = ops();
        tile_via_until(
            q,
            rows,
            stride,
            bounds,
            out,
            |a, b| k.sum_abs(a, b),
            |a, b, t| k.sum_abs_until(a, b, t),
            |b| b,
            |acc| acc,
        );
    }

    fn name(&self) -> &'static str {
        "manhattan"
    }

    fn box_min_dist(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
        Some(box_fold_sum(q, lo, hi, box_gap, |g| g))
    }

    fn box_max_dist(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
        Some(box_fold_sum(q, lo, hi, box_far_gap, |g| g))
    }
}

/// The Chebyshev (L∞) distance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Chebyshev;

impl Metric for Chebyshev {
    #[inline]
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        ops().max_abs(a, b)
    }

    #[inline]
    fn dist_lt(&self, a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
        // The running maximum only grows, so a partial maximum reaching the
        // bound settles the comparison immediately and exactly.
        let d = ops().max_abs_until(a, b, bound)?;
        (d < bound).then_some(d)
    }

    fn dist_tile(
        &self,
        q: &[f64],
        rows: &[f64],
        stride: usize,
        dim: usize,
        bounds: &[f64],
        out: &mut [f64],
    ) {
        if !kernel_tile_ok(q, stride) {
            return fallback_dist_tile(self, q, rows, stride, dim, bounds, out);
        }
        check_tile(rows, stride, dim, bounds, out);
        let k = ops();
        tile_via_until(
            q,
            rows,
            stride,
            bounds,
            out,
            |a, b| k.max_abs(a, b),
            |a, b, t| k.max_abs_until(a, b, t),
            |b| b,
            |acc| acc,
        );
    }

    fn name(&self) -> &'static str {
        "chebyshev"
    }

    fn box_min_dist(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
        Some(box_fold_max(q, lo, hi, box_gap))
    }

    fn box_max_dist(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
        Some(box_fold_max(q, lo, hi, box_far_gap))
    }
}

/// The Minkowski (Lp) distance for `p ≥ 1`.
///
/// `powf` is only faithfully rounded and does not vectorize
/// bit-reproducibly, so the Lp accumulation runs through the shared scalar
/// kernel ([`kernel::sum_pow`]) on every backend — trivially bit-identical
/// across backends, and still in the canonical lane order so the tile and
/// one-to-one entry points agree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Minkowski {
    p: f64,
}

impl Minkowski {
    /// Creates an Lp metric. `p` must be `≥ 1` for the triangle inequality
    /// to hold.
    ///
    /// # Panics
    ///
    /// Panics if `p < 1` or `p` is not finite.
    pub fn new(p: f64) -> Self {
        assert!(
            p.is_finite() && p >= 1.0,
            "Minkowski requires finite p >= 1"
        );
        Minkowski { p }
    }

    /// The order `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The early-abandonment threshold for a finite Lp bound: `powf` is
    /// only faithfully rounded, so the transformed threshold gets a
    /// relative margin far wider than powf's error but far narrower than
    /// any distance gap that matters; a completed accumulation is again
    /// decided by the exact comparison.
    #[inline(always)]
    fn threshold(&self, bound: f64) -> f64 {
        (bound.powf(self.p) * (1.0 + 1e-12)).max(f64::MIN_POSITIVE)
    }
}

impl Metric for Minkowski {
    #[inline]
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        kernel::sum_pow(a, b, self.p).powf(1.0 / self.p)
    }

    #[inline]
    fn dist_lt(&self, a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
        let acc = kernel::sum_pow_until(a, b, self.p, self.threshold(bound))?;
        let d = acc.powf(1.0 / self.p);
        (d < bound).then_some(d)
    }

    fn dist_tile(
        &self,
        q: &[f64],
        rows: &[f64],
        stride: usize,
        dim: usize,
        bounds: &[f64],
        out: &mut [f64],
    ) {
        if !kernel_tile_ok(q, stride) {
            return fallback_dist_tile(self, q, rows, stride, dim, bounds, out);
        }
        check_tile(rows, stride, dim, bounds, out);
        let p = self.p;
        tile_via_until(
            q,
            rows,
            stride,
            bounds,
            out,
            |a, b| kernel::sum_pow(a, b, p),
            |a, b, t| kernel::sum_pow_until(a, b, p, t),
            |b| self.threshold(b),
            |acc| acc.powf(1.0 / p),
        );
    }

    fn name(&self) -> &'static str {
        "minkowski"
    }

    fn box_min_dist(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
        Some(box_fold_sum(q, lo, hi, box_gap, |g| g.powf(self.p)).powf(1.0 / self.p))
    }

    fn box_max_dist(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
        Some(box_fold_sum(q, lo, hi, box_far_gap, |g| g.powf(self.p)).powf(1.0 / self.p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn metrics() -> Vec<Box<dyn Metric>> {
        vec![
            Box::new(Euclidean),
            Box::new(Manhattan),
            Box::new(Chebyshev),
            Box::new(Minkowski::new(3.0)),
            Box::new(Minkowski::new(1.5)),
        ]
    }

    #[test]
    fn euclidean_matches_hand_computation() {
        let d = Euclidean.dist(&[0.0, 0.0], &[3.0, 4.0]);
        assert!((d - 5.0).abs() < 1e-12);
        assert!((Euclidean::dist_sq(&[0.0, 0.0], &[3.0, 4.0]) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan_and_chebyshev() {
        assert_eq!(Manhattan.dist(&[1.0, 2.0], &[4.0, 0.0]), 5.0);
        assert_eq!(Chebyshev.dist(&[1.0, 2.0], &[4.0, 0.0]), 3.0);
    }

    #[test]
    fn minkowski_interpolates() {
        // p = 1 equals Manhattan, p = 2 equals Euclidean.
        let a = [0.3, -1.2, 4.0];
        let b = [1.0, 0.0, -2.0];
        assert!((Minkowski::new(1.0).dist(&a, &b) - Manhattan.dist(&a, &b)).abs() < 1e-12);
        assert!((Minkowski::new(2.0).dist(&a, &b) - Euclidean.dist(&a, &b)).abs() < 1e-12);
        assert!((Minkowski::new(2.0).p() - 2.0).abs() < f64::EPSILON);
    }

    #[test]
    #[should_panic(expected = "p >= 1")]
    fn minkowski_rejects_sub_one_p() {
        let _ = Minkowski::new(0.5);
    }

    #[test]
    fn dist_lt_agrees_on_exact_ties() {
        // Duplicate coordinate patterns make d(a, b) == bound exactly; the
        // strict-inequality contract must reject them, as `dist` would.
        let a = vec![1.25; 40];
        let b = vec![3.5; 40];
        for m in metrics() {
            let d = m.dist(&a, &b);
            assert_eq!(
                m.dist_lt(&a, &b, d),
                None,
                "{}: tie must be rejected",
                m.name()
            );
            let above = d * (1.0 + 1e-9);
            assert_eq!(m.dist_lt(&a, &b, above), Some(d), "{}", m.name());
        }
    }

    #[test]
    fn dist_le_admits_exact_ties_and_nothing_past_them() {
        let a = vec![1.25; 40];
        let b = vec![3.5; 40];
        for m in metrics() {
            let d = m.dist(&a, &b);
            assert_eq!(
                m.dist_le(&a, &b, d),
                Some(d),
                "{}: tie must be admitted",
                m.name()
            );
            assert_eq!(m.dist_le(&a, &b, d.next_down()), None, "{}", m.name());
            assert_eq!(m.dist_le(&a, &b, f64::INFINITY), Some(d), "{}", m.name());
            // Zero bound admits exactly the zero distance.
            assert_eq!(m.dist_le(&a, &a, 0.0), Some(0.0), "{}", m.name());
            assert_eq!(m.dist_le(&a, &b, 0.0), None, "{}", m.name());
        }
        // Overflowing distances are admitted at the infinite bound.
        let x = vec![1e200; 4];
        let y = vec![-1e200; 4];
        let d = Minkowski::new(3.0).dist(&x, &y);
        if d.is_infinite() {
            assert_eq!(Minkowski::new(3.0).dist_le(&x, &y, f64::INFINITY), Some(d));
            assert_eq!(Minkowski::new(3.0).dist_le(&x, &y, f64::MAX), None);
        }
    }

    #[test]
    fn dist_lt_handles_degenerate_bounds() {
        let a = vec![0.0; 20];
        let b = vec![1.0; 20];
        for m in metrics() {
            assert_eq!(m.dist_lt(&a, &b, 0.0), None, "{}", m.name());
            assert_eq!(
                m.dist_lt(&a, &b, f64::INFINITY),
                Some(m.dist(&a, &b)),
                "{}",
                m.name()
            );
            // Identical points are strictly below any positive bound.
            assert_eq!(m.dist_lt(&a, &a, 1e-300), Some(0.0), "{}", m.name());
        }
    }

    #[test]
    fn dist_under_admits_overflowing_distances_at_infinite_bound() {
        // Finite coordinates whose distance overflows to +∞: an infinite
        // bound (= "no threshold yet") must admit them, while any finite
        // bound keeps the strict dist_lt decision.
        let a = vec![1e200; 4];
        let b = vec![-1e200; 4];
        for m in metrics() {
            let d = m.dist(&a, &b);
            if d.is_infinite() {
                assert_eq!(m.dist_lt(&a, &b, f64::INFINITY), None, "{}", m.name());
                assert_eq!(m.dist_under(&a, &b, f64::INFINITY), Some(d), "{}", m.name());
            }
            assert_eq!(m.dist_under(&a, &b, 1.0), None, "{}", m.name());
            // Finite distances: dist_under coincides with dist_lt.
            let c = vec![0.5; 4];
            let z = vec![0.0; 4];
            let dcz = m.dist(&c, &z);
            assert_eq!(
                m.dist_under(&c, &z, f64::INFINITY),
                Some(dcz),
                "{}",
                m.name()
            );
            assert_eq!(
                m.dist_under(&c, &z, dcz),
                m.dist_lt(&c, &z, dcz),
                "{}",
                m.name()
            );
        }
    }

    #[test]
    fn box_bounds_inside_point() {
        // A query inside the box has min dist 0.
        let lo = [0.0, 0.0];
        let hi = [2.0, 2.0];
        let q = [1.0, 1.5];
        for m in metrics() {
            assert_eq!(m.box_min_dist(&q, &lo, &hi).unwrap(), 0.0, "{}", m.name());
            let far = m.box_max_dist(&q, &lo, &hi).unwrap();
            // Farthest corner from (1, 1.5) is (0, 0) or (2, 0).
            assert!(far >= m.dist(&q, &[0.0, 0.0]) - 1e-12, "{}", m.name());
        }
    }

    /// Builds a zero-padded tile from logical rows.
    fn padded_tile(rows: &[Vec<f64>], dim: usize) -> (usize, Vec<f64>) {
        let stride = kernel::pad_dim(dim);
        let mut flat = vec![0.0; rows.len() * stride];
        for (r, row) in rows.iter().enumerate() {
            flat[r * stride..r * stride + dim].copy_from_slice(row);
        }
        (stride, flat)
    }

    #[test]
    fn dist_tile_matches_per_row_dist_under_bitwise() {
        // Tie-heavy rows at several dims (covering tails, pad widths and
        // the check cadence) against assorted bounds, including exact-tie
        // bounds, zero, and +∞ with overflowing distances.
        for dim in [1usize, 2, 3, 4, 5, 7, 8, 9, 12, 16, 30, 33] {
            let rows: Vec<Vec<f64>> = (0..37)
                .map(|i| {
                    (0..dim)
                        .map(|j| match (i * dim + j) % 11 {
                            10 => 1e200, // may overflow squared/cubed terms
                            v => (v as f64) * 0.5 - 2.0,
                        })
                        .collect()
                })
                .collect();
            let q: Vec<f64> = (0..dim).map(|j| (j % 5) as f64 * 0.5).collect();
            let (stride, flat) = padded_tile(&rows, dim);
            let mut qpad = vec![0.0; stride];
            qpad[..dim].copy_from_slice(&q);
            for m in metrics() {
                let dists: Vec<f64> = rows.iter().map(|r| m.dist(&q, r)).collect();
                // Per-row bounds that exercise every decision branch.
                let bounds: Vec<f64> = dists
                    .iter()
                    .enumerate()
                    .map(|(i, &d)| match i % 5 {
                        0 => d,               // exact tie: pruned
                        1 => d * 1.5 + 1e-12, // admitted
                        2 => 0.0,             // always pruned
                        3 => f64::INFINITY,   // always admitted
                        _ => d * 0.5,         // pruned (or tie at 0)
                    })
                    .collect();
                let mut out = vec![0.0; rows.len()];
                m.dist_tile(&qpad, &flat, stride, dim, &bounds, &mut out);
                for (i, row) in rows.iter().enumerate() {
                    let want = m.dist_under(&q, row, bounds[i]);
                    match want {
                        Some(d) => assert_eq!(
                            out[i].to_bits(),
                            d.to_bits(),
                            "{} dim={dim} row={i}: admitted value must be bit-identical",
                            m.name()
                        ),
                        None => assert!(
                            out[i].is_nan(),
                            "{} dim={dim} row={i}: pruned row must be NaN (got {})",
                            m.name(),
                            out[i]
                        ),
                    }
                }
                // The unpadded fallback layout must decide identically.
                let (flat_raw, stride_raw) =
                    (rows.iter().flatten().copied().collect::<Vec<f64>>(), dim);
                let mut out_raw = vec![0.0; rows.len()];
                m.dist_tile(&q, &flat_raw, stride_raw, dim, &bounds, &mut out_raw);
                for (a, b) in out.iter().zip(&out_raw) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{} dim={dim}: padded and fallback tiles diverged",
                        m.name()
                    );
                }
            }
        }
    }

    #[test]
    fn fast_tier_threshold_variants_are_decision_equivalent_with_fast_dist() {
        // The within-tier contract: dist_lt/dist_le/dist_under/dist_tile of
        // a fast instance must decide exactly like that instance's own dist
        // (squared-domain screening changes no decision), including at
        // exact-tie bounds built from fast distances.
        let m = Euclidean::fast();
        for dim in [1usize, 3, 4, 7, 8, 9, 16, 32, 33] {
            let rows: Vec<Vec<f64>> = (0..23)
                .map(|i| {
                    (0..dim)
                        .map(|j| ((i * dim + j) % 9) as f64 * 0.5 - 2.0)
                        .collect()
                })
                .collect();
            let q: Vec<f64> = (0..dim).map(|j| (j % 5) as f64 * 0.5).collect();
            let (stride, flat) = padded_tile(&rows, dim);
            let mut qpad = vec![0.0; stride];
            qpad[..dim].copy_from_slice(&q);
            let dists: Vec<f64> = rows.iter().map(|r| m.dist(&q, r)).collect();
            let bounds: Vec<f64> = dists
                .iter()
                .enumerate()
                .map(|(i, &d)| match i % 5 {
                    0 => d, // exact fast-tier tie: pruned by dist_lt
                    1 => d * 1.5 + 1e-12,
                    2 => 0.0,
                    3 => f64::INFINITY,
                    _ => d * 0.5,
                })
                .collect();
            for (i, row) in rows.iter().enumerate() {
                let (d, b) = (dists[i], bounds[i]);
                let lt = m.dist_lt(&q, row, b);
                if d < b {
                    assert_eq!(lt.map(f64::to_bits), Some(d.to_bits()), "dim={dim} row={i}");
                } else {
                    assert_eq!(lt, None, "dim={dim} row={i}");
                }
                assert_eq!(
                    m.dist_le(&q, row, d).map(f64::to_bits),
                    Some(d.to_bits()),
                    "dim={dim} row={i}: dist_le admits its own tie"
                );
                assert_eq!(
                    m.dist_under(&q, row, f64::INFINITY).map(f64::to_bits),
                    Some(d.to_bits()),
                    "dim={dim} row={i}"
                );
            }
            let mut out = vec![0.0; rows.len()];
            m.dist_tile(&qpad, &flat, stride, dim, &bounds, &mut out);
            for (i, row) in rows.iter().enumerate() {
                match m.dist_under(&q, row, bounds[i]) {
                    Some(d) => assert_eq!(
                        out[i].to_bits(),
                        d.to_bits(),
                        "dim={dim} row={i}: fast tile must match fast dist_under bitwise"
                    ),
                    None => assert!(out[i].is_nan(), "dim={dim} row={i}"),
                }
            }
        }
    }

    #[test]
    fn fast_tier_handles_degenerate_bounds_like_exact() {
        let m = Euclidean::fast();
        let a = vec![0.0; 20];
        let b = vec![1.0; 20];
        assert_eq!(m.dist_lt(&a, &b, 0.0), None);
        // A subnormal-squared bound must still admit the exact-zero
        // distance (euclid_threshold's .max guard, preserved by the
        // squared-domain screen).
        assert_eq!(m.dist_lt(&a, &a, 1e-300), Some(0.0));
        let big = vec![1e200; 4];
        let neg = vec![-1e200; 4];
        assert_eq!(m.dist_lt(&big, &neg, f64::INFINITY), None);
        assert_eq!(m.dist_under(&big, &neg, f64::INFINITY), Some(f64::INFINITY));
    }

    #[test]
    fn fast_f32_tile_contract_and_tolerance() {
        let exact = Euclidean::exact();
        let m32 = Euclidean::fast_f32();
        assert!(m32.wants_f32_tiles());
        assert!(!Euclidean::fast().wants_f32_tiles());
        assert!(!exact.wants_f32_tiles());
        let dim = 12;
        let stride32 = kernel::pad_dim_f32(dim);
        let rows: Vec<Vec<f64>> = (0..9)
            .map(|i| (0..dim).map(|j| (i * 3 + j) as f64 * 0.25 - 1.0).collect())
            .collect();
        let q: Vec<f64> = (0..dim).map(|j| j as f64 * 0.1).collect();
        let mut q32 = vec![0.0f32; stride32];
        for (d, s) in q32.iter_mut().zip(&q) {
            *d = *s as f32;
        }
        let mut flat32 = vec![0.0f32; rows.len() * stride32];
        for (r, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                flat32[r * stride32 + j] = v as f32;
            }
        }
        let bounds = vec![f64::INFINITY; rows.len()];
        let mut out = vec![0.0; rows.len()];
        // Exact and plain-fast instances must decline the f32 tile.
        assert!(!exact.dist_tile_f32(&q32, &flat32, stride32, dim, &bounds, &mut out));
        assert!(!Euclidean::fast().dist_tile_f32(&q32, &flat32, stride32, dim, &bounds, &mut out));
        // A broken layout must be declined too.
        assert!(!m32.dist_tile_f32(&q32[..dim], &flat32, dim, dim, &bounds, &mut out));
        // The real call evaluates within f32 tolerance of the exact dist.
        assert!(m32.dist_tile_f32(&q32, &flat32, stride32, dim, &bounds, &mut out));
        for (i, row) in rows.iter().enumerate() {
            let want = exact.dist(&q, row);
            assert!(
                (out[i] - want).abs() <= 1e-5 * (1.0 + want),
                "row {i}: {} vs {want}",
                out[i]
            );
        }
        // Finite bounds prune with strict dist_under semantics.
        let tight = out.clone();
        let mut out2 = vec![0.0; rows.len()];
        assert!(m32.dist_tile_f32(&q32, &flat32, stride32, dim, &tight, &mut out2));
        for (i, &d) in out.iter().enumerate() {
            assert!(
                out2[i].is_nan(),
                "row {i}: tie at its own f32 distance {d} must prune"
            );
        }
    }

    #[test]
    fn fast_box_bounds_still_bracket_fast_distances() {
        let m = Euclidean::fast();
        let lo = vec![-1.0; 16];
        let hi = vec![2.0; 16];
        let q: Vec<f64> = (0..16).map(|j| j as f64 * 0.3 - 2.0).collect();
        // Points inside the box, including corners.
        for s in 0..8 {
            let p: Vec<f64> = (0..16)
                .map(|j| {
                    let t = ((j + s) % 4) as f64 / 3.0;
                    -1.0 + 3.0 * t
                })
                .collect();
            let d = m.dist(&q, &p);
            let min = m.box_min_dist(&q, &lo, &hi).unwrap();
            let max = m.box_max_dist(&q, &lo, &hi).unwrap();
            assert!(min <= d, "deflated min {min} exceeds fast dist {d}");
            assert!(max >= d, "inflated max {max} below fast dist {d}");
        }
    }

    #[test]
    fn tier_is_reported_per_instance() {
        assert_eq!(Euclidean::exact().tier(), KernelTier::Exact);
        assert_eq!(Euclidean::fast().tier(), KernelTier::Fast);
        assert_eq!(Euclidean::fast_f32().tier(), KernelTier::FastF32);
        assert_eq!(FullPrecision(Euclidean::fast()).tier(), KernelTier::Fast);
        assert_eq!(Manhattan.tier(), KernelTier::Exact);
        // The const defers to the process default.
        assert_eq!(Euclidean.tier(), kernel::selected_tier());
    }

    #[test]
    fn full_precision_tile_admits_like_dist() {
        let m = FullPrecision(Euclidean);
        let rows = vec![vec![0.0, 0.0], vec![3.0, 4.0]];
        let (stride, flat) = padded_tile(&rows, 2);
        let qpad = vec![0.0; stride];
        let mut out = vec![0.0; 2];
        m.dist_tile(&qpad[..], &flat, stride, 2, &[1.0, 5.0], &mut out);
        assert_eq!(out[0], 0.0);
        assert!(out[1].is_nan(), "tie at bound must prune");
        m.dist_tile(
            &qpad[..],
            &flat,
            stride,
            2,
            &[1.0, 5.0f64.next_up()],
            &mut out,
        );
        assert_eq!(out[1], 5.0);
    }

    proptest! {
        #[test]
        fn dist_lt_is_decision_equivalent_to_dist(
            a in proptest::collection::vec(-100.0f64..100.0, 24),
            b in proptest::collection::vec(-100.0f64..100.0, 24),
            frac in 0.0f64..2.0,
        ) {
            for m in metrics() {
                let d = m.dist(&a, &b);
                let bound = d * frac;
                let got = m.dist_lt(&a, &b, bound);
                if d < bound {
                    prop_assert_eq!(got, Some(d), "{} bound={}", m.name(), bound);
                } else {
                    prop_assert_eq!(got, None, "{} bound={}", m.name(), bound);
                }
            }
        }

        #[test]
        fn metric_axioms(
            a in proptest::collection::vec(-100.0f64..100.0, 4),
            b in proptest::collection::vec(-100.0f64..100.0, 4),
            c in proptest::collection::vec(-100.0f64..100.0, 4),
        ) {
            for m in metrics() {
                let dab = m.dist(&a, &b);
                let dba = m.dist(&b, &a);
                let dac = m.dist(&a, &c);
                let dcb = m.dist(&c, &b);
                prop_assert!(dab >= 0.0);
                prop_assert!((dab - dba).abs() < 1e-9, "symmetry failed for {}", m.name());
                prop_assert!(m.dist(&a, &a) < 1e-12);
                // Triangle inequality with a small slack for float rounding.
                prop_assert!(
                    dab <= dac + dcb + 1e-9 * (1.0 + dab.abs()),
                    "triangle inequality failed for {}: {} > {} + {}",
                    m.name(), dab, dac, dcb
                );
            }
        }

        #[test]
        fn box_bounds_bracket_all_contained_points(
            q in proptest::collection::vec(-10.0f64..10.0, 3),
            x in proptest::collection::vec(0.0f64..1.0, 3),
            lo in proptest::collection::vec(-5.0f64..0.0, 3),
            ext in proptest::collection::vec(0.0f64..5.0, 3),
        ) {
            let hi: Vec<f64> = lo.iter().zip(&ext).map(|(l, e)| l + e).collect();
            // x interpolated into the box.
            let p: Vec<f64> = lo
                .iter()
                .zip(&hi)
                .zip(&x)
                .map(|((l, h), t)| l + (h - l) * t)
                .collect();
            for m in metrics() {
                let d = m.dist(&q, &p);
                let min = m.box_min_dist(&q, &lo, &hi).unwrap();
                let max = m.box_max_dist(&q, &lo, &hi).unwrap();
                prop_assert!(min <= d + 1e-9, "{}: min {} > {}", m.name(), min, d);
                prop_assert!(max >= d - 1e-9, "{}: max {} < {}", m.name(), max, d);
            }
        }

        #[test]
        fn dist_tile_is_decision_equivalent_on_random_tiles(
            rows in proptest::collection::vec(
                proptest::collection::vec(-50.0f64..50.0, 7), 1..20),
            q in proptest::collection::vec(-50.0f64..50.0, 7),
            frac in proptest::collection::vec(0.0f64..2.0, 20),
        ) {
            let dim = 7;
            let (stride, flat) = padded_tile(&rows, dim);
            let mut qpad = vec![0.0; stride];
            qpad[..dim].copy_from_slice(&q);
            for m in metrics() {
                let bounds: Vec<f64> = rows
                    .iter()
                    .zip(&frac)
                    .map(|(r, &f)| m.dist(&q, r) * f)
                    .collect();
                let mut out = vec![0.0; rows.len()];
                m.dist_tile(&qpad, &flat, stride, dim, &bounds, &mut out);
                for (i, row) in rows.iter().enumerate() {
                    match m.dist_under(&q, row, bounds[i]) {
                        Some(d) => prop_assert_eq!(out[i].to_bits(), d.to_bits()),
                        None => prop_assert!(out[i].is_nan()),
                    }
                }
            }
        }
    }
}
