//! Brute-force reference implementations of kNN and reverse-kNN.
//!
//! These O(n)–O(n²) scans are the ground truth every index structure and
//! every approximation algorithm in the workspace is validated against. The
//! reverse-kNN definition follows `DESIGN.md` §2: `x ∈ RkNN(q, k)` iff
//! `x ≠ q` and `d(x, q) ≤ d_k(x)`, where `d_k(x)` is the k-th smallest
//! distance from `x` to the other points of `S` — the Korn–Muthukrishnan
//! characterization restated at the start of §2 of the paper.

use crate::dataset::Dataset;
use crate::heap::KnnHeap;
use crate::metric::Metric;
use crate::neighbor::{sort_neighbors, Neighbor, PointId};
use crate::stats::SearchStats;
use std::sync::Arc;

/// Brute-force searcher over a shared dataset.
#[derive(Debug, Clone)]
pub struct BruteForce<M: Metric> {
    ds: Arc<Dataset>,
    metric: M,
}

impl<M: Metric> BruteForce<M> {
    /// Creates a brute-force searcher.
    pub fn new(ds: Arc<Dataset>, metric: M) -> Self {
        BruteForce { ds, metric }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.ds
    }

    /// The metric in use.
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// Exact kNN of location `q`, excluding `exclude`, sorted ascending.
    ///
    /// Returns fewer than `k` neighbors when the dataset is smaller than `k`.
    pub fn knn(
        &self,
        q: &[f64],
        k: usize,
        exclude: Option<PointId>,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        if k == 0 {
            return Vec::new();
        }
        let mut heap = KnnHeap::new(k);
        for (id, p) in self.ds.iter() {
            if Some(id) == exclude {
                continue;
            }
            stats.count_dist();
            heap.offer(Neighbor::new(id, self.metric.dist(q, p)));
        }
        heap.into_sorted()
    }

    /// Exact k-th NN distance of dataset point `x` (self-excluding).
    pub fn dk(&self, x: PointId, k: usize, stats: &mut SearchStats) -> Option<f64> {
        let nn = self.knn(self.ds.point(x), k, Some(x), stats);
        if nn.len() < k {
            None
        } else {
            Some(nn[k - 1].dist)
        }
    }

    /// Exact reverse kNN of dataset point `q` (ground truth), sorted by
    /// distance from `q`.
    ///
    /// Runs a full kNN scan per dataset point — O(n²) — so reserve it for
    /// validation and recall computation.
    pub fn rknn(&self, q: PointId, k: usize, stats: &mut SearchStats) -> Vec<Neighbor> {
        let qp = self.ds.point(q);
        let mut out = Vec::new();
        for (x, xp) in self.ds.iter() {
            if x == q {
                continue;
            }
            stats.count_dist();
            let dxq = self.metric.dist(xp, qp);
            // d_k(x) ≥ d(x, q) ⟺ fewer than k other points are strictly
            // closer to x than q is; count with early exit.
            let mut closer = 0usize;
            for (y, yp) in self.ds.iter() {
                if y == x {
                    continue;
                }
                stats.count_dist();
                if self.metric.dist(xp, yp) < dxq {
                    closer += 1;
                    if closer >= k {
                        break;
                    }
                }
            }
            if closer < k {
                out.push(Neighbor::new(x, dxq));
            }
        }
        sort_neighbors(&mut out);
        out
    }

    /// Exact reverse kNN of an arbitrary location `q ∉ S`.
    pub fn rknn_external(&self, q: &[f64], k: usize, stats: &mut SearchStats) -> Vec<Neighbor> {
        let mut out = Vec::new();
        for (x, xp) in self.ds.iter() {
            stats.count_dist();
            let dxq = self.metric.dist(xp, q);
            let mut closer = 0usize;
            for (y, yp) in self.ds.iter() {
                if y == x {
                    continue;
                }
                stats.count_dist();
                if self.metric.dist(xp, yp) < dxq {
                    closer += 1;
                    if closer >= k {
                        break;
                    }
                }
            }
            if closer < k {
                out.push(Neighbor::new(x, dxq));
            }
        }
        sort_neighbors(&mut out);
        out
    }

    /// kNN lists for every dataset point (self-excluding), as used by the
    /// precomputation-heavy baselines. O(n²).
    pub fn all_knn(&self, k: usize, stats: &mut SearchStats) -> Vec<Vec<Neighbor>> {
        (0..self.ds.len())
            .map(|i| self.knn(self.ds.point(i), k, Some(i), stats))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Euclidean;

    fn grid() -> Arc<Dataset> {
        // 3x3 unit grid.
        let mut rows = Vec::new();
        for y in 0..3 {
            for x in 0..3 {
                rows.push(vec![x as f64, y as f64]);
            }
        }
        Dataset::from_rows(&rows).unwrap().into_shared()
    }

    #[test]
    fn knn_on_grid() {
        let bf = BruteForce::new(grid(), Euclidean);
        let mut st = SearchStats::new();
        // Center point (id 4 at (1,1)) has 4 neighbors at distance 1.
        let nn = bf.knn(bf.dataset().point(4), 4, Some(4), &mut st);
        assert_eq!(nn.len(), 4);
        for n in &nn {
            assert!((n.dist - 1.0).abs() < 1e-12);
        }
        assert_eq!(st.dist_computations, 8);
    }

    #[test]
    fn knn_handles_small_datasets() {
        let ds = Dataset::from_rows(&[vec![0.0], vec![1.0]])
            .unwrap()
            .into_shared();
        let bf = BruteForce::new(ds, Euclidean);
        let mut st = SearchStats::new();
        let nn = bf.knn(&[0.5], 10, None, &mut st);
        assert_eq!(nn.len(), 2, "returns what exists when k > n");
        assert!(bf.knn(&[0.5], 0, None, &mut st).is_empty());
    }

    #[test]
    fn dk_matches_rank_module() {
        let bf = BruteForce::new(grid(), Euclidean);
        let mut st = SearchStats::new();
        for x in 0..9 {
            for k in 1..8 {
                assert_eq!(
                    bf.dk(x, k, &mut st),
                    crate::rank::dk(bf.dataset(), &Euclidean, x, k),
                    "x={x} k={k}"
                );
            }
        }
    }

    #[test]
    fn rknn_symmetric_pair() {
        // Two isolated close points are each other's R1NN.
        let ds = Dataset::from_rows(&[
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![10.0, 0.0],
            vec![10.1, 0.0],
        ])
        .unwrap()
        .into_shared();
        let bf = BruteForce::new(ds, Euclidean);
        let mut st = SearchStats::new();
        let r = bf.rknn(0, 1, &mut st);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].id, 1);
        let r = bf.rknn(3, 1, &mut st);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].id, 2);
    }

    #[test]
    fn rknn_includes_boundary_equality() {
        // Equilateral-ish: x's k-th distance exactly equals d(x, q).
        // Points: q = (0,0), x = (2,0), y = (4,0). For k=1: d_1(x) = 2 = d(x,q)
        // (tie between q and y) → x is a R1NN of q under the non-strict test.
        let ds = Dataset::from_rows(&[vec![0.0, 0.0], vec![2.0, 0.0], vec![4.0, 0.0]])
            .unwrap()
            .into_shared();
        let bf = BruteForce::new(ds, Euclidean);
        let mut st = SearchStats::new();
        let r = bf.rknn(0, 1, &mut st);
        assert!(r.iter().any(|n| n.id == 1), "boundary tie is included");
    }

    #[test]
    fn rknn_external_matches_member_query() {
        // Querying an external location coincident with a member point,
        // excluding that member, is the member query.
        let ds = Dataset::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![2.0, 0.0],
            vec![5.0, 0.0],
        ])
        .unwrap()
        .into_shared();
        let bf = BruteForce::new(ds.clone(), Euclidean);
        let mut st = SearchStats::new();
        let member = bf.rknn(1, 2, &mut st);
        // Build the same set without point 1 and query (1, 0) externally.
        let rest = ds.subset(&[0, 2, 3]).unwrap().into_shared();
        let bf2 = BruteForce::new(rest, Euclidean);
        let ext = bf2.rknn_external(&[1.0, 0.0], 2, &mut st);
        assert_eq!(member.len(), ext.len());
    }

    #[test]
    fn all_knn_shape() {
        let bf = BruteForce::new(grid(), Euclidean);
        let mut st = SearchStats::new();
        let all = bf.all_knn(3, &mut st);
        assert_eq!(all.len(), 9);
        for lists in &all {
            assert_eq!(lists.len(), 3);
        }
    }
}
