//! Runtime-dispatched SIMD distance kernels with one canonical accumulation
//! order.
//!
//! Every hot loop in the workspace bottoms out in the same handful of
//! reductions over coordinate pairs: a sum of squared differences
//! (Euclidean), a sum of absolute differences (Manhattan), a running maximum
//! of absolute differences (Chebyshev), and a sum of `|x−y|^p` terms
//! (Minkowski). This module implements those reductions in three backends —
//! a portable scalar-unrolled reference, SSE2, and AVX2 (selected at runtime
//! via [`is_x86_feature_detected!`]) — that all return **bit-identical**
//! results, so the repo's byte-identity equivalence contracts survive the
//! vectorization.
//!
//! # The canonical accumulation order
//!
//! Floating-point addition is not associative, so "the same sum" must be
//! pinned down to one reduction tree before backends can agree bitwise. The
//! canonical order used by every kernel (and by the [`crate::Metric`]
//! implementations built on them) is:
//!
//! 1. **Four independent lane accumulators.** Term `t_i` (the per-coordinate
//!    contribution at position `i`) is added to lane `i mod 4`, in
//!    increasing `i` order. This is exactly what a 4×`f64` vector
//!    accumulator computes, and the scalar backend mirrors it with four
//!    scalar accumulators over `chunks_exact(4)`.
//! 2. **Tail.** When the length is not a multiple of 4, the final `r < 4`
//!    terms are added to lanes `0..r` (one each) — i.e. the tail behaves
//!    like a partial chunk. Because every term is non-negative and lanes
//!    start at `+0.0`, padding the inputs with coordinates whose term is
//!    `+0.0` (equal pad values on both sides) leaves all four lanes
//!    bit-identical: `x + 0.0 == x` for every non-negative `x`. This is what
//!    makes the padded tile kernels agree bitwise with the unpadded
//!    one-to-one kernels.
//! 3. **Fixed combine.** The lanes are reduced as
//!    `(l0 + l1) + (l2 + l3)` (or the same shape under `max`). SIMD
//!    backends extract the lanes and perform this combine in scalar code,
//!    so no horizontal-add instruction choice can perturb it.
//!
//! The per-term arithmetic uses only IEEE-exact operations (`sub`, `mul`,
//! `add`, `max`, sign-bit `abs`), never FMA, so a lane's value is identical
//! whether the lane lives in a vector register or a scalar one.
//!
//! # Early abandonment under the blocked order
//!
//! The `*_until` kernels abandon an accumulation once it provably cannot
//! stay below a threshold. The check cadence is part of the canonical
//! contract: after every **8 consumed coordinates** (two 4-lane blocks),
//! while at least 8 coordinates remain to be consumed at loop entry, the
//! current combine of the four partial lanes is compared against the
//! threshold and the kernel returns `None` when `partial >= threshold`.
//! Because terms are non-negative and IEEE addition is monotone, each
//! partial lane is `<=` its completed value and the monotone combine
//! preserves that, so `partial >= threshold` proves the completed
//! accumulation would be too — abandonment can never change a decision that
//! the completed sum plus an exact final comparison would make. And because
//! the partial lanes at every 8-coordinate boundary are themselves
//! bit-identical across backends, all backends abandon at exactly the same
//! boundary: `None`/`Some` results match bitwise, not just decision-wise.
//!
//! # Dispatch
//!
//! [`selected`] picks the best available backend once per process (cached in
//! a `OnceLock`): AVX2 when detected, else SSE2 on `x86_64`, else the scalar
//! reference. The `RKNN_KERNEL` environment variable (`scalar`, `sse2`,
//! `avx2`, `auto`) overrides the choice — CI uses it to pin a backend for
//! the bit-identity suites — and silently degrades to the best available
//! backend when the requested one is unsupported on the host. [`ops`]
//! exposes each available backend directly so tests and benchmarks can
//! compare backends within one process.
//!
//! # Kernel tiers: what is bit-stable and what is ULP-bounded
//!
//! Everything above describes the **exact tier** ([`KernelTier::Exact`]) —
//! the default, and the tier all bit-identity suites, ground truth, and the
//! churn-identity contract run on. Its guarantee is *bitwise*: the same
//! reduction returns the same bits on every backend, every entry point
//! (one-to-one or tile), and every process.
//!
//! The opt-in **fast tier** ([`KernelTier::Fast`], selected via
//! `RKNN_KERNEL_TIER=fast`, [`crate::Euclidean::fast`], or the CLI `--tier`
//! flag) trades that cross-everything bit-stability for hardware speed on
//! the Euclidean family:
//!
//! * **FMA reductions.** On AVX2+FMA hosts the squared-difference sums run
//!   through [`fast_ops`]: fused multiply-add with *two* accumulator
//!   registers, which breaks the canonical order. Results are **ULP-bounded**
//!   relative to the exact tier (the reassociation error of a non-negative
//!   sum, `O(dim · ε)` relative), not bit-identical to it. *Within* one
//!   process the fast tier is still deterministic — one FMA kernel serves
//!   every substrate and entry point, so completed full and until
//!   accumulations agree bitwise with each other and cross-substrate
//!   equivalence still holds bit-for-bit *inside* the tier.
//! * **Squared-domain screening.** Fast Euclidean `dist_lt`/`dist_tile`
//!   reject a completed accumulation at or above the (conservatively
//!   inflated) squared bound *without* taking the square root; only
//!   surviving candidates pay the sqrt and the final distance-domain
//!   comparison, so decisions remain equivalent to the fast-tier `dist`.
//! * **f32 storage** ([`KernelTier::FastF32`], `RKNN_KERNEL_TIER=fast-f32`)
//!   additionally streams contiguous dataset scans over an f32 mirror of
//!   the aligned rows ([`crate::Dataset::f32_rows`]) — halving memory
//!   traffic — with full-sum (never early-abandoning) f32 kernels and a
//!   final f64 sqrt + distance-domain decision. Distances here carry f32
//!   accumulation error, so `fast-f32` answer *sets* match the exact tier
//!   only on tie-free inputs; it is a separate opt-in level precisely
//!   because it also breaks the tile-vs-per-point identity the plain fast
//!   tier keeps.
//!
//! On hosts without AVX2+FMA (or under `RKNN_KERNEL=scalar|sse2` pins) the
//! fast tier falls back to the exact kernels — sqrt-skipping still applies,
//! and the ULP bounds hold trivially at zero divergence.

use std::sync::OnceLock;

/// Number of independent accumulator lanes in the canonical order.
pub const LANES: usize = 4;

/// Coordinates consumed between early-abandonment threshold checks.
pub const CHECK_EVERY: usize = 2 * LANES;

/// Rounds a row length up to the canonical lane multiple (see
/// [`crate::Dataset::stride`]).
#[inline]
pub const fn pad_dim(dim: usize) -> usize {
    dim.div_ceil(LANES) * LANES
}

/// Number of `f32` lanes per vector in the fast tier's f32 kernels.
pub const LANES_F32: usize = 8;

/// Rounds a row length up to the f32 lane multiple (the stride of
/// [`crate::Dataset::f32_rows`]).
#[inline]
pub const fn pad_dim_f32(dim: usize) -> usize {
    dim.div_ceil(LANES_F32) * LANES_F32
}

/// The precision/speed contract a Euclidean evaluation runs under.
///
/// See the module docs ("Kernel tiers") for the full contract. In short:
/// `Exact` is bit-identical everywhere and is the default; `Fast` is
/// ULP-bounded against `Exact` but still deterministic and bit-stable
/// *within* one process; `FastF32` additionally reads f32 storage on
/// contiguous scans and only promises matching answer *sets* on tie-free
/// inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelTier {
    /// Bit-identical canonical kernels (the default; tests, ground truth
    /// and the churn-identity contract run here).
    #[default]
    Exact,
    /// FMA reductions + squared-domain screening for the Euclidean family.
    Fast,
    /// [`KernelTier::Fast`] plus f32 storage/compute on contiguous scans.
    FastF32,
}

impl KernelTier {
    /// The tier's name as accepted by `RKNN_KERNEL_TIER` and `--tier`.
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Exact => "exact",
            KernelTier::Fast => "fast",
            KernelTier::FastF32 => "fast-f32",
        }
    }

    /// Parses a tier name (`exact`, `fast`, `fast-f32`/`fast_f32`).
    pub fn parse(s: &str) -> Option<KernelTier> {
        match s {
            "exact" => Some(KernelTier::Exact),
            "fast" => Some(KernelTier::Fast),
            "fast-f32" | "fast_f32" => Some(KernelTier::FastF32),
            _ => None,
        }
    }

    /// Whether this tier uses the fast (FMA + squared-screen) paths.
    #[inline]
    pub fn is_fast(self) -> bool {
        !matches!(self, KernelTier::Exact)
    }

    /// Whether this tier wants f32 tiles on contiguous scans.
    #[inline]
    pub fn wants_f32(self) -> bool {
        matches!(self, KernelTier::FastF32)
    }
}

/// The process-wide default tier: read once from `RKNN_KERNEL_TIER`
/// (`exact`, `fast`, `fast-f32`; default `exact`). Metrics constructed
/// without an explicit tier ([`struct@crate::Euclidean`]'s const form) resolve to
/// this; explicit constructors ([`crate::Euclidean::fast`]) override it
/// per instance, which is how tests compare tiers inside one process.
pub fn selected_tier() -> KernelTier {
    static TIER: OnceLock<KernelTier> = OnceLock::new();
    *TIER.get_or_init(|| match std::env::var("RKNN_KERNEL_TIER").ok().as_deref() {
        None => KernelTier::Exact,
        Some(s) => KernelTier::parse(s).unwrap_or_else(|| {
            eprintln!("RKNN_KERNEL_TIER={s:?} not recognized; using exact");
            KernelTier::Exact
        }),
    })
}

/// Whether this host can run the FMA kernels the fast tier prefers.
pub fn fma_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// A distance-kernel backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar-unrolled reference (always available).
    Scalar,
    /// 2×`f64` SSE2 vectors, two accumulator registers (`x86_64`).
    Sse2,
    /// 4×`f64` AVX2 vectors, one accumulator register (`x86_64`).
    Avx2,
}

impl Backend {
    /// The backend's lower-case name (as accepted by `RKNN_KERNEL`).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
        }
    }

    /// Parses a backend name (the same strings `RKNN_KERNEL` accepts,
    /// minus `auto`, which means "don't pin").
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "scalar" => Some(Backend::Scalar),
            "sse2" => Some(Backend::Sse2),
            "avx2" => Some(Backend::Avx2),
            _ => None,
        }
    }
}

/// Signature of a full reduction: the canonical accumulator value.
type SumFn = fn(&[f64], &[f64]) -> f64;
/// Signature of an early-abandoning reduction: `None` once a partial
/// combine reaches the threshold, `Some(canonical accumulator)` otherwise.
type UntilFn = fn(&[f64], &[f64], f64) -> Option<f64>;

/// One backend's kernel entry points.
///
/// All functions take raw coordinate slices of equal length and reduce them
/// in the canonical order; see the module docs for the bit-identity
/// contract. Obtain instances via [`selected`] (the dispatched backend) or
/// [`ops`] (a specific backend, when available on this host).
pub struct KernelOps {
    backend: Backend,
    sum_sq: SumFn,
    sum_abs: SumFn,
    max_abs: SumFn,
    sum_sq_until: UntilFn,
    sum_abs_until: UntilFn,
    max_abs_until: UntilFn,
}

impl KernelOps {
    /// Which backend these entry points belong to.
    #[inline]
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Canonical sum of squared coordinate differences.
    #[inline]
    pub fn sum_sq(&self, a: &[f64], b: &[f64]) -> f64 {
        (self.sum_sq)(a, b)
    }

    /// Canonical sum of absolute coordinate differences.
    #[inline]
    pub fn sum_abs(&self, a: &[f64], b: &[f64]) -> f64 {
        (self.sum_abs)(a, b)
    }

    /// Canonical maximum absolute coordinate difference.
    #[inline]
    pub fn max_abs(&self, a: &[f64], b: &[f64]) -> f64 {
        (self.max_abs)(a, b)
    }

    /// Early-abandoning [`KernelOps::sum_sq`] against `threshold`.
    #[inline]
    pub fn sum_sq_until(&self, a: &[f64], b: &[f64], threshold: f64) -> Option<f64> {
        (self.sum_sq_until)(a, b, threshold)
    }

    /// Early-abandoning [`KernelOps::sum_abs`] against `threshold`.
    #[inline]
    pub fn sum_abs_until(&self, a: &[f64], b: &[f64], threshold: f64) -> Option<f64> {
        (self.sum_abs_until)(a, b, threshold)
    }

    /// Early-abandoning [`KernelOps::max_abs`] against `threshold`.
    #[inline]
    pub fn max_abs_until(&self, a: &[f64], b: &[f64], threshold: f64) -> Option<f64> {
        (self.max_abs_until)(a, b, threshold)
    }
}

/// Canonical sum of `|x − y|^p` terms (shared scalar implementation — `powf`
/// does not vectorize bit-reproducibly, so every backend uses this one).
#[inline]
pub fn sum_pow(a: &[f64], b: &[f64], p: f64) -> f64 {
    scalar::sum(a, b, |x, y| (x - y).abs().powf(p))
}

/// Early-abandoning [`sum_pow`] against `threshold` (shared scalar
/// implementation, canonical check cadence).
#[inline]
pub fn sum_pow_until(a: &[f64], b: &[f64], p: f64, threshold: f64) -> Option<f64> {
    scalar::sum_until(a, b, threshold, |x, y| (x - y).abs().powf(p))
}

/// The backends available on this host, in preference order (best first).
pub fn available() -> Vec<Backend> {
    let mut v = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            v.push(Backend::Avx2);
        }
        v.push(Backend::Sse2);
    }
    v.push(Backend::Scalar);
    v
}

/// The entry points of one specific backend, or `None` when the host cannot
/// run it (calling into an unsupported backend would be undefined behavior,
/// so unsupported backends are simply unobtainable).
pub fn ops(backend: Backend) -> Option<&'static KernelOps> {
    match backend {
        Backend::Scalar => Some(&SCALAR_OPS),
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => Some(&x86::SSE2_OPS),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => std::arch::is_x86_feature_detected!("avx2").then_some(&x86::AVX2_OPS),
        #[cfg(not(target_arch = "x86_64"))]
        _ => None,
    }
}

static SELECTED: OnceLock<&'static KernelOps> = OnceLock::new();

/// The dispatched kernel table: chosen once per process from the best
/// available backend, overridable with `RKNN_KERNEL=scalar|sse2|avx2|auto`
/// or (before first use) with [`pin_backend`]. An override naming a backend
/// the host lacks (or an unknown value) falls back to automatic selection.
pub fn selected() -> &'static KernelOps {
    SELECTED.get_or_init(|| {
        let best = ops(available()[0]).expect("best available backend exists");
        match std::env::var("RKNN_KERNEL").ok().as_deref() {
            Some("scalar") => &SCALAR_OPS,
            Some("sse2") => ops(Backend::Sse2).unwrap_or(best),
            Some("avx2") => ops(Backend::Avx2).unwrap_or(best),
            Some("auto") | None => best,
            Some(other) => {
                eprintln!(
                    "RKNN_KERNEL={other:?} not recognized; using {}",
                    best.backend.name()
                );
                best
            }
        }
    })
}

/// Pins the dispatched backend programmatically (the CLI `--kernel` flag),
/// degrading to automatic selection when the host lacks it. First selection
/// wins: a pin after the first [`selected`] call (or a competing pin) is a
/// no-op. Returns the table that is actually active, so callers can report
/// the live backend rather than the requested one.
pub fn pin_backend(backend: Backend) -> &'static KernelOps {
    if let Some(requested) = ops(backend) {
        SELECTED.get_or_init(|| requested)
    } else {
        selected()
    }
}

/// Signature of a full f32 reduction: the f32 accumulation, widened to f64.
type SumF32Fn = fn(&[f32], &[f32]) -> f64;

/// Dimensions whose padded stride falls below this stay on the exact
/// kernels even in the fast tier: at d≤12 the FMA reduction's extra lane
/// shuffles cost more than they save (the recorded d=8 `fast_speedup` was
/// 0.90 — a slowdown), so the fast tier falls back rather than regress.
/// The gate compares `pad_dim(len)`, which is idempotent under padding, so
/// logical slices and their zero-padded storage rows always select the
/// same kernel and the tier's bit-invariance contract survives.
pub const FAST_MIN_DIM: usize = 16;

/// The fast tier's kernel entry points (Euclidean family only).
///
/// Unlike [`KernelOps`], these promise determinism *within* one process —
/// one table serves every substrate, and completed `sum_sq`/`sum_sq_until`
/// accumulations agree bitwise with each other — but only ULP-bounded
/// agreement with the exact tier. Obtain via [`fast_ops`].
///
/// Below [`FAST_MIN_DIM`] (measured on the padded stride) the f64 entry
/// points serve the exact dispatched kernels instead of FMA — the fast
/// tier is never a slowdown at small dimensions. [`FastOps::fma_at`]
/// reports which kernel a given slice length actually gets.
pub struct FastOps {
    fma: bool,
    sum_sq: SumFn,
    sum_sq_until: UntilFn,
    sum_sq_f32: SumF32Fn,
    exact_sum_sq: SumFn,
    exact_sum_sq_until: UntilFn,
}

impl FastOps {
    /// Whether the FMA kernels are installed (false means the table fell
    /// back to the exact dispatched kernels for every dimension).
    #[inline]
    pub fn fma(&self) -> bool {
        self.fma
    }

    /// Whether a slice of length `len` (logical dim or padded stride —
    /// `pad_dim` is idempotent, so both agree) is served by the FMA
    /// kernels rather than the small-dimension exact fallback.
    #[inline]
    pub fn fma_at(&self, len: usize) -> bool {
        self.fma && pad_dim(len) >= FAST_MIN_DIM
    }

    /// Fast sum of squared coordinate differences.
    #[inline]
    pub fn sum_sq(&self, a: &[f64], b: &[f64]) -> f64 {
        if self.fma_at(a.len()) {
            (self.sum_sq)(a, b)
        } else {
            (self.exact_sum_sq)(a, b)
        }
    }

    /// Early-abandoning [`FastOps::sum_sq`] against `threshold` (canonical
    /// 8-coordinate check cadence; completed values bit-identical to the
    /// full reduction).
    #[inline]
    pub fn sum_sq_until(&self, a: &[f64], b: &[f64], threshold: f64) -> Option<f64> {
        if self.fma_at(a.len()) {
            (self.sum_sq_until)(a, b, threshold)
        } else {
            (self.exact_sum_sq_until)(a, b, threshold)
        }
    }

    /// Full (never abandoning) f32 sum of squared differences, widened to
    /// f64. The f32 path targets the bandwidth-bound large-`dim` regime
    /// where branchy early abandonment costs more than it saves.
    #[inline]
    pub fn sum_sq_f32(&self, a: &[f32], b: &[f32]) -> f64 {
        (self.sum_sq_f32)(a, b)
    }
}

/// The fast-tier kernel table: FMA AVX2 reductions when the dispatched
/// backend is AVX2 and the host has FMA, otherwise the exact dispatched
/// kernels (so `RKNN_KERNEL=scalar|sse2` pins also pin the fast tier's f64
/// arithmetic, and the ULP bounds hold trivially).
pub fn fast_ops() -> &'static FastOps {
    static FAST: OnceLock<FastOps> = OnceLock::new();
    FAST.get_or_init(|| {
        let base = selected();
        #[cfg(target_arch = "x86_64")]
        if base.backend() == Backend::Avx2 && std::arch::is_x86_feature_detected!("fma") {
            return FastOps {
                fma: true,
                sum_sq: x86::w_fma_sum_sq,
                sum_sq_until: x86::w_fma_sum_sq_until,
                sum_sq_f32: x86::w_fma_sum_sq_f32,
                exact_sum_sq: base.sum_sq,
                exact_sum_sq_until: base.sum_sq_until,
            };
        }
        FastOps {
            fma: false,
            sum_sq: base.sum_sq,
            sum_sq_until: base.sum_sq_until,
            sum_sq_f32: scalar_sum_sq_f32,
            exact_sum_sq: base.sum_sq,
            exact_sum_sq_until: base.sum_sq_until,
        }
    })
}

/// Portable f32 squared-difference sum: eight scalar lanes mirroring the
/// 8-wide vector shape, combined pairwise and widened to f64 at the end. No
/// bit-identity is promised between this and the FMA f32 kernel — only one
/// of them is ever live in a process.
fn scalar_sum_sq_f32(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut l = [0.0f32; LANES_F32];
    let mut ca = a.chunks_exact(LANES_F32);
    let mut cb = b.chunks_exact(LANES_F32);
    for (x, y) in (&mut ca).zip(&mut cb) {
        for j in 0..LANES_F32 {
            let d = x[j] - y[j];
            l[j] += d * d;
        }
    }
    for (j, (&x, &y)) in ca.remainder().iter().zip(cb.remainder()).enumerate() {
        let d = x - y;
        l[j] += d * d;
    }
    let s = ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
    s as f64
}

/// Fixed-order lane combine for sums: `(l0 + l1) + (l2 + l3)`.
#[inline(always)]
fn combine_sum(l: [f64; LANES]) -> f64 {
    (l[0] + l[1]) + (l[2] + l[3])
}

/// Fixed-order lane combine for maxima.
#[inline(always)]
fn combine_max(l: [f64; LANES]) -> f64 {
    l[0].max(l[1]).max(l[2].max(l[3]))
}

/// The portable scalar-unrolled backend: the reference the SIMD backends
/// must agree with bitwise.
mod scalar {
    use super::{combine_max, combine_sum, LANES};

    /// Canonical full reduction with `+`.
    #[inline(always)]
    pub(super) fn sum<T: Fn(f64, f64) -> f64>(a: &[f64], b: &[f64], term: T) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let mut l = [0.0f64; LANES];
        let mut ca = a.chunks_exact(LANES);
        let mut cb = b.chunks_exact(LANES);
        for (x, y) in (&mut ca).zip(&mut cb) {
            l[0] += term(x[0], y[0]);
            l[1] += term(x[1], y[1]);
            l[2] += term(x[2], y[2]);
            l[3] += term(x[3], y[3]);
        }
        for (j, (&x, &y)) in ca.remainder().iter().zip(cb.remainder()).enumerate() {
            l[j] += term(x, y);
        }
        combine_sum(l)
    }

    /// Canonical full reduction with `max`.
    #[inline(always)]
    pub(super) fn fold_max<T: Fn(f64, f64) -> f64>(a: &[f64], b: &[f64], term: T) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let mut l = [0.0f64; LANES];
        let mut ca = a.chunks_exact(LANES);
        let mut cb = b.chunks_exact(LANES);
        for (x, y) in (&mut ca).zip(&mut cb) {
            l[0] = l[0].max(term(x[0], y[0]));
            l[1] = l[1].max(term(x[1], y[1]));
            l[2] = l[2].max(term(x[2], y[2]));
            l[3] = l[3].max(term(x[3], y[3]));
        }
        for (j, (&x, &y)) in ca.remainder().iter().zip(cb.remainder()).enumerate() {
            l[j] = l[j].max(term(x, y));
        }
        combine_max(l)
    }

    /// Canonical early-abandoning `+` reduction (checks every 8 coords).
    #[inline(always)]
    pub(super) fn sum_until<T: Fn(f64, f64) -> f64>(
        a: &[f64],
        b: &[f64],
        threshold: f64,
        term: T,
    ) -> Option<f64> {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let mut l = [0.0f64; LANES];
        let mut i = 0usize;
        while n - i >= 2 * LANES {
            for off in [0, LANES] {
                let (x, y) = (&a[i + off..i + off + LANES], &b[i + off..i + off + LANES]);
                l[0] += term(x[0], y[0]);
                l[1] += term(x[1], y[1]);
                l[2] += term(x[2], y[2]);
                l[3] += term(x[3], y[3]);
            }
            i += 2 * LANES;
            if combine_sum(l) >= threshold {
                return None;
            }
        }
        if n - i >= LANES {
            let (x, y) = (&a[i..i + LANES], &b[i..i + LANES]);
            l[0] += term(x[0], y[0]);
            l[1] += term(x[1], y[1]);
            l[2] += term(x[2], y[2]);
            l[3] += term(x[3], y[3]);
            i += LANES;
        }
        let mut j = 0usize;
        while i < n {
            l[j] += term(a[i], b[i]);
            j += 1;
            i += 1;
        }
        Some(combine_sum(l))
    }

    /// Canonical early-abandoning `max` reduction (checks every 8 coords).
    #[inline(always)]
    pub(super) fn max_until<T: Fn(f64, f64) -> f64>(
        a: &[f64],
        b: &[f64],
        threshold: f64,
        term: T,
    ) -> Option<f64> {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let mut l = [0.0f64; LANES];
        let mut i = 0usize;
        while n - i >= 2 * LANES {
            for off in [0, LANES] {
                let (x, y) = (&a[i + off..i + off + LANES], &b[i + off..i + off + LANES]);
                l[0] = l[0].max(term(x[0], y[0]));
                l[1] = l[1].max(term(x[1], y[1]));
                l[2] = l[2].max(term(x[2], y[2]));
                l[3] = l[3].max(term(x[3], y[3]));
            }
            i += 2 * LANES;
            if combine_max(l) >= threshold {
                return None;
            }
        }
        if n - i >= LANES {
            let (x, y) = (&a[i..i + LANES], &b[i..i + LANES]);
            l[0] = l[0].max(term(x[0], y[0]));
            l[1] = l[1].max(term(x[1], y[1]));
            l[2] = l[2].max(term(x[2], y[2]));
            l[3] = l[3].max(term(x[3], y[3]));
            i += LANES;
        }
        let mut j = 0usize;
        while i < n {
            l[j] = l[j].max(term(a[i], b[i]));
            j += 1;
            i += 1;
        }
        Some(combine_max(l))
    }

    #[inline(always)]
    fn sq(x: f64, y: f64) -> f64 {
        let d = x - y;
        d * d
    }

    #[inline(always)]
    fn ad(x: f64, y: f64) -> f64 {
        (x - y).abs()
    }

    pub(super) fn sum_sq(a: &[f64], b: &[f64]) -> f64 {
        sum(a, b, sq)
    }
    pub(super) fn sum_abs(a: &[f64], b: &[f64]) -> f64 {
        sum(a, b, ad)
    }
    pub(super) fn max_abs(a: &[f64], b: &[f64]) -> f64 {
        fold_max(a, b, ad)
    }
    pub(super) fn sum_sq_until(a: &[f64], b: &[f64], t: f64) -> Option<f64> {
        sum_until(a, b, t, sq)
    }
    pub(super) fn sum_abs_until(a: &[f64], b: &[f64], t: f64) -> Option<f64> {
        sum_until(a, b, t, ad)
    }
    pub(super) fn max_abs_until(a: &[f64], b: &[f64], t: f64) -> Option<f64> {
        max_until(a, b, t, ad)
    }
}

static SCALAR_OPS: KernelOps = KernelOps {
    backend: Backend::Scalar,
    sum_sq: scalar::sum_sq,
    sum_abs: scalar::sum_abs,
    max_abs: scalar::max_abs,
    sum_sq_until: scalar::sum_sq_until,
    sum_abs_until: scalar::sum_abs_until,
    max_abs_until: scalar::max_abs_until,
};

/// SSE2 and AVX2 backends. Lane `j` of the (logical) 4-lane accumulator is
/// exactly canonical lane `j`: AVX2 keeps all four in one `__m256d`; SSE2
/// splits them across two `__m128d` registers (lanes 0–1 and 2–3). Both
/// extract the lanes and combine in scalar code, and both use only
/// IEEE-exact vector ops (no FMA), so completed accumulations are
/// bit-identical to the scalar reference.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{combine_max, combine_sum, Backend, KernelOps, LANES};
    use core::arch::x86_64::*;

    /// Generates one AVX2 full-reduction + until-reduction pair. The term
    /// and fold are spliced in as token fragments so every operation lives
    /// inside the `#[target_feature(enable = "avx2")]` function body and
    /// inlines fully.
    macro_rules! avx2_pair {
        ($sum:ident, $until:ident,
         vec($vx:ident, $vy:ident) $vterm:block,
         sc($sx:ident, $sy:ident) $sterm:block,
         fold = $fold:ident, sfold = $sfold:ident, combine = $combine:ident) => {
            #[target_feature(enable = "avx2")]
            unsafe fn $sum(a: &[f64], b: &[f64]) -> f64 {
                debug_assert_eq!(a.len(), b.len());
                let n = a.len();
                let (pa, pb) = (a.as_ptr(), b.as_ptr());
                let mut acc = _mm256_setzero_pd();
                let mut i = 0usize;
                while n - i >= LANES {
                    let $vx = _mm256_loadu_pd(pa.add(i));
                    let $vy = _mm256_loadu_pd(pb.add(i));
                    let t = $vterm;
                    acc = $fold(acc, t);
                    i += LANES;
                }
                let mut l = [0.0f64; LANES];
                _mm256_storeu_pd(l.as_mut_ptr(), acc);
                let mut j = 0usize;
                while i < n {
                    let ($sx, $sy) = (*pa.add(i), *pb.add(i));
                    let t = $sterm;
                    l[j] = $sfold(l[j], t);
                    j += 1;
                    i += 1;
                }
                $combine(l)
            }

            #[target_feature(enable = "avx2")]
            unsafe fn $until(a: &[f64], b: &[f64], threshold: f64) -> Option<f64> {
                debug_assert_eq!(a.len(), b.len());
                let n = a.len();
                let (pa, pb) = (a.as_ptr(), b.as_ptr());
                let mut acc = _mm256_setzero_pd();
                let mut i = 0usize;
                while n - i >= 2 * LANES {
                    let $vx = _mm256_loadu_pd(pa.add(i));
                    let $vy = _mm256_loadu_pd(pb.add(i));
                    let t = $vterm;
                    acc = $fold(acc, t);
                    let $vx = _mm256_loadu_pd(pa.add(i + LANES));
                    let $vy = _mm256_loadu_pd(pb.add(i + LANES));
                    let t = $vterm;
                    acc = $fold(acc, t);
                    i += 2 * LANES;
                    let mut l = [0.0f64; LANES];
                    _mm256_storeu_pd(l.as_mut_ptr(), acc);
                    if $combine(l) >= threshold {
                        return None;
                    }
                }
                if n - i >= LANES {
                    let $vx = _mm256_loadu_pd(pa.add(i));
                    let $vy = _mm256_loadu_pd(pb.add(i));
                    let t = $vterm;
                    acc = $fold(acc, t);
                    i += LANES;
                }
                let mut l = [0.0f64; LANES];
                _mm256_storeu_pd(l.as_mut_ptr(), acc);
                let mut j = 0usize;
                while i < n {
                    let ($sx, $sy) = (*pa.add(i), *pb.add(i));
                    let t = $sterm;
                    l[j] = $sfold(l[j], t);
                    j += 1;
                    i += 1;
                }
                Some($combine(l))
            }
        };
    }

    /// Generates one SSE2 pair: `acc0` holds canonical lanes 0-1, `acc1`
    /// lanes 2-3. SSE2 is part of the `x86_64` baseline, so these need no
    /// runtime detection for soundness.
    macro_rules! sse2_pair {
        ($sum:ident, $until:ident,
         vec($vx:ident, $vy:ident) $vterm:block,
         sc($sx:ident, $sy:ident) $sterm:block,
         fold = $fold:ident, sfold = $sfold:ident, combine = $combine:ident) => {
            #[target_feature(enable = "sse2")]
            unsafe fn $sum(a: &[f64], b: &[f64]) -> f64 {
                debug_assert_eq!(a.len(), b.len());
                let n = a.len();
                let (pa, pb) = (a.as_ptr(), b.as_ptr());
                let mut acc0 = _mm_setzero_pd();
                let mut acc1 = _mm_setzero_pd();
                let mut i = 0usize;
                while n - i >= LANES {
                    let $vx = _mm_loadu_pd(pa.add(i));
                    let $vy = _mm_loadu_pd(pb.add(i));
                    let t = $vterm;
                    acc0 = $fold(acc0, t);
                    let $vx = _mm_loadu_pd(pa.add(i + 2));
                    let $vy = _mm_loadu_pd(pb.add(i + 2));
                    let t = $vterm;
                    acc1 = $fold(acc1, t);
                    i += LANES;
                }
                let mut l = [0.0f64; LANES];
                _mm_storeu_pd(l.as_mut_ptr(), acc0);
                _mm_storeu_pd(l.as_mut_ptr().add(2), acc1);
                let mut j = 0usize;
                while i < n {
                    let ($sx, $sy) = (*pa.add(i), *pb.add(i));
                    let t = $sterm;
                    l[j] = $sfold(l[j], t);
                    j += 1;
                    i += 1;
                }
                $combine(l)
            }

            #[target_feature(enable = "sse2")]
            unsafe fn $until(a: &[f64], b: &[f64], threshold: f64) -> Option<f64> {
                debug_assert_eq!(a.len(), b.len());
                let n = a.len();
                let (pa, pb) = (a.as_ptr(), b.as_ptr());
                let mut acc0 = _mm_setzero_pd();
                let mut acc1 = _mm_setzero_pd();
                let mut i = 0usize;
                while n - i >= 2 * LANES {
                    let mut off = 0usize;
                    while off < 2 * LANES {
                        let $vx = _mm_loadu_pd(pa.add(i + off));
                        let $vy = _mm_loadu_pd(pb.add(i + off));
                        let t = $vterm;
                        acc0 = $fold(acc0, t);
                        let $vx = _mm_loadu_pd(pa.add(i + off + 2));
                        let $vy = _mm_loadu_pd(pb.add(i + off + 2));
                        let t = $vterm;
                        acc1 = $fold(acc1, t);
                        off += LANES;
                    }
                    i += 2 * LANES;
                    let mut l = [0.0f64; LANES];
                    _mm_storeu_pd(l.as_mut_ptr(), acc0);
                    _mm_storeu_pd(l.as_mut_ptr().add(2), acc1);
                    if $combine(l) >= threshold {
                        return None;
                    }
                }
                if n - i >= LANES {
                    let $vx = _mm_loadu_pd(pa.add(i));
                    let $vy = _mm_loadu_pd(pb.add(i));
                    let t = $vterm;
                    acc0 = $fold(acc0, t);
                    let $vx = _mm_loadu_pd(pa.add(i + 2));
                    let $vy = _mm_loadu_pd(pb.add(i + 2));
                    let t = $vterm;
                    acc1 = $fold(acc1, t);
                    i += LANES;
                }
                let mut l = [0.0f64; LANES];
                _mm_storeu_pd(l.as_mut_ptr(), acc0);
                _mm_storeu_pd(l.as_mut_ptr().add(2), acc1);
                let mut j = 0usize;
                while i < n {
                    let ($sx, $sy) = (*pa.add(i), *pb.add(i));
                    let t = $sterm;
                    l[j] = $sfold(l[j], t);
                    j += 1;
                    i += 1;
                }
                Some($combine(l))
            }
        };
    }

    #[inline(always)]
    fn lane_add(l: f64, t: f64) -> f64 {
        l + t
    }
    #[inline(always)]
    fn lane_max(l: f64, t: f64) -> f64 {
        l.max(t)
    }

    // AVX2 fold primitives: plain wrappers so the macro can splice an
    // identifier; they carry the feature attribute so they inline into the
    // generated kernels.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn v4_add(a: __m256d, t: __m256d) -> __m256d {
        _mm256_add_pd(a, t)
    }
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn v4_max(a: __m256d, t: __m256d) -> __m256d {
        // Operand order matters for NaN terms: `maxpd` returns the *second*
        // operand when either is NaN, while the scalar reference's
        // `f64::max(lane, term)` discards a NaN term. Passing the term
        // first and the accumulator second reproduces the scalar semantics
        // bit for bit (a NaN term leaves the accumulator untouched, and a
        // NaN can therefore never enter the accumulator). For non-NaN
        // operands `maxpd` is exact and symmetric (terms are `abs` results,
        // so the ±0 tie-order quirk cannot arise).
        _mm256_max_pd(t, a)
    }
    #[target_feature(enable = "sse2")]
    #[inline]
    unsafe fn v2_add(a: __m128d, t: __m128d) -> __m128d {
        _mm_add_pd(a, t)
    }
    #[target_feature(enable = "sse2")]
    #[inline]
    unsafe fn v2_max(a: __m128d, t: __m128d) -> __m128d {
        // Same NaN-discarding operand order as `v4_max` above.
        _mm_max_pd(t, a)
    }

    avx2_pair!(
        avx2_sum_sq, avx2_sum_sq_until,
        vec(x, y) { let d = _mm256_sub_pd(x, y); _mm256_mul_pd(d, d) },
        sc(x, y) { let d = x - y; d * d },
        fold = v4_add, sfold = lane_add, combine = combine_sum
    );
    avx2_pair!(
        avx2_sum_abs, avx2_sum_abs_until,
        vec(x, y) { _mm256_andnot_pd(_mm256_set1_pd(-0.0), _mm256_sub_pd(x, y)) },
        sc(x, y) { (x - y).abs() },
        fold = v4_add, sfold = lane_add, combine = combine_sum
    );
    avx2_pair!(
        avx2_max_abs, avx2_max_abs_until,
        vec(x, y) { _mm256_andnot_pd(_mm256_set1_pd(-0.0), _mm256_sub_pd(x, y)) },
        sc(x, y) { (x - y).abs() },
        fold = v4_max, sfold = lane_max, combine = combine_max
    );

    sse2_pair!(
        sse2_sum_sq, sse2_sum_sq_until,
        vec(x, y) { let d = _mm_sub_pd(x, y); _mm_mul_pd(d, d) },
        sc(x, y) { let d = x - y; d * d },
        fold = v2_add, sfold = lane_add, combine = combine_sum
    );
    sse2_pair!(
        sse2_sum_abs, sse2_sum_abs_until,
        vec(x, y) { _mm_andnot_pd(_mm_set1_pd(-0.0), _mm_sub_pd(x, y)) },
        sc(x, y) { (x - y).abs() },
        fold = v2_add, sfold = lane_add, combine = combine_sum
    );
    sse2_pair!(
        sse2_max_abs, sse2_max_abs_until,
        vec(x, y) { _mm_andnot_pd(_mm_set1_pd(-0.0), _mm_sub_pd(x, y)) },
        sc(x, y) { (x - y).abs() },
        fold = v2_max, sfold = lane_max, combine = combine_max
    );

    // ---------------------------------------------------------------------
    // Fast-tier kernels (FMA). These deliberately break the canonical order:
    // two accumulator registers halve the add-chain latency and fused
    // multiply-adds skip the intermediate product rounding. Their own
    // accumulation rule is positional — term `i` fuses into logical lane
    // `i mod 8` (lanes 0–3 live in `acc0`, 4–7 in `acc1`), the scalar tail
    // fuses into the *pre-combine* lane values with `mul_add`, and the
    // lanes combine as `(l0+l4) + (l1+l5)` etc. (exactly the vector add of
    // `acc0`/`acc1` followed by the canonical 4-lane combine). Because the
    // lane a term lands in depends only on its position and a zero term is
    // an exact no-op under `fmadd`, zero padding is bit-invariant — so the
    // fast tile path over padded rows agrees bitwise with the fast
    // one-to-one path over logical slices, *within* the tier. Full and
    // until variants share this shape, so completed until accumulations
    // are bit-identical to the full reduction. Terms stay non-negative and
    // `fmadd` is a single correctly-rounded (hence monotone) operation, so
    // the 8-coordinate early-abandonment argument from the module docs
    // carries over.

    /// Combines the 8 logical fast-tier lanes: the vector add of the two
    /// accumulators followed by the canonical 4-lane combine.
    #[inline(always)]
    fn combine_fast(l: [f64; 8]) -> f64 {
        let m = [l[0] + l[4], l[1] + l[5], l[2] + l[6], l[3] + l[7]];
        combine_sum(m)
    }

    /// [`combine_fast`] with the lane-pair adds done in vector — bit-
    /// identical (`vaddpd` is the exact lanewise add), but one store and
    /// three scalar adds instead of two stores and seven. This is the hot
    /// epilogue: every padded stride is a multiple of 4, so the scalar-tail
    /// path that needs the lane array almost never runs.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[inline]
    unsafe fn combine_accs(acc0: __m256d, acc1: __m256d) -> f64 {
        let mut m = [0.0f64; LANES];
        _mm256_storeu_pd(m.as_mut_ptr(), _mm256_add_pd(acc0, acc1));
        combine_sum(m)
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn fma_sum_sq(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut i = 0usize;
        while n - i >= 2 * LANES {
            let d0 = _mm256_sub_pd(_mm256_loadu_pd(pa.add(i)), _mm256_loadu_pd(pb.add(i)));
            acc0 = _mm256_fmadd_pd(d0, d0, acc0);
            let d1 = _mm256_sub_pd(
                _mm256_loadu_pd(pa.add(i + LANES)),
                _mm256_loadu_pd(pb.add(i + LANES)),
            );
            acc1 = _mm256_fmadd_pd(d1, d1, acc1);
            i += 2 * LANES;
        }
        let mut j = 0usize; // logical lane of the next term: i mod 8
        if n - i >= LANES {
            let d = _mm256_sub_pd(_mm256_loadu_pd(pa.add(i)), _mm256_loadu_pd(pb.add(i)));
            acc0 = _mm256_fmadd_pd(d, d, acc0);
            i += LANES;
            j = LANES;
        }
        if i == n {
            return combine_accs(acc0, acc1);
        }
        let mut l = [0.0f64; 2 * LANES];
        _mm256_storeu_pd(l.as_mut_ptr(), acc0);
        _mm256_storeu_pd(l.as_mut_ptr().add(LANES), acc1);
        while i < n {
            let d = *pa.add(i) - *pb.add(i);
            l[j] = d.mul_add(d, l[j]);
            j += 1;
            i += 1;
        }
        combine_fast(l)
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn fma_sum_sq_until(a: &[f64], b: &[f64], threshold: f64) -> Option<f64> {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut i = 0usize;
        while n - i >= 2 * LANES {
            let d0 = _mm256_sub_pd(_mm256_loadu_pd(pa.add(i)), _mm256_loadu_pd(pb.add(i)));
            acc0 = _mm256_fmadd_pd(d0, d0, acc0);
            let d1 = _mm256_sub_pd(
                _mm256_loadu_pd(pa.add(i + LANES)),
                _mm256_loadu_pd(pb.add(i + LANES)),
            );
            acc1 = _mm256_fmadd_pd(d1, d1, acc1);
            i += 2 * LANES;
            if combine_accs(acc0, acc1) >= threshold {
                return None;
            }
        }
        let mut j = 0usize;
        if n - i >= LANES {
            let d = _mm256_sub_pd(_mm256_loadu_pd(pa.add(i)), _mm256_loadu_pd(pb.add(i)));
            acc0 = _mm256_fmadd_pd(d, d, acc0);
            i += LANES;
            j = LANES;
        }
        if i == n {
            return Some(combine_accs(acc0, acc1));
        }
        let mut l = [0.0f64; 2 * LANES];
        _mm256_storeu_pd(l.as_mut_ptr(), acc0);
        _mm256_storeu_pd(l.as_mut_ptr().add(LANES), acc1);
        while i < n {
            let d = *pa.add(i) - *pb.add(i);
            l[j] = d.mul_add(d, l[j]);
            j += 1;
            i += 1;
        }
        Some(combine_fast(l))
    }

    /// Combines the 16 logical f32 lanes the same way: vector add of the
    /// accumulators, then pairwise.
    #[inline(always)]
    fn combine_fast_f32(l: [f32; 16]) -> f64 {
        let mut m = [0.0f32; 8];
        for j in 0..8 {
            m[j] = l[j] + l[j + 8];
        }
        let s = ((m[0] + m[1]) + (m[2] + m[3])) + ((m[4] + m[5]) + (m[6] + m[7]));
        s as f64
    }

    /// [`combine_fast_f32`] with the lane-pair adds in vector (`vaddps` is
    /// the exact lanewise add), for the tail-free epilogue.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[inline]
    unsafe fn combine_accs_f32(acc0: __m256, acc1: __m256) -> f64 {
        let mut m = [0.0f32; 8];
        _mm256_storeu_ps(m.as_mut_ptr(), _mm256_add_ps(acc0, acc1));
        let s = ((m[0] + m[1]) + (m[2] + m[3])) + ((m[4] + m[5]) + (m[6] + m[7]));
        s as f64
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn fma_sum_sq_f32(a: &[f32], b: &[f32]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        const L32: usize = super::LANES_F32;
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut i = 0usize;
        while n - i >= 2 * L32 {
            let d0 = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
            acc0 = _mm256_fmadd_ps(d0, d0, acc0);
            let d1 = _mm256_sub_ps(
                _mm256_loadu_ps(pa.add(i + L32)),
                _mm256_loadu_ps(pb.add(i + L32)),
            );
            acc1 = _mm256_fmadd_ps(d1, d1, acc1);
            i += 2 * L32;
        }
        let mut j = 0usize;
        if n - i >= L32 {
            let d = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
            acc0 = _mm256_fmadd_ps(d, d, acc0);
            i += L32;
            j = L32;
        }
        if i == n {
            return combine_accs_f32(acc0, acc1);
        }
        let mut l = [0.0f32; 2 * L32];
        _mm256_storeu_ps(l.as_mut_ptr(), acc0);
        _mm256_storeu_ps(l.as_mut_ptr().add(L32), acc1);
        while i < n {
            let d = *pa.add(i) - *pb.add(i);
            l[j] = d.mul_add(d, l[j]);
            j += 1;
            i += 1;
        }
        combine_fast_f32(l)
    }

    // Safe wrappers for the fast tier: sound because `super::fast_ops` only
    // installs them after `is_x86_feature_detected!` confirmed AVX2 + FMA.
    pub(super) fn w_fma_sum_sq(a: &[f64], b: &[f64]) -> f64 {
        unsafe { fma_sum_sq(a, b) }
    }
    pub(super) fn w_fma_sum_sq_until(a: &[f64], b: &[f64], t: f64) -> Option<f64> {
        unsafe { fma_sum_sq_until(a, b, t) }
    }
    pub(super) fn w_fma_sum_sq_f32(a: &[f32], b: &[f32]) -> f64 {
        unsafe { fma_sum_sq_f32(a, b) }
    }

    // Safe wrappers stored in the dispatch tables. The AVX2 wrappers are
    // sound because `super::ops` never hands out `AVX2_OPS` unless
    // `is_x86_feature_detected!("avx2")` succeeded on this host.
    macro_rules! wrap {
        ($w:ident, $inner:ident, sum) => {
            fn $w(a: &[f64], b: &[f64]) -> f64 {
                unsafe { $inner(a, b) }
            }
        };
        ($w:ident, $inner:ident, until) => {
            fn $w(a: &[f64], b: &[f64], t: f64) -> Option<f64> {
                unsafe { $inner(a, b, t) }
            }
        };
    }

    wrap!(w_avx2_sum_sq, avx2_sum_sq, sum);
    wrap!(w_avx2_sum_abs, avx2_sum_abs, sum);
    wrap!(w_avx2_max_abs, avx2_max_abs, sum);
    wrap!(w_avx2_sum_sq_until, avx2_sum_sq_until, until);
    wrap!(w_avx2_sum_abs_until, avx2_sum_abs_until, until);
    wrap!(w_avx2_max_abs_until, avx2_max_abs_until, until);
    wrap!(w_sse2_sum_sq, sse2_sum_sq, sum);
    wrap!(w_sse2_sum_abs, sse2_sum_abs, sum);
    wrap!(w_sse2_max_abs, sse2_max_abs, sum);
    wrap!(w_sse2_sum_sq_until, sse2_sum_sq_until, until);
    wrap!(w_sse2_sum_abs_until, sse2_sum_abs_until, until);
    wrap!(w_sse2_max_abs_until, sse2_max_abs_until, until);

    pub(super) static AVX2_OPS: KernelOps = KernelOps {
        backend: Backend::Avx2,
        sum_sq: w_avx2_sum_sq,
        sum_abs: w_avx2_sum_abs,
        max_abs: w_avx2_max_abs,
        sum_sq_until: w_avx2_sum_sq_until,
        sum_abs_until: w_avx2_sum_abs_until,
        max_abs_until: w_avx2_max_abs_until,
    };

    pub(super) static SSE2_OPS: KernelOps = KernelOps {
        backend: Backend::Sse2,
        sum_sq: w_sse2_sum_sq,
        sum_abs: w_sse2_sum_abs,
        max_abs: w_sse2_max_abs,
        sum_sq_until: w_sse2_sum_sq_until,
        sum_abs_until: w_sse2_sum_abs_until,
        max_abs_until: w_sse2_max_abs_until,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random coordinates covering ties, subnormals,
    /// and magnitudes that overflow squared terms.
    fn vectors(seed: u64, len: usize) -> (Vec<f64>, Vec<f64>) {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let pick = |r: u64| -> f64 {
            match r % 7 {
                0 => 0.5 * ((r >> 8) % 9) as f64,
                1 => -0.5 * ((r >> 8) % 9) as f64,
                2 => 1e-310 * ((r >> 8) % 5) as f64, // subnormal gaps
                3 => 1e160,                          // squared term overflows
                4 => -1e160,
                5 => ((r >> 8) % 1000) as f64 / 997.0,
                _ => -(((r >> 8) % 1000) as f64) / 991.0,
            }
        };
        let a = (0..len).map(|_| pick(next())).collect();
        let b = (0..len).map(|_| pick(next())).collect();
        (a, b)
    }

    fn bits(x: f64) -> u64 {
        x.to_bits()
    }

    #[test]
    fn backends_agree_bitwise_on_full_reductions() {
        let backends = available();
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 31, 32, 33, 100] {
            for seed in 0..50u64 {
                let (a, b) = vectors(seed.wrapping_add(len as u64 * 1000), len);
                let reference = &SCALAR_OPS;
                for &be in &backends {
                    let o = ops(be).unwrap();
                    assert_eq!(
                        bits(o.sum_sq(&a, &b)),
                        bits(reference.sum_sq(&a, &b)),
                        "sum_sq {be:?} len={len} seed={seed}"
                    );
                    assert_eq!(
                        bits(o.sum_abs(&a, &b)),
                        bits(reference.sum_abs(&a, &b)),
                        "sum_abs {be:?} len={len} seed={seed}"
                    );
                    assert_eq!(
                        bits(o.max_abs(&a, &b)),
                        bits(reference.max_abs(&a, &b)),
                        "max_abs {be:?} len={len} seed={seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn backends_agree_bitwise_on_until_reductions() {
        let backends = available();
        for len in [0usize, 1, 4, 7, 8, 9, 16, 24, 31, 32, 40, 64] {
            for seed in 0..40u64 {
                let (a, b) = vectors(seed.wrapping_add(len as u64 * 77), len);
                let full = SCALAR_OPS.sum_sq(&a, &b);
                // Thresholds straddling the full value, plus exact ties and
                // the degenerate edges.
                let thresholds = [
                    0.0,
                    f64::MIN_POSITIVE,
                    full * 0.25,
                    full * 0.5,
                    full,
                    full * 1.5,
                    f64::INFINITY,
                    f64::NEG_INFINITY,
                ];
                for &th in &thresholds {
                    let r = SCALAR_OPS.sum_sq_until(&a, &b, th);
                    for &be in &backends {
                        let o = ops(be).unwrap();
                        assert_eq!(
                            o.sum_sq_until(&a, &b, th).map(bits),
                            r.map(bits),
                            "sum_sq_until {be:?} len={len} seed={seed} th={th}"
                        );
                        assert_eq!(
                            o.sum_abs_until(&a, &b, th).map(bits),
                            SCALAR_OPS.sum_abs_until(&a, &b, th).map(bits),
                            "sum_abs_until {be:?} len={len} seed={seed} th={th}"
                        );
                        assert_eq!(
                            o.max_abs_until(&a, &b, th).map(bits),
                            SCALAR_OPS.max_abs_until(&a, &b, th).map(bits),
                            "max_abs_until {be:?} len={len} seed={seed} th={th}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn padding_with_zero_terms_is_bit_identity() {
        // The tile kernels run over rows padded to a multiple of 4 with
        // equal coordinates on both sides (terms +0.0); that must never
        // perturb the canonical accumulation.
        for len in [1usize, 2, 3, 5, 6, 7, 9, 13, 30] {
            for seed in 0..30u64 {
                let (mut a, mut b) = vectors(seed * 31 + len as u64, len);
                let plain_sq = SCALAR_OPS.sum_sq(&a, &b);
                let plain_ab = SCALAR_OPS.sum_abs(&a, &b);
                let plain_mx = SCALAR_OPS.max_abs(&a, &b);
                let padded = pad_dim(len);
                a.resize(padded, 0.0);
                b.resize(padded, 0.0);
                for o in available().iter().filter_map(|&be| ops(be)) {
                    assert_eq!(bits(o.sum_sq(&a, &b)), bits(plain_sq));
                    assert_eq!(bits(o.sum_abs(&a, &b)), bits(plain_ab));
                    assert_eq!(bits(o.max_abs(&a, &b)), bits(plain_mx));
                }
            }
        }
    }

    #[test]
    fn until_none_implies_completed_at_or_over_threshold() {
        for seed in 0..60u64 {
            let (a, b) = vectors(seed, 37);
            let full = SCALAR_OPS.sum_abs(&a, &b);
            for frac in [0.1, 0.5, 0.9, 1.0, 1.1] {
                let th = full * frac;
                match SCALAR_OPS.sum_abs_until(&a, &b, th) {
                    None => assert!(full >= th, "abandoned below threshold"),
                    Some(acc) => {
                        assert_eq!(bits(acc), bits(full), "completed sum must be canonical")
                    }
                }
            }
        }
    }

    #[test]
    fn minkowski_power_sums_share_the_canonical_order() {
        let (a, b) = vectors(9, 23);
        // p = 1 must agree bitwise with sum_abs: identical terms, identical
        // order. (powf(x, 1.0) == x exactly.)
        assert_eq!(bits(sum_pow(&a, &b, 1.0)), bits(SCALAR_OPS.sum_abs(&a, &b)));
        let full = sum_pow(&a, &b, 3.0);
        // At an infinite threshold the accumulation either completes with
        // the canonical sum or abandons at a partial of `+∞` — which proves
        // the completed sum is `+∞` too.
        match sum_pow_until(&a, &b, 3.0, f64::INFINITY) {
            Some(acc) => assert_eq!(bits(acc), bits(full)),
            None => assert!(full.is_infinite()),
        }
        assert_eq!(sum_pow_until(&a, &b, 3.0, 0.0), None);
    }

    #[test]
    fn nan_terms_are_discarded_identically_on_every_backend() {
        // Queries are not validated the way Dataset coordinates are, so a
        // NaN can reach the kernels; the max fold must discard NaN terms on
        // every backend exactly like the scalar reference's `f64::max`.
        let a = [f64::NAN, 1.0, f64::NAN, -2.0, 0.5, f64::NAN, 3.0, 0.0, 1.5];
        let b = [0.0, 4.0, 1.0, -2.0, f64::NAN, 2.0, 0.0, 0.25, f64::NAN];
        let reference = SCALAR_OPS.max_abs(&a, &b);
        assert!(!reference.is_nan(), "scalar reference discards NaN terms");
        for be in available() {
            let o = ops(be).unwrap();
            assert_eq!(
                o.max_abs(&a, &b).to_bits(),
                reference.to_bits(),
                "max_abs {be:?}"
            );
            for th in [0.0, reference, f64::INFINITY] {
                assert_eq!(
                    o.max_abs_until(&a, &b, th).map(bits),
                    SCALAR_OPS.max_abs_until(&a, &b, th).map(bits),
                    "max_abs_until {be:?} th={th}"
                );
            }
        }
    }

    #[test]
    fn selection_reports_a_live_backend() {
        let sel = selected();
        assert!(available().contains(&sel.backend()));
        assert!(!sel.backend().name().is_empty());
        assert_eq!(pad_dim(0), 0);
        assert_eq!(pad_dim(1), 4);
        assert_eq!(pad_dim(4), 4);
        assert_eq!(pad_dim(5), 8);
        assert_eq!(pad_dim(32), 32);
        assert_eq!(pad_dim_f32(0), 0);
        assert_eq!(pad_dim_f32(1), 8);
        assert_eq!(pad_dim_f32(8), 8);
        assert_eq!(pad_dim_f32(9), 16);
    }

    #[test]
    fn tier_names_and_parsing_round_trip() {
        for t in [KernelTier::Exact, KernelTier::Fast, KernelTier::FastF32] {
            assert_eq!(KernelTier::parse(t.name()), Some(t));
        }
        assert_eq!(KernelTier::parse("fast_f32"), Some(KernelTier::FastF32));
        assert_eq!(KernelTier::parse("warp-speed"), None);
        assert!(!KernelTier::Exact.is_fast());
        assert!(KernelTier::Fast.is_fast());
        assert!(KernelTier::FastF32.is_fast());
        assert!(!KernelTier::Fast.wants_f32());
        assert!(KernelTier::FastF32.wants_f32());
        // The process default honors the env override (or is exact).
        match std::env::var("RKNN_KERNEL_TIER").ok().as_deref() {
            Some(s) if KernelTier::parse(s).is_some() => {
                assert_eq!(selected_tier(), KernelTier::parse(s).unwrap());
            }
            _ => assert_eq!(selected_tier(), KernelTier::Exact),
        }
    }

    /// Relative gap between two non-negative sums in ulps of the reference.
    fn ulp_gap(got: f64, want: f64) -> u64 {
        if got.to_bits() == want.to_bits() {
            return 0;
        }
        if got.is_nan() || want.is_nan() || got.is_sign_negative() || want.is_sign_negative() {
            return u64::MAX;
        }
        got.to_bits().abs_diff(want.to_bits())
    }

    #[test]
    fn fast_sum_sq_is_ulp_bounded_against_the_exact_scalar_reference() {
        let f = fast_ops();
        for len in [0usize, 1, 3, 4, 7, 8, 9, 12, 15, 16, 31, 32, 33, 100] {
            for seed in 0..50u64 {
                let (a, b) = vectors(seed.wrapping_add(len as u64 * 271), len);
                let want = SCALAR_OPS.sum_sq(&a, &b);
                let got = f.sum_sq(&a, &b);
                if want.is_infinite() {
                    assert_eq!(got, want, "len={len} seed={seed}");
                } else {
                    // Reassociating a non-negative sum perturbs it by
                    // O(len·ε) relative — a generous 8·(len+4) ulps.
                    let tol = 8 * (len as u64 + 4);
                    assert!(
                        ulp_gap(got, want) <= tol,
                        "len={len} seed={seed}: {got:e} vs {want:e}"
                    );
                }
                // Zero padding to the storage stride is bit-invariant even
                // under FMA: terms land in lanes by position and a zero
                // term is an exact no-op, so the fast tile path (padded
                // rows) and the fast one-to-one path (logical slices)
                // agree bitwise within the tier.
                let mut ap = a.clone();
                let mut bp = b.clone();
                ap.resize(pad_dim(len), 0.0);
                bp.resize(pad_dim(len), 0.0);
                assert_eq!(
                    f.sum_sq(&ap, &bp).to_bits(),
                    got.to_bits(),
                    "len={len} seed={seed}: f64 zero padding must not perturb"
                );
            }
        }
    }

    #[test]
    fn fast_until_completions_match_the_fast_full_reduction_bitwise() {
        // Within the fast tier, a completed until accumulation must be the
        // same bits as the full reduction — the fast tile path equates them.
        let f = fast_ops();
        for len in [1usize, 4, 7, 8, 9, 16, 31, 32, 40, 64] {
            for seed in 0..40u64 {
                let (a, b) = vectors(seed.wrapping_add(len as u64 * 13), len);
                let full = f.sum_sq(&a, &b);
                match f.sum_sq_until(&a, &b, f64::INFINITY) {
                    Some(acc) => assert_eq!(bits(acc), bits(full), "len={len} seed={seed}"),
                    None => assert!(full.is_infinite()),
                }
                // Abandonment is sound: None proves the total reached it.
                for frac in [0.25, 0.5, 1.0] {
                    let th = full * frac;
                    if f.sum_sq_until(&a, &b, th).is_none() {
                        assert!(full >= th, "len={len} seed={seed} frac={frac}");
                    }
                }
            }
        }
    }

    #[test]
    fn f32_kernels_approximate_the_f64_reference() {
        let f = fast_ops();
        for len in [0usize, 1, 7, 8, 9, 16, 17, 32, 100, 128] {
            for seed in 0..30u64 {
                // Bounded magnitudes: the f32 contract assumes coordinates
                // representable in f32 without squared-term overflow.
                let (a64, b64) = vectors(seed.wrapping_add(len as u64 * 31), len);
                let clamp = |v: f64| v.clamp(-1e15, 1e15);
                let a32: Vec<f32> = a64.iter().map(|&v| clamp(v) as f32).collect();
                let b32: Vec<f32> = b64.iter().map(|&v| clamp(v) as f32).collect();
                // The reference is f64 arithmetic on the *quantized* inputs:
                // input quantization is the storage layer's semantic; the
                // kernels only answer for arithmetic rounding.
                let aw: Vec<f64> = a32.iter().map(|&v| v as f64).collect();
                let bw: Vec<f64> = b32.iter().map(|&v| v as f64).collect();
                let want = SCALAR_OPS.sum_sq(&aw, &bw);
                for got in [f.sum_sq_f32(&a32, &b32), scalar_sum_sq_f32(&a32, &b32)] {
                    if want == 0.0 {
                        assert_eq!(got, 0.0, "len={len} seed={seed}");
                    } else {
                        let rel = (got - want).abs() / want.max(f64::MIN_POSITIVE);
                        // Non-negative f32 sums accumulate O(len·ε_f32)
                        // relative error; ~6e-8 per op, with headroom.
                        assert!(
                            rel <= 1e-5 * (len as f64 + 4.0) || want < 1e-60,
                            "len={len} seed={seed}: {got:e} vs {want:e} rel={rel:e}"
                        );
                    }
                }
                // Zero-padding f32 rows is value-preserving, as for f64.
                let padded = pad_dim_f32(len);
                let mut ap = a32.clone();
                let mut bp = b32.clone();
                ap.resize(padded, 0.0);
                bp.resize(padded, 0.0);
                assert_eq!(
                    f.sum_sq_f32(&ap, &bp).to_bits(),
                    f.sum_sq_f32(&a32, &b32).to_bits(),
                    "len={len} seed={seed}: f32 zero padding must not perturb"
                );
            }
        }
    }

    #[test]
    fn fast_tier_falls_back_to_exact_below_the_dimension_gate() {
        let f = fast_ops();
        for len in [0usize, 1, 3, 4, 7, 8, 9, 11, 12] {
            // Below the gate the fast tier must serve the exact kernels —
            // bit-identical to the scalar reference, not just ULP-close.
            assert!(!f.fma_at(len), "len={len} sits below FAST_MIN_DIM");
            for seed in 0..20u64 {
                let (a, b) = vectors(seed.wrapping_add(len as u64 * 7919), len);
                assert_eq!(
                    bits(f.sum_sq(&a, &b)),
                    bits(SCALAR_OPS.sum_sq(&a, &b)),
                    "len={len} seed={seed}: small-dim fast must be exact"
                );
                let th = SCALAR_OPS.sum_sq(&a, &b) * 0.5;
                assert_eq!(
                    f.sum_sq_until(&a, &b, th).map(bits),
                    SCALAR_OPS.sum_sq_until(&a, &b, th).map(bits),
                    "len={len} seed={seed}"
                );
            }
        }
        // The gate is invariant under storage padding: a logical length and
        // its padded stride always agree on kernel choice.
        for len in 0..64usize {
            assert_eq!(
                f.fma_at(len),
                f.fma_at(pad_dim(len)),
                "len={len}: pad_dim must not flip the kernel gate"
            );
        }
        if f.fma() {
            assert!(f.fma_at(FAST_MIN_DIM));
            assert!(f.fma_at(13), "pad_dim(13)=16 reaches the gate");
            assert!(!f.fma_at(12));
        }
    }

    #[test]
    fn fast_ops_report_fma_consistently_with_the_host() {
        let f = fast_ops();
        if f.fma() {
            assert!(fma_available(), "fma kernels require host FMA");
            assert_eq!(selected().backend(), Backend::Avx2);
        }
        // Pinning after first use is a no-op that returns the live table.
        let live = selected().backend();
        assert_eq!(pin_backend(Backend::Scalar).backend(), live);
    }
}
