//! Cooperative cancellation for long-running queries.
//!
//! A [`CancelToken`] is handed to a query by its driver (the serving
//! engine's per-request deadline, a caller's explicit abort) and checked by
//! the query at coarse block boundaries — tile blocks in the filter phase,
//! per-candidate verifications in refinement — so a wedged or obsolete
//! query releases its worker within one block of work instead of running to
//! completion. Checking is cheap (one relaxed atomic load, plus one clock
//! read when a deadline is set), and a query that is never cancelled is
//! byte-identical to an uncancellable run: the token influences *whether*
//! work continues, never what it computes.

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Instant;

/// A query was abandoned at a cancellation checkpoint before completing.
///
/// Carried as the `Err` of cancellable query entry points; the driver maps
/// it to its own typed error (deadline exceeded, explicit cancel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query cancelled before completion")
    }
}

impl std::error::Error for Cancelled {}

/// A cheap, cloneable handle that tells a running query to stop.
///
/// Cancellation has two independent sources, either of which trips the
/// token: an explicit [`cancel`](CancelToken::cancel) call (from any clone,
/// any thread), and an optional wall-clock deadline. A token with neither a
/// flag nor a deadline ([`CancelToken::never`]) never cancels and costs
/// nothing to check beyond a branch.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that can only be cancelled explicitly.
    pub fn new() -> Self {
        CancelToken {
            flag: Some(Arc::new(AtomicBool::new(false))),
            deadline: None,
        }
    }

    /// A token that never cancels — the zero-cost default for callers
    /// without a cancellation source.
    pub fn never() -> Self {
        CancelToken {
            flag: None,
            deadline: None,
        }
    }

    /// A token that trips once the wall clock reaches `deadline` (and can
    /// also be cancelled explicitly).
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            flag: Some(Arc::new(AtomicBool::new(false))),
            deadline: Some(deadline),
        }
    }

    /// Builds a token around an externally owned flag — the serving engine
    /// shares one flag between the submitter's ticket and the executing
    /// worker this way.
    pub fn from_flag(flag: Arc<AtomicBool>, deadline: Option<Instant>) -> Self {
        CancelToken {
            flag: Some(flag),
            deadline,
        }
    }

    /// The deadline this token trips at, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Trips the token: every clone sharing the flag observes the
    /// cancellation at its next checkpoint.
    pub fn cancel(&self) {
        if let Some(flag) = &self.flag {
            flag.store(true, Relaxed);
        }
    }

    /// Whether the token has tripped (explicitly or by deadline). This is
    /// the checkpoint call queries make at block granularity.
    pub fn is_cancelled(&self) -> bool {
        if let Some(flag) = &self.flag {
            if flag.load(Relaxed) {
                return true;
            }
        }
        match self.deadline {
            Some(deadline) => Instant::now() >= deadline,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn never_token_never_cancels() {
        let t = CancelToken::never();
        assert!(!t.is_cancelled());
        t.cancel(); // no flag: a no-op, not a panic
        assert!(!t.is_cancelled());
    }

    #[test]
    fn explicit_cancel_is_visible_to_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled());
    }

    #[test]
    fn past_deadline_trips_without_explicit_cancel() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        let far = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!far.is_cancelled());
    }

    #[test]
    fn shared_flag_links_ticket_and_worker() {
        let flag = Arc::new(AtomicBool::new(false));
        let worker_side = CancelToken::from_flag(Arc::clone(&flag), None);
        assert!(!worker_side.is_cancelled());
        flag.store(true, Relaxed);
        assert!(worker_side.is_cancelled());
    }
}
