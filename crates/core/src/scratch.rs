//! Reusable per-query working memory for batch RkNN execution.
//!
//! The paper's experiments (§7) answer an RkNN query from *every* point of
//! the dataset, and its cost model is dominated by metric evaluations. When
//! millions of queries stream through one engine, the per-query setup cost —
//! a fresh cursor heap, a fresh filter vector, pointer-chasing
//! `index.point(id)` lookups in the witness pass — becomes pure overhead.
//! [`QueryScratch`] bundles the three buffers the filter–refinement engine
//! needs so a worker allocates them once and reuses them for every query it
//! executes:
//!
//! * [`CursorScratch`] — neighbor storage an index cursor fills in place of
//!   allocating its own heap;
//! * a filter vector of [`FilterCandidate`] bookkeeping slots;
//! * a [`CandidateTile`] — a row-major copy of the filter set's coordinates,
//!   so the witness pass streams over contiguous cache-local memory instead
//!   of chasing ids back into the index.

use crate::bestfirst::BestFirst;
use crate::neighbor::{MaxByDist, Neighbor};
use crate::PointId;
use std::collections::BinaryHeap;

/// Caller-owned neighbor storage for an index cursor.
///
/// An index's scratch-accepting cursor entry point fills `entries` instead
/// of building its own container; the buffer's capacity survives across
/// queries. See `rknn_index::KnnIndex::cursor_with`.
#[derive(Debug, Clone, Default)]
pub struct CursorScratch {
    /// Neighbor records owned by the current cursor. Contents are
    /// meaningful only while that cursor is live.
    pub entries: Vec<Neighbor>,
    /// Backing storage for bounded-selection heaps (see
    /// `rknn_index::KnnIndex::cursor_bounded`); reused across queries.
    pub heap: Vec<MaxByDist>,
    /// Working memory for best-first tree traversals; reused across
    /// queries by every tree substrate's generic cursor.
    pub tree: TreeScratch,
}

impl CursorScratch {
    /// An empty scratch buffer.
    pub fn new() -> Self {
        CursorScratch::default()
    }
}

/// Reusable working memory for one best-first tree traversal.
///
/// The generic tree cursor (`rknn_index::traversal::TreeCursor`) owns no
/// containers of its own: the traversal queue and the bounded-mode emission
/// frontier both live here, so a batch worker that opens thousands of
/// cursors allocates the two heaps once and reuses their capacity for every
/// query. Both are cleared (allocation kept) each time a cursor is opened
/// on the scratch.
#[derive(Debug, Clone, Default)]
pub struct TreeScratch {
    /// The best-first queue of points and expandable nodes.
    pub queue: BestFirst,
    /// Bounded-mode emission frontier: a max-heap of the `limit` smallest
    /// `(distance, id)` keys pushed so far, whose top is the pruning
    /// threshold. Empty and unused for unbounded cursors.
    pub frontier: BinaryHeap<MaxByDist>,
}

impl TreeScratch {
    /// Empty traversal scratch.
    pub fn new() -> Self {
        TreeScratch::default()
    }

    /// Clears both heaps, keeping their allocations.
    pub fn reset(&mut self) {
        self.queue.clear();
        self.frontier.clear();
    }
}

/// Per-candidate bookkeeping of the filter–refinement engine: the state
/// Algorithm 1 tracks for every member of the filter set `F`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterCandidate {
    /// The candidate's point id.
    pub id: PointId,
    /// Its distance from the query, `d(q, ·)`.
    pub dist: f64,
    /// Witness count `W(·)`.
    pub witnesses: usize,
    /// Whether the candidate was lazily accepted (Assertion 2).
    pub accepted: bool,
}

/// A contiguous row-major tile of candidate coordinates.
///
/// Rows are appended as candidates join the filter set; row `i` holds the
/// coordinates of the `i`-th filter member, so a witness pass can iterate
/// the filter vector and the tile in lockstep over cache-local memory.
#[derive(Debug, Clone)]
pub struct CandidateTile {
    dim: usize,
    coords: Vec<f64>,
}

impl CandidateTile {
    /// An empty tile for points of dimensionality `dim`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "CandidateTile requires dim > 0");
        CandidateTile {
            dim,
            coords: Vec::new(),
        }
    }

    /// Dimensionality of the stored rows.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.coords.len() / self.dim
    }

    /// Whether the tile holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Appends one row, returning its index.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.dim()`.
    #[inline]
    pub fn push(&mut self, row: &[f64]) -> usize {
        assert_eq!(row.len(), self.dim, "tile row dimensionality mismatch");
        let idx = self.len();
        self.coords.extend_from_slice(row);
        idx
    }

    /// The coordinates of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterates over the stored rows in insertion order.
    #[inline]
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.coords.chunks_exact(self.dim)
    }

    /// Clears the rows, keeping the allocation.
    #[inline]
    pub fn clear(&mut self) {
        self.coords.clear();
    }

    /// Re-targets the tile at a (possibly different) dimensionality,
    /// clearing any rows but keeping the allocation.
    pub fn reset(&mut self, dim: usize) {
        assert!(dim > 0, "CandidateTile requires dim > 0");
        self.dim = dim;
        self.coords.clear();
    }
}

/// All working memory one worker needs to execute RkNN queries back to
/// back without allocating per query.
///
/// The three buffers are independent fields so the engine can borrow them
/// simultaneously (the cursor holds `cursor` while the witness pass mutates
/// `filter` and reads `tile`).
#[derive(Debug, Clone)]
pub struct QueryScratch {
    /// Storage for the index cursor.
    pub cursor: CursorScratch,
    /// The filter set's bookkeeping slots.
    pub filter: Vec<FilterCandidate>,
    /// The filter set's coordinates, row-aligned with `filter`.
    pub tile: CandidateTile,
}

impl QueryScratch {
    /// Fresh scratch for queries over points of dimensionality `dim`.
    pub fn new(dim: usize) -> Self {
        QueryScratch {
            cursor: CursorScratch::new(),
            filter: Vec::new(),
            tile: CandidateTile::new(dim),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_round_trips_rows() {
        let mut tile = CandidateTile::new(3);
        assert!(tile.is_empty());
        assert_eq!(tile.push(&[1.0, 2.0, 3.0]), 0);
        assert_eq!(tile.push(&[4.0, 5.0, 6.0]), 1);
        assert_eq!(tile.len(), 2);
        assert_eq!(tile.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(tile.row(1), &[4.0, 5.0, 6.0]);
        let rows: Vec<&[f64]> = tile.rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], &[4.0, 5.0, 6.0]);
        tile.clear();
        assert!(tile.is_empty());
        assert_eq!(tile.dim(), 3);
    }

    #[test]
    fn tile_reset_retargets_dimension() {
        let mut tile = CandidateTile::new(2);
        tile.push(&[1.0, 2.0]);
        tile.reset(4);
        assert!(tile.is_empty());
        assert_eq!(tile.dim(), 4);
        tile.push(&[0.0; 4]);
        assert_eq!(tile.len(), 1);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn tile_rejects_wrong_width() {
        let mut tile = CandidateTile::new(2);
        tile.push(&[1.0]);
    }

    #[test]
    fn scratch_fields_borrow_independently() {
        let mut s = QueryScratch::new(2);
        let QueryScratch {
            cursor,
            filter,
            tile,
        } = &mut s;
        cursor.entries.push(Neighbor::new(0, 1.0));
        filter.push(FilterCandidate {
            id: 0,
            dist: 1.0,
            witnesses: 0,
            accepted: false,
        });
        tile.push(&[0.5, 0.5]);
        assert_eq!(s.cursor.entries.len(), 1);
        assert_eq!(s.filter.len(), 1);
        assert_eq!(s.tile.len(), 1);
    }
}
