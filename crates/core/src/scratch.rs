//! Reusable per-query working memory for batch RkNN execution.
//!
//! The paper's experiments (§7) answer an RkNN query from *every* point of
//! the dataset, and its cost model is dominated by metric evaluations. When
//! millions of queries stream through one engine, the per-query setup cost —
//! a fresh cursor heap, a fresh filter vector, pointer-chasing
//! `index.point(id)` lookups in the witness pass — becomes pure overhead.
//! [`QueryScratch`] bundles the buffers the filter–refinement engine needs
//! so a worker allocates them once and reuses them for every query it
//! executes:
//!
//! * [`CursorScratch`] — neighbor storage an index cursor fills in place of
//!   allocating its own heap;
//! * a filter vector of [`FilterCandidate`] bookkeeping slots;
//! * a [`CandidateTile`] — a row-major, lane-padded copy of the filter
//!   set's coordinates, so the witness pass streams the SIMD tile kernel
//!   ([`crate::Metric::dist_tile`]) over contiguous cache-local memory
//!   instead of chasing ids back into the index;
//! * a [`TileEvalScratch`] — the padded query, bounds, and output buffers
//!   one tile evaluation needs.

use crate::bestfirst::BestFirst;
use crate::kernel;
use crate::neighbor::{MaxByDist, Neighbor};
use crate::PointId;
use std::collections::BinaryHeap;

/// Working buffers for one-query-to-many-rows tile evaluation
/// ([`crate::Metric::dist_tile`]): the zero-padded query, optional gathered
/// rows, per-row bounds, and per-row outputs. Reused across queries; all
/// invariants (pad coordinates stay zero) are maintained by the accessors.
///
/// Gathered tiles stay f64 in every kernel tier: the fast-f32 storage path
/// ([`crate::Metric::dist_tile_f32`]) applies only to contiguous
/// pre-quantized pool segments, where halved memory traffic pays — a
/// gather already touches the f64 rows, so quantizing per query would add
/// work, not save bandwidth.
#[derive(Debug, Clone, Default)]
pub struct TileEvalScratch {
    /// The query padded with zeros to the tile stride.
    pub qpad: Vec<f64>,
    /// Point ids pending tile evaluation (used by gather-style callers,
    /// e.g. the tree-traversal point batch).
    pub ids: Vec<PointId>,
    /// Gathered padded rows (`ids.len() * stride` coordinates, zeros past
    /// each row's logical dim).
    pub rows: Vec<f64>,
    /// Per-row pruning bounds.
    pub bounds: Vec<f64>,
    /// Per-row outputs (distance, or NaN when pruned).
    pub out: Vec<f64>,
    /// The logical dim the `rows` buffer is currently laid out for; a
    /// layout change re-zeroes the buffer so stale coordinates can never
    /// masquerade as padding.
    layout_dim: usize,
}

impl TileEvalScratch {
    /// Empty tile scratch.
    pub fn new() -> Self {
        TileEvalScratch::default()
    }

    /// Zero-pads `q` into [`TileEvalScratch::qpad`] and returns the stride.
    pub fn set_query(&mut self, q: &[f64]) -> usize {
        let stride = kernel::pad_dim(q.len());
        self.qpad.clear();
        self.qpad.resize(stride, 0.0);
        self.qpad[..q.len()].copy_from_slice(q);
        stride
    }

    /// Makes `rows` hold at least `n` rows of `pad_dim(dim)` coordinates
    /// with all pad positions zero, plus matching `bounds`/`out` capacity.
    /// Returns the stride.
    pub fn ensure_rows(&mut self, dim: usize, n: usize) -> usize {
        let stride = kernel::pad_dim(dim);
        if self.layout_dim != dim {
            // A different row layout may have left nonzero values where the
            // new layout expects padding; start from a clean buffer.
            self.rows.clear();
            self.layout_dim = dim;
        }
        if self.rows.len() < n * stride {
            self.rows.resize(n * stride, 0.0);
        }
        if self.bounds.len() < n {
            self.bounds.resize(n, 0.0);
        }
        if self.out.len() < n {
            self.out.resize(n, 0.0);
        }
        stride
    }

    /// Copies logical coordinates into row `i` (pad positions untouched —
    /// they are zero by the [`TileEvalScratch::ensure_rows`] invariant).
    #[inline]
    pub fn fill_row(&mut self, i: usize, coords: &[f64]) {
        let stride = kernel::pad_dim(self.layout_dim);
        debug_assert_eq!(coords.len(), self.layout_dim);
        self.rows[i * stride..i * stride + coords.len()].copy_from_slice(coords);
    }
}

/// Caller-owned neighbor storage for an index cursor.
///
/// An index's scratch-accepting cursor entry point fills `entries` instead
/// of building its own container; the buffer's capacity survives across
/// queries. See `rknn_index::KnnIndex::cursor_with`.
#[derive(Debug, Clone, Default)]
pub struct CursorScratch {
    /// Neighbor records owned by the current cursor. Contents are
    /// meaningful only while that cursor is live.
    pub entries: Vec<Neighbor>,
    /// Backing storage for bounded-selection heaps (see
    /// `rknn_index::KnnIndex::cursor_bounded`); reused across queries.
    pub heap: Vec<MaxByDist>,
    /// Working memory for best-first tree traversals; reused across
    /// queries by every tree substrate's generic cursor.
    pub tree: TreeScratch,
    /// Tile-evaluation buffers for sequential-scan fast paths.
    pub tiles: TileEvalScratch,
}

impl CursorScratch {
    /// An empty scratch buffer.
    pub fn new() -> Self {
        CursorScratch::default()
    }
}

/// Reusable working memory for one best-first tree traversal.
///
/// The generic tree cursor (`rknn_index::traversal::TreeCursor`) owns no
/// containers of its own: the traversal queue, the bounded-mode emission
/// frontier and the leaf-point tile batch all live here, so a batch worker
/// that opens thousands of cursors allocates them once and reuses their
/// capacity for every query. All are cleared (allocation kept) each time a
/// cursor is opened on the scratch.
#[derive(Debug, Clone, Default)]
pub struct TreeScratch {
    /// The best-first queue of points and expandable nodes.
    pub queue: BestFirst,
    /// Bounded-mode emission frontier: a max-heap of the `limit` smallest
    /// `(distance, id)` keys pushed so far, whose top is the pruning
    /// threshold. Empty and unused for unbounded cursors.
    pub frontier: BinaryHeap<MaxByDist>,
    /// Gather-tile buffers for batched candidate-point evaluation.
    pub tiles: TileEvalScratch,
}

impl TreeScratch {
    /// Empty traversal scratch.
    pub fn new() -> Self {
        TreeScratch::default()
    }

    /// Clears the heaps and any pending tile batch, keeping allocations.
    pub fn reset(&mut self) {
        self.queue.clear();
        self.frontier.clear();
        self.tiles.ids.clear();
    }
}

/// Per-candidate bookkeeping of the filter–refinement engine: the state
/// Algorithm 1 tracks for every member of the filter set `F`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterCandidate {
    /// The candidate's point id.
    pub id: PointId,
    /// Its distance from the query, `d(q, ·)`.
    pub dist: f64,
    /// Witness count `W(·)`.
    pub witnesses: usize,
    /// Whether the candidate was lazily accepted (Assertion 2).
    pub accepted: bool,
}

/// A contiguous row-major tile of candidate coordinates, rows padded with
/// zeros to the canonical lane multiple.
///
/// Rows are appended as candidates join the filter set; row `i` holds the
/// coordinates of the `i`-th filter member, so a witness pass can iterate
/// the filter vector and the tile in lockstep over cache-local memory — or
/// stream whole blocks of rows through [`crate::Metric::dist_tile`] via
/// [`CandidateTile::padded`]. The row accessors ([`CandidateTile::row`],
/// [`CandidateTile::rows`]) return the logical (unpadded) slices.
#[derive(Debug, Clone)]
pub struct CandidateTile {
    dim: usize,
    stride: usize,
    len: usize,
    coords: Vec<f64>,
}

impl CandidateTile {
    /// An empty tile for points of dimensionality `dim`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "CandidateTile requires dim > 0");
        CandidateTile {
            dim,
            stride: kernel::pad_dim(dim),
            len: 0,
            coords: Vec::new(),
        }
    }

    /// Dimensionality of the stored rows.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Length of one stored (padded) row.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of stored rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tile holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one row, returning its index.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.dim()`.
    #[inline]
    pub fn push(&mut self, row: &[f64]) -> usize {
        assert_eq!(row.len(), self.dim, "tile row dimensionality mismatch");
        let idx = self.len;
        self.coords.extend_from_slice(row);
        self.coords.resize((idx + 1) * self.stride, 0.0);
        self.len += 1;
        idx
    }

    /// The logical coordinates of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.len, "tile row {i} out of bounds");
        &self.coords[i * self.stride..i * self.stride + self.dim]
    }

    /// Iterates over the stored rows (logical slices) in insertion order.
    #[inline]
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.coords
            .chunks_exact(self.stride.max(1))
            .map(move |c| &c[..self.dim])
    }

    /// The padded row-major buffer (`len() * stride()` coordinates); rows
    /// `a..b` occupy `padded()[a * stride..b * stride]`.
    #[inline]
    pub fn padded(&self) -> &[f64] {
        &self.coords
    }

    /// Clears the rows, keeping the allocation.
    #[inline]
    pub fn clear(&mut self) {
        self.coords.clear();
        self.len = 0;
    }

    /// Re-targets the tile at a (possibly different) dimensionality,
    /// clearing any rows but keeping the allocation.
    pub fn reset(&mut self, dim: usize) {
        assert!(dim > 0, "CandidateTile requires dim > 0");
        self.dim = dim;
        self.stride = kernel::pad_dim(dim);
        self.coords.clear();
        self.len = 0;
    }
}

/// All working memory one worker needs to execute RkNN queries back to
/// back without allocating per query.
///
/// The buffers are independent fields so the engine can borrow them
/// simultaneously (the cursor holds `cursor` while the witness pass mutates
/// `filter` and streams `wtile` output blocks over `tile`).
#[derive(Debug, Clone)]
pub struct QueryScratch {
    /// Storage for the index cursor.
    pub cursor: CursorScratch,
    /// The filter set's bookkeeping slots.
    pub filter: Vec<FilterCandidate>,
    /// The filter set's coordinates, row-aligned with `filter`.
    pub tile: CandidateTile,
    /// Tile-evaluation buffers for the witness pass (padded candidate
    /// point, per-block bounds and outputs).
    pub wtile: TileEvalScratch,
}

impl QueryScratch {
    /// Fresh scratch for queries over points of dimensionality `dim`.
    pub fn new(dim: usize) -> Self {
        QueryScratch {
            cursor: CursorScratch::new(),
            filter: Vec::new(),
            tile: CandidateTile::new(dim),
            wtile: TileEvalScratch::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_round_trips_rows() {
        let mut tile = CandidateTile::new(3);
        assert!(tile.is_empty());
        assert_eq!(tile.push(&[1.0, 2.0, 3.0]), 0);
        assert_eq!(tile.push(&[4.0, 5.0, 6.0]), 1);
        assert_eq!(tile.len(), 2);
        assert_eq!(tile.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(tile.row(1), &[4.0, 5.0, 6.0]);
        let rows: Vec<&[f64]> = tile.rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], &[4.0, 5.0, 6.0]);
        tile.clear();
        assert!(tile.is_empty());
        assert_eq!(tile.dim(), 3);
    }

    #[test]
    fn tile_pads_rows_to_lane_multiple() {
        let mut tile = CandidateTile::new(3);
        assert_eq!(tile.stride(), 4);
        tile.push(&[1.0, 2.0, 3.0]);
        tile.push(&[4.0, 5.0, 6.0]);
        assert_eq!(tile.padded().len(), 2 * tile.stride());
        assert_eq!(tile.padded(), &[1.0, 2.0, 3.0, 0.0, 4.0, 5.0, 6.0, 0.0]);
        // Logical accessors never expose the pads.
        assert_eq!(tile.row(1).len(), 3);
        assert!(tile.rows().all(|r| r.len() == 3));
        // A lane-multiple dim needs no padding.
        tile.reset(4);
        assert_eq!(tile.stride(), 4);
        tile.push(&[1.0; 4]);
        assert_eq!(tile.padded().len(), 4);
    }

    #[test]
    fn tile_reset_retargets_dimension() {
        let mut tile = CandidateTile::new(2);
        tile.push(&[1.0, 2.0]);
        tile.reset(4);
        assert!(tile.is_empty());
        assert_eq!(tile.dim(), 4);
        tile.push(&[0.0; 4]);
        assert_eq!(tile.len(), 1);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn tile_rejects_wrong_width() {
        let mut tile = CandidateTile::new(2);
        tile.push(&[1.0]);
    }

    #[test]
    fn tile_eval_scratch_maintains_zero_pads() {
        let mut t = TileEvalScratch::new();
        let stride = t.set_query(&[1.0, 2.0, 3.0]);
        assert_eq!(stride, 4);
        assert_eq!(t.qpad, vec![1.0, 2.0, 3.0, 0.0]);
        let stride = t.ensure_rows(3, 2);
        t.fill_row(0, &[5.0, 6.0, 7.0]);
        t.fill_row(1, &[8.0, 9.0, 10.0]);
        assert_eq!(
            &t.rows[..2 * stride],
            &[5.0, 6.0, 7.0, 0.0, 8.0, 9.0, 10.0, 0.0]
        );
        // Re-layout at a different dim re-zeroes, so old coordinates can't
        // leak into the new layout's pad positions.
        let stride2 = t.ensure_rows(2, 2);
        assert_eq!(stride2, 4);
        t.fill_row(0, &[1.0, 2.0]);
        assert_eq!(&t.rows[..stride2], &[1.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn scratch_fields_borrow_independently() {
        let mut s = QueryScratch::new(2);
        let QueryScratch {
            cursor,
            filter,
            tile,
            wtile,
        } = &mut s;
        cursor.entries.push(Neighbor::new(0, 1.0));
        filter.push(FilterCandidate {
            id: 0,
            dist: 1.0,
            witnesses: 0,
            accepted: false,
        });
        tile.push(&[0.5, 0.5]);
        wtile.set_query(&[0.5, 0.5]);
        assert_eq!(s.cursor.entries.len(), 1);
        assert_eq!(s.filter.len(), 1);
        assert_eq!(s.tile.len(), 1);
        assert_eq!(s.wtile.qpad.len(), 4);
    }
}
