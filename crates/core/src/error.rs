//! Error types for dataset construction and query validation.

use std::fmt;

/// Errors raised while constructing datasets or validating query parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A point's dimensionality did not match the dataset's.
    DimensionMismatch {
        /// Dimensionality the dataset expects.
        expected: usize,
        /// Dimensionality that was supplied.
        got: usize,
    },
    /// The dataset contains no points but at least one was required.
    EmptyDataset,
    /// A coordinate was NaN or infinite.
    NonFinite {
        /// Index of the offending point.
        point: usize,
        /// Index of the offending coordinate.
        coordinate: usize,
    },
    /// A neighborhood size `k` was zero or exceeded the number of usable points.
    InvalidK {
        /// The requested neighborhood size.
        k: usize,
        /// Number of points available to the query.
        available: usize,
    },
    /// A point id did not refer to a live point.
    UnknownPoint(usize),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            CoreError::EmptyDataset => write!(f, "dataset contains no points"),
            CoreError::NonFinite { point, coordinate } => {
                write!(
                    f,
                    "non-finite coordinate {coordinate} in point {point}; datasets must be finite"
                )
            }
            CoreError::InvalidK { k, available } => {
                write!(
                    f,
                    "invalid neighborhood size k={k} ({available} points available)"
                )
            }
            CoreError::UnknownPoint(id) => write!(f, "unknown point id {id}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::DimensionMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("expected 3"));
        let e = CoreError::NonFinite {
            point: 7,
            coordinate: 1,
        };
        assert!(e.to_string().contains("point 7"));
        let e = CoreError::InvalidK {
            k: 0,
            available: 10,
        };
        assert!(e.to_string().contains("k=0"));
        assert!(CoreError::EmptyDataset.to_string().contains("no points"));
        assert!(CoreError::UnknownPoint(3).to_string().contains('3'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(CoreError::EmptyDataset, CoreError::EmptyDataset);
        assert_ne!(CoreError::EmptyDataset, CoreError::UnknownPoint(0));
    }
}
