//! A bounded max-heap for collecting the `k` nearest neighbors seen so far.

use crate::neighbor::{MaxByDist, Neighbor};
use std::collections::BinaryHeap;

/// Collects the `k` smallest-distance neighbors from a stream of candidates.
///
/// The heap keeps at most `k` entries; [`KnnHeap::threshold`] exposes the
/// current k-th smallest distance, which searches use as a pruning bound.
#[derive(Debug, Clone)]
pub struct KnnHeap {
    k: usize,
    heap: BinaryHeap<MaxByDist>,
}

impl KnnHeap {
    /// Creates a heap retaining the `k` nearest candidates.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "KnnHeap requires k > 0");
        KnnHeap {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// The neighborhood size `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of candidates currently retained.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no candidate has been offered yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether the heap holds `k` entries.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// The current pruning threshold: the k-th smallest distance seen so far,
    /// or `+∞` while fewer than `k` candidates have been offered.
    #[inline]
    pub fn threshold(&self) -> f64 {
        if self.is_full() {
            self.heap.peek().map(|m| m.0.dist).unwrap_or(f64::INFINITY)
        } else {
            f64::INFINITY
        }
    }

    /// Offers a candidate; returns `true` if it was retained.
    ///
    /// A candidate is retained when the heap is not yet full or its distance
    /// improves on the current threshold (strictly — equal-distance
    /// candidates arriving after the heap is full are rejected, matching the
    /// maximum-rank tie convention used for candidate *collection*; rank
    /// computations that must honor ties use [`crate::rank`] instead).
    pub fn offer(&mut self, n: Neighbor) -> bool {
        if self.heap.len() < self.k {
            self.heap.push(MaxByDist(n));
            true
        } else if n.dist < self.threshold() {
            self.heap.push(MaxByDist(n));
            self.heap.pop();
            true
        } else {
            false
        }
    }

    /// Consumes the heap, returning neighbors sorted ascending by distance.
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut v: Vec<Neighbor> = self.heap.into_iter().map(|m| m.0).collect();
        v.sort_by(Neighbor::cmp_by_dist);
        v
    }

    /// The largest retained distance without consuming the heap, if any.
    pub fn peek_max(&self) -> Option<Neighbor> {
        self.heap.peek().map(|m| m.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn keeps_k_nearest() {
        let mut h = KnnHeap::new(3);
        for (id, d) in [(0, 5.0), (1, 1.0), (2, 4.0), (3, 2.0), (4, 3.0)] {
            h.offer(Neighbor::new(id, d));
        }
        let out = h.into_sorted();
        let ids: Vec<_> = out.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![1, 3, 4]);
    }

    #[test]
    fn threshold_tracks_kth_distance() {
        let mut h = KnnHeap::new(2);
        assert_eq!(h.threshold(), f64::INFINITY);
        h.offer(Neighbor::new(0, 3.0));
        assert_eq!(h.threshold(), f64::INFINITY);
        h.offer(Neighbor::new(1, 1.0));
        assert_eq!(h.threshold(), 3.0);
        h.offer(Neighbor::new(2, 2.0));
        assert_eq!(h.threshold(), 2.0);
        assert_eq!(h.peek_max().unwrap().id, 2);
    }

    #[test]
    fn rejects_when_full_and_not_closer() {
        let mut h = KnnHeap::new(1);
        assert!(h.offer(Neighbor::new(0, 1.0)));
        assert!(
            !h.offer(Neighbor::new(1, 1.0)),
            "equal distance is rejected"
        );
        assert!(!h.offer(Neighbor::new(2, 2.0)));
        assert!(h.offer(Neighbor::new(3, 0.5)));
        assert_eq!(h.into_sorted()[0].id, 3);
    }

    #[test]
    #[should_panic(expected = "k > 0")]
    fn zero_k_panics() {
        let _ = KnnHeap::new(0);
    }

    proptest! {
        #[test]
        fn agrees_with_full_sort(dists in proptest::collection::vec(0.0f64..100.0, 1..60), k in 1usize..10) {
            let mut h = KnnHeap::new(k);
            for (id, &d) in dists.iter().enumerate() {
                h.offer(Neighbor::new(id, d));
            }
            let got: Vec<f64> = h.into_sorted().iter().map(|n| n.dist).collect();
            let mut all = dists.clone();
            all.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let want: Vec<f64> = all.into_iter().take(k).collect();
            prop_assert_eq!(got.len(), want.len().min(dists.len()));
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g - w).abs() < 1e-12);
            }
        }
    }
}
