//! Rank and ball-cardinality primitives (§3.1 of the paper).
//!
//! * `ball_count(S, q, r)` is `|B≤_S(q, r)|` restricted to points other than
//!   the query itself;
//! * `rank(S, q, x)` is `ρ_S(q, x)` under the self-excluding, maximum-rank
//!   tie convention of `DESIGN.md` §2;
//! * `dk(S, x, k)` is the distance from `x` to its k-th nearest *other*
//!   point.
//!
//! These functions are exact (linear scans) and serve as ground truth; index
//! structures provide the fast paths.

use crate::dataset::Dataset;
use crate::float::sort_f64;
use crate::metric::Metric;
use crate::neighbor::PointId;

/// Number of points of `ds` (excluding `exclude`) within distance `r` of `q`
/// — the cardinality `|B≤_S(q, r)|` under the self-excluding convention.
///
/// `strict` selects the open ball (`d < r`) instead of the closed ball.
pub fn ball_count<M: Metric>(
    ds: &Dataset,
    metric: &M,
    q: &[f64],
    r: f64,
    strict: bool,
    exclude: Option<PointId>,
) -> usize {
    let mut count = 0;
    for (id, p) in ds.iter() {
        if Some(id) == exclude {
            continue;
        }
        let d = metric.dist(q, p);
        if (strict && d < r) || (!strict && d <= r) {
            count += 1;
        }
    }
    count
}

/// The rank `ρ_S(q, x)` of dataset point `x` with respect to location `q`:
/// the number of points (excluding `exclude`) within the closed ball of
/// radius `d(q, x)`. Ties receive the maximum rank, as in the paper.
///
/// # Panics
///
/// Panics if `x` is out of range.
pub fn rank<M: Metric>(
    ds: &Dataset,
    metric: &M,
    q: &[f64],
    x: PointId,
    exclude: Option<PointId>,
) -> usize {
    let r = metric.dist(q, ds.point(x));
    ball_count(ds, metric, q, r, false, exclude)
}

/// The k-NN distance `d_k(x)` of dataset point `x`: the k-th smallest
/// distance from `x` to the *other* points of `ds`.
///
/// Returns `None` when fewer than `k` other points exist.
pub fn dk<M: Metric>(ds: &Dataset, metric: &M, x: PointId, k: usize) -> Option<f64> {
    dk_from(ds, metric, ds.point(x), k, Some(x))
}

/// The k-NN distance of an arbitrary location `q` with respect to `ds`,
/// excluding `exclude` from the neighborhood.
pub fn dk_from<M: Metric>(
    ds: &Dataset,
    metric: &M,
    q: &[f64],
    k: usize,
    exclude: Option<PointId>,
) -> Option<f64> {
    let available = ds.len() - usize::from(exclude.map(|e| e < ds.len()).unwrap_or(false));
    if k == 0 || k > available {
        return None;
    }
    let mut dists: Vec<f64> = Vec::with_capacity(available);
    for (id, p) in ds.iter() {
        if Some(id) == exclude {
            continue;
        }
        dists.push(metric.dist(q, p));
    }
    sort_f64(&mut dists);
    Some(dists[k - 1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Euclidean;
    use proptest::prelude::*;

    fn line_dataset() -> Dataset {
        // Points at x = 0, 1, 2, 3, 4 on a line.
        Dataset::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0], vec![4.0]]).unwrap()
    }

    #[test]
    fn ball_count_closed_and_open() {
        let ds = line_dataset();
        let m = Euclidean;
        // From the point at 0: distances 0,1,2,3,4 (self excluded below).
        assert_eq!(ball_count(&ds, &m, &[0.0], 2.0, false, Some(0)), 2);
        assert_eq!(ball_count(&ds, &m, &[0.0], 2.0, true, Some(0)), 1);
        // Without exclusion the center counts.
        assert_eq!(ball_count(&ds, &m, &[0.0], 2.0, false, None), 3);
    }

    #[test]
    fn rank_assigns_max_on_ties() {
        // q at 2; points 1 and 3 are both at distance 1 → each has rank 2.
        let ds = line_dataset();
        let m = Euclidean;
        assert_eq!(rank(&ds, &m, &[2.0], 1, Some(2)), 2);
        assert_eq!(rank(&ds, &m, &[2.0], 3, Some(2)), 2);
        assert_eq!(rank(&ds, &m, &[2.0], 0, Some(2)), 4);
    }

    #[test]
    fn dk_is_kth_other_distance() {
        let ds = line_dataset();
        let m = Euclidean;
        assert_eq!(dk(&ds, &m, 0, 1), Some(1.0));
        assert_eq!(dk(&ds, &m, 0, 4), Some(4.0));
        assert_eq!(dk(&ds, &m, 0, 5), None, "only 4 other points exist");
        assert_eq!(dk(&ds, &m, 2, 2), Some(1.0), "ties at distance 1");
        assert_eq!(dk(&ds, &m, 2, 0), None);
    }

    #[test]
    fn dk_from_external_query() {
        let ds = line_dataset();
        let m = Euclidean;
        assert_eq!(dk_from(&ds, &m, &[2.5], 1, None), Some(0.5));
        assert_eq!(dk_from(&ds, &m, &[2.5], 2, None), Some(0.5));
        assert_eq!(dk_from(&ds, &m, &[2.5], 3, None), Some(1.5));
    }

    proptest! {
        #[test]
        fn rank_of_kth_neighbor_at_least_k(
            pts in proptest::collection::vec(proptest::collection::vec(-10.0f64..10.0, 2), 3..20),
            qi in 0usize..20,
        ) {
            let ds = Dataset::from_rows(&pts).unwrap();
            let qi = qi % ds.len();
            let m = Euclidean;
            let k = 1 + qi % (ds.len() - 1);
            if let Some(d) = dk(&ds, &m, qi, k) {
                // At least k other points lie within d_k.
                let c = ball_count(&ds, &m, ds.point(qi), d, false, Some(qi));
                prop_assert!(c >= k);
                // And fewer than k lie strictly inside.
                let open = ball_count(&ds, &m, ds.point(qi), d, true, Some(qi));
                prop_assert!(open < k || open < c);
            }
        }
    }
}
