//! Shared best-first priority queue for incremental tree traversals.
//!
//! Tree cursors interleave two kinds of queue entries: *points* keyed by
//! their exact distance and *nodes* keyed by a lower bound on the distance
//! of any point in their subtree. Popping entries in key order yields points
//! in exact nondecreasing distance order, because a node can only produce
//! points at distance ≥ its key.

use crate::float::OrderedF64;
use crate::neighbor::{Neighbor, PointId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What a [`BestFirst::pop`] produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Popped {
    /// A point with its exact distance — safe to emit.
    Point(Neighbor),
    /// A node to expand. `key` is the lower bound it was queued with and
    /// `payload` an arbitrary value stored at push time (typically the exact
    /// query–pivot distance, or `NAN` when not yet computed).
    Node {
        /// Index of the node in the owning tree's arena.
        id: usize,
        /// The lower bound the node was queued with.
        key: f64,
        /// Caller-defined payload.
        payload: f64,
    },
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    key: OrderedF64,
    /// Points pop before nodes at equal key.
    is_node: bool,
    id: usize,
    payload: f64,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the smallest key pops first.
        other
            .key
            .cmp(&self.key)
            .then_with(|| other.is_node.cmp(&self.is_node))
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// A min-ordered queue of points and expandable nodes.
#[derive(Debug, Clone, Default)]
pub struct BestFirst {
    heap: BinaryHeap<Entry>,
    pushes: u64,
}

impl BestFirst {
    /// An empty queue.
    pub fn new() -> Self {
        BestFirst::default()
    }

    /// Empties the queue and resets the push counter, keeping the heap's
    /// allocation — the reset that lets a [`crate::scratch::TreeScratch`]
    /// serve one traversal after another without reallocating.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.pushes = 0;
    }

    /// Queues a point with its exact distance.
    #[inline]
    pub fn push_point(&mut self, n: Neighbor) {
        self.pushes += 1;
        self.heap.push(Entry {
            key: OrderedF64::new(n.dist),
            is_node: false,
            id: n.id,
            payload: n.dist,
        });
    }

    /// Queues a node with a lower bound `key` and arbitrary `payload`.
    #[inline]
    pub fn push_node(&mut self, id: usize, key: f64, payload: f64) {
        self.pushes += 1;
        self.heap.push(Entry {
            key: OrderedF64::new(key),
            is_node: true,
            id,
            payload,
        });
    }

    /// Pops the entry with the smallest key (points before nodes on ties).
    pub fn pop(&mut self) -> Option<Popped> {
        self.heap.pop().map(|e| {
            if e.is_node {
                Popped::Node {
                    id: e.id,
                    key: e.key.get(),
                    payload: e.payload,
                }
            } else {
                Popped::Point(Neighbor::new(e.id as PointId, e.payload))
            }
        })
    }

    /// Smallest key currently queued.
    pub fn peek_key(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.key.get())
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pushes performed (for [`crate::SearchStats`]).
    pub fn pushes(&self) -> u64 {
        self.pushes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_key_order() {
        let mut q = BestFirst::new();
        q.push_node(0, 2.0, 9.0);
        q.push_point(Neighbor::new(10, 1.0));
        q.push_point(Neighbor::new(11, 3.0));
        assert_eq!(q.pop(), Some(Popped::Point(Neighbor::new(10, 1.0))));
        assert_eq!(
            q.pop(),
            Some(Popped::Node {
                id: 0,
                key: 2.0,
                payload: 9.0
            })
        );
        assert_eq!(q.pop(), Some(Popped::Point(Neighbor::new(11, 3.0))));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pushes(), 3);
    }

    #[test]
    fn points_pop_before_nodes_on_ties() {
        let mut q = BestFirst::new();
        q.push_node(0, 1.0, 0.0);
        q.push_point(Neighbor::new(5, 1.0));
        assert!(matches!(q.pop(), Some(Popped::Point(_))));
        assert!(matches!(q.pop(), Some(Popped::Node { .. })));
    }

    #[test]
    fn clear_resets_contents_and_counter() {
        let mut q = BestFirst::new();
        q.push_node(0, 1.0, 0.0);
        q.push_point(Neighbor::new(1, 2.0));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pushes(), 0);
        q.push_point(Neighbor::new(2, 0.5));
        assert_eq!(q.pop(), Some(Popped::Point(Neighbor::new(2, 0.5))));
        assert_eq!(q.pushes(), 1);
    }

    #[test]
    fn peek_key_tracks_minimum() {
        let mut q = BestFirst::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_key(), None);
        q.push_node(1, 4.0, 0.0);
        q.push_node(2, 2.0, 0.0);
        assert_eq!(q.peek_key(), Some(2.0));
        q.pop();
        assert_eq!(q.peek_key(), Some(4.0));
    }
}
