//! Per-query work accounting.
//!
//! The paper's cost model is dominated by distance computations (candidate
//! generation, witness maintenance, verification kNN queries). Every index
//! operation and RkNN algorithm in this workspace threads a [`SearchStats`]
//! through its hot path so experiments can report machine-independent work
//! measures next to wall-clock times.

/// Counters accumulated during a single search operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Number of metric distance evaluations.
    pub dist_computations: u64,
    /// Number of index nodes visited / expanded.
    pub nodes_visited: u64,
    /// Number of priority-queue or heap insertions.
    pub heap_pushes: u64,
}

impl SearchStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        SearchStats::default()
    }

    /// Records one distance evaluation.
    #[inline]
    pub fn count_dist(&mut self) {
        self.dist_computations += 1;
    }

    /// Records `n` distance evaluations.
    #[inline]
    pub fn count_dists(&mut self, n: u64) {
        self.dist_computations += n;
    }

    /// Records one node visit.
    #[inline]
    pub fn count_node(&mut self) {
        self.nodes_visited += 1;
    }

    /// Records one heap push.
    #[inline]
    pub fn count_push(&mut self) {
        self.heap_pushes += 1;
    }

    /// Adds another counter set into this one.
    pub fn absorb(&mut self, other: &SearchStats) {
        self.dist_computations += other.dist_computations;
        self.nodes_visited += other.nodes_visited;
        self.heap_pushes += other.heap_pushes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = SearchStats::new();
        s.count_dist();
        s.count_dists(4);
        s.count_node();
        s.count_push();
        assert_eq!(s.dist_computations, 5);
        assert_eq!(s.nodes_visited, 1);
        assert_eq!(s.heap_pushes, 1);
    }

    #[test]
    fn absorb_merges() {
        let mut a = SearchStats {
            dist_computations: 1,
            nodes_visited: 2,
            heap_pushes: 3,
        };
        let b = SearchStats {
            dist_computations: 10,
            nodes_visited: 20,
            heap_pushes: 30,
        };
        a.absorb(&b);
        assert_eq!(
            a,
            SearchStats {
                dist_computations: 11,
                nodes_visited: 22,
                heap_pushes: 33
            }
        );
    }
}
