//! Total-order helpers for `f64`.
//!
//! Neighbor distances produced inside this workspace are always finite and
//! non-NaN (datasets reject non-finite coordinates and all metrics map finite
//! inputs to finite outputs), but `f64` still only implements `PartialOrd`.
//! [`OrderedF64`] provides the `Ord` wrapper used by heaps and sorts.

use std::cmp::Ordering;

/// An `f64` with a total order.
///
/// NaN sorts *after* every other value so that an accidental NaN can never
/// masquerade as a best-so-far distance; debug builds assert against NaN at
/// construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderedF64(pub f64);

impl OrderedF64 {
    /// Wraps a value, asserting (in debug builds) that it is not NaN.
    #[inline]
    pub fn new(v: f64) -> Self {
        debug_assert!(!v.is_nan(), "OrderedF64 must not wrap NaN");
        OrderedF64(v)
    }

    /// Unwraps the inner value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        match self.0.partial_cmp(&other.0) {
            Some(o) => o,
            // NaN sorts last; two NaNs compare equal.
            None => match (self.0.is_nan(), other.0.is_nan()) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Greater,
                (false, true) => Ordering::Less,
                (false, false) => unreachable!("partial_cmp returned None for non-NaN inputs"),
            },
        }
    }
}

impl From<f64> for OrderedF64 {
    #[inline]
    fn from(v: f64) -> Self {
        OrderedF64::new(v)
    }
}

/// Sorts a slice of `f64` ascending using the total order.
pub fn sort_f64(values: &mut [f64]) {
    values.sort_by_key(|a| OrderedF64(*a));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_finite_values() {
        let mut v = vec![3.0, -1.0, 2.5, 0.0];
        sort_f64(&mut v);
        assert_eq!(v, vec![-1.0, 0.0, 2.5, 3.0]);
    }

    #[test]
    fn comparisons() {
        assert!(OrderedF64(1.0) < OrderedF64(2.0));
        assert!(OrderedF64(2.0) > OrderedF64(1.0));
        assert_eq!(OrderedF64(1.5), OrderedF64(1.5));
        assert!(OrderedF64(f64::NEG_INFINITY) < OrderedF64(f64::INFINITY));
    }

    #[test]
    fn nan_sorts_last() {
        // Bypass the debug assertion deliberately via the tuple constructor.
        let nan = OrderedF64(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert_eq!(nan.cmp(&OrderedF64(1.0)), Ordering::Greater);
        assert_eq!(OrderedF64(1.0).cmp(&nan), Ordering::Less);
    }
}
