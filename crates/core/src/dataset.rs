//! Finite point sets `S ⊆ R^m` with validated, cache-friendly flat storage.

use crate::error::CoreError;
use crate::kernel;
use std::sync::{Arc, OnceLock};

/// One 32-byte-aligned group of four coordinates — the allocation unit of
/// the padded row storage. Rows are padded to a whole number of these, so
/// every row starts 32-byte aligned and the SIMD tile kernels stream whole
/// 4-lane blocks with no tail handling.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C, align(32))]
struct Lane4([f64; 4]);

/// The f32 counterpart of [`Lane4`]: eight single-precision coordinates in
/// one 32-byte-aligned group, the allocation unit of the fast-f32 mirror
/// storage ([`F32Rows`]).
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C, align(32))]
struct LaneF32([f32; 8]);

/// Views an aligned lane buffer as flat coordinates.
#[inline]
fn lanes_as_f64s(lanes: &[Lane4]) -> &[f64] {
    // Sound: Lane4 is repr(C) over [f64; 4] — same size, stricter
    // alignment, no padding bytes.
    unsafe { std::slice::from_raw_parts(lanes.as_ptr() as *const f64, lanes.len() * 4) }
}

#[inline]
fn lanes_as_f64s_mut(lanes: &mut [Lane4]) -> &mut [f64] {
    unsafe { std::slice::from_raw_parts_mut(lanes.as_mut_ptr() as *mut f64, lanes.len() * 4) }
}

#[inline]
fn lanes_as_f32s(lanes: &[LaneF32]) -> &[f32] {
    // Sound for the same reason as `lanes_as_f64s`: repr(C) over [f32; 8].
    unsafe { std::slice::from_raw_parts(lanes.as_ptr() as *const f32, lanes.len() * 8) }
}

#[inline]
fn lanes_as_f32s_mut(lanes: &mut [LaneF32]) -> &mut [f32] {
    unsafe { std::slice::from_raw_parts_mut(lanes.as_mut_ptr() as *mut f32, lanes.len() * 8) }
}

/// A read-only f32 quantization of padded row storage — the storage the
/// fast-f32 kernel tier ([`crate::KernelTier::FastF32`]) streams through
/// [`crate::Metric::dist_tile_f32`] at half the memory traffic of the f64
/// rows.
///
/// Rows share ids with the f64 storage they mirror but are padded to
/// [`F32Rows::stride32`] (`dim` rounded up to a multiple of
/// [`kernel::LANES_F32`]) so every row stays 32-byte aligned. Coordinates
/// are the `as f32` roundings of the logical f64 coordinates; the
/// quantization is the fast-f32 tier's storage semantic, and every accessor
/// is padded-layout only — logical reads always come from the f64 side.
#[derive(Debug, Clone, PartialEq)]
pub struct F32Rows {
    stride32: usize,
    data: Vec<LaneF32>,
}

impl F32Rows {
    /// Quantizes `n` padded f64 rows (`stride` wide) into padded f32 rows.
    fn build(dim: usize, stride: usize, n: usize, padded: &[f64]) -> Self {
        let stride32 = kernel::pad_dim_f32(dim);
        let mut lanes = vec![LaneF32([0.0; 8]); n * stride32 / 8];
        let dst = lanes_as_f32s_mut(&mut lanes);
        for row in 0..n {
            let src = &padded[row * stride..row * stride + dim];
            for (j, &v) in src.iter().enumerate() {
                dst[row * stride32 + j] = v as f32;
            }
        }
        F32Rows {
            stride32,
            data: lanes,
        }
    }

    /// Length of one stored row: `dim` rounded up to a multiple of
    /// [`kernel::LANES_F32`]. Coordinates past the logical dimension are
    /// zero padding.
    #[inline]
    pub fn stride32(&self) -> usize {
        self.stride32
    }

    /// The whole padded row-major f32 buffer (rows of [`F32Rows::stride32`]
    /// coordinates, 32-byte aligned) — the layout
    /// [`crate::Metric::dist_tile_f32`] consumes.
    #[inline]
    pub fn padded_flat(&self) -> &[f32] {
        lanes_as_f32s(&self.data)
    }

    /// Bytes occupied by the mirror storage.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<LaneF32>()
    }
}

/// An immutable, validated point set.
///
/// Points are stored row-major in a single 32-byte-aligned flat allocation,
/// each row padded with zeros to a multiple of four coordinates
/// ([`Dataset::stride`]); every *logical* coordinate is guaranteed finite.
/// The padding is an internal storage detail for the SIMD tile kernels
/// ([`crate::Metric::dist_tile`]): all user-facing accessors
/// ([`Dataset::point`], [`Dataset::iter`]) return the logical `dim`-length
/// slices, so padding can never leak into results, statistics or serialized
/// output. Datasets are cheaply shareable behind [`Arc`] so that several
/// index structures can be built over the same points without copying them
/// (the memory for the high-dimensional workloads in the evaluation is
/// dominated by the point data).
///
/// For the opt-in fast-f32 kernel tier a dataset lazily materializes (and
/// caches) an [`F32Rows`] quantization of its rows via
/// [`Dataset::f32_rows`]; exact-tier workloads never pay for the mirror.
/// The cache is ignored by equality — two datasets compare equal iff their
/// f64 rows do.
#[derive(Debug, Clone)]
pub struct Dataset {
    dim: usize,
    stride: usize,
    n: usize,
    data: Vec<Lane4>,
    /// Lazily built f32 quantization; deterministic from `data`, so it is
    /// excluded from equality.
    f32: OnceLock<F32Rows>,
}

impl PartialEq for Dataset {
    fn eq(&self, other: &Self) -> bool {
        self.dim == other.dim
            && self.stride == other.stride
            && self.n == other.n
            && self.data == other.data
    }
}

impl Dataset {
    /// Packs validated logical row-major coordinates into padded aligned
    /// storage.
    fn pack(dim: usize, data: &[f64]) -> Self {
        let n = data.len().checked_div(dim).unwrap_or(0);
        Dataset::pack_rows(dim, n, data.chunks(dim.max(1)))
    }

    /// Packs `n` validated logical rows straight into the padded aligned
    /// buffer — no intermediate flat vector, so construction from borrowed
    /// rows holds only the final allocation. A `dim` of zero (an empty
    /// [`DatasetBuilder`]) yields the empty dataset.
    fn pack_rows<'r>(dim: usize, n: usize, rows: impl Iterator<Item = &'r [f64]>) -> Self {
        let stride = kernel::pad_dim(dim);
        let mut lanes = vec![Lane4([0.0; 4]); n * stride / 4];
        let dst = lanes_as_f64s_mut(&mut lanes);
        for (row, src) in rows.take(n).enumerate() {
            dst[row * stride..row * stride + dim].copy_from_slice(src);
        }
        Dataset {
            dim,
            stride,
            n,
            data: lanes,
            f32: OnceLock::new(),
        }
    }

    /// Builds a dataset from row-major flat coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if `data.len()` is not a
    /// multiple of `dim` and [`CoreError::NonFinite`] if any coordinate is
    /// NaN or infinite. `dim` must be nonzero.
    pub fn from_flat(dim: usize, data: Vec<f64>) -> Result<Self, CoreError> {
        if dim == 0 {
            return Err(CoreError::DimensionMismatch {
                expected: 1,
                got: 0,
            });
        }
        if !data.len().is_multiple_of(dim) {
            return Err(CoreError::DimensionMismatch {
                expected: dim,
                got: data.len() % dim,
            });
        }
        // Validate finiteness row by row: the common all-finite case is a
        // branch-friendly scan over each row slice, and the point/coordinate
        // split is only derived for the offending row.
        for (point, row) in data.chunks_exact(dim).enumerate() {
            if let Some(coordinate) = row.iter().position(|v| !v.is_finite()) {
                return Err(CoreError::NonFinite { point, coordinate });
            }
        }
        Ok(Dataset::pack(dim, &data))
    }

    /// Builds a dataset from a sequence of rows, validating dimensions.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, CoreError> {
        let dim = rows.first().map(|r| r.len()).unwrap_or(0);
        if dim == 0 {
            return Err(CoreError::EmptyDataset);
        }
        for (i, row) in rows.iter().enumerate() {
            if row.len() != dim {
                return Err(CoreError::DimensionMismatch {
                    expected: dim,
                    got: row.len(),
                });
            }
            if let Some(j) = row.iter().position(|v| !v.is_finite()) {
                return Err(CoreError::NonFinite {
                    point: i,
                    coordinate: j,
                });
            }
        }
        Ok(Dataset::pack_rows(
            dim,
            rows.len(),
            rows.iter().map(Vec::as_slice),
        ))
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the dataset holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Representational dimension `m`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Length of one stored row: [`Dataset::dim`] rounded up to a multiple
    /// of [`kernel::LANES`]. Coordinates past `dim` are zero padding.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Coordinates of point `i` (the logical `dim`-length slice — never
    /// includes padding).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        &lanes_as_f64s(&self.data)[i * self.stride..i * self.stride + self.dim]
    }

    /// The full padded row of point `i` (`stride` coordinates, zeros past
    /// `dim`) — the layout [`crate::Metric::dist_tile`] consumes.
    #[inline]
    pub fn padded_point(&self, i: usize) -> &[f64] {
        &lanes_as_f64s(&self.data)[i * self.stride..(i + 1) * self.stride]
    }

    /// The whole padded row-major buffer (`len() * stride()` coordinates,
    /// 32-byte aligned). Rows `a..b` occupy
    /// `padded_flat()[a * stride..b * stride]` — the contiguous blocks the
    /// tile kernels stream over. For logical coordinates use
    /// [`Dataset::point`] / [`Dataset::iter`].
    #[inline]
    pub fn padded_flat(&self) -> &[f64] {
        lanes_as_f64s(&self.data)
    }

    /// The lazily built (and cached) f32 quantization of the rows — the
    /// storage side of the fast-f32 kernel tier. First call pays one pass
    /// over the rows plus a half-size allocation; later calls are free.
    /// Exact- and fast-tier workloads that never call this never pay for
    /// the mirror.
    pub fn f32_rows(&self) -> &F32Rows {
        self.f32
            .get_or_init(|| F32Rows::build(self.dim, self.stride, self.n, self.padded_flat()))
    }

    /// Bytes occupied by the padded f64 row storage (excludes any f32
    /// mirror) — the traffic denominator for kernel bandwidth accounting.
    #[inline]
    pub fn storage_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<Lane4>()
    }

    /// Iterates over `(id, coordinates)` pairs (logical slices).
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[f64])> {
        (0..self.len()).map(move |i| (i, self.point(i)))
    }

    /// A new dataset containing only the points whose ids are in `ids`
    /// (in the given order).
    pub fn subset(&self, ids: &[usize]) -> Result<Self, CoreError> {
        if let Some(&bad) = ids.iter().find(|&&id| id >= self.len()) {
            return Err(CoreError::UnknownPoint(bad));
        }
        Ok(Dataset::pack_rows(
            self.dim,
            ids.len(),
            ids.iter().map(|&id| self.point(id)),
        ))
    }

    /// Wraps the dataset in an [`Arc`] for sharing across indexes.
    pub fn into_shared(self) -> Arc<Dataset> {
        Arc::new(self)
    }
}

/// Growable, 32-byte-aligned, zero-padded row storage sharing the
/// [`Dataset`] layout.
///
/// This is the storage dynamic indexes append into: rows of `dim` logical
/// coordinates stored at the same `stride = dim.div_ceil(4) * 4` as a
/// [`Dataset`] built over the same dimensionality, each row starting
/// 32-byte aligned with zero padding past `dim`. A scan can therefore
/// stream appended points through [`crate::Metric::dist_tile`] in the same
/// tile blocks as the base dataset — the tile fast path survives dynamic
/// insertion instead of falling back to per-point evaluation.
///
/// Unlike [`DatasetBuilder`] this type is a *live* store, readable between
/// pushes; validation (finiteness, dimensionality) is the caller's
/// responsibility, matching where the pool layer already performs it.
///
/// Every push also maintains an f32 shadow of the row (same quantization
/// and padded layout as [`Dataset::f32_rows`], exposed via
/// [`PaddedRows::padded_flat32`]), so the fast-f32 tile path survives
/// dynamic insertion exactly as the f64 tile path does. The shadow costs
/// half the f64 row again and is always kept — appended segments are small
/// next to the base dataset, and a lazily built shadow would need interior
/// mutability in a hot, mutable store.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PaddedRows {
    dim: usize,
    stride: usize,
    stride32: usize,
    n: usize,
    data: Vec<Lane4>,
    data32: Vec<LaneF32>,
}

impl PaddedRows {
    /// An empty store for rows of dimensionality `dim`.
    pub fn new(dim: usize) -> Self {
        PaddedRows {
            dim,
            stride: kernel::pad_dim(dim),
            stride32: kernel::pad_dim_f32(dim),
            n: 0,
            data: Vec::new(),
            data32: Vec::new(),
        }
    }

    /// Number of rows stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether no rows have been pushed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Dimensionality of the logical rows.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Length of one stored row (`dim` rounded up to a multiple of four);
    /// identical to [`Dataset::stride`] at the same dimensionality.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Appends one row, returning its index.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.dim()`.
    pub fn push(&mut self, row: &[f64]) -> usize {
        assert_eq!(row.len(), self.dim, "row dimensionality mismatch");
        let lanes = self.stride / 4;
        self.data
            .extend(std::iter::repeat_n(Lane4([0.0; 4]), lanes));
        let start = self.n * self.stride;
        lanes_as_f64s_mut(&mut self.data)[start..start + self.dim].copy_from_slice(row);
        self.data32
            .extend(std::iter::repeat_n(LaneF32([0.0; 8]), self.stride32 / 8));
        let start32 = self.n * self.stride32;
        let dst32 = lanes_as_f32s_mut(&mut self.data32);
        for (j, &v) in row.iter().enumerate() {
            dst32[start32 + j] = v as f32;
        }
        self.n += 1;
        self.n - 1
    }

    /// Logical coordinates of row `i` (never includes padding).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        &lanes_as_f64s(&self.data)[i * self.stride..i * self.stride + self.dim]
    }

    /// The whole padded row-major buffer (`len() * stride()` coordinates,
    /// 32-byte aligned) — the layout [`crate::Metric::dist_tile`] consumes,
    /// exactly as [`Dataset::padded_flat`].
    #[inline]
    pub fn padded_flat(&self) -> &[f64] {
        lanes_as_f64s(&self.data)
    }

    /// Length of one f32 shadow row (`dim` rounded up to a multiple of
    /// [`kernel::LANES_F32`]); identical to [`F32Rows::stride32`] at the
    /// same dimensionality.
    #[inline]
    pub fn stride32(&self) -> usize {
        self.stride32
    }

    /// The f32 shadow of the rows (`len() * stride32()` coordinates,
    /// 32-byte aligned) — the layout [`crate::Metric::dist_tile_f32`]
    /// consumes, exactly as [`Dataset::f32_rows`].
    #[inline]
    pub fn padded_flat32(&self) -> &[f32] {
        lanes_as_f32s(&self.data32)
    }
}

/// Allocation accounting for one streaming [`DatasetBuilder`] run — the
/// honesty record behind the "no 2x peak RSS" claim for large builds.
///
/// `peak_bytes` is the worst-case number of row-storage bytes live at any
/// instant, charging each growth reallocation with *both* the old and the
/// new buffer (the allocator holds both while the rows are copied across).
/// A builder created with [`DatasetBuilder::with_capacity`] for the exact
/// row count never reallocates, so `peak_bytes == final_bytes` and
/// `peak_ratio()` is 1.0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildStats {
    /// Rows in the finished dataset.
    pub rows: usize,
    /// Bytes of padded row storage the finished dataset occupies.
    pub final_bytes: usize,
    /// Worst-case bytes of row storage live at once during the build
    /// (old + new buffer during each growth reallocation).
    pub peak_bytes: usize,
    /// Number of growth reallocations the row buffer underwent.
    pub reallocs: usize,
}

impl BuildStats {
    /// `peak_bytes / final_bytes` — exactly 1.0 for a pre-sized build
    /// (the loaders' known-row-count path, which must stay below 1.5 to
    /// honor the no-2x-peak claim); up to ~3x for unknown-count streaming
    /// when the last doubling lands just before the end.
    pub fn peak_ratio(&self) -> f64 {
        if self.final_bytes == 0 {
            1.0
        } else {
            self.peak_bytes as f64 / self.final_bytes as f64
        }
    }
}

/// Incremental builder for [`Dataset`], validating each appended point.
///
/// Rows are appended *straight into* the padded 32-byte-aligned lane buffer
/// the finished [`Dataset`] will own — there is no intermediate flat copy,
/// so [`DatasetBuilder::build`] is a move, not a repack. Growth is
/// reserve-ahead (capacity at least doubles per reallocation), and the
/// builder tracks its own worst-case transient footprint; see
/// [`BuildStats`]. A [`with_capacity`] (or [`reserve`](DatasetBuilder::reserve))
/// build for a known row count never reallocates and peaks at exactly 1.0x
/// the final storage — this is the path the file loaders take whenever the
/// byte length reveals the row count. Pure unknown-count streaming pays the
/// doubling transient instead (old + new buffer live during a growth copy):
/// between 1.5x and ~3x of the final bytes depending on where the last
/// reallocation lands, where the old flat-copy-then-repack path held a full
/// second copy on *every* build, known row count or not. [`BuildStats`]
/// records which case actually happened.
///
/// [`push`]: DatasetBuilder::push
/// [`push_chunk`]: DatasetBuilder::push_chunk
/// [`with_capacity`]: DatasetBuilder::with_capacity
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    dim: usize,
    stride: usize,
    n: usize,
    data: Vec<Lane4>,
    peak_lanes: usize,
    reallocs: usize,
}

impl DatasetBuilder {
    /// Creates a builder for points of dimensionality `dim`.
    pub fn new(dim: usize) -> Self {
        DatasetBuilder {
            dim,
            stride: kernel::pad_dim(dim),
            n: 0,
            data: Vec::new(),
            peak_lanes: 0,
            reallocs: 0,
        }
    }

    /// Creates a builder with room for `n` points without reallocation.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        let stride = kernel::pad_dim(dim);
        let data = Vec::with_capacity(n * stride / 4);
        let peak_lanes = data.capacity();
        DatasetBuilder {
            dim,
            stride,
            n: 0,
            data,
            peak_lanes,
            reallocs: 0,
        }
    }

    /// Ensures room for `more` additional rows, reallocating ahead (at
    /// least doubling) so repeated pushes amortize and the transient
    /// old+new footprint stays bounded.
    fn ensure(&mut self, more: usize) {
        let lanes_per_row = self.stride / 4;
        let need = (self.n + more) * lanes_per_row;
        if need > self.data.capacity() {
            let old = self.data.capacity();
            // Grow to at least double the old capacity so the number of
            // reallocations is logarithmic. The transient (old + new live
            // during the copy) is 1.5x the *new capacity*; relative to the
            // final used bytes that is 1.5x when the build fills the last
            // buffer and up to ~3x when growth lands just before the end.
            let target = need.max(old * 2).max(lanes_per_row.max(1) * 64);
            self.data.reserve_exact(target - self.data.len());
            self.reallocs += 1;
            self.peak_lanes = self.peak_lanes.max(old + self.data.capacity());
        }
    }

    /// Reserves room for `additional` more rows without reallocation on
    /// subsequent pushes. Loaders that know the row count from file
    /// metadata call this once so streaming ingestion never regrows.
    pub fn reserve(&mut self, additional: usize) {
        self.ensure(additional);
    }

    /// Appends one point, returning its id.
    ///
    /// # Errors
    ///
    /// [`CoreError::DimensionMismatch`] or [`CoreError::NonFinite`].
    pub fn push(&mut self, point: &[f64]) -> Result<usize, CoreError> {
        if self.dim == 0 {
            return Err(CoreError::DimensionMismatch {
                expected: 1,
                got: 0,
            });
        }
        if point.len() != self.dim {
            return Err(CoreError::DimensionMismatch {
                expected: self.dim,
                got: point.len(),
            });
        }
        if let Some(j) = point.iter().position(|v| !v.is_finite()) {
            return Err(CoreError::NonFinite {
                point: self.n,
                coordinate: j,
            });
        }
        self.ensure(1);
        self.data
            .extend(std::iter::repeat_n(Lane4([0.0; 4]), self.stride / 4));
        let start = self.n * self.stride;
        lanes_as_f64s_mut(&mut self.data)[start..start + self.dim].copy_from_slice(point);
        self.n += 1;
        Ok(self.n - 1)
    }

    /// Appends a chunk of row-major flat coordinates (any whole number of
    /// rows, including zero), returning the number of rows appended. The
    /// chunked ingestion entry point for file loaders: validation and the
    /// copy into padded storage happen per chunk, so only one chunk of
    /// unpadded data is ever live alongside the growing dataset.
    ///
    /// # Errors
    ///
    /// [`CoreError::DimensionMismatch`] if `flat.len()` is not a multiple
    /// of the builder's dimension, [`CoreError::NonFinite`] (with the
    /// dataset-global point id) if any coordinate is NaN or infinite. On
    /// error no rows from the chunk are appended.
    pub fn push_chunk(&mut self, flat: &[f64]) -> Result<usize, CoreError> {
        if self.dim == 0 || !flat.len().is_multiple_of(self.dim) {
            return Err(CoreError::DimensionMismatch {
                expected: self.dim.max(1),
                got: if self.dim == 0 {
                    flat.len()
                } else {
                    flat.len() % self.dim
                },
            });
        }
        let rows = flat.len() / self.dim;
        for (r, row) in flat.chunks_exact(self.dim).enumerate() {
            if let Some(j) = row.iter().position(|v| !v.is_finite()) {
                return Err(CoreError::NonFinite {
                    point: self.n + r,
                    coordinate: j,
                });
            }
        }
        self.ensure(rows);
        self.data
            .extend(std::iter::repeat_n(Lane4([0.0; 4]), rows * self.stride / 4));
        let dst = lanes_as_f64s_mut(&mut self.data);
        for (r, row) in flat.chunks_exact(self.dim).enumerate() {
            let start = (self.n + r) * self.stride;
            dst[start..start + self.dim].copy_from_slice(row);
        }
        self.n += rows;
        Ok(rows)
    }

    /// Number of points pushed so far.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether no points have been pushed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Allocation accounting as of now; see [`BuildStats`]. `final_bytes`
    /// reflects the rows pushed so far.
    pub fn stats(&self) -> BuildStats {
        BuildStats {
            rows: self.n,
            final_bytes: self.data.len() * std::mem::size_of::<Lane4>(),
            peak_bytes: self.peak_lanes.max(self.data.capacity()) * std::mem::size_of::<Lane4>(),
            reallocs: self.reallocs,
        }
    }

    /// Finalizes the dataset. The padded lane buffer moves into the
    /// [`Dataset`] as-is — no repack, no copy.
    pub fn build(self) -> Dataset {
        self.build_counted().0
    }

    /// Finalizes the dataset and reports the build's allocation honesty
    /// record ([`BuildStats`]).
    pub fn build_counted(self) -> (Dataset, BuildStats) {
        let stats = BuildStats {
            rows: self.n,
            final_bytes: self.data.len() * std::mem::size_of::<Lane4>(),
            peak_bytes: self.peak_lanes.max(self.data.capacity()) * std::mem::size_of::<Lane4>(),
            reallocs: self.reallocs,
        };
        (
            Dataset {
                dim: self.dim,
                stride: self.stride,
                n: self.n,
                data: self.data,
                f32: OnceLock::new(),
            },
            stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_roundtrip() {
        let ds = Dataset::from_rows(&[vec![0.0, 1.0], vec![2.0, 3.0], vec![4.0, 5.0]]).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.dim(), 2);
        assert_eq!(ds.point(1), &[2.0, 3.0]);
        let collected: Vec<_> = ds.iter().map(|(i, p)| (i, p.to_vec())).collect();
        assert_eq!(collected[2], (2, vec![4.0, 5.0]));
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = Dataset::from_rows(&[vec![0.0, 1.0], vec![2.0]]).unwrap_err();
        assert_eq!(
            err,
            CoreError::DimensionMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn rejects_non_finite() {
        let err = Dataset::from_rows(&[vec![0.0, f64::NAN]]).unwrap_err();
        assert_eq!(
            err,
            CoreError::NonFinite {
                point: 0,
                coordinate: 1
            }
        );
        let err = Dataset::from_flat(2, vec![0.0, 1.0, f64::INFINITY, 3.0]).unwrap_err();
        assert_eq!(
            err,
            CoreError::NonFinite {
                point: 1,
                coordinate: 0
            }
        );
    }

    #[test]
    fn rejects_empty_rows() {
        assert_eq!(
            Dataset::from_rows(&[]).unwrap_err(),
            CoreError::EmptyDataset
        );
    }

    #[test]
    fn from_flat_validates_multiple() {
        let err = Dataset::from_flat(3, vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, CoreError::DimensionMismatch { .. }));
        assert!(Dataset::from_flat(0, vec![]).is_err());
    }

    #[test]
    fn subset_selects_and_orders() {
        let ds = Dataset::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let sub = ds.subset(&[2, 0]).unwrap();
        assert_eq!(sub.point(0), &[2.0]);
        assert_eq!(sub.point(1), &[0.0]);
        assert_eq!(ds.subset(&[5]).unwrap_err(), CoreError::UnknownPoint(5));
    }

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut b = DatasetBuilder::with_capacity(2, 4);
        assert!(b.is_empty());
        assert_eq!(b.push(&[0.0, 0.0]).unwrap(), 0);
        assert_eq!(b.push(&[1.0, 1.0]).unwrap(), 1);
        assert_eq!(b.len(), 2);
        assert!(b.push(&[1.0]).is_err());
        assert!(b.push(&[f64::NAN, 0.0]).is_err());
        let ds = b.build();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn builder_streams_bytes_identical_to_from_rows() {
        for dim in [1usize, 3, 4, 5, 8, 13] {
            let rows: Vec<Vec<f64>> = (0..17)
                .map(|i| (0..dim).map(|j| (i * dim + j) as f64 + 0.5).collect())
                .collect();
            let reference = Dataset::from_rows(&rows).unwrap();
            // Row-at-a-time streaming (no capacity hint).
            let mut b = DatasetBuilder::new(dim);
            for row in &rows {
                b.push(row).unwrap();
            }
            let (ds, stats) = b.build_counted();
            assert_eq!(ds, reference, "dim={dim}");
            assert_eq!(ds.padded_flat(), reference.padded_flat());
            assert_eq!(stats.rows, rows.len());
            assert_eq!(stats.final_bytes, reference.storage_bytes());
            // Chunked streaming in uneven chunk sizes.
            let flat: Vec<f64> = rows.iter().flatten().copied().collect();
            let mut b = DatasetBuilder::new(dim);
            let mut off = 0;
            for chunk_rows in [1usize, 4, 0, 7, 5] {
                let take = chunk_rows.min(rows.len() - off);
                b.push_chunk(&flat[off * dim..(off + take) * dim]).unwrap();
                off += take;
            }
            assert_eq!(off, rows.len());
            assert_eq!(b.build(), reference, "dim={dim} chunked");
        }
    }

    #[test]
    fn presized_builder_never_reallocates() {
        let mut b = DatasetBuilder::with_capacity(5, 100);
        for i in 0..100 {
            b.push(&[i as f64; 5]).unwrap();
        }
        let (ds, stats) = b.build_counted();
        assert_eq!(ds.len(), 100);
        assert_eq!(stats.reallocs, 0);
        assert_eq!(stats.peak_bytes, stats.final_bytes);
        assert_eq!(stats.peak_ratio(), 1.0);
        assert_eq!(stats.final_bytes, ds.storage_bytes());
    }

    #[test]
    fn push_chunk_rejects_bad_input_atomically() {
        let mut b = DatasetBuilder::new(3);
        b.push_chunk(&[1.0, 2.0, 3.0]).unwrap();
        // Ragged chunk: not a multiple of dim.
        let err = b.push_chunk(&[1.0, 2.0]).unwrap_err();
        assert_eq!(
            err,
            CoreError::DimensionMismatch {
                expected: 3,
                got: 2
            }
        );
        // Non-finite in the second row of the chunk: nothing appended.
        let err = b
            .push_chunk(&[4.0, 5.0, 6.0, 7.0, f64::NAN, 9.0])
            .unwrap_err();
        assert_eq!(
            err,
            CoreError::NonFinite {
                point: 2,
                coordinate: 1
            }
        );
        assert_eq!(b.len(), 1);
        let ds = b.build();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.point(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn zero_dim_builder_rejects_pushes() {
        let mut b = DatasetBuilder::new(0);
        assert!(b.push(&[]).is_err());
        assert!(b.push_chunk(&[]).is_err());
        assert!(b.build().is_empty());
    }

    #[test]
    fn zero_dim_builder_builds_the_empty_dataset() {
        // Regression: an unused builder at dim 0 must keep yielding an
        // empty dataset rather than panicking in the packing step.
        let ds = DatasetBuilder::new(0).build();
        assert!(ds.is_empty());
        assert_eq!(ds.len(), 0);
        assert_eq!(ds.dim(), 0);
        assert_eq!(ds.iter().count(), 0);
    }

    #[test]
    fn empty_dataset_properties() {
        let ds = Dataset::from_flat(4, vec![]).unwrap();
        assert!(ds.is_empty());
        assert_eq!(ds.len(), 0);
        assert_eq!(ds.iter().count(), 0);
        assert_eq!(ds.stride(), 4);
    }

    #[test]
    fn padding_never_leaks_into_logical_accessors() {
        // dim = 3 pads one zero per row; dim = 5 pads three.
        for dim in [1usize, 2, 3, 4, 5, 7, 9] {
            let rows: Vec<Vec<f64>> = (0..6)
                .map(|i| (0..dim).map(|j| (i * dim + j) as f64 + 1.0).collect())
                .collect();
            let ds = Dataset::from_rows(&rows).unwrap();
            assert_eq!(ds.stride(), dim.div_ceil(4) * 4);
            assert_eq!(ds.stride() % 4, 0);
            for (i, row) in rows.iter().enumerate() {
                // Logical accessors return exactly the pushed coordinates —
                // no pad values, which are all nonzero here by construction.
                assert_eq!(ds.point(i), row.as_slice(), "dim={dim}");
                let padded = ds.padded_point(i);
                assert_eq!(padded.len(), ds.stride());
                assert_eq!(&padded[..dim], row.as_slice());
                assert!(
                    padded[dim..].iter().all(|&v| v == 0.0),
                    "pad coordinates must stay zero"
                );
            }
            // iter() yields logical slices too.
            for (i, p) in ds.iter() {
                assert_eq!(p.len(), dim, "dim={dim} i={i}");
            }
            // Subset and equality operate on logical rows.
            let sub = ds.subset(&[1, 0]).unwrap();
            assert_eq!(sub.point(0), rows[1].as_slice());
            let rebuilt = Dataset::from_rows(&rows).unwrap();
            assert_eq!(ds, rebuilt);
        }
    }

    #[test]
    fn padded_rows_share_the_dataset_layout() {
        for dim in [1usize, 2, 3, 4, 5, 7, 9] {
            let rows: Vec<Vec<f64>> = (0..6)
                .map(|i| (0..dim).map(|j| (i * dim + j) as f64 + 1.0).collect())
                .collect();
            let ds = Dataset::from_rows(&rows).unwrap();
            let mut pr = PaddedRows::new(dim);
            assert!(pr.is_empty());
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(pr.push(row), i);
            }
            assert_eq!(pr.len(), 6);
            assert_eq!(pr.dim(), dim);
            assert_eq!(pr.stride(), ds.stride(), "dim={dim}");
            // Bytewise the same padded buffer as the equivalent Dataset.
            assert_eq!(pr.padded_flat(), ds.padded_flat(), "dim={dim}");
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(pr.point(i), row.as_slice());
                assert_eq!(
                    pr.padded_flat()[i * pr.stride()..].as_ptr() as usize % 32,
                    0,
                    "row {i} must start 32-byte aligned"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn padded_rows_reject_ragged_push() {
        PaddedRows::new(3).push(&[1.0, 2.0]);
    }

    #[test]
    fn f32_mirror_quantizes_rows_in_the_shared_layout() {
        for dim in [1usize, 2, 3, 7, 8, 9, 17] {
            let rows: Vec<Vec<f64>> = (0..6)
                .map(|i| {
                    (0..dim)
                        .map(|j| (i * dim + j) as f64 / 997.0 + 1.0)
                        .collect()
                })
                .collect();
            let ds = Dataset::from_rows(&rows).unwrap();
            let m = ds.f32_rows();
            assert_eq!(m.stride32(), dim.div_ceil(8) * 8, "dim={dim}");
            assert_eq!(m.padded_flat().len(), ds.len() * m.stride32());
            assert_eq!(m.bytes(), ds.len() * m.stride32() * 4);
            for (i, row) in rows.iter().enumerate() {
                let r32 = &m.padded_flat()[i * m.stride32()..(i + 1) * m.stride32()];
                assert_eq!(
                    r32.as_ptr() as usize % 32,
                    0,
                    "f32 row {i} must start 32-byte aligned"
                );
                for (j, &v) in row.iter().enumerate() {
                    assert_eq!(r32[j].to_bits(), (v as f32).to_bits(), "dim={dim}");
                }
                assert!(r32[dim..].iter().all(|&v| v == 0.0), "pads stay zero");
            }
            // The PaddedRows shadow is bytewise the same quantization.
            let mut pr = PaddedRows::new(dim);
            for row in &rows {
                pr.push(row);
            }
            assert_eq!(pr.stride32(), m.stride32());
            assert_eq!(pr.padded_flat32(), m.padded_flat(), "dim={dim}");
            // Equality ignores the lazily built cache.
            let rebuilt = Dataset::from_rows(&rows).unwrap();
            assert_eq!(ds, rebuilt, "mirror on one side must not break eq");
            assert_eq!(rebuilt, ds);
            // And a clone carries (or rebuilds to) the identical mirror.
            let cloned = ds.clone();
            assert_eq!(cloned.f32_rows().padded_flat(), m.padded_flat());
        }
    }

    #[test]
    fn rows_are_32_byte_aligned() {
        let ds = Dataset::from_rows(&[vec![1.0; 5], vec![2.0; 5], vec![3.0; 5]]).unwrap();
        for i in 0..ds.len() {
            assert_eq!(
                ds.padded_point(i).as_ptr() as usize % 32,
                0,
                "row {i} must start 32-byte aligned"
            );
        }
        assert_eq!(ds.padded_flat().len(), ds.len() * ds.stride());
    }
}
