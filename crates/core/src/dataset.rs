//! Finite point sets `S ⊆ R^m` with validated, cache-friendly flat storage.

use crate::error::CoreError;
use crate::kernel;
use std::sync::Arc;

/// One 32-byte-aligned group of four coordinates — the allocation unit of
/// the padded row storage. Rows are padded to a whole number of these, so
/// every row starts 32-byte aligned and the SIMD tile kernels stream whole
/// 4-lane blocks with no tail handling.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C, align(32))]
struct Lane4([f64; 4]);

/// Views an aligned lane buffer as flat coordinates.
#[inline]
fn lanes_as_f64s(lanes: &[Lane4]) -> &[f64] {
    // Sound: Lane4 is repr(C) over [f64; 4] — same size, stricter
    // alignment, no padding bytes.
    unsafe { std::slice::from_raw_parts(lanes.as_ptr() as *const f64, lanes.len() * 4) }
}

#[inline]
fn lanes_as_f64s_mut(lanes: &mut [Lane4]) -> &mut [f64] {
    unsafe { std::slice::from_raw_parts_mut(lanes.as_mut_ptr() as *mut f64, lanes.len() * 4) }
}

/// An immutable, validated point set.
///
/// Points are stored row-major in a single 32-byte-aligned flat allocation,
/// each row padded with zeros to a multiple of four coordinates
/// ([`Dataset::stride`]); every *logical* coordinate is guaranteed finite.
/// The padding is an internal storage detail for the SIMD tile kernels
/// ([`crate::Metric::dist_tile`]): all user-facing accessors
/// ([`Dataset::point`], [`Dataset::iter`]) return the logical `dim`-length
/// slices, so padding can never leak into results, statistics or serialized
/// output. Datasets are cheaply shareable behind [`Arc`] so that several
/// index structures can be built over the same points without copying them
/// (the memory for the high-dimensional workloads in the evaluation is
/// dominated by the point data).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    dim: usize,
    stride: usize,
    n: usize,
    data: Vec<Lane4>,
}

impl Dataset {
    /// Packs validated logical row-major coordinates into padded aligned
    /// storage.
    fn pack(dim: usize, data: &[f64]) -> Self {
        let n = data.len().checked_div(dim).unwrap_or(0);
        Dataset::pack_rows(dim, n, data.chunks(dim.max(1)))
    }

    /// Packs `n` validated logical rows straight into the padded aligned
    /// buffer — no intermediate flat vector, so construction from borrowed
    /// rows holds only the final allocation. A `dim` of zero (an empty
    /// [`DatasetBuilder`]) yields the empty dataset.
    fn pack_rows<'r>(dim: usize, n: usize, rows: impl Iterator<Item = &'r [f64]>) -> Self {
        let stride = kernel::pad_dim(dim);
        let mut lanes = vec![Lane4([0.0; 4]); n * stride / 4];
        let dst = lanes_as_f64s_mut(&mut lanes);
        for (row, src) in rows.take(n).enumerate() {
            dst[row * stride..row * stride + dim].copy_from_slice(src);
        }
        Dataset {
            dim,
            stride,
            n,
            data: lanes,
        }
    }

    /// Builds a dataset from row-major flat coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if `data.len()` is not a
    /// multiple of `dim` and [`CoreError::NonFinite`] if any coordinate is
    /// NaN or infinite. `dim` must be nonzero.
    pub fn from_flat(dim: usize, data: Vec<f64>) -> Result<Self, CoreError> {
        if dim == 0 {
            return Err(CoreError::DimensionMismatch {
                expected: 1,
                got: 0,
            });
        }
        if !data.len().is_multiple_of(dim) {
            return Err(CoreError::DimensionMismatch {
                expected: dim,
                got: data.len() % dim,
            });
        }
        // Validate finiteness row by row: the common all-finite case is a
        // branch-friendly scan over each row slice, and the point/coordinate
        // split is only derived for the offending row.
        for (point, row) in data.chunks_exact(dim).enumerate() {
            if let Some(coordinate) = row.iter().position(|v| !v.is_finite()) {
                return Err(CoreError::NonFinite { point, coordinate });
            }
        }
        Ok(Dataset::pack(dim, &data))
    }

    /// Builds a dataset from a sequence of rows, validating dimensions.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, CoreError> {
        let dim = rows.first().map(|r| r.len()).unwrap_or(0);
        if dim == 0 {
            return Err(CoreError::EmptyDataset);
        }
        for (i, row) in rows.iter().enumerate() {
            if row.len() != dim {
                return Err(CoreError::DimensionMismatch {
                    expected: dim,
                    got: row.len(),
                });
            }
            if let Some(j) = row.iter().position(|v| !v.is_finite()) {
                return Err(CoreError::NonFinite {
                    point: i,
                    coordinate: j,
                });
            }
        }
        Ok(Dataset::pack_rows(
            dim,
            rows.len(),
            rows.iter().map(Vec::as_slice),
        ))
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the dataset holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Representational dimension `m`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Length of one stored row: [`Dataset::dim`] rounded up to a multiple
    /// of [`kernel::LANES`]. Coordinates past `dim` are zero padding.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Coordinates of point `i` (the logical `dim`-length slice — never
    /// includes padding).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        &lanes_as_f64s(&self.data)[i * self.stride..i * self.stride + self.dim]
    }

    /// The full padded row of point `i` (`stride` coordinates, zeros past
    /// `dim`) — the layout [`crate::Metric::dist_tile`] consumes.
    #[inline]
    pub fn padded_point(&self, i: usize) -> &[f64] {
        &lanes_as_f64s(&self.data)[i * self.stride..(i + 1) * self.stride]
    }

    /// The whole padded row-major buffer (`len() * stride()` coordinates,
    /// 32-byte aligned). Rows `a..b` occupy
    /// `padded_flat()[a * stride..b * stride]` — the contiguous blocks the
    /// tile kernels stream over. For logical coordinates use
    /// [`Dataset::point`] / [`Dataset::iter`].
    #[inline]
    pub fn padded_flat(&self) -> &[f64] {
        lanes_as_f64s(&self.data)
    }

    /// Iterates over `(id, coordinates)` pairs (logical slices).
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[f64])> {
        (0..self.len()).map(move |i| (i, self.point(i)))
    }

    /// A new dataset containing only the points whose ids are in `ids`
    /// (in the given order).
    pub fn subset(&self, ids: &[usize]) -> Result<Self, CoreError> {
        if let Some(&bad) = ids.iter().find(|&&id| id >= self.len()) {
            return Err(CoreError::UnknownPoint(bad));
        }
        Ok(Dataset::pack_rows(
            self.dim,
            ids.len(),
            ids.iter().map(|&id| self.point(id)),
        ))
    }

    /// Wraps the dataset in an [`Arc`] for sharing across indexes.
    pub fn into_shared(self) -> Arc<Dataset> {
        Arc::new(self)
    }
}

/// Growable, 32-byte-aligned, zero-padded row storage sharing the
/// [`Dataset`] layout.
///
/// This is the storage dynamic indexes append into: rows of `dim` logical
/// coordinates stored at the same `stride = dim.div_ceil(4) * 4` as a
/// [`Dataset`] built over the same dimensionality, each row starting
/// 32-byte aligned with zero padding past `dim`. A scan can therefore
/// stream appended points through [`crate::Metric::dist_tile`] in the same
/// tile blocks as the base dataset — the tile fast path survives dynamic
/// insertion instead of falling back to per-point evaluation.
///
/// Unlike [`DatasetBuilder`] this type is a *live* store, readable between
/// pushes; validation (finiteness, dimensionality) is the caller's
/// responsibility, matching where the pool layer already performs it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PaddedRows {
    dim: usize,
    stride: usize,
    n: usize,
    data: Vec<Lane4>,
}

impl PaddedRows {
    /// An empty store for rows of dimensionality `dim`.
    pub fn new(dim: usize) -> Self {
        PaddedRows {
            dim,
            stride: kernel::pad_dim(dim),
            n: 0,
            data: Vec::new(),
        }
    }

    /// Number of rows stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether no rows have been pushed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Dimensionality of the logical rows.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Length of one stored row (`dim` rounded up to a multiple of four);
    /// identical to [`Dataset::stride`] at the same dimensionality.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Appends one row, returning its index.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.dim()`.
    pub fn push(&mut self, row: &[f64]) -> usize {
        assert_eq!(row.len(), self.dim, "row dimensionality mismatch");
        let lanes = self.stride / 4;
        self.data
            .extend(std::iter::repeat_n(Lane4([0.0; 4]), lanes));
        let start = self.n * self.stride;
        lanes_as_f64s_mut(&mut self.data)[start..start + self.dim].copy_from_slice(row);
        self.n += 1;
        self.n - 1
    }

    /// Logical coordinates of row `i` (never includes padding).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        &lanes_as_f64s(&self.data)[i * self.stride..i * self.stride + self.dim]
    }

    /// The whole padded row-major buffer (`len() * stride()` coordinates,
    /// 32-byte aligned) — the layout [`crate::Metric::dist_tile`] consumes,
    /// exactly as [`Dataset::padded_flat`].
    #[inline]
    pub fn padded_flat(&self) -> &[f64] {
        lanes_as_f64s(&self.data)
    }
}

/// Incremental builder for [`Dataset`], validating each appended point.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    dim: usize,
    data: Vec<f64>,
}

impl DatasetBuilder {
    /// Creates a builder for points of dimensionality `dim`.
    pub fn new(dim: usize) -> Self {
        DatasetBuilder {
            dim,
            data: Vec::new(),
        }
    }

    /// Creates a builder with room for `n` points without reallocation.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        DatasetBuilder {
            dim,
            data: Vec::with_capacity(dim * n),
        }
    }

    /// Appends one point, returning its id.
    ///
    /// # Errors
    ///
    /// [`CoreError::DimensionMismatch`] or [`CoreError::NonFinite`].
    pub fn push(&mut self, point: &[f64]) -> Result<usize, CoreError> {
        if point.len() != self.dim {
            return Err(CoreError::DimensionMismatch {
                expected: self.dim,
                got: point.len(),
            });
        }
        let id = self.data.len() / self.dim;
        if let Some(j) = point.iter().position(|v| !v.is_finite()) {
            return Err(CoreError::NonFinite {
                point: id,
                coordinate: j,
            });
        }
        self.data.extend_from_slice(point);
        Ok(id)
    }

    /// Number of points pushed so far.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// Whether no points have been pushed.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Finalizes the dataset.
    pub fn build(self) -> Dataset {
        Dataset::pack(self.dim, &self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_roundtrip() {
        let ds = Dataset::from_rows(&[vec![0.0, 1.0], vec![2.0, 3.0], vec![4.0, 5.0]]).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.dim(), 2);
        assert_eq!(ds.point(1), &[2.0, 3.0]);
        let collected: Vec<_> = ds.iter().map(|(i, p)| (i, p.to_vec())).collect();
        assert_eq!(collected[2], (2, vec![4.0, 5.0]));
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = Dataset::from_rows(&[vec![0.0, 1.0], vec![2.0]]).unwrap_err();
        assert_eq!(
            err,
            CoreError::DimensionMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn rejects_non_finite() {
        let err = Dataset::from_rows(&[vec![0.0, f64::NAN]]).unwrap_err();
        assert_eq!(
            err,
            CoreError::NonFinite {
                point: 0,
                coordinate: 1
            }
        );
        let err = Dataset::from_flat(2, vec![0.0, 1.0, f64::INFINITY, 3.0]).unwrap_err();
        assert_eq!(
            err,
            CoreError::NonFinite {
                point: 1,
                coordinate: 0
            }
        );
    }

    #[test]
    fn rejects_empty_rows() {
        assert_eq!(
            Dataset::from_rows(&[]).unwrap_err(),
            CoreError::EmptyDataset
        );
    }

    #[test]
    fn from_flat_validates_multiple() {
        let err = Dataset::from_flat(3, vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, CoreError::DimensionMismatch { .. }));
        assert!(Dataset::from_flat(0, vec![]).is_err());
    }

    #[test]
    fn subset_selects_and_orders() {
        let ds = Dataset::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let sub = ds.subset(&[2, 0]).unwrap();
        assert_eq!(sub.point(0), &[2.0]);
        assert_eq!(sub.point(1), &[0.0]);
        assert_eq!(ds.subset(&[5]).unwrap_err(), CoreError::UnknownPoint(5));
    }

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut b = DatasetBuilder::with_capacity(2, 4);
        assert!(b.is_empty());
        assert_eq!(b.push(&[0.0, 0.0]).unwrap(), 0);
        assert_eq!(b.push(&[1.0, 1.0]).unwrap(), 1);
        assert_eq!(b.len(), 2);
        assert!(b.push(&[1.0]).is_err());
        assert!(b.push(&[f64::NAN, 0.0]).is_err());
        let ds = b.build();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn zero_dim_builder_builds_the_empty_dataset() {
        // Regression: an unused builder at dim 0 must keep yielding an
        // empty dataset rather than panicking in the packing step.
        let ds = DatasetBuilder::new(0).build();
        assert!(ds.is_empty());
        assert_eq!(ds.len(), 0);
        assert_eq!(ds.dim(), 0);
        assert_eq!(ds.iter().count(), 0);
    }

    #[test]
    fn empty_dataset_properties() {
        let ds = Dataset::from_flat(4, vec![]).unwrap();
        assert!(ds.is_empty());
        assert_eq!(ds.len(), 0);
        assert_eq!(ds.iter().count(), 0);
        assert_eq!(ds.stride(), 4);
    }

    #[test]
    fn padding_never_leaks_into_logical_accessors() {
        // dim = 3 pads one zero per row; dim = 5 pads three.
        for dim in [1usize, 2, 3, 4, 5, 7, 9] {
            let rows: Vec<Vec<f64>> = (0..6)
                .map(|i| (0..dim).map(|j| (i * dim + j) as f64 + 1.0).collect())
                .collect();
            let ds = Dataset::from_rows(&rows).unwrap();
            assert_eq!(ds.stride(), dim.div_ceil(4) * 4);
            assert_eq!(ds.stride() % 4, 0);
            for (i, row) in rows.iter().enumerate() {
                // Logical accessors return exactly the pushed coordinates —
                // no pad values, which are all nonzero here by construction.
                assert_eq!(ds.point(i), row.as_slice(), "dim={dim}");
                let padded = ds.padded_point(i);
                assert_eq!(padded.len(), ds.stride());
                assert_eq!(&padded[..dim], row.as_slice());
                assert!(
                    padded[dim..].iter().all(|&v| v == 0.0),
                    "pad coordinates must stay zero"
                );
            }
            // iter() yields logical slices too.
            for (i, p) in ds.iter() {
                assert_eq!(p.len(), dim, "dim={dim} i={i}");
            }
            // Subset and equality operate on logical rows.
            let sub = ds.subset(&[1, 0]).unwrap();
            assert_eq!(sub.point(0), rows[1].as_slice());
            let rebuilt = Dataset::from_rows(&rows).unwrap();
            assert_eq!(ds, rebuilt);
        }
    }

    #[test]
    fn padded_rows_share_the_dataset_layout() {
        for dim in [1usize, 2, 3, 4, 5, 7, 9] {
            let rows: Vec<Vec<f64>> = (0..6)
                .map(|i| (0..dim).map(|j| (i * dim + j) as f64 + 1.0).collect())
                .collect();
            let ds = Dataset::from_rows(&rows).unwrap();
            let mut pr = PaddedRows::new(dim);
            assert!(pr.is_empty());
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(pr.push(row), i);
            }
            assert_eq!(pr.len(), 6);
            assert_eq!(pr.dim(), dim);
            assert_eq!(pr.stride(), ds.stride(), "dim={dim}");
            // Bytewise the same padded buffer as the equivalent Dataset.
            assert_eq!(pr.padded_flat(), ds.padded_flat(), "dim={dim}");
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(pr.point(i), row.as_slice());
                assert_eq!(
                    pr.padded_flat()[i * pr.stride()..].as_ptr() as usize % 32,
                    0,
                    "row {i} must start 32-byte aligned"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn padded_rows_reject_ragged_push() {
        PaddedRows::new(3).push(&[1.0, 2.0]);
    }

    #[test]
    fn rows_are_32_byte_aligned() {
        let ds = Dataset::from_rows(&[vec![1.0; 5], vec![2.0; 5], vec![3.0; 5]]).unwrap();
        for i in 0..ds.len() {
            assert_eq!(
                ds.padded_point(i).as_ptr() as usize % 32,
                0,
                "row {i} must start 32-byte aligned"
            );
        }
        assert_eq!(ds.padded_flat().len(), ds.len() * ds.stride());
    }
}
