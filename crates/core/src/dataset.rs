//! Finite point sets `S ⊆ R^m` with validated, cache-friendly flat storage.

use crate::error::CoreError;
use std::sync::Arc;

/// An immutable, validated point set.
///
/// Points are stored row-major in a single flat allocation; every coordinate
/// is guaranteed finite. Datasets are cheaply shareable behind [`Arc`] so
/// that several index structures can be built over the same points without
/// copying them (the memory for the high-dimensional workloads in the
/// evaluation is dominated by the point data).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    dim: usize,
    data: Vec<f64>,
}

impl Dataset {
    /// Builds a dataset from row-major flat coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if `data.len()` is not a
    /// multiple of `dim` and [`CoreError::NonFinite`] if any coordinate is
    /// NaN or infinite. `dim` must be nonzero.
    pub fn from_flat(dim: usize, data: Vec<f64>) -> Result<Self, CoreError> {
        if dim == 0 {
            return Err(CoreError::DimensionMismatch {
                expected: 1,
                got: 0,
            });
        }
        if !data.len().is_multiple_of(dim) {
            return Err(CoreError::DimensionMismatch {
                expected: dim,
                got: data.len() % dim,
            });
        }
        // Validate finiteness row by row: the common all-finite case is a
        // branch-friendly scan over each row slice, and the point/coordinate
        // split is only derived for the offending row.
        for (point, row) in data.chunks_exact(dim).enumerate() {
            if let Some(coordinate) = row.iter().position(|v| !v.is_finite()) {
                return Err(CoreError::NonFinite { point, coordinate });
            }
        }
        Ok(Dataset { dim, data })
    }

    /// Builds a dataset from a sequence of rows, validating dimensions.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, CoreError> {
        let dim = rows.first().map(|r| r.len()).unwrap_or(0);
        if dim == 0 {
            return Err(CoreError::EmptyDataset);
        }
        let mut data = Vec::with_capacity(rows.len() * dim);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != dim {
                return Err(CoreError::DimensionMismatch {
                    expected: dim,
                    got: row.len(),
                });
            }
            if let Some(j) = row.iter().position(|v| !v.is_finite()) {
                return Err(CoreError::NonFinite {
                    point: i,
                    coordinate: j,
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Dataset { dim, data })
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// Whether the dataset holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Representational dimension `m`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Coordinates of point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterates over `(id, coordinates)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[f64])> {
        (0..self.len()).map(move |i| (i, self.point(i)))
    }

    /// The raw flat coordinate buffer (row-major).
    #[inline]
    pub fn flat(&self) -> &[f64] {
        &self.data
    }

    /// A new dataset containing only the points whose ids are in `ids`
    /// (in the given order).
    pub fn subset(&self, ids: &[usize]) -> Result<Self, CoreError> {
        let mut data = Vec::with_capacity(ids.len() * self.dim);
        for &id in ids {
            if id >= self.len() {
                return Err(CoreError::UnknownPoint(id));
            }
            data.extend_from_slice(self.point(id));
        }
        Ok(Dataset {
            dim: self.dim,
            data,
        })
    }

    /// Wraps the dataset in an [`Arc`] for sharing across indexes.
    pub fn into_shared(self) -> Arc<Dataset> {
        Arc::new(self)
    }
}

/// Incremental builder for [`Dataset`], validating each appended point.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    dim: usize,
    data: Vec<f64>,
}

impl DatasetBuilder {
    /// Creates a builder for points of dimensionality `dim`.
    pub fn new(dim: usize) -> Self {
        DatasetBuilder {
            dim,
            data: Vec::new(),
        }
    }

    /// Creates a builder with room for `n` points without reallocation.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        DatasetBuilder {
            dim,
            data: Vec::with_capacity(dim * n),
        }
    }

    /// Appends one point, returning its id.
    ///
    /// # Errors
    ///
    /// [`CoreError::DimensionMismatch`] or [`CoreError::NonFinite`].
    pub fn push(&mut self, point: &[f64]) -> Result<usize, CoreError> {
        if point.len() != self.dim {
            return Err(CoreError::DimensionMismatch {
                expected: self.dim,
                got: point.len(),
            });
        }
        let id = self.data.len() / self.dim;
        if let Some(j) = point.iter().position(|v| !v.is_finite()) {
            return Err(CoreError::NonFinite {
                point: id,
                coordinate: j,
            });
        }
        self.data.extend_from_slice(point);
        Ok(id)
    }

    /// Number of points pushed so far.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// Whether no points have been pushed.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Finalizes the dataset.
    pub fn build(self) -> Dataset {
        Dataset {
            dim: self.dim,
            data: self.data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_roundtrip() {
        let ds = Dataset::from_rows(&[vec![0.0, 1.0], vec![2.0, 3.0], vec![4.0, 5.0]]).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.dim(), 2);
        assert_eq!(ds.point(1), &[2.0, 3.0]);
        let collected: Vec<_> = ds.iter().map(|(i, p)| (i, p.to_vec())).collect();
        assert_eq!(collected[2], (2, vec![4.0, 5.0]));
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = Dataset::from_rows(&[vec![0.0, 1.0], vec![2.0]]).unwrap_err();
        assert_eq!(
            err,
            CoreError::DimensionMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn rejects_non_finite() {
        let err = Dataset::from_rows(&[vec![0.0, f64::NAN]]).unwrap_err();
        assert_eq!(
            err,
            CoreError::NonFinite {
                point: 0,
                coordinate: 1
            }
        );
        let err = Dataset::from_flat(2, vec![0.0, 1.0, f64::INFINITY, 3.0]).unwrap_err();
        assert_eq!(
            err,
            CoreError::NonFinite {
                point: 1,
                coordinate: 0
            }
        );
    }

    #[test]
    fn rejects_empty_rows() {
        assert_eq!(
            Dataset::from_rows(&[]).unwrap_err(),
            CoreError::EmptyDataset
        );
    }

    #[test]
    fn from_flat_validates_multiple() {
        let err = Dataset::from_flat(3, vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, CoreError::DimensionMismatch { .. }));
        assert!(Dataset::from_flat(0, vec![]).is_err());
    }

    #[test]
    fn subset_selects_and_orders() {
        let ds = Dataset::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let sub = ds.subset(&[2, 0]).unwrap();
        assert_eq!(sub.point(0), &[2.0]);
        assert_eq!(sub.point(1), &[0.0]);
        assert_eq!(ds.subset(&[5]).unwrap_err(), CoreError::UnknownPoint(5));
    }

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut b = DatasetBuilder::with_capacity(2, 4);
        assert!(b.is_empty());
        assert_eq!(b.push(&[0.0, 0.0]).unwrap(), 0);
        assert_eq!(b.push(&[1.0, 1.0]).unwrap(), 1);
        assert_eq!(b.len(), 2);
        assert!(b.push(&[1.0]).is_err());
        assert!(b.push(&[f64::NAN, 0.0]).is_err());
        let ds = b.build();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn empty_dataset_properties() {
        let ds = Dataset::from_flat(4, vec![]).unwrap();
        assert!(ds.is_empty());
        assert_eq!(ds.len(), 0);
        assert_eq!(ds.iter().count(), 0);
    }
}
