//! Ablation benchmarks for the design choices called out in `DESIGN.md`:
//! witness machinery on/off, RDT vs RDT+ filter cost, cover-tree base, and
//! M-tree node capacity.

use criterion::{criterion_group, criterion_main, Criterion};
use rknn_core::Euclidean;
use rknn_index::{cover_tree::CoverTreeConfig, CoverTree, KnnIndex, LinearScan, MTree};
use rknn_rdt::engine::{run_query_variant, RdtVariant};
use rknn_rdt::RdtParams;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_ablations(c: &mut Criterion) {
    let ds = Arc::new(rknn_data::fct_like(3000, 23));
    let idx = LinearScan::build(ds.clone(), Euclidean);
    let params = RdtParams::new(10, 6.0);

    // Witness machinery: the lazy accept/reject mechanisms cost O(|F|²)
    // distance work but remove forward-kNN verifications (§8.2).
    let mut g = c.benchmark_group("witness_ablation_t6_k10");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(2));
    for (name, variant) in [
        ("plain", RdtVariant::Plain),
        ("plus", RdtVariant::Plus),
        ("no_witness", RdtVariant::NoWitness),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(run_query_variant(
                    &idx,
                    idx.point(9),
                    Some(9),
                    params,
                    black_box(variant),
                ))
            })
        });
    }
    g.finish();

    // Cover-tree expansion base: tighter covers vs deeper trees.
    let mut g = c.benchmark_group("cover_tree_base");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    for base in [1.3f64, 2.0] {
        let cfg = CoverTreeConfig {
            base,
            ..CoverTreeConfig::default()
        };
        let tree = CoverTree::build_with(ds.clone(), Euclidean, cfg);
        g.bench_function(format!("knn_base{base}"), |b| {
            b.iter(|| {
                let mut st = rknn_core::SearchStats::new();
                black_box(tree.knn(ds.point(3), 10, Some(3), &mut st))
            })
        });
    }
    g.finish();

    // M-tree fanout.
    let mut g = c.benchmark_group("mtree_capacity");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    for cap in [8usize, 16, 32] {
        let tree = MTree::build_with(ds.clone(), Euclidean, cap);
        g.bench_function(format!("knn_cap{cap}"), |b| {
            b.iter(|| {
                let mut st = rknn_core::SearchStats::new();
                black_box(tree.knn(ds.point(3), 10, Some(3), &mut st))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
