//! Distance-kernel microbenchmarks: the scalar-unrolled reference against
//! every SIMD backend the host can run, at d ∈ {8, 32, 128}.
//!
//! Backends are obtained directly from [`rknn_core::kernel::ops`] so one
//! process can compare them side by side (the `Metric` implementations
//! always go through the single dispatched table). The one-query-to-many
//! [`rknn_core::Metric::dist_tile`] path is measured through the dispatched
//! backend, both unbounded and with a pruning bound, to show the blocked
//! evaluation and early abandonment on top of the raw kernel speed.

use criterion::{criterion_group, criterion_main, Criterion};
use rknn_core::kernel;
use rknn_core::{Euclidean, Metric};
use std::hint::black_box;

const N: usize = 1024;

fn bench_kernels(c: &mut Criterion) {
    for &dim in &[8usize, 32, 128] {
        let ds = rknn_data::uniform_cube(N, dim, 0x5eed);
        let q = ds.point(0).to_vec();
        let mut g = c.benchmark_group(format!("kernels_d{dim}"));

        for be in kernel::available() {
            let ops = kernel::ops(be).expect("listed backend is available");
            g.bench_function(format!("sum_sq_{}", be.name()), |b| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for (_, p) in ds.iter() {
                        acc += ops.sum_sq(black_box(&q), black_box(p));
                    }
                    acc
                })
            });
        }

        let stride = ds.stride();
        let mut qpad = vec![0.0; stride];
        qpad[..dim].copy_from_slice(&q);
        let unbounded = vec![f64::INFINITY; ds.len()];
        let mut out = vec![0.0; ds.len()];
        g.bench_function("dist_tile_unbounded", |b| {
            b.iter(|| {
                Euclidean.dist_tile(
                    black_box(&qpad),
                    ds.padded_flat(),
                    stride,
                    dim,
                    &unbounded,
                    &mut out,
                );
                out[N / 2]
            })
        });

        // A tight shared bound: most rows abandon after a block or two,
        // showing the early-abandonment path of the tile kernel.
        let median = {
            let mut d: Vec<f64> = ds.iter().map(|(_, p)| Euclidean.dist(&q, p)).collect();
            d.sort_unstable_by(f64::total_cmp);
            d[N / 2]
        };
        let bounded = vec![median * 0.5; ds.len()];
        g.bench_function("dist_tile_bounded", |b| {
            b.iter(|| {
                Euclidean.dist_tile(
                    black_box(&qpad),
                    ds.padded_flat(),
                    stride,
                    dim,
                    &bounded,
                    &mut out,
                );
                out[N / 2]
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
