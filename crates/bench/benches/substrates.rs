//! Per-substrate batch microbenchmark: the all-points RkNN job on each of
//! the six forward substrates through the shared traversal core.
//!
//! Complements `benches/batch.rs` (which pits the batch driver against the
//! scalar loop on the sequential scan): here the driver is fixed and the
//! substrate varies, so regressions in the generic `TreeCursor` or in one
//! substrate's `TreeSubstrate` impl show up as a per-substrate delta.
//! Result sets are asserted identical across all substrates before timing.

use criterion::{criterion_group, criterion_main, Criterion};
use rknn_core::{Dataset, Euclidean};
use rknn_index::{BallTree, CoverTree, KnnIndex, LinearScan, MTree, RTree, VpTree};
use rknn_rdt::batch::{run_all_points, BatchConfig};
use rknn_rdt::RdtParams;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const N: usize = 800;
const DIM: usize = 16;
const K: usize = 8;
const T: f64 = 4.0;

fn substrates(ds: &Arc<Dataset>) -> Vec<Box<dyn KnnIndex<Euclidean>>> {
    vec![
        Box::new(LinearScan::build(ds.clone(), Euclidean)),
        Box::new(CoverTree::build(ds.clone(), Euclidean)),
        Box::new(VpTree::build(ds.clone(), Euclidean)),
        Box::new(BallTree::build(ds.clone(), Euclidean)),
        Box::new(MTree::build(ds.clone(), Euclidean)),
        Box::new(RTree::build(ds.clone(), Euclidean)),
    ]
}

fn bench_substrates(c: &mut Criterion) {
    let ds = rknn_data::gaussian_blobs(N, DIM, 8, 0.3, 0x5b57).into_shared();
    let params = RdtParams::new(K, T);
    let cfg = BatchConfig::default().with_threads(4);
    let indexes = substrates(&ds);

    // Identical result sets across every substrate, checked before timing.
    let reference = run_all_points(&*indexes[0], params, &cfg);
    for index in &indexes[1..] {
        let out = run_all_points(&**index, params, &cfg);
        for (q, (a, b)) in reference.answers.iter().zip(&out.answers).enumerate() {
            assert_eq!(a.ids(), b.ids(), "{} diverged at q={q}", index.name());
        }
    }

    let mut g = c.benchmark_group(format!("substrate_batch_n{N}_d{DIM}_k{K}"));
    g.sample_size(2);
    g.measurement_time(Duration::from_secs(2));
    for index in &indexes {
        g.bench_function(index.name(), |b| {
            b.iter(|| {
                black_box(run_all_points(&**index, params, &cfg))
                    .stats
                    .result_members
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
