//! Microbenchmarks of the forward-NN substrates: kNN queries and
//! incremental cursor drains across all five index structures.

use criterion::{criterion_group, criterion_main, Criterion};
use rknn_core::{Euclidean, SearchStats};
use rknn_index::{BallTree, CoverTree, KnnIndex, LinearScan, MTree, RTree, VpTree};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_indexes(c: &mut Criterion) {
    let ds = Arc::new(rknn_data::gaussian_blobs(4000, 8, 10, 0.4, 7));
    let cover = CoverTree::build(ds.clone(), Euclidean);
    let vp = VpTree::build(ds.clone(), Euclidean);
    let rtree = RTree::build(ds.clone(), Euclidean);
    let mtree = MTree::build(ds.clone(), Euclidean);
    let ball = BallTree::build(ds.clone(), Euclidean);
    let linear = LinearScan::build(ds.clone(), Euclidean);
    let q = ds.point(17).to_vec();

    let mut g = c.benchmark_group("knn_k10");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(2));
    g.bench_function("cover_tree", |b| {
        b.iter(|| {
            let mut st = SearchStats::new();
            black_box(cover.knn(black_box(&q), 10, Some(17), &mut st))
        })
    });
    g.bench_function("vp_tree", |b| {
        b.iter(|| {
            let mut st = SearchStats::new();
            black_box(vp.knn(black_box(&q), 10, Some(17), &mut st))
        })
    });
    g.bench_function("r_tree", |b| {
        b.iter(|| {
            let mut st = SearchStats::new();
            black_box(rtree.knn(black_box(&q), 10, Some(17), &mut st))
        })
    });
    g.bench_function("m_tree", |b| {
        b.iter(|| {
            let mut st = SearchStats::new();
            black_box(mtree.knn(black_box(&q), 10, Some(17), &mut st))
        })
    });
    g.bench_function("ball_tree", |b| {
        b.iter(|| {
            let mut st = SearchStats::new();
            black_box(ball.knn(black_box(&q), 10, Some(17), &mut st))
        })
    });
    g.bench_function("linear_scan", |b| {
        b.iter(|| {
            let mut st = SearchStats::new();
            black_box(linear.knn(black_box(&q), 10, Some(17), &mut st))
        })
    });
    g.finish();

    let mut g = c.benchmark_group("cursor_drain_200");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(2));
    g.bench_function("cover_tree", |b| {
        b.iter(|| {
            let mut cur = cover.cursor(&q, Some(17));
            for _ in 0..200 {
                black_box(cur.next());
            }
        })
    });
    g.bench_function("linear_scan", |b| {
        b.iter(|| {
            let mut cur = linear.cursor(&q, Some(17));
            for _ in 0..200 {
                black_box(cur.next());
            }
        })
    });
    g.finish();

    let mut g = c.benchmark_group("build_n4000_d8");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("cover_tree", |b| {
        b.iter(|| CoverTree::build(ds.clone(), Euclidean))
    });
    g.bench_function("vp_tree", |b| {
        b.iter(|| VpTree::build(ds.clone(), Euclidean))
    });
    g.bench_function("r_tree_str", |b| {
        b.iter(|| RTree::build(ds.clone(), Euclidean))
    });
    g.bench_function("m_tree", |b| b.iter(|| MTree::build(ds.clone(), Euclidean)));
    g.bench_function("ball_tree", |b| {
        b.iter(|| BallTree::build(ds.clone(), Euclidean))
    });
    g.finish();
}

criterion_group!(benches, bench_indexes);
criterion_main!(benches);
