//! The batch all-points RkNN job against the sequential scalar loop.
//!
//! This is the acceptance benchmark of the batch-engine PR: an all-points
//! RkNN job (n=2000, d=32, k=10) over the sequential-scan substrate,
//! comparing
//!
//! * the pre-batch-engine execution path — one `run_query` per point,
//!   per-query allocations, full-precision distances
//!   ([`rknn_core::FullPrecision`] disables threshold pruning and the
//!   uncached engine recomputes every verification threshold); against
//! * the batch driver with one worker (scratch reuse, early abandonment,
//!   bounded cursor, shared `d_k` reuse); and
//! * the batch driver with four workers.
//!
//! Result sets are asserted identical across all three paths before any
//! timing runs. `cargo bench --bench batch` prints the timings;
//! `crates/bench/src/bin/perf_snapshot.rs` records the same workload to
//! `BENCH_rdt.json` for the perf trajectory.

use criterion::{criterion_group, criterion_main, Criterion};
use rknn_core::{Euclidean, FullPrecision};
use rknn_index::{KnnIndex, LinearScan};
use rknn_rdt::batch::{run_all_points, BatchConfig};
use rknn_rdt::engine::run_query;
use rknn_rdt::RdtParams;
use std::hint::black_box;
use std::time::Duration;

const N: usize = 2000;
const DIM: usize = 32;
const K: usize = 10;
const T: f64 = 4.0;

fn bench_batch(c: &mut Criterion) {
    let ds = rknn_data::gaussian_blobs(N, DIM, 8, 0.3, 0xbe7c).into_shared();
    let scalar_index = LinearScan::build(ds.clone(), FullPrecision(Euclidean));
    let fast_index = LinearScan::build(ds, Euclidean);
    let params = RdtParams::new(K, T);

    // Identical result sets across every path, checked before timing.
    let batch = run_all_points(&fast_index, params, &BatchConfig::default().with_threads(4));
    let seq = run_all_points(&fast_index, params, &BatchConfig::sequential());
    for q in 0..N {
        let scalar = run_query(&scalar_index, scalar_index.point(q), Some(q), params, false);
        assert_eq!(
            scalar.ids(),
            batch.answers[q].ids(),
            "batch diverged at q={q}"
        );
        assert_eq!(
            scalar.ids(),
            seq.answers[q].ids(),
            "sequential driver diverged at q={q}"
        );
        assert_eq!(
            scalar.stats.termination, batch.answers[q].stats.termination,
            "q={q}"
        );
    }

    let mut g = c.benchmark_group(format!("batch_all_points_n{N}_d{DIM}_k{K}"));
    g.sample_size(2);
    g.measurement_time(Duration::from_secs(2));
    g.bench_function("scalar_sequential_loop", |b| {
        b.iter(|| {
            (0..N)
                .map(|q| {
                    run_query(&scalar_index, scalar_index.point(q), Some(q), params, false)
                        .result
                        .len()
                })
                .sum::<usize>()
        })
    });
    g.bench_function("batch_driver_1worker", |b| {
        b.iter(|| {
            black_box(run_all_points(
                &fast_index,
                params,
                &BatchConfig::sequential(),
            ))
            .stats
            .result_members
        })
    });
    g.bench_function("batch_driver_4workers", |b| {
        b.iter(|| {
            black_box(run_all_points(
                &fast_index,
                params,
                &BatchConfig::default().with_threads(4),
            ))
            .stats
            .result_members
        })
    });
    g.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
