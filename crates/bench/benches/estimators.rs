//! Intrinsic-dimensionality estimator benchmarks (Table 1's runtime
//! column at micro scale).

use criterion::{criterion_group, criterion_main, Criterion};
use rknn_core::Euclidean;
use rknn_lid::{max_ged_sampled, GpEstimator, HillEstimator, IdEstimator, TakensEstimator};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_estimators(c: &mut Criterion) {
    let ds = Arc::new(rknn_data::fct_like(2000, 13));

    let mut g = c.benchmark_group("id_estimators_n2000");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    let hill = HillEstimator {
        neighbors: 50,
        ..HillEstimator::default()
    };
    g.bench_function("mle_hill", |b| {
        b.iter(|| black_box(hill.estimate(&ds, &Euclidean)))
    });
    let gp = GpEstimator {
        pair_budget: 100_000,
        ..GpEstimator::default()
    };
    g.bench_function("gp", |b| b.iter(|| black_box(gp.estimate(&ds, &Euclidean))));
    let takens = TakensEstimator {
        pair_budget: 100_000,
        ..TakensEstimator::default()
    };
    g.bench_function("takens", |b| {
        b.iter(|| black_box(takens.estimate(&ds, &Euclidean)))
    });
    g.bench_function("max_ged_sampled_50", |b| {
        b.iter(|| black_box(max_ged_sampled(&ds, &Euclidean, 10, 50, 1)))
    });
    g.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
