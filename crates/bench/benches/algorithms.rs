//! Batch-throughput benchmarks of every RkNN method through the unified
//! `RknnAlgorithm` driver at one paper-like operating point.
//!
//! Unlike `benches/baselines.rs` (single-query latency over the historical
//! per-method APIs), this suite measures what the experiments actually
//! run: a query batch through the algorithm-generic driver with per-worker
//! scratch — so relative numbers here are the fair, amortized comparison
//! of the paper's §7 protocol. Precomputation is paid once outside the
//! measured region; the measured region is the batch alone.

use criterion::{criterion_group, criterion_main, Criterion};
use rknn_baselines::{MrknncopAlgorithm, NaiveRknn, RdnnAlgorithm, Sft, TplAlgorithm};
use rknn_core::{Euclidean, PointId};
use rknn_index::CoverTree;
use rknn_rdt::algorithm::{run_algorithm_batch, RdtAlgorithm, RknnAlgorithm};
use rknn_rdt::RdtParams;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_algorithms(c: &mut Criterion) {
    // One paper-like operating point: clustered data, k = 10, moderate t.
    // RDT's shared d_k cache stays off: a warm cross-iteration cache would
    // skew the comparison in RDT's favor (no baseline amortizes across
    // iterations).
    let n = 2000;
    let k = 10;
    let ds = Arc::new(rknn_data::gaussian_blobs(n, 16, 8, 0.3, 0xa190));
    let forward = CoverTree::build(ds.clone(), Euclidean);
    let queries: Vec<PointId> = rknn_data::sample_queries(n, 48, 7);

    let mut rdt = RdtAlgorithm::new(RdtParams::new(k, 6.0)).with_dk_reuse(false);
    rdt.prepare(&forward);
    let mut plus = RdtAlgorithm::plus(RdtParams::new(k, 6.0)).with_dk_reuse(false);
    plus.prepare(&forward);
    let sft = Sft::new(k, 4.0);
    let naive = NaiveRknn::new(k);
    let mut tpl = TplAlgorithm::new(ds.clone(), Euclidean, k);
    RknnAlgorithm::<_, CoverTree<Euclidean>>::prepare(&mut tpl, &forward);
    let mut cop = MrknncopAlgorithm::new(ds.clone(), Euclidean, k, k);
    RknnAlgorithm::<_, CoverTree<Euclidean>>::prepare(&mut cop, &forward);
    let mut rdnn = RdnnAlgorithm::new(ds.clone(), Euclidean, k);
    RknnAlgorithm::<_, CoverTree<Euclidean>>::prepare(&mut rdnn, &forward);

    let mut g = c.benchmark_group("algorithm_batch_k10_n2000_q48");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("rdt_t6", |b| {
        b.iter(|| black_box(run_algorithm_batch(&rdt, &forward, black_box(&queries), 4)))
    });
    g.bench_function("rdt_plus_t6", |b| {
        b.iter(|| black_box(run_algorithm_batch(&plus, &forward, black_box(&queries), 4)))
    });
    g.bench_function("sft_a4", |b| {
        b.iter(|| black_box(run_algorithm_batch(&sft, &forward, black_box(&queries), 4)))
    });
    g.bench_function("naive", |b| {
        b.iter(|| {
            black_box(run_algorithm_batch(
                &naive,
                &forward,
                black_box(&queries),
                4,
            ))
        })
    });
    g.bench_function("tpl", |b| {
        b.iter(|| black_box(run_algorithm_batch(&tpl, &forward, black_box(&queries), 4)))
    });
    g.bench_function("mrknncop", |b| {
        b.iter(|| black_box(run_algorithm_batch(&cop, &forward, black_box(&queries), 4)))
    });
    g.bench_function("rdnn_tree", |b| {
        b.iter(|| black_box(run_algorithm_batch(&rdnn, &forward, black_box(&queries), 4)))
    });
    g.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
