//! Query-latency benchmarks of the RkNN baselines against RDT+.

use criterion::{criterion_group, criterion_main, Criterion};
use rknn_baselines::{MRkNNCoP, NaiveRknn, RdnnTree, Sft, Tpl};
use rknn_core::{Euclidean, SearchStats};
use rknn_index::CoverTree;
use rknn_rdt::{RdtParams, RdtPlus};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_baselines(c: &mut Criterion) {
    let ds = Arc::new(rknn_data::sequoia_like(3000, 17));
    let forward = CoverTree::build(ds.clone(), Euclidean);
    let k = 10;
    let mrk = MRkNNCoP::build(ds.clone(), Euclidean, k, &forward);
    let rdnn = RdnnTree::build(ds.clone(), Euclidean, k, &forward);
    let tpl = Tpl::build(ds.clone(), Euclidean);
    let sft = Sft::new(k, 4.0);
    let naive = NaiveRknn::new(k);
    let plus = RdtPlus::new(RdtParams::new(k, 6.0));

    let mut g = c.benchmark_group("rknn_query_k10_n3000");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(2));
    g.bench_function("rdt_plus_t6", |b| {
        b.iter(|| black_box(plus.query(&forward, black_box(5))))
    });
    g.bench_function("sft_a4", |b| {
        b.iter(|| {
            let mut st = SearchStats::new();
            black_box(sft.query(&forward, black_box(5), &mut st))
        })
    });
    g.bench_function("mrknncop", |b| {
        b.iter(|| {
            let mut st = SearchStats::new();
            black_box(mrk.query(black_box(5), k, &forward, &mut st))
        })
    });
    g.bench_function("rdnn_tree", |b| {
        b.iter(|| {
            let mut st = SearchStats::new();
            black_box(rdnn.query(black_box(5), &mut st))
        })
    });
    g.bench_function("tpl", |b| {
        b.iter(|| {
            let mut st = SearchStats::new();
            black_box(tpl.query(black_box(5), k, &mut st))
        })
    });
    g.bench_function("naive", |b| {
        b.iter(|| {
            let mut st = SearchStats::new();
            black_box(naive.query(&forward, black_box(5), &mut st))
        })
    });
    g.finish();

    // Precomputation cost comparison (the other axis of Figures 3–6).
    let small = Arc::new(rknn_data::sequoia_like(1200, 18));
    let small_fwd = CoverTree::build(small.clone(), Euclidean);
    let mut g = c.benchmark_group("precompute_n1200");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("mrknncop_build_k10", |b| {
        b.iter(|| black_box(MRkNNCoP::build(small.clone(), Euclidean, 10, &small_fwd)))
    });
    g.bench_function("rdnn_build_k10", |b| {
        b.iter(|| black_box(RdnnTree::build(small.clone(), Euclidean, 10, &small_fwd)))
    });
    g.bench_function("tpl_build", |b| {
        b.iter(|| black_box(Tpl::build(small.clone(), Euclidean)))
    });
    g.bench_function("rdt_setup_cover_tree", |b| {
        b.iter(|| black_box(CoverTree::build(small.clone(), Euclidean)))
    });
    g.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
