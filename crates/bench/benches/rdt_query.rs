//! RDT/RDT+ query latency across scale parameters and substrates.

use criterion::{criterion_group, criterion_main, Criterion};
use rknn_core::Euclidean;
use rknn_index::{CoverTree, LinearScan};
use rknn_rdt::{Rdt, RdtParams, RdtPlus};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_rdt(c: &mut Criterion) {
    let ds = Arc::new(rknn_data::sequoia_like(6000, 11));
    let cover = CoverTree::build(ds.clone(), Euclidean);
    let linear = LinearScan::build(ds.clone(), Euclidean);

    let mut g = c.benchmark_group("rdt_k10_cover");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(2));
    for t in [2.0, 6.0, 10.0] {
        let rdt = Rdt::new(RdtParams::new(10, t));
        let plus = RdtPlus::new(RdtParams::new(10, t));
        g.bench_function(format!("rdt_t{t}"), |b| {
            b.iter(|| black_box(rdt.query(&cover, black_box(42))))
        });
        g.bench_function(format!("rdt_plus_t{t}"), |b| {
            b.iter(|| black_box(plus.query(&cover, black_box(42))))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("rdt_substrates_t6_k10");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(2));
    let rdt = Rdt::new(RdtParams::new(10, 6.0));
    g.bench_function("cover_tree", |b| {
        b.iter(|| black_box(rdt.query(&cover, black_box(7))))
    });
    g.bench_function("linear_scan", |b| {
        b.iter(|| black_box(rdt.query(&linear, black_box(7))))
    });
    g.finish();

    let mut g = c.benchmark_group("rdt_k_scaling_t6");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    for k in [10usize, 50, 100] {
        let plus = RdtPlus::new(RdtParams::new(k, 6.0));
        g.bench_function(format!("rdt_plus_k{k}"), |b| {
            b.iter(|| black_box(plus.query(&cover, black_box(3))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_rdt);
criterion_main!(benches);
