//! Hubness sweep: reverse-neighbor count skew vs dimensionality — the
//! phenomenon behind the paper's hubness application of RkNN queries \[46\].

use rknn_bench::HarnessOpts;
use rknn_eval::experiments::hubness::{rows_to_table, run_hubness, HubnessConfig};

fn main() {
    let opts = HarnessOpts::from_env();
    let cfg = HubnessConfig {
        n: opts.scaled(2000),
        seed: opts.seed,
        ..HubnessConfig::default()
    };
    let rows = run_hubness(&cfg);
    opts.emit("hubness", &rows_to_table(cfg.k, &rows));
    println!(
        "expected shape: skewness and the anti-hub fraction grow with dimension; \
         the strongest hub's reverse neighborhood keeps growing"
    );
}
