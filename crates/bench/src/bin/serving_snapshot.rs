//! Serving snapshot: the concurrent engine under open-loop load, recorded
//! as `BENCH_serving.json`.
//!
//! Six sections, every one against the same gaussian-blobs workload on a
//! linear-scan forward index (RDT, exact tier semantics of the selected
//! kernel tier):
//!
//! 1. **correctness** — every dataset point submitted exactly once through
//!    the sharded executor; the run *asserts* no response was lost or
//!    duplicated and that every answer is byte-identical (ids and distance
//!    bits) to the sequential batch driver before any number is written.
//! 2. **thread_scaling** — closed-loop saturated throughput for every
//!    worker count 1..=available_parallelism (capped by
//!    `RKNN_SERVE_MAX_SCALE_THREADS`), best of `RKNN_SERVE_REPS` passes.
//! 3. **open_loop** — arrivals scheduled at a fixed fraction of the
//!    saturated rate (coordinated-omission-free: latency is measured from
//!    the *scheduled* arrival), recording p50/p99/p999, achieved QPS, the
//!    queue-wait/service split, and the worst dispatcher lag as an honesty
//!    field.
//! 4. **churn** — the same open-loop traffic while a publisher thread
//!    derives successor snapshots off to the side
//!    ([`rknn_serve::advance_snapshot`]: cloned index + carried-over warm
//!    `d_k` cache) and swaps them in mid-stream; the run asserts at least
//!    one epoch swap was observed by in-flight queries and records tail
//!    latency across the swaps plus per-swap build cost.
//! 5. **prewarm** — two cold engines, one whose `prepare()` prewarms the
//!    `d_k` cache over a stride sample, one without; the first-100-queries
//!    p99 of each is recorded (satellite: cold-start tail with and without
//!    prewarm).
//! 6. **chaos** — a seeded [`rknn_serve::FaultPlan`] (worker panics, one
//!    worker death, service delays, an injected queue-full window) driven
//!    together with a deadline storm and malformed coordinate queries. The
//!    run *asserts* zero lost tickets (`submitted == completed + failed`),
//!    zero duplicates, typed errors only, byte-identity of every answered
//!    query to the sequential driver, at least one supervisor respawn, and
//!    post-fault p99 recovery within a generous factor of a fault-free
//!    baseline — then records the injected schedule next to the observed
//!    outcome counts.
//!
//! Rates and percentiles that cannot be computed honestly (zero completed
//! queries, zero-duration spans) are emitted as `null` plus an explicit
//! `*_skipped` reason via [`rknn_bench::rate_json`] / [`rknn_bench::opt_json`]
//! — never `inf`/`NaN`. Environment overrides: `RKNN_SERVE_N`,
//! `RKNN_SERVE_DIM`, `RKNN_SERVE_K`, `RKNN_SERVE_T`, `RKNN_SERVE_WORKERS`
//! (0 = `RKNN_THREADS`, then CPU count), `RKNN_SERVE_QUEUE_CAP`,
//! `RKNN_SERVE_OPEN_QUERIES`, `RKNN_SERVE_RATE_FRACTION`,
//! `RKNN_SERVE_SWAPS`, `RKNN_SERVE_PREWARM`, `RKNN_SERVE_REPS`,
//! `RKNN_SERVE_MAX_SCALE_THREADS`, `RKNN_SERVE_CHAOS_SEED`,
//! `RKNN_SERVE_CHAOS_QUERIES`, `RKNN_SERVE_OUT` (default
//! `BENCH_serving.json`).

use rknn_bench::{opt_json, rate_json};
use rknn_core::kernel;
use rknn_core::Euclidean;
use rknn_index::LinearScan;
use rknn_rdt::algorithm::{requested_threads, run_algorithm_batch, RdtAlgorithm, RknnAlgorithm};
use rknn_rdt::RdtParams;
use rknn_serve::{
    advance_snapshot, latency_summary, run_closed_loop, run_open_loop, AdvanceReport, ChurnOp,
    Engine, EngineConfig, FaultPlan, LatencySummary, OpenLoopConfig, QueryError, QueryRequest,
    RetryPolicy, Snapshot, Ticket,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

type ServeEngine = Engine<Euclidean, LinearScan<Euclidean>, RdtAlgorithm>;
type ServeSnapshot = Snapshot<Euclidean, LinearScan<Euclidean>, RdtAlgorithm>;

/// One `(id, distance-bits)` digest per neighbor — byte-identity currency.
type Digest = Vec<(usize, u64)>;

fn digest(neighbors: &[rknn_core::Neighbor]) -> Digest {
    neighbors.iter().map(|n| (n.id, n.dist.to_bits())).collect()
}

/// `"p50_ms": ..` style fields for an optional latency summary, honest
/// about absence.
fn latency_fields(prefix: &str, summary: &Option<LatencySummary>) -> String {
    let field = |key: &str, value: Option<f64>| {
        opt_json(&format!("{prefix}_{key}"), value, "no completed queries")
    };
    [
        field("mean_ms", summary.as_ref().map(|s| s.mean_ms)),
        field("p50_ms", summary.as_ref().map(|s| s.p50_ms)),
        field("p90_ms", summary.as_ref().map(|s| s.p90_ms)),
        field("p99_ms", summary.as_ref().map(|s| s.p99_ms)),
        field("p999_ms", summary.as_ref().map(|s| s.p999_ms)),
        field("max_ms", summary.as_ref().map(|s| s.max_ms)),
    ]
    .join(", ")
}

fn json_u64_array(values: impl IntoIterator<Item = u64>) -> String {
    let items: Vec<String> = values.into_iter().map(|v| v.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn json_ms_array(values: impl IntoIterator<Item = f64>) -> String {
    let items: Vec<String> = values.into_iter().map(|v| format!("{v:.3}")).collect();
    format!("[{}]", items.join(", "))
}

struct Workload {
    ds: Arc<rknn_core::Dataset>,
    params: RdtParams,
}

impl Workload {
    /// A fresh engine on a freshly built + prepared snapshot (epoch 0).
    fn engine(&self, workers: usize, queue_capacity: usize, prewarm: usize) -> ServeEngine {
        Engine::new(
            self.snapshot(prewarm).0,
            EngineConfig {
                workers,
                queue_capacity,
                ..EngineConfig::default()
            },
        )
    }

    /// A prepared epoch-0 snapshot plus its prepare wall time.
    fn snapshot(&self, prewarm: usize) -> (ServeSnapshot, Duration) {
        let index = LinearScan::build(self.ds.clone(), Euclidean);
        let algo = RdtAlgorithm::new(self.params).with_prewarm(prewarm);
        let start = Instant::now();
        let snapshot = Snapshot::prepare(0, index, algo);
        (snapshot, start.elapsed())
    }
}

/// Submits every id in `queries` exactly once (retrying saturated submits),
/// waits for every response, and returns `(digests in submit order,
/// saturation retries)`.
fn submit_all(engine: &ServeEngine, queries: &[usize]) -> (Vec<(usize, u64, Digest)>, usize) {
    let mut tickets = Vec::with_capacity(queries.len());
    let mut retries = 0usize;
    for &q in queries {
        loop {
            match engine.submit(q) {
                Ok(ticket) => {
                    tickets.push(ticket);
                    break;
                }
                Err(QueryError::Saturated { .. }) => {
                    retries += 1;
                    std::thread::yield_now();
                }
                Err(other) => panic!("unexpected rejection in the correctness gate: {other}"),
            }
        }
    }
    let responses = tickets
        .into_iter()
        .map(|t| {
            let r = t.wait().expect("fault-free serving answers every query");
            (
                r.point_id().expect("point queries echo their id"),
                r.epoch,
                digest(&r.neighbors),
            )
        })
        .collect();
    (responses, retries)
}

fn main() {
    let n = env_usize("RKNN_SERVE_N", 4000);
    let dim = env_usize("RKNN_SERVE_DIM", 16);
    let k = env_usize("RKNN_SERVE_K", 10);
    let t = env_f64("RKNN_SERVE_T", 5.0);
    let workers_requested = env_usize("RKNN_SERVE_WORKERS", 0);
    let queue_cap = env_usize("RKNN_SERVE_QUEUE_CAP", 128).max(1);
    let open_queries = env_usize("RKNN_SERVE_OPEN_QUERIES", 2000);
    let rate_fraction = env_f64("RKNN_SERVE_RATE_FRACTION", 0.6).clamp(0.05, 1.0);
    let swaps = env_usize("RKNN_SERVE_SWAPS", 3).max(1);
    let prewarm = env_usize("RKNN_SERVE_PREWARM", (n / 10).max(64));
    let reps = env_usize("RKNN_SERVE_REPS", 2).max(1);
    let out = std::env::var("RKNN_SERVE_OUT").unwrap_or_else(|_| "BENCH_serving.json".into());

    let parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
    let workers_effective = requested_threads(workers_requested).max(1);
    let max_scale = env_usize("RKNN_SERVE_MAX_SCALE_THREADS", parallelism).max(1);

    let ds = rknn_data::gaussian_blobs(n, dim, 5, 0.5, 0x5e41).into_shared();
    let workload = Workload {
        ds: ds.clone(),
        params: RdtParams::new(k, t),
    };
    eprintln!(
        "serving snapshot: n={n} dim={dim} k={k} t={t} workers={workers_effective} \
         (requested {workers_requested}) queue_cap={queue_cap}/shard"
    );

    // Sequential reference: the single-threaded batch driver on an
    // identically prepared snapshot. Every concurrent answer below is
    // asserted byte-identical to this before any number is recorded.
    let all_ids: Vec<usize> = (0..n).collect();
    let (ref_snapshot, _) = workload.snapshot(0);
    let reference = run_algorithm_batch(ref_snapshot.algo(), ref_snapshot.index(), &all_ids, 1);
    let reference: Vec<Digest> = reference
        .answers
        .iter()
        .map(|a| digest(&a.result))
        .collect();

    // ---- Section 1: correctness gate -----------------------------------
    eprintln!("[1/6] correctness gate ({n} queries, {workers_effective} workers)");
    let engine = workload.engine(workers_effective, queue_cap, 0);
    let gate_start = Instant::now();
    let (responses, gate_retries) = submit_all(&engine, &all_ids);
    let gate_elapsed = gate_start.elapsed();
    let gate_stats = engine.shutdown();
    let mut seen = vec![0usize; n];
    for (i, (query, epoch, got)) in responses.iter().enumerate() {
        assert_eq!(*query, all_ids[i], "ticket order matches submit order");
        assert_eq!(*epoch, 0, "single-snapshot run answers under epoch 0");
        seen[*query] += 1;
        assert_eq!(
            got, &reference[*query],
            "q={query}: concurrent answer differs from the sequential driver"
        );
    }
    let lost = seen.iter().filter(|&&c| c == 0).count();
    let duplicated = seen.iter().filter(|&&c| c > 1).count();
    assert_eq!(
        (lost, duplicated),
        (0, 0),
        "every query answered exactly once"
    );
    assert_eq!(gate_stats.completed, n as u64);
    eprintln!(
        "      identical to sequential driver; {} stolen, {gate_retries} saturation retries",
        gate_stats.stolen
    );

    // ---- Section 2: thread-scaling curve -------------------------------
    eprintln!("[2/6] thread scaling (1..={max_scale} workers, best of {reps})");
    let scale_total = (2 * n).min(4 * open_queries.max(1));
    let mut scaling_rows = Vec::new();
    let mut saturated_at_effective: Option<f64> = None;
    for w in 1..=max_scale {
        let mut best_qps: Option<f64> = None;
        let mut best_service: Option<LatencySummary> = None;
        let mut stolen = 0u64;
        let mut retries = 0usize;
        for _ in 0..reps {
            let engine = workload.engine(w, queue_cap, 0);
            let report = run_closed_loop(&engine, &all_ids, scale_total);
            let stats = engine.shutdown();
            assert_eq!(report.completed, scale_total, "closed loop completes all");
            if report.qps > best_qps {
                best_qps = report.qps;
                best_service = report.service;
            }
            stolen = stolen.max(stats.stolen);
            retries = retries.max(report.retries);
        }
        if w == workers_effective {
            saturated_at_effective = best_qps;
        }
        eprintln!(
            "      w={w}: {} qps",
            best_qps.map_or("skipped".into(), |q| format!("{q:.0}"))
        );
        scaling_rows.push(format!(
            "    {{ \"workers\": {w}, {qps}, {svc}, \"stolen\": {stolen}, \
             \"saturation_retries\": {retries}, \"queries\": {scale_total} }}",
            qps = opt_json("qps", best_qps, "zero-duration section"),
            svc = latency_fields("service", &best_service),
        ));
    }
    // When the effective worker count lies above the scaling cap the curve
    // never probed it — measure it directly so the open-loop rate is still
    // derived from data, not guessed.
    let saturated_qps = saturated_at_effective.unwrap_or_else(|| {
        let engine = workload.engine(workers_effective, queue_cap, 0);
        let report = run_closed_loop(&engine, &all_ids, scale_total);
        engine.shutdown();
        report.qps.unwrap_or(1000.0)
    });

    // ---- Section 3: open-loop latency ----------------------------------
    let target_qps = (saturated_qps * rate_fraction).max(1.0);
    eprintln!(
        "[3/6] open loop ({open_queries} queries at {target_qps:.0} qps — \
         {rate_fraction:.2}x saturated {saturated_qps:.0})"
    );
    let engine = workload.engine(workers_effective, queue_cap, 0);
    let open = run_open_loop(
        &engine,
        &all_ids,
        &OpenLoopConfig {
            rate_qps: target_qps,
            total: open_queries,
            deadline: None,
        },
    );
    let open_stats = engine.shutdown();
    assert_eq!(open.completed + open.rejected, open.offered);
    assert_eq!(open_stats.completed as usize, open.completed);
    let open_json = format!(
        "  \"open_loop\": {{ \"target_qps\": {target_qps:.1}, \"offered\": {off}, \
         \"completed\": {comp}, \"rejected\": {rej}, {aq}, {lat}, {svc}, {qw}, \
         \"max_submit_lag_ms\": {lag:.3}, \"epochs\": {eps}, {f100} }}",
        off = open.offered,
        comp = open.completed,
        rej = open.rejected,
        aq = opt_json("achieved_qps", open.achieved_qps, "zero completed queries"),
        lat = latency_fields("latency", &open.latency),
        svc = latency_fields("service", &open.service),
        qw = latency_fields("queue_wait", &open.queue_wait),
        lag = open.max_submit_lag_ms,
        eps = json_u64_array(open.epochs.iter().copied()),
        f100 = opt_json(
            "first_100_p99_ms",
            open.first_100_p99_ms,
            "fewer than 100 completed queries"
        ),
    );

    // ---- Section 4: churn + queries across snapshot swaps --------------
    eprintln!("[4/6] churn scenario ({swaps} swaps under open-loop traffic)");
    // Queried ids stay in the live low half; removals tombstone ids from
    // the upper half so an in-flight query never names a dead point.
    let live_queries: Vec<usize> = (0..n / 2).collect();
    let churn_total = open_queries;
    let submit_span = churn_total as f64 / target_qps;
    let gap = Duration::from_secs_f64(submit_span / (swaps + 1) as f64);
    let engine = workload.engine(workers_effective, queue_cap, 0);
    let (churn_report, advances) = std::thread::scope(|scope| {
        let engine_ref = &engine;
        let ds_ref = &ds;
        let publisher = scope.spawn(move || {
            let mut reports: Vec<AdvanceReport> = Vec::with_capacity(swaps);
            for s in 0..swaps {
                std::thread::sleep(gap);
                let pinned = engine_ref.snapshot();
                let ops = vec![
                    ChurnOp::Insert(ds_ref.point(s % ds_ref.len()).to_vec()),
                    ChurnOp::Remove(n / 2 + s),
                ];
                let (next, report) =
                    advance_snapshot(&pinned, &ops).expect("advance accepts dataset rows");
                engine_ref.publish(next);
                reports.push(report);
            }
            reports
        });
        let report = run_open_loop(
            engine_ref,
            &live_queries,
            &OpenLoopConfig {
                rate_qps: target_qps,
                total: churn_total,
                deadline: None,
            },
        );
        (report, publisher.join().expect("publisher thread"))
    });
    let churn_stats = engine.shutdown();
    assert_eq!(churn_report.completed + churn_report.rejected, churn_total);
    assert_eq!(churn_stats.swaps, swaps as u64);
    assert!(
        churn_report.epochs.len() >= 2,
        "at least one snapshot swap must be observed mid-stream (saw epochs {:?})",
        churn_report.epochs
    );
    eprintln!(
        "      epochs observed: {:?}; swap build times {:?}",
        churn_report.epochs,
        advances.iter().map(|a| a.build_time).collect::<Vec<_>>()
    );
    let churn_json = format!(
        "  \"churn\": {{ \"swaps_published\": {swaps}, \"ops_per_swap\": 2, \
         \"epochs_observed\": {eps}, \"swap_build_ms\": {builds}, \
         \"cache_filled_after_swap\": {filled}, \"offered\": {off}, \
         \"completed\": {comp}, \"rejected\": {rej}, {aq}, {lat}, \
         \"max_submit_lag_ms\": {lag:.3} }}",
        eps = json_u64_array(churn_report.epochs.iter().copied()),
        builds = json_ms_array(advances.iter().map(|a| a.build_time.as_secs_f64() * 1e3)),
        filled = json_u64_array(advances.iter().map(|a| a.cache_filled.unwrap_or(0) as u64)),
        off = churn_report.offered,
        comp = churn_report.completed,
        rej = churn_report.rejected,
        aq = opt_json(
            "achieved_qps",
            churn_report.achieved_qps,
            "zero completed queries"
        ),
        lat = latency_fields("latency", &churn_report.latency),
        lag = churn_report.max_submit_lag_ms,
    );

    // ---- Section 5: prewarm vs cold start ------------------------------
    eprintln!("[5/6] cold-start tail with and without prewarm ({prewarm} sampled d_k)");
    let first_queries = open_queries.max(120).min(n);
    let cold_start_run = |sample: usize| {
        let (snapshot, prepare_time) = workload.snapshot(sample);
        let filled = snapshot
            .algo()
            .dk_cache()
            .map_or(0, rknn_rdt::DkCache::filled);
        let precompute =
            RknnAlgorithm::<Euclidean, LinearScan<Euclidean>>::precompute_stats(snapshot.algo());
        let engine = Engine::new(
            snapshot,
            EngineConfig {
                workers: workers_effective,
                queue_capacity: queue_cap,
                ..EngineConfig::default()
            },
        );
        let report = run_open_loop(
            &engine,
            &all_ids,
            &OpenLoopConfig {
                rate_qps: target_qps,
                total: first_queries,
                deadline: None,
            },
        );
        engine.shutdown();
        (prepare_time, filled, precompute.dist_computations, report)
    };
    let (cold_prep, cold_filled, cold_dists, cold_report) = cold_start_run(0);
    let (warm_prep, warm_filled, warm_dists, warm_report) = cold_start_run(prewarm);
    assert_eq!(cold_filled, 0, "no prewarm leaves the cache empty");
    assert!(warm_filled > 0, "prewarm fills cache thresholds");
    let prewarm_side = |label: &str,
                        prep: Duration,
                        filled: usize,
                        dists: u64,
                        report: &rknn_serve::OpenLoopReport| {
        format!(
            "    \"{label}\": {{ \"prepare_ms\": {pms:.3}, \
             \"cache_filled_after_prepare\": {filled}, \
             \"prepare_dist_comps\": {dists}, \"completed\": {comp}, {f100}, {lat} }}",
            pms = prep.as_secs_f64() * 1e3,
            comp = report.completed,
            f100 = opt_json(
                "first_100_p99_ms",
                report.first_100_p99_ms,
                "fewer than 100 completed queries"
            ),
            lat = latency_fields("latency", &report.latency),
        )
    };

    // ---- Section 6: chaos / fault injection ----------------------------
    let chaos_seed = env_usize("RKNN_SERVE_CHAOS_SEED", 0xC4A05) as u64;
    let chaos_total = env_usize("RKNN_SERVE_CHAOS_QUERIES", 800).max(200);
    eprintln!("[6/6] chaos scenario (seed {chaos_seed:#x}, {chaos_total} queries, 2 workers)");
    let chaos_workers = 2usize;
    // p99 service time over a fault-free batch — used both for the
    // baseline (fresh engine) and the recovery probe (chaos engine after
    // its fault schedule is exhausted).
    let probe_ids: Vec<usize> = (0..400.min(n)).collect();
    let service_p99 = |engine: &ServeEngine, ids: &[usize]| -> f64 {
        let mut tickets: Vec<Ticket> = Vec::with_capacity(ids.len());
        for &q in ids {
            loop {
                match engine.submit(q) {
                    Ok(t) => {
                        tickets.push(t);
                        break;
                    }
                    Err(QueryError::Saturated { .. }) => std::thread::yield_now(),
                    Err(other) => panic!("unexpected rejection in a fault-free probe: {other}"),
                }
            }
        }
        let samples: Vec<f64> = tickets
            .into_iter()
            .map(|t| {
                t.wait()
                    .expect("fault-free probe answers")
                    .service()
                    .as_secs_f64()
                    * 1e3
            })
            .collect();
        latency_summary(&samples).expect("non-empty probe").p99_ms
    };
    let baseline_engine = workload.engine(chaos_workers, queue_cap, 0);
    let baseline_p99 = service_p99(&baseline_engine, &probe_ids);
    baseline_engine.shutdown();

    // The schedule: seeded panics/delays scattered across the first half
    // of the execution sequence, an injected queue-full window, and one
    // worker death pinned just past the scattered span so it cannot land
    // on an execution slot consumed by a deadline-shed job (sheds consume
    // slots without reaching the fault hook).
    let chaos_span = (chaos_total as u64) / 2;
    let plan = FaultPlan::scattered(chaos_seed, chaos_span, 3, 0, 3, Duration::from_millis(20))
        .death_at(chaos_span)
        .reject_window(40, 50);
    let injected = plan.counts();
    let last_fault = plan.last_execution_fault().expect("plan has faults");
    let engine = Engine::new(
        workload.snapshot(0).0,
        EngineConfig {
            workers: chaos_workers,
            queue_capacity: queue_cap,
            faults: Some(Arc::new(plan)),
            ..EngineConfig::default()
        },
    );

    // Malformed queries: typed rejection at the boundary, no worker ever
    // sees them.
    let mut invalid_typed = 0usize;
    for bad in [
        QueryRequest::coords(vec![f64::NAN; dim]),
        QueryRequest::coords(vec![1.0; dim + 1]),
        QueryRequest::point(n + 7),
    ] {
        match engine.submit(bad) {
            Err(QueryError::InvalidInput(_)) => invalid_typed += 1,
            other => panic!("malformed query must reject typed, got {other:?}"),
        }
    }

    // The chaos drive: point queries through a bounded-retry client, with
    // a deadline storm (offers 100..140: expired and hair-trigger
    // deadlines) landing while the fault plan wedges and kills workers.
    let policy = RetryPolicy::new(6)
        .with_backoff(Duration::from_micros(200), Duration::from_millis(2))
        .with_seed(chaos_seed);
    let mut chaos_tickets: Vec<(usize, Ticket)> = Vec::with_capacity(chaos_total);
    let mut rejected_saturated = 0usize;
    let mut retries_used = 0u32;
    for i in 0..chaos_total {
        let q = all_ids[i % n];
        let mut request = QueryRequest::point(q);
        if (100..140).contains(&i) {
            request = if i % 2 == 0 {
                request.with_deadline(Instant::now() - Duration::from_millis(1))
            } else {
                request.with_timeout(Duration::from_millis(2))
            };
        }
        let (outcome, used) = policy.submit(&engine, request);
        retries_used += used;
        match outcome {
            Ok(ticket) => chaos_tickets.push((q, ticket)),
            Err(QueryError::Saturated { .. }) => rejected_saturated += 1,
            Err(other) => panic!("chaos submit rejected unexpectedly: {other}"),
        }
    }
    let accepted = chaos_tickets.len();
    assert!(
        accepted as u64 > last_fault,
        "workload must outrun the fault schedule ({accepted} accepted, last fault at {last_fault})"
    );
    let mut answered = 0usize;
    let mut chaos_deadline = 0usize;
    let mut chaos_internal = 0usize;
    for (q, ticket) in chaos_tickets {
        match ticket.wait() {
            Ok(response) => {
                assert_eq!(
                    digest(&response.neighbors),
                    reference[q],
                    "chaos answer q={q} differs from the sequential driver"
                );
                answered += 1;
            }
            Err(QueryError::DeadlineExceeded { .. }) => chaos_deadline += 1,
            Err(QueryError::Internal { .. }) => chaos_internal += 1,
            Err(other) => panic!("unexpected chaos outcome: {other:?}"),
        }
    }
    assert_eq!(
        answered + chaos_deadline + chaos_internal,
        accepted,
        "every accepted chaos ticket resolves exactly once"
    );
    // Recovery: the fault schedule is exhausted; the engine must serve a
    // clean probe with a tail comparable to the fault-free baseline.
    let recovery_p99 = service_p99(&engine, &probe_ids);
    assert!(
        recovery_p99 <= baseline_p99 * 10.0 + 25.0,
        "post-chaos p99 {recovery_p99:.3}ms must recover toward baseline {baseline_p99:.3}ms"
    );
    let chaos_stats = engine.shutdown();
    assert_eq!(
        chaos_stats.submitted,
        chaos_stats.completed + chaos_stats.failed,
        "chaos gate: zero lost tickets"
    );
    assert!(chaos_stats.panics >= 1, "injected panics must be observed");
    assert!(
        chaos_stats.respawns >= 1,
        "the killed worker must be respawned by the supervisor"
    );
    assert_eq!(chaos_stats.invalid_inputs as usize, invalid_typed);
    eprintln!(
        "      {answered} answered byte-identical, {chaos_deadline} deadline, \
         {chaos_internal} internal, {} respawns, recovery p99 {recovery_p99:.2}ms \
         (baseline {baseline_p99:.2}ms)",
        chaos_stats.respawns
    );
    let chaos_json = format!(
        "  \"chaos\": {{ \"seed\": {chaos_seed}, \"workers\": {chaos_workers}, \
         \"offered\": {chaos_total}, \"injected\": {{ \"panics\": {ip}, \"deaths\": {id_}, \
         \"delays\": {il}, \"rejected_submits\": {ir} }}, \"accepted\": {accepted}, \
         \"answered\": {answered}, \"deadline_exceeded\": {chaos_deadline}, \
         \"internal_errors\": {chaos_internal}, \"rejected_saturated\": {rejected_saturated}, \
         \"invalid_inputs_typed\": {invalid_typed}, \"retries_used\": {retries_used}, \
         \"observed\": {{ \"panics\": {op}, \"respawns\": {or_}, \"quarantined\": {oq}, \
         \"deadline_exceeded\": {od}, \"injected_rejects\": {oj} }}, \"lost\": 0, \
         \"duplicated\": 0, \"typed_errors_only\": true, \"byte_identical_answers\": true, \
         \"baseline_p99_ms\": {baseline_p99:.3}, \"recovery_p99_ms\": {recovery_p99:.3} }}",
        ip = injected.panics,
        id_ = injected.deaths,
        il = injected.delays,
        ir = injected.rejected_submits,
        op = chaos_stats.panics,
        or_ = chaos_stats.respawns,
        oq = chaos_stats.quarantined,
        od = chaos_stats.deadline_exceeded,
        oj = chaos_stats.injected_rejects,
    );

    // ---- Assemble ------------------------------------------------------
    let scaling_json = scaling_rows.join(",\n");
    let gate_qps = rate_json(
        "qps",
        gate_stats.completed as f64,
        gate_elapsed.as_secs_f64(),
    );
    let json = format!(
        "{{\n  \"bench\": \"serving_engine\",\n  \"substrate\": \"linear-scan\",\n  \
         \"dataset\": \"gaussian_blobs\",\n  \"n\": {n},\n  \"dim\": {dim},\n  \
         \"k\": {k},\n  \"t\": {t},\n  \"kernel_backend\": \"{backend}\",\n  \
         \"kernel_tier\": \"{tier}\",\n  \"fma_available\": {fma},\n  \
         \"available_parallelism\": {parallelism},\n  \
         \"workers_requested\": {workers_requested},\n  \
         \"workers_effective\": {workers_effective},\n  \
         \"queue_capacity_per_shard\": {queue_cap},\n  \
         \"queue_capacity_total\": {qtot},\n  \
         \"reps\": {{ \"thread_scaling\": {reps}, \"open_loop\": 1, \"churn\": 1 }},\n  \
         \"correctness\": {{ \"queries\": {n}, \"completed\": {gcomp}, \
         \"lost\": 0, \"duplicated\": 0, \"saturation_retries\": {gate_retries}, \
         \"stolen\": {gstolen}, {gate_qps}, \"identical_to_sequential\": true }},\n  \
         \"thread_scaling\": [\n{scaling_json}\n  ],\n{open_json},\n{churn_json},\n{chaos_json},\n  \
         \"prewarm\": {{ \"sample\": {prewarm}, \"first_queries\": {first_queries}, \
         \"target_qps\": {target_qps:.1},\n{cold},\n{warm}\n  }}\n}}\n",
        backend = kernel::selected().backend().name(),
        tier = kernel::selected_tier().name(),
        fma = kernel::fma_available(),
        qtot = workers_effective * queue_cap,
        gcomp = gate_stats.completed,
        gstolen = gate_stats.stolen,
        cold = prewarm_side("cold", cold_prep, cold_filled, cold_dists, &cold_report),
        warm = prewarm_side("warm", warm_prep, warm_filled, warm_dists, &warm_report),
    );
    std::fs::write(&out, &json).expect("write serving snapshot");
    eprintln!("wrote {out}");
    println!("{json}");
}
