//! Empirical validation of the paper's §5 analysis on random workloads:
//!
//! * **Lemma 1**: for every ordered pair `(x, v)` with reverse rank
//!   `ρ(v, x)`, the forward rank satisfies `ρ(x, v) ≤ 2^t · ρ(v, x)` once
//!   `t ≥ MaxGED`;
//! * **Theorem 1**: running RDT at `t ≥ MaxGED(S, k)` (+0.5 margin for the
//!   rank-convention offset, `DESIGN.md` §2) yields exact results; below
//!   the threshold, every *miss* lies beyond the guarantee radius
//!   `d_{k+1}(q) / ((s/k)^{1/t} − 1)`.

use rknn_bench::HarnessOpts;
use rknn_core::rank::{dk_from, rank};
use rknn_core::{BruteForce, Euclidean, SearchStats};
use rknn_eval::Table;
use rknn_index::LinearScan;
use rknn_lid::max_ged;
use rknn_rdt::theory::{guarantee_radius, reverse_rank_bound};
use rknn_rdt::{Rdt, RdtParams};

fn main() {
    let opts = HarnessOpts::from_env();
    let k = 5usize;
    let mut table = Table::new(
        "Theory check: Lemma 1 and Theorem 1 on random workloads",
        &[
            "dataset",
            "n",
            "MaxGED(S,k)",
            "lemma1_viol",
            "exact_at_t*",
            "miss_radius_viol",
        ],
    );
    for (name, ds) in [
        (
            "uniform-2d",
            rknn_data::uniform_cube(opts.scaled(150), 2, opts.seed),
        ),
        (
            "blobs-3d",
            rknn_data::gaussian_blobs(opts.scaled(150), 3, 4, 0.7, opts.seed),
        ),
        (
            "sequoia-like",
            rknn_data::sequoia_like(opts.scaled(150), opts.seed),
        ),
    ] {
        let ds = ds.into_shared();
        let n = ds.len();
        let t_star = max_ged(&ds, &Euclidean, k);
        let m = Euclidean;

        // Lemma 1 over all ordered pairs at t = MaxGED (inclusive-rank
        // convention as in the paper's proof).
        let mut lemma_violations = 0usize;
        for (v, vp) in ds.iter() {
            for (x, xp) in ds.iter() {
                if v == x {
                    continue;
                }
                let fwd = rank(&ds, &m, xp, v, None) as f64;
                let rev = rank(&ds, &m, vp, x, None);
                if fwd > reverse_rank_bound(t_star + 0.5, rev) + 1e-9 {
                    lemma_violations += 1;
                }
            }
        }

        // Theorem 1: exactness at t* + 0.5 and miss-radius guarantee below.
        let idx = LinearScan::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds.clone(), Euclidean);
        let queries = rknn_data::sample_queries(n, 25, opts.seed);
        let mut st = SearchStats::new();
        let rdt_exact = Rdt::new(RdtParams::new(k, t_star + 0.5));
        let mut exact_everywhere = true;
        for &q in &queries {
            let truth: Vec<_> = bf.rknn(q, k, &mut st).iter().map(|x| x.id).collect();
            if rdt_exact.query(&idx, q).ids() != truth {
                exact_everywhere = false;
            }
        }
        // Below the threshold, misses must respect the guarantee radius.
        let t_low = (t_star * 0.3).max(0.8);
        let rdt_low = Rdt::new(RdtParams::new(k, t_low));
        let mut radius_violations = 0usize;
        for &q in &queries {
            let ans = rdt_low.query(&idx, q);
            let got: std::collections::HashSet<_> = ans.ids().into_iter().collect();
            let d_ref = dk_from(&ds, &m, ds.point(q), k + 1, Some(q)).unwrap_or(f64::INFINITY);
            let radius = guarantee_radius(d_ref, ans.stats.retrieved, k, t_low);
            for missed in bf
                .rknn(q, k, &mut st)
                .iter()
                .filter(|x| !got.contains(&x.id))
            {
                // Guaranteed: every miss lies strictly beyond the radius.
                if missed.dist <= radius * (1.0 - 1e-9) {
                    radius_violations += 1;
                }
            }
        }
        table.push_row(vec![
            name.to_string(),
            n.to_string(),
            format!("{t_star:.2}"),
            lemma_violations.to_string(),
            if exact_everywhere {
                "yes".into()
            } else {
                "NO".to_string()
            },
            radius_violations.to_string(),
        ]);
    }
    opts.emit("theory_check", &table);
    println!("expected: zero Lemma 1 violations, exactness at t*, zero miss-radius violations");
}
