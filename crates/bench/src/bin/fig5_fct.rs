//! Regenerates Figure 5: recall/query-time tradeoffs on FCT-like data
//! (53-d standardized features) for k ∈ {10, 50, 100}.

use rknn_bench::HarnessOpts;
use rknn_data::fct_like;
use std::sync::Arc;

fn main() {
    let opts = HarnessOpts::from_env();
    let n = opts.scaled(5000);
    let ds = Arc::new(fct_like(n, opts.seed));
    rknn_bench::run_tradeoff_figure(
        &opts,
        "fig5_fct",
        &format!("Figure 5: FCT-like (n={n}, 53-d, cover tree)"),
        "FCT-like",
        ds,
        true,
    );
    println!(
        "paper shape: SFT has a slight edge at some k (fast cover-tree kNN); \
         estimator-selected t lands near the tradeoff knee"
    );
}
