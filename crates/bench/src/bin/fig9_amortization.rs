//! Regenerates Figure 9: the number of queries each method can answer
//! within the time the RdNN-Tree needs for precomputation (k = 10,
//! Imagenet-like subsets).

use rknn_bench::HarnessOpts;
use rknn_eval::experiments::amortization::{rows_to_table, run_amortization, AmortizationConfig};

fn main() {
    let opts = HarnessOpts::from_env();
    let cfg = AmortizationConfig {
        sizes: vec![opts.scaled(1000), opts.scaled(2500)],
        dim: 512,
        queries: opts.queries_or(10),
        seed: opts.seed,
        ..AmortizationConfig::default()
    };
    let rows = run_amortization(&cfg);
    opts.emit("fig9_amortization", &rows_to_table(&rows));
    println!(
        "paper shape: thousands of RDT+ queries fit into the RdNN precomputation \
         window; the exact methods spend the whole window setting up"
    );
}
