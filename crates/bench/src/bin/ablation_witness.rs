//! Ablation harness: quantifies what lazy accept/reject (witness
//! machinery), the RDT+ exclusion, and the adaptive-t schedule each
//! contribute, across the four evaluation datasets.

use rknn_bench::HarnessOpts;
use rknn_data::{aloi_like, fct_like, mnist_like, sequoia_like};
use rknn_eval::experiments::ablation::{rows_to_table, run_ablation, AblationConfig};
use std::sync::Arc;

fn main() {
    let opts = HarnessOpts::from_env();
    let sets: Vec<(&str, Arc<rknn_core::Dataset>, bool)> = vec![
        (
            "Sequoia-like",
            Arc::new(sequoia_like(opts.scaled(6000), opts.seed)),
            true,
        ),
        (
            "FCT-like",
            Arc::new(fct_like(opts.scaled(4000), opts.seed)),
            true,
        ),
        (
            "ALOI-like",
            Arc::new(aloi_like(opts.scaled(2000), opts.seed)),
            true,
        ),
        (
            "MNIST-like",
            Arc::new(mnist_like(opts.scaled(1500), opts.seed)),
            false,
        ),
    ];
    let mut all = Vec::new();
    for (name, ds, cover) in sets {
        let cfg = AblationConfig {
            queries: opts.queries_or(25),
            use_cover_tree: cover,
            seed: opts.seed,
            ..AblationConfig::new(name)
        };
        all.extend(run_ablation(ds, &cfg));
    }
    opts.emit("ablation_witness", &rows_to_table(&all));
    println!(
        "expected shape: the no-witness variant pays for every candidate with an \
         explicit kNN verification; RDT+ trims witness maintenance below RDT's; \
         the adaptive schedule reaches comparable recall with no manual t"
    );
}
