//! Regenerates Figure 7: proportions of lazy accepts, lazy rejects and
//! explicit verifications performed by RDT+ as a function of t, at k = 10,
//! on all four datasets, with the achieved recall.

use rknn_bench::HarnessOpts;
use rknn_data::{aloi_like, fct_like, mnist_like, sequoia_like};
use rknn_eval::experiments::lazy::{rows_to_table, run_lazy_profile, LazyConfig};
use rknn_eval::Table;
use std::sync::Arc;

fn main() {
    let opts = HarnessOpts::from_env();
    let sets: Vec<(&str, Arc<rknn_core::Dataset>, bool)> = vec![
        (
            "Sequoia-like",
            Arc::new(sequoia_like(opts.scaled(8000), opts.seed)),
            true,
        ),
        (
            "FCT-like",
            Arc::new(fct_like(opts.scaled(5000), opts.seed)),
            true,
        ),
        (
            "ALOI-like",
            Arc::new(aloi_like(opts.scaled(3000), opts.seed)),
            true,
        ),
        (
            "MNIST-like",
            Arc::new(mnist_like(opts.scaled(2500), opts.seed)),
            false,
        ),
    ];
    let mut all = Vec::new();
    for (name, ds, cover) in sets {
        let cfg = LazyConfig {
            queries: opts.queries_or(40),
            use_cover_tree: cover,
            seed: opts.seed,
            ..LazyConfig::new(name)
        };
        all.extend(run_lazy_profile(ds, &cfg));
    }
    let table: Table = rows_to_table(&all);
    opts.emit("fig7_lazy", &table);
    println!(
        "paper shape: verification dominates at small t; lazy rejection takes over \
         as t grows; lazy accepts stay a small but significant share"
    );
}
