//! Regenerates Figure 8: RDT+ vs the exact methods on Imagenet-like subsets
//! (high-dimensional deep features, sequential scan), k ∈ {10, 50}, with
//! initialization and query times. Exact methods are excluded beyond the
//! precomputation budget, as in the paper.

use rknn_bench::HarnessOpts;
use rknn_eval::experiments::scalability::{rows_to_table, run_scalability, ScalabilityConfig};

fn main() {
    let opts = HarnessOpts::from_env();
    let cfg = ScalabilityConfig {
        sizes: vec![opts.scaled(1000), opts.scaled(2500), opts.scaled(5000)],
        dim: 512,
        queries: opts.queries_or(15),
        exact_max_n: opts.scaled(2500),
        seed: opts.seed,
        ..ScalabilityConfig::default()
    };
    let rows = run_scalability(&cfg);
    opts.emit("fig8_imagenet", &rows_to_table(&rows));
    println!(
        "paper shape: RdNN/MRkNNCoP precomputation explodes with n (weeks at 500k in \
         the paper) while RDT+ setup stays near-zero; their per-query advantage \
         persists only where they can be built at all. Feature dim is 512 by \
         default (RKNN_SCALE affects n only); the paper's 4096-d run is the same \
         code path."
    );
}
