//! Regenerates Figure 3: recall/query-time tradeoffs on Sequoia-like data
//! for k ∈ {10, 50, 100}, with query and precomputation times for every
//! method (cover-tree substrate).

use rknn_bench::HarnessOpts;
use rknn_data::sequoia_like;
use std::sync::Arc;

fn main() {
    let opts = HarnessOpts::from_env();
    let n = opts.scaled(8000);
    let ds = Arc::new(sequoia_like(n, opts.seed));
    rknn_bench::run_tradeoff_figure(
        &opts,
        "fig3_sequoia",
        &format!("Figure 3: Sequoia-like (n={n}, 2-d, cover tree)"),
        "Sequoia-like",
        ds,
        true,
    );
    println!(
        "paper shape: heuristics beat exact methods near 100% recall at low k; \
         RdNN/MRkNNCoP fastest per query but orders of magnitude more precomputation"
    );
}
