//! Perf snapshot: the batch all-points RkNN job against the sequential
//! scalar baseline, plus the same job on every tree substrate, recorded as
//! `BENCH_rdt.json`.
//!
//! The workload is the acceptance scenario of the batch-engine PR — an
//! all-points RkNN job (n≈2000, d=32, k=10) on the sequential-scan
//! substrate — measured three ways:
//!
//! 1. **scalar sequential**: one `run_query` per point with per-query
//!    allocations and full-precision distances
//!    ([`rknn_core::FullPrecision`] disables threshold pruning) — the
//!    pre-batch-engine execution path;
//! 2. **fast sequential**: the batch driver with one worker — scratch
//!    reuse plus early abandonment, no parallelism;
//! 3. **batch**: the batch driver with four workers.
//!
//! A fourth section records one batch run per substrate (linear scan,
//! cover tree, VP-tree, ball tree, M-tree, R-tree), all through the shared
//! tree-traversal core, with build time, batch time and work counters —
//! the perf trajectory's tree-index datapoints.
//!
//! Result sets are asserted identical across every path and substrate
//! before any number is written. Wall times take the best of
//! `RKNN_BENCH_REPS` repetitions (default 3) to damp scheduler noise;
//! distance-computation counters are identical across the three linear
//! paths by design (early abandonment changes coordinate work per
//! evaluation, not the number of evaluations). Environment overrides:
//! `RKNN_BENCH_N`, `RKNN_BENCH_DIM`, `RKNN_BENCH_K`, `RKNN_BENCH_T`,
//! `RKNN_BENCH_THREADS`, `RKNN_BENCH_OUT` (output path, default
//! `BENCH_rdt.json`).

use rknn_core::{Euclidean, FullPrecision};
use rknn_eval::experiments::substrates::{run_substrate_sweep, SubstrateSweepConfig};
use rknn_index::{KnnIndex, LinearScan};
use rknn_rdt::batch::{run_all_points, BatchConfig};
use rknn_rdt::engine::run_query;
use rknn_rdt::{BatchOutcome, RdtParams};
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best_ms = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let r = f();
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        last = Some(r);
    }
    (best_ms, last.expect("at least one repetition"))
}

fn main() {
    let n = env_usize("RKNN_BENCH_N", 2000);
    let dim = env_usize("RKNN_BENCH_DIM", 32);
    let k = env_usize("RKNN_BENCH_K", 10);
    let t = env_f64("RKNN_BENCH_T", 4.0);
    let threads = env_usize("RKNN_BENCH_THREADS", 4);
    let reps = env_usize("RKNN_BENCH_REPS", 3);
    let clusters = env_usize("RKNN_BENCH_CLUSTERS", 8);
    let sigma = env_f64("RKNN_BENCH_SIGMA", 0.3);
    let out_path = std::env::var("RKNN_BENCH_OUT").unwrap_or_else(|_| "BENCH_rdt.json".into());
    let params = RdtParams::new(k, t);

    let ds = rknn_data::gaussian_blobs(n, dim, clusters, sigma, 0xbe7c).into_shared();
    let scalar_index = LinearScan::build(ds.clone(), FullPrecision(Euclidean));
    let fast_index = LinearScan::build(ds, Euclidean);

    // 1. Sequential scalar per-query loop (the pre-batch-engine path).
    let (scalar_ms, scalar_answers) = best_of(reps, || {
        (0..scalar_index.num_points())
            .map(|q| run_query(&scalar_index, scalar_index.point(q), Some(q), params, false))
            .collect::<Vec<_>>()
    });

    // 2. Batch driver, one worker: scratch reuse + early abandonment only.
    let (fast_seq_ms, fast_seq): (f64, BatchOutcome) =
        best_of(reps, || run_all_points(&fast_index, params, &BatchConfig::sequential()));

    // 3. Batch driver, `threads` workers.
    let (batch_ms, batch): (f64, BatchOutcome) = best_of(reps, || {
        run_all_points(&fast_index, params, &BatchConfig::default().with_threads(threads))
    });

    // Identical result sets (and terminations) across all three paths.
    for (q, scalar_ans) in scalar_answers.iter().enumerate() {
        assert_eq!(
            scalar_ans.ids(),
            fast_seq.answers[q].ids(),
            "fast sequential diverged from scalar at q={q}"
        );
        assert_eq!(
            scalar_ans.ids(),
            batch.answers[q].ids(),
            "batch diverged from scalar at q={q}"
        );
        assert_eq!(scalar_ans.stats.termination, batch.answers[q].stats.termination, "q={q}");
    }

    // 4. The same batch job per substrate, every one through the shared
    //    traversal core — the `rknn_eval` substrate sweep over the same
    //    generator parameters (single-shot timings, no best-of damping; it
    //    verifies every substrate's answers against the linear scan).
    let sweep = run_substrate_sweep(&SubstrateSweepConfig {
        n,
        dim,
        clusters,
        sigma,
        k,
        t,
        threads,
        seed: 0xbe7c,
    });
    let substrate_entries: Vec<String> = sweep
        .iter()
        .map(|r| {
            assert!(r.matches_linear, "{} diverged from the linear scan", r.substrate);
            format!(
                "    {{ \"substrate\": \"{name}\", \"build_ms\": {build:.2}, \"batch_ms\": {batch:.2}, \"total_dist_comps\": {dist}, \"nodes_visited\": {nodes}, \"heap_pushes\": {pushes}, \"identical_to_linear\": true }}",
                name = r.substrate,
                build = r.build_ms,
                batch = r.batch_ms,
                dist = r.total_dist_comps,
                nodes = r.nodes_visited,
                pushes = r.heap_pushes,
            )
        })
        .collect();

    let st = &batch.stats;
    let speedup_batch = scalar_ms / batch_ms;
    let speedup_fast_seq = scalar_ms / fast_seq_ms;
    let json = format!(
        "{{\n  \"bench\": \"batch_all_points_rknn\",\n  \"substrate\": \"linear-scan\",\n  \"dataset\": \"gaussian_blobs\",\n  \"n\": {n},\n  \"dim\": {dim},\n  \"k\": {k},\n  \"t\": {t},\n  \"threads\": {threads},\n  \"reps\": {reps},\n  \"scalar_sequential_ms\": {scalar_ms:.2},\n  \"fast_sequential_ms\": {fast_seq_ms:.2},\n  \"batch_ms\": {batch_ms:.2},\n  \"speedup_fast_sequential\": {speedup_fast_seq:.2},\n  \"speedup_batch\": {speedup_batch:.2},\n  \"identical_results\": true,\n  \"total_dist_comps\": {dist},\n  \"witness_pairs\": {wp},\n  \"witness_dist_comps\": {wd},\n  \"retrieved\": {retr},\n  \"result_members\": {members},\n  \"substrates\": [\n{subs}\n  ]\n}}\n",
        dist = st.total_dist_comps(),
        wp = st.witness_pairs,
        wd = st.witness_dist_comps,
        retr = st.retrieved,
        members = st.result_members,
        subs = substrate_entries.join(",\n"),
    );
    print!("{json}");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("warning: cannot write {out_path}: {e}");
    } else {
        eprintln!("[snapshot written to {out_path}]");
    }
    // The speedup claim is only statistically meaningful at full scale
    // with best-of damping; smoke runs (CI uses n=200, reps=1) gate on
    // result identity above and treat a slow measurement as advisory.
    if n >= 1000 && reps >= 2 {
        assert!(
            speedup_batch >= 1.0,
            "batch driver slower than the scalar baseline: {speedup_batch:.2}x"
        );
    } else if speedup_batch < 1.0 {
        eprintln!(
            "warning: batch measured slower than scalar at smoke scale \
             ({speedup_batch:.2}x) — timing noise, not gated"
        );
    }
}
