//! Perf snapshot: the batch all-points RkNN job against the sequential
//! scalar baseline, plus the same job on every tree substrate, recorded as
//! `BENCH_rdt.json`.
//!
//! The workload is the acceptance scenario of the batch-engine PR — an
//! all-points RkNN job (n≈2000, d=32, k=10) on the sequential-scan
//! substrate — measured three ways:
//!
//! 1. **scalar sequential**: one `run_query` per point with per-query
//!    allocations and full-precision distances
//!    ([`rknn_core::FullPrecision`] disables threshold pruning) — the
//!    pre-batch-engine execution path;
//! 2. **fast sequential**: the batch driver with one worker — scratch
//!    reuse plus early abandonment, no parallelism;
//! 3. **batch**: the batch driver with four workers.
//!
//! A fourth section records one batch run per substrate (linear scan,
//! cover tree, VP-tree, ball tree, M-tree, R-tree), all through the shared
//! tree-traversal core, with build time, batch time and work counters —
//! the perf trajectory's tree-index datapoints.
//!
//! A fifth section (`algorithms`) runs **every method** — RDT, RDT+ and
//! all five baselines — over one sampled query batch on a cover-tree
//! forward index through the algorithm-generic `RknnAlgorithm` driver:
//! per-method wall time (sequential and batch-parallel with the batch
//! speedup), distance computations, precompute time and result counts.
//! For naive and SFT it additionally replays the pre-refactor **boxed**
//! execution path (full-precision metric, allocating `knn`/`range_count`
//! through unbounded cursors) on the same data and asserts the unified
//! path needs no more distance evaluations — the recorded
//! `boxed_dist_comps`-vs-`dist_comps` gap is the `dist_lt`/bounded-cursor
//! pruning dividend. Override the per-algorithm query sample with
//! `RKNN_BENCH_ALGO_QUERIES` (default 48).
//!
//! A `dynamic` section runs a mixed insert/delete workload through the
//! maintained all-points stream ([`rknn_rdt::MaintainedStream`]) on a
//! dynamic cover tree in the exact regime (t = 50), verifies the
//! maintained table byte-identical to a rebuild-from-scratch, and records
//! per-update latency, updates/sec, the `d_k`-cache maintenance cost and
//! the update-vs-rebuild ratio. The workload repeats `RKNN_BENCH_CHURN_REPS`
//! times (same seed, identical update sequence) and records min/max spread
//! next to the best-pass headline, plus requested-vs-effective thread
//! counts (`RKNN_BENCH_CHURN_N`, `RKNN_BENCH_CHURN_UPDATES` override the
//! workload size).
//!
//! A `streaming_build` section assembles a large dataset
//! (`RKNN_BENCH_STREAM_N` rows, default 10^6, at `RKNN_BENCH_STREAM_DIM`)
//! chunk by chunk through [`rknn_core::DatasetBuilder`] and records the
//! builder's own allocation accounting: final vs peak bytes, realloc
//! count, and the peak ratio for both the presized path (reserve-ahead,
//! exactly 1.0x) and the unhinted path (amortized doubling transient,
//! recorded honestly).
//!
//! A `scaling` section runs `rknn_eval`'s scaling experiment: per-algorithm
//! precompute/batch/query-time curves over an n-grid of decades up to
//! `RKNN_BENCH_SCALE_N` (default 10^5; set 1000000 for the 10^6 sweep) and
//! a d-grid (`RKNN_BENCH_SCALE_DIMS`) at fixed n, measured against exact
//! sampled ground truth cached under `RKNN_BENCH_TRUTH_CACHE` (default
//! `target/truth-cache`), with quadratic baselines skipped-with-reason
//! above their honesty caps and RDT-vs-baseline crossover points recorded.
//!
//! The `kernels` and `algorithms` sections additionally record the
//! opt-in **fast kernel tier**: per dimensionality, the FMA fused
//! reduction (`fast_ns_per_dist`, vs the exact dispatched kernel) and the
//! f32-storage tile path (`f32_tile_ns_per_dist`, streaming half the
//! bytes); per algorithm, the same query batch replayed on a cover tree
//! built with [`Euclidean::fast`], asserted answer-identical to the exact
//! tier before its wall times are recorded. Top-level honesty fields pin
//! down what actually ran: `kernel_tier` (the process-default tier),
//! `fma_available` / `fast_ops_fma` (whether the fast tier resolved to
//! real FMA kernels or fell back to the exact backend), and the
//! f64-vs-f32 resident storage bytes.
//!
//! Result sets are asserted identical across every path and substrate
//! before any number is written. Wall times take the best of
//! `RKNN_BENCH_REPS` repetitions (default 3) to damp scheduler noise;
//! distance-computation counters are identical across the three linear
//! paths by design (early abandonment changes coordinate work per
//! evaluation, not the number of evaluations). Environment overrides:
//! `RKNN_BENCH_N`, `RKNN_BENCH_DIM`, `RKNN_BENCH_K`, `RKNN_BENCH_T`,
//! `RKNN_BENCH_THREADS`, `RKNN_BENCH_OUT` (output path, default
//! `BENCH_rdt.json`).

use rknn_baselines::{MrknncopAlgorithm, NaiveRknn, RdnnAlgorithm, Sft, TplAlgorithm};
use rknn_core::kernel::{self, Backend};
use rknn_core::{DatasetBuilder, Euclidean, FullPrecision, Metric, Neighbor, PointId, SearchStats};
use rknn_eval::experiments::churn::{run_churn, ChurnConfig, ChurnReport};
use rknn_eval::experiments::scaling::{run_scaling, ScalingConfig, ScalingPoint};
use rknn_eval::experiments::substrates::{run_substrate_sweep, SubstrateSweepConfig};
use rknn_index::{CoverTree, KnnIndex, LinearScan};
use rknn_rdt::algorithm::{run_algorithm_batch, AlgorithmAnswer, RdtAlgorithm, RknnAlgorithm};
use rknn_rdt::batch::{run_all_points, BatchConfig};
use rknn_rdt::engine::run_query;
use rknn_rdt::{BatchOutcome, RdtParams};
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best_ms = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let r = f();
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        last = Some(r);
    }
    (best_ms, last.expect("at least one repetition"))
}

/// One row of the `algorithms` section.
struct AlgoEntry {
    name: String,
    precompute_ms: f64,
    seq_ms: f64,
    batch_ms: f64,
    fast_seq_ms: f64,
    fast_batch_ms: f64,
    dist_comps: u64,
    result_members: usize,
    boxed_dist_comps: Option<u64>,
}

impl AlgoEntry {
    fn to_json(&self) -> String {
        let boxed = self
            .boxed_dist_comps
            .map(|b| format!(", \"boxed_dist_comps\": {b}"))
            .unwrap_or_default();
        format!(
            "    {{ \"algorithm\": \"{name}\", \"precompute_ms\": {pre:.2}, \
             \"seq_ms\": {seq:.2}, \"batch_ms\": {batch:.2}, \"batch_speedup\": {spd:.2}, \
             \"fast_seq_ms\": {fseq:.2}, \"fast_batch_ms\": {fbatch:.2}, \
             \"fast_tier_speedup\": {fspd:.2}, \
             \"dist_comps\": {dist}, \"result_members\": {members}{boxed} }}",
            name = self.name,
            pre = self.precompute_ms,
            seq = self.seq_ms,
            batch = self.batch_ms,
            spd = if self.batch_ms > 0.0 {
                self.seq_ms / self.batch_ms
            } else {
                1.0
            },
            fseq = self.fast_seq_ms,
            fbatch = self.fast_batch_ms,
            fspd = if self.fast_seq_ms > 0.0 {
                self.seq_ms / self.fast_seq_ms
            } else {
                1.0
            },
            dist = self.dist_comps,
            members = self.result_members,
        )
    }
}

/// Prepares `algo` and measures the sampled query batch through the
/// unified driver, sequentially and batch-parallel; batch results are
/// asserted identical to the sequential run before anything is recorded.
fn measure_algorithm<A>(
    mut algo: A,
    index: &CoverTree<Euclidean>,
    queries: &[PointId],
    threads: usize,
    reps: usize,
) -> (AlgoEntry, Vec<Vec<PointId>>)
where
    A: RknnAlgorithm<Euclidean, CoverTree<Euclidean>>,
{
    algo.prepare(index);
    let pre_ms = algo.precompute_time().as_secs_f64() * 1e3;
    let (seq_ms, seq) = best_of(reps, || run_algorithm_batch(&algo, index, queries, 1));
    let (batch_ms, out) = best_of(reps, || run_algorithm_batch(&algo, index, queries, threads));
    let ids: Vec<Vec<PointId>> = seq
        .answers
        .iter()
        .map(|a| a.neighbors().iter().map(|n| n.id).collect())
        .collect();
    for (i, ans) in out.answers.iter().enumerate() {
        let got: Vec<PointId> = ans.neighbors().iter().map(|n| n.id).collect();
        assert_eq!(
            got,
            ids[i],
            "{}: batch diverged from sequential",
            algo.name()
        );
    }
    (
        AlgoEntry {
            name: algo.name(),
            precompute_ms: pre_ms,
            seq_ms,
            batch_ms,
            fast_seq_ms: 0.0,
            fast_batch_ms: 0.0,
            dist_comps: seq.stats.search.dist_computations,
            result_members: seq.stats.result_members,
            boxed_dist_comps: None,
        },
        ids,
    )
}

/// Replays the same query batch with `algo` on the fast-tier cover tree,
/// asserts the answer sets identical to the exact-tier run, and attaches
/// the fast-tier wall times to the exact entry. The assertion is the
/// cross-tier honesty gate: fast-tier numbers are only recorded for runs
/// that produced the exact answers.
fn attach_fast_tier<A>(
    exact: (AlgoEntry, Vec<Vec<PointId>>),
    algo: A,
    fast_index: &CoverTree<Euclidean>,
    queries: &[PointId],
    threads: usize,
    reps: usize,
) -> (AlgoEntry, Vec<Vec<PointId>>)
where
    A: RknnAlgorithm<Euclidean, CoverTree<Euclidean>>,
{
    let (mut entry, ids) = exact;
    let (fast, fast_ids) = measure_algorithm(algo, fast_index, queries, threads, reps);
    assert_eq!(
        ids, fast_ids,
        "{}: fast tier diverged from the exact tier",
        entry.name
    );
    entry.fast_seq_ms = fast.seq_ms;
    entry.fast_batch_ms = fast.batch_ms;
    (entry, ids)
}

/// The pre-refactor naive execution path: full-precision metric, one
/// allocating boxed `range_count` per candidate.
fn legacy_boxed_naive(
    index: &CoverTree<FullPrecision<Euclidean>>,
    queries: &[PointId],
    k: usize,
) -> (u64, Vec<Vec<PointId>>) {
    let metric = *index.metric();
    let mut stats = SearchStats::new();
    let mut all = Vec::new();
    for &q in queries {
        let qp = index.point(q).to_vec();
        let mut out: Vec<Neighbor> = Vec::new();
        for x in 0..index.num_points() {
            if x == q {
                continue;
            }
            stats.count_dist();
            let d = metric.dist(index.point(x), &qp);
            let closer = index.range_count(index.point(x), d, true, Some(x), &mut stats);
            if closer < k {
                out.push(Neighbor::new(x, d));
            }
        }
        rknn_core::neighbor::sort_neighbors(&mut out);
        all.push(out.into_iter().map(|n| n.id).collect());
    }
    (stats.dist_computations, all)
}

/// The pre-refactor SFT execution path: boxed `knn` candidate retrieval,
/// full-precision pairwise filtering, boxed `range_count` verification.
fn legacy_boxed_sft(
    index: &CoverTree<FullPrecision<Euclidean>>,
    queries: &[PointId],
    k: usize,
    alpha: f64,
) -> (u64, Vec<Vec<PointId>>) {
    let metric = *index.metric();
    let budget = Sft::new(k, alpha).candidate_budget();
    let mut stats = SearchStats::new();
    let mut all = Vec::new();
    for &q in queries {
        let candidates = index.knn(index.point(q), budget, Some(q), &mut stats);
        let m = candidates.len();
        let mut alive = vec![true; m];
        for i in 0..m {
            let xi = index.point(candidates[i].id);
            let mut closer = 0usize;
            for (j, other) in candidates.iter().enumerate() {
                if i == j {
                    continue;
                }
                stats.count_dist();
                if metric.dist(xi, index.point(other.id)) < candidates[i].dist {
                    closer += 1;
                    if closer >= k {
                        alive[i] = false;
                        break;
                    }
                }
            }
        }
        let mut out = Vec::new();
        for (i, cand) in candidates.iter().enumerate() {
            if !alive[i] {
                continue;
            }
            let closer = index.range_count(
                index.point(cand.id),
                cand.dist,
                true,
                Some(cand.id),
                &mut stats,
            );
            if closer < k {
                out.push(*cand);
            }
        }
        rknn_core::neighbor::sort_neighbors(&mut out);
        all.push(out.into_iter().map(|n| n.id).collect());
    }
    (stats.dist_computations, all)
}

/// One row of the `kernels` section: scalar-reference vs dispatched-backend
/// throughput of the raw Euclidean kernel at one dimensionality, plus the
/// dispatched one-query-to-many tile path.
struct KernelEntry {
    dim: usize,
    scalar_ns_per_dist: f64,
    dispatched_ns_per_dist: f64,
    fast_ns_per_dist: f64,
    tile_ns_per_dist: f64,
    f32_tile_ns_per_dist: f64,
    scalar_gbps: f64,
    dispatched_gbps: f64,
    f32_gbps: f64,
    /// True when the fast tier's dimension gate routed this dim to the
    /// exact kernel (d below [`kernel::FAST_MIN_DIM`] after padding), so
    /// `fast_speedup ≈ 1` here is the gate working, not the tier failing.
    fast_fallback: bool,
}

impl KernelEntry {
    fn speedup(&self) -> f64 {
        if self.dispatched_ns_per_dist > 0.0 {
            self.scalar_ns_per_dist / self.dispatched_ns_per_dist
        } else {
            1.0
        }
    }

    /// Fast tier vs the exact dispatched kernel — the price of staying
    /// bit-identical, measured.
    fn fast_speedup(&self) -> f64 {
        if self.fast_ns_per_dist > 0.0 {
            self.dispatched_ns_per_dist / self.fast_ns_per_dist
        } else {
            1.0
        }
    }

    fn to_json(&self) -> String {
        format!(
            "    {{ \"dim\": {dim}, \"scalar_ns_per_dist\": {s:.2}, \
             \"dispatched_ns_per_dist\": {v:.2}, \"speedup\": {sp:.2}, \
             \"fast_ns_per_dist\": {f:.2}, \"fast_speedup\": {fsp:.2}, \
             \"fast_fallback\": {fb}, \
             \"tile_ns_per_dist\": {t:.2}, \"f32_tile_ns_per_dist\": {t32:.2}, \
             \"scalar_gbps\": {sg:.2}, \"dispatched_gbps\": {vg:.2}, \
             \"f32_gbps\": {g32:.2} }}",
            dim = self.dim,
            s = self.scalar_ns_per_dist,
            v = self.dispatched_ns_per_dist,
            sp = self.speedup(),
            f = self.fast_ns_per_dist,
            fsp = self.fast_speedup(),
            fb = self.fast_fallback,
            t = self.tile_ns_per_dist,
            t32 = self.f32_tile_ns_per_dist,
            sg = self.scalar_gbps,
            vg = self.dispatched_gbps,
            g32 = self.f32_gbps,
        )
    }
}

/// Benchmarks the raw `sum_sq` kernel (scalar reference vs the dispatched
/// backend vs the fast-tier fused reduction), the dispatched unbounded
/// `dist_tile`, and the fast-f32 tile over the dataset's f32 mirror, at
/// one dimensionality. Throughput counts the coordinate bytes both
/// operands stream (`2 · dim · 8` per f64 distance, `2 · dim · 4` per f32
/// distance — the f32 tile's bandwidth win is the point of recording it).
fn measure_kernel_dim(dim: usize, reps: usize) -> KernelEntry {
    let n = 2048usize;
    let ds = rknn_data::uniform_cube(n, dim, 0xd15c);
    let q = ds.point(0).to_vec();
    // Enough passes that even the fastest backend runs for ~a millisecond.
    let passes = (4_000_000 / (n * dim.max(1))).max(1);
    let scalar = kernel::ops(Backend::Scalar).expect("scalar backend always exists");
    let run = |ops: &'static kernel::KernelOps| {
        let mut acc = 0.0f64;
        for _ in 0..passes {
            for (_, p) in ds.iter() {
                acc += ops.sum_sq(std::hint::black_box(&q), std::hint::black_box(p));
            }
        }
        acc
    };
    let (scalar_ms, _) = best_of(reps, || run(scalar));
    let (dispatched_ms, _) = best_of(reps, || run(kernel::selected()));
    let fops = kernel::fast_ops();
    let (fast_tier_ms, _) = best_of(reps, || {
        let mut acc = 0.0f64;
        for _ in 0..passes {
            for (_, p) in ds.iter() {
                acc += fops.sum_sq(std::hint::black_box(&q), std::hint::black_box(p));
            }
        }
        acc
    });

    let stride = ds.stride();
    let mut qpad = vec![0.0; stride];
    qpad[..dim].copy_from_slice(&q);
    let bounds = vec![f64::INFINITY; n];
    let mut out = vec![0.0; n];
    let (tile_ms, _) = best_of(reps, || {
        for _ in 0..passes {
            Euclidean.dist_tile(
                std::hint::black_box(&qpad),
                ds.padded_flat(),
                stride,
                dim,
                &bounds,
                &mut out,
            );
        }
        out[n / 2]
    });

    let f32rows = ds.f32_rows();
    let stride32 = f32rows.stride32();
    let mut q32 = vec![0.0f32; stride32];
    for (dst, &v) in q32.iter_mut().zip(q.iter()) {
        *dst = v as f32;
    }
    let m32 = Euclidean::fast_f32();
    let (f32_ms, accepted) = best_of(reps, || {
        let mut ok = true;
        for _ in 0..passes {
            ok &= m32.dist_tile_f32(
                std::hint::black_box(&q32),
                f32rows.padded_flat(),
                stride32,
                dim,
                &bounds,
                &mut out,
            );
        }
        ok
    });
    assert!(
        accepted,
        "fast-f32 tile path declined the f32 mirror at d={dim}"
    );

    let dists = (passes * n) as f64;
    let bytes_per_dist = (2 * dim * 8) as f64;
    let bytes_per_dist_f32 = (2 * dim * 4) as f64;
    let ns = |ms: f64| ms * 1e6 / dists;
    let gbps = |ms: f64| bytes_per_dist * dists / (ms * 1e6);
    KernelEntry {
        dim,
        scalar_ns_per_dist: ns(scalar_ms),
        dispatched_ns_per_dist: ns(dispatched_ms),
        fast_ns_per_dist: ns(fast_tier_ms),
        tile_ns_per_dist: ns(tile_ms),
        f32_tile_ns_per_dist: ns(f32_ms),
        scalar_gbps: gbps(scalar_ms),
        dispatched_gbps: gbps(dispatched_ms),
        f32_gbps: bytes_per_dist_f32 * dists / (f32_ms * 1e6),
        fast_fallback: fops.fma() && !fops.fma_at(dim),
    }
}

fn main() {
    let n = env_usize("RKNN_BENCH_N", 2000);
    let dim = env_usize("RKNN_BENCH_DIM", 32);
    let k = env_usize("RKNN_BENCH_K", 10);
    let t = env_f64("RKNN_BENCH_T", 4.0);
    let threads = env_usize("RKNN_BENCH_THREADS", 4);
    let reps = env_usize("RKNN_BENCH_REPS", 3);
    let clusters = env_usize("RKNN_BENCH_CLUSTERS", 8);
    let sigma = env_f64("RKNN_BENCH_SIGMA", 0.3);
    let out_path = std::env::var("RKNN_BENCH_OUT").unwrap_or_else(|_| "BENCH_rdt.json".into());
    let params = RdtParams::new(k, t);

    let ds = rknn_data::gaussian_blobs(n, dim, clusters, sigma, 0xbe7c).into_shared();
    let scalar_index = LinearScan::build(ds.clone(), FullPrecision(Euclidean));
    let fast_index = LinearScan::build(ds.clone(), Euclidean);

    // 1. Sequential scalar per-query loop (the pre-batch-engine path).
    let (scalar_ms, scalar_answers) = best_of(reps, || {
        (0..scalar_index.num_points())
            .map(|q| run_query(&scalar_index, scalar_index.point(q), Some(q), params, false))
            .collect::<Vec<_>>()
    });

    // 2. Batch driver, one worker: scratch reuse + early abandonment only.
    let (fast_seq_ms, fast_seq): (f64, BatchOutcome) = best_of(reps, || {
        run_all_points(&fast_index, params, &BatchConfig::sequential())
    });

    // 3. Batch driver, `threads` workers.
    let (batch_ms, batch): (f64, BatchOutcome) = best_of(reps, || {
        run_all_points(
            &fast_index,
            params,
            &BatchConfig::default().with_threads(threads),
        )
    });

    // Identical result sets (and terminations) across all three paths.
    for (q, scalar_ans) in scalar_answers.iter().enumerate() {
        assert_eq!(
            scalar_ans.ids(),
            fast_seq.answers[q].ids(),
            "fast sequential diverged from scalar at q={q}"
        );
        assert_eq!(
            scalar_ans.ids(),
            batch.answers[q].ids(),
            "batch diverged from scalar at q={q}"
        );
        assert_eq!(
            scalar_ans.stats.termination, batch.answers[q].stats.termination,
            "q={q}"
        );
    }

    // 4. The same batch job per substrate, every one through the shared
    //    traversal core — the `rknn_eval` substrate sweep over the same
    //    generator parameters (single-shot timings, no best-of damping; it
    //    verifies every substrate's answers against the linear scan).
    let sweep = run_substrate_sweep(&SubstrateSweepConfig {
        n,
        dim,
        clusters,
        sigma,
        k,
        t,
        threads,
        seed: 0xbe7c,
    });
    let substrate_entries: Vec<String> = sweep
        .iter()
        .map(|r| {
            assert!(r.matches_linear, "{} diverged from the linear scan", r.substrate);
            format!(
                "    {{ \"substrate\": \"{name}\", \"build_ms\": {build:.2}, \"batch_ms\": {batch:.2}, \"total_dist_comps\": {dist}, \"nodes_visited\": {nodes}, \"heap_pushes\": {pushes}, \"identical_to_linear\": true }}",
                name = r.substrate,
                build = r.build_ms,
                batch = r.batch_ms,
                dist = r.total_dist_comps,
                nodes = r.nodes_visited,
                pushes = r.heap_pushes,
            )
        })
        .collect();

    // 5. Every method — RDT, RDT+ and the five baselines — over one
    //    sampled query batch on a cover-tree forward index, all through
    //    the algorithm-generic driver; naive and SFT additionally replay
    //    the pre-refactor boxed path for the pruning-dividend comparison.
    let algo_queries = env_usize("RKNN_BENCH_ALGO_QUERIES", 48).min(n);
    let aq: Vec<PointId> = rknn_data::sample_queries(n, algo_queries, 0xa1fa);
    let cover = CoverTree::build(ds.clone(), Euclidean);
    // The fast-tier replay index: same data, metric pinned to the FMA
    // tier. Every algorithm below runs on both and must produce identical
    // answer sets before its fast-tier wall times are recorded.
    let cover_fast = CoverTree::build(ds.clone(), Euclidean::fast());
    let boxed_cover = CoverTree::build(ds.clone(), FullPrecision(Euclidean));
    let alpha = 4.0;

    let mut algo_entries: Vec<AlgoEntry> = Vec::new();
    // d_k reuse off so the recorded RDT work counters are
    // scheduling-independent and reproducible.
    algo_entries.push(
        attach_fast_tier(
            measure_algorithm(
                RdtAlgorithm::new(params).with_dk_reuse(false),
                &cover,
                &aq,
                threads,
                reps,
            ),
            RdtAlgorithm::new(params).with_dk_reuse(false),
            &cover_fast,
            &aq,
            threads,
            reps,
        )
        .0,
    );
    algo_entries.push(
        attach_fast_tier(
            measure_algorithm(
                RdtAlgorithm::plus(params).with_dk_reuse(false),
                &cover,
                &aq,
                threads,
                reps,
            ),
            RdtAlgorithm::plus(params).with_dk_reuse(false),
            &cover_fast,
            &aq,
            threads,
            reps,
        )
        .0,
    );

    let (mut sft_entry, sft_ids) = attach_fast_tier(
        measure_algorithm(Sft::new(k, alpha), &cover, &aq, threads, reps),
        Sft::new(k, alpha),
        &cover_fast,
        &aq,
        threads,
        reps,
    );
    let (sft_boxed, sft_boxed_ids) = legacy_boxed_sft(&boxed_cover, &aq, k, alpha);
    assert_eq!(
        sft_ids, sft_boxed_ids,
        "SFT unified path diverged from the boxed path"
    );
    assert!(
        sft_entry.dist_comps <= sft_boxed,
        "SFT unified path must not evaluate more distances than the boxed path \
         ({} vs {})",
        sft_entry.dist_comps,
        sft_boxed
    );
    sft_entry.boxed_dist_comps = Some(sft_boxed);
    algo_entries.push(sft_entry);

    let (mut naive_entry, naive_ids) = attach_fast_tier(
        measure_algorithm(NaiveRknn::new(k), &cover, &aq, threads, reps),
        NaiveRknn::new(k),
        &cover_fast,
        &aq,
        threads,
        reps,
    );
    let (naive_boxed, naive_boxed_ids) = legacy_boxed_naive(&boxed_cover, &aq, k);
    assert_eq!(
        naive_ids, naive_boxed_ids,
        "naive unified path diverged from the boxed path"
    );
    assert!(
        naive_entry.dist_comps <= naive_boxed,
        "naive unified path must not evaluate more distances than the boxed path \
         ({} vs {})",
        naive_entry.dist_comps,
        naive_boxed
    );
    naive_entry.boxed_dist_comps = Some(naive_boxed);
    algo_entries.push(naive_entry);

    algo_entries.push(
        attach_fast_tier(
            measure_algorithm(
                TplAlgorithm::new(ds.clone(), Euclidean, k),
                &cover,
                &aq,
                threads,
                reps,
            ),
            TplAlgorithm::new(ds.clone(), Euclidean::fast(), k),
            &cover_fast,
            &aq,
            threads,
            reps,
        )
        .0,
    );
    algo_entries.push(
        attach_fast_tier(
            measure_algorithm(
                MrknncopAlgorithm::new(ds.clone(), Euclidean, k, k),
                &cover,
                &aq,
                threads,
                reps,
            ),
            MrknncopAlgorithm::new(ds.clone(), Euclidean::fast(), k, k),
            &cover_fast,
            &aq,
            threads,
            reps,
        )
        .0,
    );
    algo_entries.push(
        attach_fast_tier(
            measure_algorithm(
                RdnnAlgorithm::new(ds.clone(), Euclidean, k),
                &cover,
                &aq,
                threads,
                reps,
            ),
            RdnnAlgorithm::new(ds.clone(), Euclidean::fast(), k),
            &cover_fast,
            &aq,
            threads,
            reps,
        )
        .0,
    );
    let algorithm_json: Vec<String> = algo_entries.iter().map(AlgoEntry::to_json).collect();

    // 6. Dynamic maintenance: a mixed insert/delete workload through the
    //    maintained all-points stream on a dynamic cover tree, priced per
    //    update against rebuilding the answer table from scratch. Runs in
    //    the exact regime (t = 50) so the maintained table is verified
    //    byte-identical to the rebuild before any number is recorded. The
    //    workload repeats `RKNN_BENCH_CHURN_REPS` times (same seed, so
    //    every pass replays the identical update sequence): headline
    //    numbers are the best pass, and min/max spread over the passes is
    //    recorded like the other sections' best-of damping. Effective
    //    threads are recorded next to the requested count — on a 1-CPU box
    //    a `threads: 4` request still runs one at a time.
    let churn_n = env_usize("RKNN_BENCH_CHURN_N", n.min(600));
    let churn_updates = env_usize("RKNN_BENCH_CHURN_UPDATES", 30);
    let churn_reps = env_usize("RKNN_BENCH_CHURN_REPS", reps.max(2)).max(1);
    let churn_cfg = ChurnConfig {
        n: churn_n,
        dim,
        clusters,
        sigma,
        k,
        t: 50.0,
        updates: churn_updates,
        threads,
        seed: 0xbe7c,
        verify: true,
    };
    let churn_runs: Vec<_> = (0..churn_reps)
        .map(|_| {
            let r = run_churn(&churn_cfg);
            assert!(r.verified, "maintained table diverged from rebuild");
            r
        })
        .collect();
    // Identical seed ⇒ identical workload: counters must agree across reps.
    for r in &churn_runs[1..] {
        assert_eq!(
            (r.inserts, r.deletes),
            (churn_runs[0].inserts, churn_runs[0].deletes),
            "churn reps replayed different workloads"
        );
    }
    let per_update = |r: &ChurnReport| {
        (r.mean_insert_ms * r.inserts as f64 + r.mean_delete_ms * r.deletes as f64)
            / (r.inserts + r.deletes).max(1) as f64
    };
    let churn = churn_runs
        .iter()
        .min_by(|a, b| per_update(a).total_cmp(&per_update(b)))
        .expect("at least one churn rep");
    let spread = |f: fn(&ChurnReport) -> f64| {
        let lo = churn_runs.iter().map(f).fold(f64::INFINITY, f64::min);
        let hi = churn_runs.iter().map(f).fold(f64::NEG_INFINITY, f64::max);
        (lo, hi)
    };
    let (ins_lo, ins_hi) = spread(|r| r.mean_insert_ms);
    let (del_lo, del_hi) = spread(|r| r.mean_delete_ms);
    let (ratio_lo, ratio_hi) = spread(|r| r.update_vs_rebuild);
    let churn_mean_ms = per_update(churn);
    // Guarded rate: a zero-duration or zero-update churn section emits an
    // explicit skipped marker instead of an `inf` that breaks JSON parsers.
    let updates_per_sec_json = rknn_bench::rate_json(
        "updates_per_sec",
        (churn.inserts + churn.deletes) as f64,
        churn_mean_ms * (churn.inserts + churn.deletes) as f64 / 1e3,
    );
    let parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
    let dynamic_json = format!(
        "  \"dynamic\": {{ \"n\": {cn}, \"dim\": {dim}, \"k\": {k}, \"t\": 50, \
         \"substrate\": \"cover-tree\", \"inserts\": {ins}, \"deletes\": {del}, \
         \"mean_insert_ms\": {ims:.3}, \"mean_insert_ms_min\": {imslo:.3}, \"mean_insert_ms_max\": {imshi:.3}, \
         \"mean_delete_ms\": {dms:.3}, \"mean_delete_ms_min\": {dmslo:.3}, \"mean_delete_ms_max\": {dmshi:.3}, \
         {updates_per_sec_json}, \"mean_recomputed_queries\": {rec:.1}, \
         \"mean_affected_points\": {aff:.1}, \"dk_maintenance_ms\": {maint:.3}, \
         \"rebuild_ms\": {reb:.2}, \"update_vs_rebuild\": {ratio:.4}, \
         \"update_vs_rebuild_min\": {ratiolo:.4}, \"update_vs_rebuild_max\": {ratiohi:.4}, \
         \"verified_identical\": true, \"reps\": {creps}, \
         \"threads_requested\": {threads}, \"threads_effective\": {teff} }}",
        cn = churn.n,
        ins = churn.inserts,
        del = churn.deletes,
        ims = churn.mean_insert_ms,
        imslo = ins_lo,
        imshi = ins_hi,
        dms = churn.mean_delete_ms,
        dmslo = del_lo,
        dmshi = del_hi,
        rec = churn.mean_recomputed,
        aff = churn.mean_affected,
        maint = churn.maintenance_ms,
        reb = churn.rebuild_ms,
        ratio = churn.update_vs_rebuild,
        ratiolo = ratio_lo,
        ratiohi = ratio_hi,
        creps = churn_reps,
        teff = threads.min(parallelism),
    );

    // 7. Raw kernel throughput: the scalar reference against the
    //    dispatched SIMD backend at d ∈ {8, 32, 128}, plus the dispatched
    //    tile path. Recorded with the backend name and the host's
    //    parallelism so `batch_speedup ≈ 1` on a 1-CPU box (and
    //    `speedup ≈ 1` when dispatch resolves to scalar) are readable from
    //    the snapshot alone.
    let backend = kernel::selected().backend();
    let kernel_entries: Vec<KernelEntry> = [8usize, 32, 128]
        .iter()
        .map(|&d| measure_kernel_dim(d, reps))
        .collect();
    let kernels_json: Vec<String> = kernel_entries.iter().map(KernelEntry::to_json).collect();
    let available: Vec<String> = kernel::available()
        .iter()
        .map(|b| format!("\"{}\"", b.name()))
        .collect();
    let fops = kernel::fast_ops();

    // 8. Streaming-build honesty: a large dataset assembled chunk by chunk
    //    through `DatasetBuilder`, with the builder's own allocation
    //    accounting recorded. The presized path (what the file loaders use
    //    whenever the row count is known up front) must stay under 1.5x of
    //    the final resident bytes — it lands at exactly 1.0x with zero
    //    reallocs. The unhinted path records the amortized doubling
    //    transient honestly instead of hiding it.
    let stream_n = env_usize("RKNN_BENCH_STREAM_N", 1_000_000);
    let stream_dim = env_usize("RKNN_BENCH_STREAM_DIM", 16);
    const STREAM_CHUNK: usize = 4096;
    let stream_build = |presize: bool| {
        let mut b = if presize {
            DatasetBuilder::with_capacity(stream_dim, stream_n)
        } else {
            DatasetBuilder::new(stream_dim)
        };
        // xorshift64* filler: the cost under test is the builder's append
        // path, not the generator.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut chunk = Vec::with_capacity(STREAM_CHUNK * stream_dim);
        let start = Instant::now();
        let mut left = stream_n;
        while left > 0 {
            let rows = left.min(STREAM_CHUNK);
            chunk.clear();
            for _ in 0..rows * stream_dim {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                let bits = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
                chunk.push((bits >> 11) as f64 / (1u64 << 53) as f64);
            }
            b.push_chunk(&chunk).expect("generated rows are finite");
            left -= rows;
        }
        let (built, stats) = b.build_counted();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(built.len(), stream_n, "streaming build dropped rows");
        (stats, ms)
    };
    let (presized, presized_ms) = stream_build(true);
    let (unhinted, unhinted_ms) = stream_build(false);
    let build_stats_json = |s: &rknn_core::BuildStats, ms: f64| {
        format!(
            "{{ \"final_bytes\": {fb}, \"peak_bytes\": {pb}, \
             \"peak_ratio\": {pr:.4}, \"reallocs\": {ra}, \"build_ms\": {ms:.1} }}",
            fb = s.final_bytes,
            pb = s.peak_bytes,
            pr = s.peak_ratio(),
            ra = s.reallocs,
        )
    };
    let streaming_json = format!(
        "  \"streaming_build\": {{ \"rows\": {stream_n}, \"dim\": {stream_dim}, \
         \"chunk_rows\": {STREAM_CHUNK}, \"presized\": {p}, \"unhinted\": {u} }}",
        p = build_stats_json(&presized, presized_ms),
        u = build_stats_json(&unhinted, unhinted_ms),
    );

    // 9. Scaling curves: per-algorithm wall/distance curves over an n-grid
    //    of decades from 10^3 up to `RKNN_BENCH_SCALE_N` (default 10^5;
    //    set the env to 1000000 for the 10^6 run) and a d-grid at fixed n,
    //    against exact sampled ground truth cached by dataset fingerprint.
    //    Quadratic methods run only below their honesty caps and are
    //    recorded as skipped-with-reason above them; RDT-vs-baseline
    //    crossover points close the section.
    let scale_max_n = env_usize("RKNN_BENCH_SCALE_N", 100_000);
    let scale_dims: Vec<usize> = std::env::var("RKNN_BENCH_SCALE_DIMS")
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .unwrap_or_else(|_| vec![8, 32, 128]);
    let mut scale_grid = Vec::new();
    let mut decade = 1_000usize;
    while decade < scale_max_n {
        scale_grid.push(decade);
        decade = decade.saturating_mul(10);
    }
    scale_grid.push(scale_max_n);
    let truth_cache =
        std::env::var("RKNN_BENCH_TRUTH_CACHE").unwrap_or_else(|_| "target/truth-cache".into());
    let scale_cfg = ScalingConfig {
        n_grid: scale_grid,
        d_grid: scale_dims,
        d_grid_n: 10_000.min(scale_max_n),
        k,
        queries: env_usize("RKNN_BENCH_SCALE_QUERIES", 32),
        threads,
        cache_dir: Some(std::path::PathBuf::from(truth_cache)),
        ..ScalingConfig::default()
    };
    eprintln!(
        "[scaling: n-grid {:?}, d-grid {:?} at n={}]",
        scale_cfg.n_grid, scale_cfg.d_grid, scale_cfg.d_grid_n
    );
    let scale_report = run_scaling(&scale_cfg);
    // Exact baselines must agree exactly with the exact sampled truth —
    // result identity is gated unconditionally, like every other section.
    for p in scale_report.n_points.iter().chain(&scale_report.d_points) {
        for e in &p.entries {
            if matches!(e.algorithm.as_str(), "MRkNNCoP" | "RdNN" | "TPL" | "naive") {
                assert!(
                    e.recall >= 1.0,
                    "{} at n={} d={}: exact method recall {:.4} < 1 vs exact truth",
                    e.algorithm,
                    p.n,
                    p.dim,
                    e.recall
                );
            }
        }
    }
    let point_json = |p: &ScalingPoint| {
        let entries: Vec<String> = p
            .entries
            .iter()
            .map(|e| {
                format!(
                    "        {{ \"algorithm\": \"{a}\", \"precompute_ms\": {pre:.2}, \
                     \"precompute_dist\": {pd}, \"batch_ms\": {bm:.2}, \
                     \"query_ms\": {qm:.4}, \"dist_per_query\": {dq:.1}, \
                     \"total_ms\": {tm:.2}, \"recall\": {rc:.4} }}",
                    a = e.algorithm,
                    pre = e.precompute_ms,
                    pd = e.precompute_dist,
                    bm = e.batch_ms,
                    qm = e.query_ms,
                    dq = e.dist_per_query,
                    tm = e.total_ms,
                    rc = e.recall,
                )
            })
            .collect();
        let skipped: Vec<String> = p
            .skipped
            .iter()
            .map(|(a, r)| format!("        {{ \"algorithm\": \"{a}\", \"reason\": \"{r}\" }}"))
            .collect();
        format!(
            "      {{ \"n\": {n}, \"dim\": {d}, \"dataset_build_ms\": {db:.1}, \
             \"index_build_ms\": {ib:.1}, \"truth_ms\": {tms:.1}, \
             \"truth_from_cache\": {tc}, \"truth_mean_size\": {tmean:.2},\n\
             \"entries\": [\n{ent}\n      ],\n      \"skipped\": [{skip}] }}",
            n = p.n,
            d = p.dim,
            db = p.dataset_build_ms,
            ib = p.index_build_ms,
            tms = p.truth_ms,
            tc = p.truth_from_cache,
            tmean = p.truth_mean_size,
            ent = entries.join(",\n"),
            skip = if skipped.is_empty() {
                String::new()
            } else {
                format!("\n{}\n      ", skipped.join(",\n"))
            },
        )
    };
    let n_curve: Vec<String> = scale_report.n_points.iter().map(point_json).collect();
    let d_curve: Vec<String> = scale_report.d_points.iter().map(point_json).collect();
    let crossover_json: Vec<String> = scale_report
        .crossovers
        .iter()
        .map(|c| {
            format!(
                "      {{ \"baseline\": \"{b}\", \"n\": {n}, \"rdt_total_ms\": {r:.2}, \
                 \"baseline_total_ms\": {bl:.2} }}",
                b = c.baseline,
                n = c.n.map(|v| v.to_string()).unwrap_or_else(|| "null".into()),
                r = c.rdt_total_ms,
                bl = c.baseline_total_ms,
            )
        })
        .collect();
    let scaling_json = format!(
        "  \"scaling\": {{ \"dataset\": \"gaussian_blobs\", \"k\": {k}, \"t\": {st}, \
         \"alpha\": {al}, \"sigma\": {sg}, \"clusters\": {cl}, \"queries\": {q}, \
         \"threads\": {threads}, \"seed\": {sd}, \
         \"truth\": \"exact sampled RkNN (pruned naive batch, cached by dataset fingerprint)\", \
         \"naive_max_n\": {nmax}, \"tpl_max_n\": {tmax}, \
         \"n_grid_dim\": {ngd}, \"d_grid_n\": {dgn},\n\
         \"n_curve\": [\n{nc}\n  ],\n  \"d_curve\": [\n{dc}\n  ],\n  \
         \"crossovers\": [\n{cr}\n  ] }}",
        st = scale_cfg.t,
        al = scale_cfg.alpha,
        sg = scale_cfg.sigma,
        cl = scale_cfg.clusters,
        q = scale_cfg.queries,
        sd = scale_cfg.seed,
        nmax = scale_cfg.naive_max_n,
        tmax = scale_cfg.tpl_max_n,
        ngd = scale_cfg.dim,
        dgn = scale_cfg.d_grid_n,
        nc = n_curve.join(",\n"),
        dc = d_curve.join(",\n"),
        cr = crossover_json.join(",\n"),
    );

    let st = &batch.stats;
    let speedup_batch = scalar_ms / batch_ms;
    let speedup_fast_seq = scalar_ms / fast_seq_ms;
    let json = format!(
        "{{\n  \"bench\": \"batch_all_points_rknn\",\n  \"substrate\": \"linear-scan\",\n  \"dataset\": \"gaussian_blobs\",\n  \"n\": {n},\n  \"dim\": {dim},\n  \"k\": {k},\n  \"t\": {t},\n  \"threads\": {threads},\n  \"available_parallelism\": {parallelism},\n  \"kernel_backend\": \"{backend_name}\",\n  \"kernel_backends_available\": [{available}],\n  \"kernel_tier\": \"{tier_name}\",\n  \"fma_available\": {fma},\n  \"fast_ops_fma\": {fops_fma},\n  \"fast_min_dim\": {fmd},\n  \"storage\": {{ \"f64_bytes\": {b64}, \"f32_bytes\": {b32} }},\n  \"reps\": {{ \"batch\": {reps}, \"substrates\": 1, \"algorithms\": {reps}, \"kernels\": {reps}, \"dynamic\": {creps}, \"scaling\": 1 }},\n  \"scalar_sequential_ms\": {scalar_ms:.2},\n  \"fast_sequential_ms\": {fast_seq_ms:.2},\n  \"batch_ms\": {batch_ms:.2},\n  \"speedup_fast_sequential\": {speedup_fast_seq:.2},\n  \"speedup_batch\": {speedup_batch:.2},\n  \"identical_results\": true,\n  \"total_dist_comps\": {dist},\n  \"witness_pairs\": {wp},\n  \"witness_dist_comps\": {wd},\n  \"retrieved\": {retr},\n  \"result_members\": {members},\n{dynamics},\n{streaming},\n{scaling},\n  \"kernels\": [\n{kerns}\n  ],\n  \"substrates\": [\n{subs}\n  ],\n  \"algorithms\": {{\n  \"forward_index\": \"cover-tree\",\n  \"queries\": {aqn},\n  \"entries\": [\n{algos}\n  ] }}\n}}\n",
        backend_name = backend.name(),
        available = available.join(", "),
        tier_name = kernel::selected_tier().name(),
        fma = kernel::fma_available(),
        fops_fma = fops.fma(),
        fmd = kernel::FAST_MIN_DIM,
        creps = churn_reps,
        b64 = ds.storage_bytes(),
        b32 = ds.f32_rows().bytes(),
        dist = st.total_dist_comps(),
        wp = st.witness_pairs,
        wd = st.witness_dist_comps,
        retr = st.retrieved,
        members = st.result_members,
        dynamics = dynamic_json,
        streaming = streaming_json,
        scaling = scaling_json,
        kerns = kernels_json.join(",\n"),
        subs = substrate_entries.join(",\n"),
        aqn = aq.len(),
        algos = algorithm_json.join(",\n"),
    );
    print!("{json}");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("warning: cannot write {out_path}: {e}");
    } else {
        eprintln!("[snapshot written to {out_path}]");
    }
    // The speedup claim is only statistically meaningful at full scale
    // with best-of damping; smoke runs (CI uses n=200, reps=1) gate on
    // result identity above and treat a slow measurement as advisory.
    if n >= 1000 && reps >= 2 {
        assert!(
            speedup_batch >= 1.0,
            "batch driver slower than the scalar baseline: {speedup_batch:.2}x"
        );
    } else if speedup_batch < 1.0 {
        eprintln!(
            "warning: batch measured slower than scalar at smoke scale \
             ({speedup_batch:.2}x) — timing noise, not gated"
        );
    }
    // Kernel-speedup honesty check, advisory like the batch one: with a
    // SIMD backend dispatched, the d=32 per-distance throughput should beat
    // the scalar reference; parity is expected (and recorded) when dispatch
    // resolved to scalar because the host lacks SIMD.
    // Dynamic-maintenance honesty check, advisory like the others: a
    // localized update must be much cheaper than rebuilding the answer
    // table from scratch — but only at a scale where the rebuild takes
    // long enough to measure against. Result identity (`verified`) is
    // gated unconditionally above.
    if churn_n >= 500 && churn_updates >= 10 {
        assert!(
            churn.update_vs_rebuild < 1.0,
            "maintained update not cheaper than rebuild: {:.3}x",
            churn.update_vs_rebuild
        );
    } else if churn.update_vs_rebuild >= 1.0 {
        eprintln!(
            "warning: maintained update measured at {:.3}x of a rebuild at \
             smoke scale — timing noise, not gated",
            churn.update_vs_rebuild
        );
    }
    let d32 = kernel_entries
        .iter()
        .find(|e| e.dim == 32)
        .expect("d=32 entry recorded");
    if backend != Backend::Scalar {
        if n >= 1000 && reps >= 2 {
            assert!(
                d32.speedup() >= 1.0,
                "{} kernel slower than the scalar reference at d=32: {:.2}x",
                backend.name(),
                d32.speedup()
            );
        } else if d32.speedup() < 1.0 {
            eprintln!(
                "warning: {} kernel measured below scalar at smoke scale \
                 ({:.2}x) — timing noise, not gated",
                backend.name(),
                d32.speedup()
            );
        }
    }
    // Fast-tier honesty check, same advisory shape: when the fast tier
    // resolved to real FMA kernels (not the exact-backend fallback), the
    // fused reduction must not lose to the exact dispatched kernel at
    // d=32. When `fast_ops_fma` is false the recorded `fast_speedup ≈ 1`
    // is the honest answer — the host has no FMA and the tier degraded.
    if fops.fma() {
        if n >= 1000 && reps >= 2 {
            assert!(
                d32.fast_speedup() >= 1.0,
                "fast-tier FMA kernel slower than the exact {} kernel at d=32: {:.2}x",
                backend.name(),
                d32.fast_speedup()
            );
        } else if d32.fast_speedup() < 1.0 {
            eprintln!(
                "warning: fast tier measured below the exact kernel at smoke \
                 scale ({:.2}x) — timing noise, not gated",
                d32.fast_speedup()
            );
        }
    }
    // Below the dimension gate the fast tier runs the exact kernel, so the
    // recorded ratio is two timings of the same code: anything far from
    // parity is measurement trouble, and the pre-gate d=8 regression
    // (fast_speedup 0.90) must not reappear.
    for e in kernel_entries.iter().filter(|e| e.fast_fallback) {
        if n >= 1000 && reps >= 2 {
            assert!(
                e.fast_speedup() >= 0.9,
                "fast tier below the exact kernel at gated d={}: {:.2}x \
                 (the gate should have made these identical)",
                e.dim,
                e.fast_speedup()
            );
        } else if e.fast_speedup() < 0.9 {
            eprintln!(
                "warning: gated fast tier measured at {:.2}x of the exact \
                 kernel at d={} at smoke scale — timing noise, not gated",
                e.fast_speedup(),
                e.dim
            );
        }
    }
    // Streaming-build honesty: the presized path must never approach the
    // old 2x repack peak. This is allocation accounting, not timing, so it
    // gates at any scale large enough for the growth policy to matter.
    if stream_n >= 100_000 {
        assert!(
            presized.peak_ratio() < 1.5,
            "presized streaming build peaked at {:.2}x of final bytes",
            presized.peak_ratio()
        );
        assert_eq!(
            presized.reallocs, 0,
            "presized streaming build reallocated {} times",
            presized.reallocs
        );
    }
}
