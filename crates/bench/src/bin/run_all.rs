//! Runs every table/figure harness in sequence (the one-shot reproduction
//! entry point). Equivalent to executing the individual binaries.

use std::process::Command;

fn main() {
    let bins = [
        "table1",
        "fig3_sequoia",
        "fig4_aloi",
        "fig5_fct",
        "fig6_mnist",
        "fig7_lazy",
        "fig8_imagenet",
        "fig9_amortization",
        "ablation_witness",
        "theory_check",
        "hubness",
        "substrate_sweep",
    ];
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    let mut failed = Vec::new();
    for bin in bins {
        println!("\n=== {bin} ===");
        let path = dir.join(bin);
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failed.push(bin);
            }
            Err(e) => {
                eprintln!(
                    "cannot run {}: {e} (build with `cargo build --release -p rknn-bench`)",
                    path.display()
                );
                failed.push(bin);
            }
        }
    }
    if failed.is_empty() {
        println!("\nall experiments completed");
    } else {
        eprintln!("\nfailed: {failed:?}");
        std::process::exit(1);
    }
}
