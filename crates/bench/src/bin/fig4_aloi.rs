//! Regenerates Figure 4: recall/query-time tradeoffs on ALOI-like data
//! (641-d, low intrinsic dimension) for k ∈ {10, 50, 100}.

use rknn_bench::HarnessOpts;
use rknn_data::aloi_like;
use std::sync::Arc;

fn main() {
    let opts = HarnessOpts::from_env();
    let n = opts.scaled(3000);
    let ds = Arc::new(aloi_like(n, opts.seed));
    rknn_bench::run_tradeoff_figure(
        &opts,
        "fig4_aloi",
        &format!("Figure 4: ALOI-like (n={n}, 641-d, cover tree)"),
        "ALOI-like",
        ds,
        true,
    );
    println!(
        "paper shape: RDT+ outperforms RDT outperforms SFT; MRkNNCoP loses its edge \
         on this low-intrinsic-dimensional set"
    );
}
