//! Runs the batch all-points RkNN workload on every forward substrate
//! through the shared traversal core and reports per-substrate build and
//! query costs (beyond the paper: its experiments use only the cover tree
//! and the sequential scan, §7.1).

use rknn_bench::HarnessOpts;
use rknn_eval::experiments::substrates::{
    rows_to_table, run_substrate_sweep, SubstrateSweepConfig,
};

fn main() {
    let opts = HarnessOpts::from_env();
    let cfg = SubstrateSweepConfig {
        n: opts.scaled(2000),
        seed: opts.seed,
        ..SubstrateSweepConfig::default()
    };
    let rows = run_substrate_sweep(&cfg);
    opts.emit("substrate_sweep", &rows_to_table(&rows));
    assert!(
        rows.iter().all(|r| r.matches_linear),
        "every substrate must reproduce the linear-scan answers"
    );
    println!(
        "paper shape: RDT is index-agnostic — identical answers from all six \
         substrates; the work split (metric evals vs node expansions) is the \
         substrate's signature"
    );
}
