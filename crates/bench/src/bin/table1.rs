//! Regenerates Table 1: intrinsic-dimensionality estimates (MLE, GP,
//! Takens) with estimator runtimes, for the four small/medium datasets.

use rknn_bench::HarnessOpts;
use rknn_data::{aloi_like, fct_like, mnist_like, sequoia_like};
use rknn_eval::experiments::table1::{rows_to_table, run_table1};
use std::sync::Arc;

fn main() {
    let opts = HarnessOpts::from_env();
    let sets = vec![
        (
            "Sequoia-like".to_string(),
            Arc::new(sequoia_like(opts.scaled(8000), opts.seed)),
        ),
        (
            "FCT-like".to_string(),
            Arc::new(fct_like(opts.scaled(5000), opts.seed)),
        ),
        (
            "ALOI-like".to_string(),
            Arc::new(aloi_like(opts.scaled(3000), opts.seed)),
        ),
        (
            "MNIST-like".to_string(),
            Arc::new(mnist_like(opts.scaled(2500), opts.seed)),
        ),
    ];
    let rows = run_table1(&sets);
    opts.emit("table1", &rows_to_table(&rows));
    println!(
        "paper targets — Sequoia: MLE 1.84 GP 1.79 | FCT: 3.54/3.87 | \
         ALOI: 7.71/1.98 | MNIST: 12.15/4.39 (shape: MLE >> CD on ALOI/MNIST)"
    );
}
