//! Regenerates Figure 6: recall/query-time tradeoffs on MNIST-like data
//! (784-d) for k ∈ {10, 50, 100}, sequential-scan substrate (§7.1).

use rknn_bench::HarnessOpts;
use rknn_data::mnist_like;
use std::sync::Arc;

fn main() {
    let opts = HarnessOpts::from_env();
    let n = opts.scaled(2500);
    let ds = Arc::new(mnist_like(n, opts.seed));
    rknn_bench::run_tradeoff_figure(
        &opts,
        "fig6_mnist",
        &format!("Figure 6: MNIST-like (n={n}, 784-d, sequential scan)"),
        "MNIST-like",
        ds,
        false,
    );
    println!(
        "paper shape: MLE overestimates t here (near-exact results, high query \
         times); correlation-dimension estimators are the better choice"
    );
}
