//! Shared plumbing for the experiment harness binaries.
//!
//! Every binary regenerates one paper table/figure (see `DESIGN.md` §5 for
//! the index) and accepts environment-variable overrides so the same code
//! scales from smoke test to full run:
//!
//! * `RKNN_SCALE` — multiplies all dataset sizes (default 1.0; the
//!   defaults are laptop-scaled versions of the paper's workloads with the
//!   size *ratios* preserved);
//! * `RKNN_QUERIES` — queries per batch (default per experiment);
//! * `RKNN_SEED` — workload seed (default 0x5eed);
//! * `RKNN_OUT` — output directory for CSVs (default `results/`).

use rknn_eval::Table;
use std::path::PathBuf;

/// Parsed harness options.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Global size multiplier.
    pub scale: f64,
    /// Query-count override.
    pub queries: Option<usize>,
    /// Workload seed.
    pub seed: u64,
    /// CSV output directory.
    pub out_dir: PathBuf,
}

impl HarnessOpts {
    /// Reads options from the environment.
    pub fn from_env() -> Self {
        let scale = std::env::var("RKNN_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.0);
        let queries = std::env::var("RKNN_QUERIES")
            .ok()
            .and_then(|v| v.parse().ok());
        let seed = std::env::var("RKNN_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x5eed);
        let out_dir = std::env::var("RKNN_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results"));
        HarnessOpts {
            scale,
            queries,
            seed,
            out_dir,
        }
    }

    /// Applies the scale factor to a default size (minimum 64 points).
    pub fn scaled(&self, n: usize) -> usize {
        ((n as f64 * self.scale).round() as usize).max(64)
    }

    /// Query count with override.
    pub fn queries_or(&self, default: usize) -> usize {
        self.queries.unwrap_or(default)
    }

    /// Prints the table and writes its CSV next to it.
    pub fn emit(&self, name: &str, table: &Table) {
        println!("{}", table.render());
        if let Err(e) = std::fs::create_dir_all(&self.out_dir) {
            eprintln!("warning: cannot create {}: {e}", self.out_dir.display());
            return;
        }
        let path = self.out_dir.join(format!("{name}.csv"));
        match table.write_csv(&path) {
            Ok(()) => println!("[csv written to {}]\n", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
}

/// JSON fragment for a rate (`events / seconds`): the finite value under
/// `key`, or — when the section had zero events or zero duration — `null`
/// plus an explicit `<key>_skipped` marker naming the reason, so BENCH
/// files stay machine-parseable instead of carrying `inf`/`NaN` (which are
/// not JSON at all).
pub fn rate_json(key: &str, events: f64, seconds: f64) -> String {
    let rate = events / seconds;
    if events > 0.0 && seconds > 0.0 && rate.is_finite() {
        format!("\"{key}\": {rate:.1}")
    } else {
        let reason = if events <= 0.0 {
            "zero events in section"
        } else {
            "zero-duration section"
        };
        format!("\"{key}\": null, \"{key}_skipped\": \"{reason}\"")
    }
}

/// JSON fragment for an already-computed optional value: the value under
/// `key` when present and finite, else `null` plus `<key>_skipped`.
pub fn opt_json(key: &str, value: Option<f64>, skip_reason: &str) -> String {
    match value {
        Some(v) if v.is_finite() => format!("\"{key}\": {v:.3}"),
        _ => format!("\"{key}\": null, \"{key}_skipped\": \"{skip_reason}\""),
    }
}

/// Runs one Figures 3–6 style tradeoff figure and emits its table.
///
/// `use_cover_tree` follows §7.1: cover tree everywhere except the
/// MNIST/Imagenet-like sets, which use sequential scan.
pub fn run_tradeoff_figure(
    opts: &HarnessOpts,
    csv_name: &str,
    title: &str,
    dataset_label: &str,
    ds: std::sync::Arc<rknn_core::Dataset>,
    use_cover_tree: bool,
) {
    use rknn_eval::tradeoff::{rows_to_table, run_tradeoff, TradeoffConfig};
    let cfg = TradeoffConfig {
        queries: opts.queries_or(40),
        use_cover_tree,
        seed: opts.seed,
        ..TradeoffConfig::new(dataset_label)
    };
    let rows = run_tradeoff(ds, &cfg);
    opts.emit(csv_name, &rows_to_table(title, &rows));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_has_floor() {
        let opts = HarnessOpts {
            scale: 0.001,
            queries: None,
            seed: 1,
            out_dir: PathBuf::from("/tmp"),
        };
        assert_eq!(opts.scaled(8000), 64);
        let opts = HarnessOpts { scale: 2.0, ..opts };
        assert_eq!(opts.scaled(100), 200);
        assert_eq!(opts.queries_or(40), 40);
    }

    #[test]
    fn rate_json_guards_zero_denominators() {
        assert_eq!(rate_json("qps", 100.0, 2.0), "\"qps\": 50.0");
        assert_eq!(
            rate_json("qps", 100.0, 0.0),
            "\"qps\": null, \"qps_skipped\": \"zero-duration section\""
        );
        assert_eq!(
            rate_json("qps", 0.0, 2.0),
            "\"qps\": null, \"qps_skipped\": \"zero events in section\""
        );
        assert_eq!(
            rate_json("qps", 0.0, 0.0),
            "\"qps\": null, \"qps_skipped\": \"zero events in section\""
        );
        // The fragments parse as JSON object members.
        for frag in [rate_json("r", 1.0, 1.0), rate_json("r", 1.0, 0.0)] {
            assert!(frag.starts_with("\"r\":"));
        }
    }

    #[test]
    fn opt_json_skips_absent_and_non_finite() {
        assert_eq!(opt_json("p99", Some(1.5), "x"), "\"p99\": 1.500");
        assert_eq!(
            opt_json("p99", None, "too few queries"),
            "\"p99\": null, \"p99_skipped\": \"too few queries\""
        );
        assert_eq!(
            opt_json("p99", Some(f64::INFINITY), "overflow"),
            "\"p99\": null, \"p99_skipped\": \"overflow\""
        );
    }
}
