//! A vantage-point tree (Yianilos) with incremental best-first search.
//!
//! The VP-tree is not used in the paper's experiments; it is included as an
//! additional metric substrate to exercise RDT's claim of working on top of
//! *any* index supporting incremental forward NN queries (§4), and as an
//! independent witness in substrate-agreement tests.

use crate::traits::{KnnIndex, NnCursor};
use crate::traversal::{self, ExpandSink, TreeSubstrate};
use rknn_core::{CursorScratch, Dataset, Metric, OrderedF64, PointId};
use std::sync::Arc;

const LEAF_SIZE: usize = 12;

#[derive(Debug, Clone)]
enum VpNode {
    Leaf(Vec<PointId>),
    Inner {
        vp: PointId,
        /// `(subtree, min, max)` distance interval from the vantage point to
        /// the points of each child subtree.
        near: Option<(usize, f64, f64)>,
        far: Option<(usize, f64, f64)>,
    },
}

/// A static vantage-point tree.
#[derive(Debug, Clone)]
pub struct VpTree<M: Metric> {
    ds: Arc<Dataset>,
    metric: M,
    nodes: Vec<VpNode>,
    root: Option<usize>,
}

impl<M: Metric> VpTree<M> {
    /// Builds a VP-tree over a shared dataset.
    pub fn build(ds: Arc<Dataset>, metric: M) -> Self {
        let mut tree = VpTree {
            ds: ds.clone(),
            metric,
            nodes: Vec::new(),
            root: None,
        };
        let mut ids: Vec<PointId> = (0..ds.len()).collect();
        tree.root = tree.build_rec(&mut ids);
        tree
    }

    fn build_rec(&mut self, ids: &mut [PointId]) -> Option<usize> {
        if ids.is_empty() {
            return None;
        }
        if ids.len() <= LEAF_SIZE {
            self.nodes.push(VpNode::Leaf(ids.to_vec()));
            return Some(self.nodes.len() - 1);
        }
        // Use the first id as the vantage point (build order is already
        // arbitrary; callers wanting a randomized tree can shuffle the
        // dataset). Partition the rest around the median distance.
        let vp = ids[0];
        let vp_coords = self.ds.point(vp).to_vec();
        let rest = &mut ids[1..];
        let mut dists: Vec<(f64, PointId)> = rest
            .iter()
            .map(|&id| (self.metric.dist(&vp_coords, self.ds.point(id)), id))
            .collect();
        let mid = dists.len() / 2;
        dists.sort_by_key(|a| OrderedF64(a.0));
        let (near_part, far_part) = dists.split_at(mid.max(1).min(dists.len()));
        let interval = |part: &[(f64, PointId)]| -> (f64, f64) {
            let min = part.first().map(|p| p.0).unwrap_or(0.0);
            let max = part.last().map(|p| p.0).unwrap_or(0.0);
            (min, max)
        };
        let (near_min, near_max) = interval(near_part);
        let (far_min, far_max) = interval(far_part);
        let mut near_ids: Vec<PointId> = near_part.iter().map(|p| p.1).collect();
        let mut far_ids: Vec<PointId> = far_part.iter().map(|p| p.1).collect();
        let near = self
            .build_rec(&mut near_ids)
            .map(|n| (n, near_min, near_max));
        let far = self.build_rec(&mut far_ids).map(|n| (n, far_min, far_max));
        self.nodes.push(VpNode::Inner { vp, near, far });
        Some(self.nodes.len() - 1)
    }

    /// Number of tree nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

impl<M: Metric> TreeSubstrate<M> for VpTree<M> {
    fn metric(&self) -> &M {
        &self.metric
    }

    fn coords(&self, id: PointId) -> &[f64] {
        self.ds.point(id)
    }

    fn seed(&self, sink: &mut ExpandSink<'_, M, Self>) {
        if let Some(root) = self.root {
            sink.child(root, 0.0, f64::NAN);
        }
    }

    fn expand(&self, id: usize, _d_pivot: f64, sink: &mut ExpandSink<'_, M, Self>) {
        match &self.nodes[id] {
            VpNode::Leaf(pts) => {
                for &p in pts {
                    sink.point(p);
                }
            }
            VpNode::Inner { vp, near, far } => {
                // One evaluation serves the vantage point's own emission and
                // both children's annulus bounds, so the abandonment slack
                // is the larger of the two outer radii.
                let reach = [near, far]
                    .into_iter()
                    .flatten()
                    .fold(0.0f64, |r, c| r.max(c.2));
                if let Some(d) = sink.pivot(*vp, reach) {
                    sink.point_at(*vp, d);
                    for child in [near, far].into_iter().flatten() {
                        let (node, lo, hi) = *child;
                        sink.child(node, (d - hi).max(lo - d).max(0.0), d);
                    }
                }
            }
        }
    }
}

impl<M: Metric> KnnIndex<M> for VpTree<M> {
    fn num_points(&self) -> usize {
        self.ds.len()
    }

    fn dim(&self) -> usize {
        self.ds.dim()
    }

    fn point(&self, id: PointId) -> &[f64] {
        self.ds.point(id)
    }

    fn metric(&self) -> &M {
        &self.metric
    }

    fn name(&self) -> &'static str {
        "vp-tree"
    }

    fn cursor<'a>(&'a self, q: &'a [f64], exclude: Option<PointId>) -> Box<dyn NnCursor + 'a> {
        traversal::tree_cursor(self, q, exclude)
    }

    fn cursor_with<'a>(
        &'a self,
        q: &'a [f64],
        exclude: Option<PointId>,
        scratch: &'a mut CursorScratch,
    ) -> Box<dyn NnCursor + 'a> {
        traversal::tree_cursor_with(self, q, exclude, scratch)
    }

    fn cursor_bounded<'a>(
        &'a self,
        q: &'a [f64],
        exclude: Option<PointId>,
        limit: usize,
        scratch: &'a mut CursorScratch,
    ) -> Box<dyn NnCursor + 'a> {
        traversal::tree_cursor_bounded(self, q, exclude, limit, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknn_core::{BruteForce, Euclidean, Manhattan, SearchStats};

    fn random_dataset(n: usize, dim: usize, seed: u64) -> Arc<Dataset> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| next() * 10.0 - 5.0).collect())
            .collect();
        Dataset::from_rows(&rows).unwrap().into_shared()
    }

    #[test]
    fn cursor_is_complete_and_ordered() {
        let ds = random_dataset(257, 3, 7);
        let tree = VpTree::build(ds.clone(), Euclidean);
        let q = ds.point(0).to_vec();
        let mut cur = tree.cursor(&q, None);
        let got: Vec<_> = std::iter::from_fn(|| cur.next()).collect();
        assert_eq!(got.len(), 257);
        let mut seen = std::collections::HashSet::new();
        let mut prev = 0.0;
        for n in &got {
            assert!(seen.insert(n.id), "no duplicates");
            assert!(n.dist >= prev - 1e-12);
            prev = n.dist;
        }
    }

    #[test]
    fn knn_matches_brute_force_in_l1() {
        let ds = random_dataset(300, 5, 8);
        let tree = VpTree::build(ds.clone(), Manhattan);
        let bf = BruteForce::new(ds.clone(), Manhattan);
        for qi in [3usize, 80, 299] {
            let mut st = SearchStats::new();
            let got = tree.knn(ds.point(qi), 7, Some(qi), &mut st);
            let want = bf.knn(ds.point(qi), 7, Some(qi), &mut SearchStats::new());
            for (g, w) in got.iter().zip(&want) {
                assert!((g.dist - w.dist).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn small_and_degenerate_inputs() {
        let ds = Dataset::from_rows(&[vec![0.0]]).unwrap().into_shared();
        let tree = VpTree::build(ds, Euclidean);
        let mut st = SearchStats::new();
        assert_eq!(tree.knn(&[0.5], 1, None, &mut st).len(), 1);

        // All-identical points must still stream completely.
        let ds = Dataset::from_rows(&vec![vec![2.0, 2.0]; 40])
            .unwrap()
            .into_shared();
        let tree = VpTree::build(ds, Euclidean);
        let mut cur = tree.cursor(&[0.0, 0.0], None);
        assert_eq!(std::iter::from_fn(|| cur.next()).count(), 40);
    }
}
