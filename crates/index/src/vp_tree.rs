//! A vantage-point tree (Yianilos) with incremental best-first search.
//!
//! The VP-tree is not used in the paper's experiments; it is included as an
//! additional metric substrate to exercise RDT's claim of working on top of
//! *any* index supporting incremental forward NN queries (§4), and as an
//! independent witness in substrate-agreement tests.
//!
//! The tree is dynamic: points live in a [`PointPool`], inserts descend to
//! a leaf widening each vantage point's child distance interval along the
//! way (correctness needs only that every subtree point's distance to the
//! vantage point stays inside the stored interval), and removals tombstone
//! — dead points keep routing the search but are filtered from emission by
//! the traversal core's uniform `is_emittable` contract. Accumulated
//! tombstones are unlinked by [`DynamicIndex::compact`], governed by a
//! [`RebuildPolicy`].

use crate::pool::{PointPool, RebuildPolicy};
use crate::traits::{DynamicIndex, KnnIndex, NnCursor};
use crate::traversal::{self, ExpandSink, TreeSubstrate};
use rknn_core::{CoreError, CursorScratch, Dataset, Metric, OrderedF64, PointId};
use std::sync::Arc;

const LEAF_SIZE: usize = 12;

#[derive(Debug, Clone)]
enum VpNode {
    Leaf(Vec<PointId>),
    Inner {
        vp: PointId,
        /// `(subtree, min, max)` distance interval from the vantage point to
        /// the points of each child subtree.
        near: Option<(usize, f64, f64)>,
        far: Option<(usize, f64, f64)>,
    },
}

/// A dynamic vantage-point tree over a [`PointPool`].
#[derive(Debug, Clone)]
pub struct VpTree<M: Metric> {
    pool: PointPool,
    metric: M,
    nodes: Vec<VpNode>,
    root: Option<usize>,
    policy: RebuildPolicy,
    /// Tombstoned points still linked into the navigation structure —
    /// reset by [`DynamicIndex::compact`], which unlinks them.
    stale: usize,
}

impl<M: Metric> VpTree<M> {
    /// Builds a VP-tree over a shared dataset.
    pub fn build(ds: Arc<Dataset>, metric: M) -> Self {
        let mut tree = VpTree {
            pool: PointPool::new(ds),
            metric,
            nodes: Vec::new(),
            root: None,
            policy: RebuildPolicy::default(),
            stale: 0,
        };
        let mut ids: Vec<PointId> = (0..tree.pool.total()).collect();
        tree.root = tree.build_rec(&mut ids);
        tree
    }

    fn build_rec(&mut self, ids: &mut [PointId]) -> Option<usize> {
        if ids.is_empty() {
            return None;
        }
        if ids.len() <= LEAF_SIZE {
            self.nodes.push(VpNode::Leaf(ids.to_vec()));
            return Some(self.nodes.len() - 1);
        }
        // Use the first id as the vantage point (build order is already
        // arbitrary; callers wanting a randomized tree can shuffle the
        // dataset). Partition the rest around the median distance.
        let vp = ids[0];
        let vp_coords = self.pool.point(vp).to_vec();
        let rest = &mut ids[1..];
        let mut dists: Vec<(f64, PointId)> = rest
            .iter()
            .map(|&id| (self.metric.dist(&vp_coords, self.pool.point(id)), id))
            .collect();
        let mid = dists.len() / 2;
        dists.sort_by_key(|a| OrderedF64(a.0));
        let (near_part, far_part) = dists.split_at(mid.max(1).min(dists.len()));
        let interval = |part: &[(f64, PointId)]| -> (f64, f64) {
            let min = part.first().map(|p| p.0).unwrap_or(0.0);
            let max = part.last().map(|p| p.0).unwrap_or(0.0);
            (min, max)
        };
        let (near_min, near_max) = interval(near_part);
        let (far_min, far_max) = interval(far_part);
        let mut near_ids: Vec<PointId> = near_part.iter().map(|p| p.1).collect();
        let mut far_ids: Vec<PointId> = far_part.iter().map(|p| p.1).collect();
        let near = self
            .build_rec(&mut near_ids)
            .map(|n| (n, near_min, near_max));
        let far = self.build_rec(&mut far_ids).map(|n| (n, far_min, far_max));
        self.nodes.push(VpNode::Inner { vp, near, far });
        Some(self.nodes.len() - 1)
    }

    /// Number of tree nodes (including any unreachable nodes orphaned by
    /// leaf splits; [`DynamicIndex::compact`] rebuilds without them).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Read access to the underlying pool.
    pub fn pool(&self) -> &PointPool {
        &self.pool
    }

    /// Links an existing pool point into the navigation structure: descend
    /// to a leaf, widening each chosen child's distance interval so the new
    /// point's distance to every vantage point on the path stays inside the
    /// interval the search prunes with. An overfull leaf is rebuilt in
    /// place into a subtree via the static construction.
    fn attach(&mut self, id: PointId) {
        let Some(root) = self.root else {
            self.nodes.push(VpNode::Leaf(vec![id]));
            self.root = Some(self.nodes.len() - 1);
            return;
        };
        let mut cur = root;
        loop {
            let vp = match &self.nodes[cur] {
                VpNode::Leaf(_) => {
                    let VpNode::Leaf(pts) = &mut self.nodes[cur] else {
                        unreachable!()
                    };
                    pts.push(id);
                    if pts.len() > LEAF_SIZE {
                        self.split_leaf(cur);
                    }
                    return;
                }
                VpNode::Inner { vp, .. } => *vp,
            };
            let d = self.metric.dist(self.pool.point(id), self.pool.point(vp));
            let VpNode::Inner { near, far, .. } = &mut self.nodes[cur] else {
                unreachable!()
            };
            // Route into the near child while the distance falls inside (or
            // under) its interval; otherwise the far child, creating it when
            // absent. Widening the chosen interval preserves the pruning
            // invariant; which side is chosen affects only balance.
            let next = match (near.as_mut(), far.as_mut()) {
                (Some((n, lo, hi)), far_opt) => {
                    if d <= *hi {
                        *lo = lo.min(d);
                        *hi = hi.max(d);
                        *n
                    } else {
                        match far_opt {
                            Some((f, lo, hi)) => {
                                *lo = lo.min(d);
                                *hi = hi.max(d);
                                *f
                            }
                            None => {
                                let node = self.nodes.len();
                                self.nodes.push(VpNode::Leaf(vec![id]));
                                let VpNode::Inner { far, .. } = &mut self.nodes[cur] else {
                                    unreachable!()
                                };
                                *far = Some((node, d, d));
                                return;
                            }
                        }
                    }
                }
                (None, Some((f, lo, hi))) => {
                    *lo = lo.min(d);
                    *hi = hi.max(d);
                    *f
                }
                (None, None) => {
                    let node = self.nodes.len();
                    self.nodes.push(VpNode::Leaf(vec![id]));
                    let VpNode::Inner { near, .. } = &mut self.nodes[cur] else {
                        unreachable!()
                    };
                    *near = Some((node, d, d));
                    return;
                }
            };
            cur = next;
        }
    }

    /// Rebuilds an overfull leaf into a subtree in place. The rebuilt
    /// subtree's root node is moved into the leaf's slot so no parent link
    /// changes; the vacated slot becomes an unreachable empty leaf that a
    /// later [`DynamicIndex::compact`] discards.
    fn split_leaf(&mut self, leaf: usize) {
        let VpNode::Leaf(pts) = &mut self.nodes[leaf] else {
            unreachable!()
        };
        let mut ids = std::mem::take(pts);
        let sub = self.build_rec(&mut ids).expect("split leaf is never empty");
        self.nodes[leaf] = std::mem::replace(&mut self.nodes[sub], VpNode::Leaf(Vec::new()));
    }

    /// Checks the distance-interval invariant over the whole tree (test
    /// support): every point of each child subtree lies inside the
    /// `(min, max)` interval its parent stores for that child, and every
    /// live pool point is linked exactly once.
    #[doc(hidden)]
    pub fn check_invariants(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        let link = |id: PointId, seen: &mut std::collections::HashSet<PointId>| seen.insert(id);
        let Some(root) = self.root else {
            return self.pool.live() == 0;
        };
        let mut stack = vec![root];
        while let Some(i) = stack.pop() {
            match &self.nodes[i] {
                VpNode::Leaf(pts) => {
                    for &p in pts {
                        if !link(p, &mut seen) {
                            return false;
                        }
                    }
                }
                VpNode::Inner { vp, near, far } => {
                    if !link(*vp, &mut seen) {
                        return false;
                    }
                    for child in [near, far].into_iter().flatten() {
                        let (node, lo, hi) = *child;
                        let mut sub = vec![node];
                        while let Some(j) = sub.pop() {
                            match &self.nodes[j] {
                                VpNode::Leaf(pts) => {
                                    for &p in pts {
                                        let d = self
                                            .metric
                                            .dist(self.pool.point(*vp), self.pool.point(p));
                                        if d < lo - 1e-9 || d > hi + 1e-9 {
                                            return false;
                                        }
                                    }
                                }
                                VpNode::Inner { vp: v2, near, far } => {
                                    let d = self
                                        .metric
                                        .dist(self.pool.point(*vp), self.pool.point(*v2));
                                    if d < lo - 1e-9 || d > hi + 1e-9 {
                                        return false;
                                    }
                                    sub.extend([near, far].into_iter().flatten().map(|c| c.0));
                                }
                            }
                        }
                        stack.push(node);
                    }
                }
            }
        }
        (0..self.pool.total())
            .filter(|&id| self.pool.is_alive(id))
            .all(|id| seen.contains(&id))
    }
}

impl<M: Metric> TreeSubstrate<M> for VpTree<M> {
    fn metric(&self) -> &M {
        &self.metric
    }

    fn coords(&self, id: PointId) -> &[f64] {
        self.pool.point(id)
    }

    fn is_emittable(&self, id: PointId) -> bool {
        self.pool.is_alive(id)
    }

    fn seed(&self, sink: &mut ExpandSink<'_, M, Self>) {
        if let Some(root) = self.root {
            sink.child(root, 0.0, f64::NAN);
        }
    }

    fn expand(&self, id: usize, _d_pivot: f64, sink: &mut ExpandSink<'_, M, Self>) {
        match &self.nodes[id] {
            VpNode::Leaf(pts) => {
                for &p in pts {
                    sink.point(p);
                }
            }
            VpNode::Inner { vp, near, far } => {
                // One evaluation serves the vantage point's own emission and
                // both children's annulus bounds, so the abandonment slack
                // is the larger of the two outer radii.
                let reach = [near, far]
                    .into_iter()
                    .flatten()
                    .fold(0.0f64, |r, c| r.max(c.2));
                if let Some(d) = sink.pivot(*vp, reach) {
                    sink.point_at(*vp, d);
                    for child in [near, far].into_iter().flatten() {
                        let (node, lo, hi) = *child;
                        sink.child(node, (d - hi).max(lo - d).max(0.0), d);
                    }
                }
            }
        }
    }
}

impl<M: Metric> KnnIndex<M> for VpTree<M> {
    fn num_points(&self) -> usize {
        self.pool.live()
    }

    fn has_point(&self, id: PointId) -> bool {
        self.pool.is_alive(id)
    }

    fn dim(&self) -> usize {
        self.pool.dim()
    }

    fn point(&self, id: PointId) -> &[f64] {
        self.pool.point(id)
    }

    fn metric(&self) -> &M {
        &self.metric
    }

    fn name(&self) -> &'static str {
        "vp-tree"
    }

    fn base_rows(&self) -> Option<&Dataset> {
        self.pool.contiguous_base()
    }

    fn cursor<'a>(&'a self, q: &'a [f64], exclude: Option<PointId>) -> Box<dyn NnCursor + 'a> {
        traversal::tree_cursor(self, q, exclude)
    }

    fn cursor_with<'a>(
        &'a self,
        q: &'a [f64],
        exclude: Option<PointId>,
        scratch: &'a mut CursorScratch,
    ) -> Box<dyn NnCursor + 'a> {
        traversal::tree_cursor_with(self, q, exclude, scratch)
    }

    fn cursor_bounded<'a>(
        &'a self,
        q: &'a [f64],
        exclude: Option<PointId>,
        limit: usize,
        scratch: &'a mut CursorScratch,
    ) -> Box<dyn NnCursor + 'a> {
        traversal::tree_cursor_bounded(self, q, exclude, limit, scratch)
    }
}

impl<M: Metric> DynamicIndex<M> for VpTree<M> {
    fn insert(&mut self, point: &[f64]) -> Result<PointId, CoreError> {
        let id = self.pool.insert(point)?;
        self.attach(id);
        Ok(id)
    }

    fn remove(&mut self, id: PointId) -> bool {
        let removed = self.pool.remove(id);
        self.stale += usize::from(removed);
        removed
    }

    fn compact(&mut self) {
        self.nodes.clear();
        self.root = None;
        let mut ids: Vec<PointId> = self.pool.iter_live().map(|(id, _)| id).collect();
        self.root = self.build_rec(&mut ids);
        self.stale = 0;
    }

    fn needs_compaction(&self) -> bool {
        self.policy.recommends_counts(self.stale, self.pool.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknn_core::{BruteForce, Euclidean, Manhattan, SearchStats};

    fn random_dataset(n: usize, dim: usize, seed: u64) -> Arc<Dataset> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| next() * 10.0 - 5.0).collect())
            .collect();
        Dataset::from_rows(&rows).unwrap().into_shared()
    }

    #[test]
    fn cursor_is_complete_and_ordered() {
        let ds = random_dataset(257, 3, 7);
        let tree = VpTree::build(ds.clone(), Euclidean);
        let q = ds.point(0).to_vec();
        let mut cur = tree.cursor(&q, None);
        let got: Vec<_> = std::iter::from_fn(|| cur.next()).collect();
        assert_eq!(got.len(), 257);
        let mut seen = std::collections::HashSet::new();
        let mut prev = 0.0;
        for n in &got {
            assert!(seen.insert(n.id), "no duplicates");
            assert!(n.dist >= prev - 1e-12);
            prev = n.dist;
        }
    }

    #[test]
    fn knn_matches_brute_force_in_l1() {
        let ds = random_dataset(300, 5, 8);
        let tree = VpTree::build(ds.clone(), Manhattan);
        let bf = BruteForce::new(ds.clone(), Manhattan);
        for qi in [3usize, 80, 299] {
            let mut st = SearchStats::new();
            let got = tree.knn(ds.point(qi), 7, Some(qi), &mut st);
            let want = bf.knn(ds.point(qi), 7, Some(qi), &mut SearchStats::new());
            for (g, w) in got.iter().zip(&want) {
                assert!((g.dist - w.dist).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn small_and_degenerate_inputs() {
        let ds = Dataset::from_rows(&[vec![0.0]]).unwrap().into_shared();
        let tree = VpTree::build(ds, Euclidean);
        let mut st = SearchStats::new();
        assert_eq!(tree.knn(&[0.5], 1, None, &mut st).len(), 1);

        // All-identical points must still stream completely.
        let ds = Dataset::from_rows(&vec![vec![2.0, 2.0]; 40])
            .unwrap()
            .into_shared();
        let tree = VpTree::build(ds, Euclidean);
        let mut cur = tree.cursor(&[0.0, 0.0], None);
        assert_eq!(std::iter::from_fn(|| cur.next()).count(), 40);
    }

    #[test]
    fn dynamic_inserts_keep_tree_exact() {
        let ds = random_dataset(120, 3, 11);
        let mut tree = VpTree::build(ds.clone(), Euclidean);
        let mut state = 99u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut rows: Vec<Vec<f64>> = (0..120).map(|i| ds.point(i).to_vec()).collect();
        for _ in 0..60 {
            let p: Vec<f64> = (0..3).map(|_| next() * 10.0 - 5.0).collect();
            tree.insert(&p).unwrap();
            rows.push(p);
        }
        assert!(tree.check_invariants());
        let all = Dataset::from_rows(&rows).unwrap().into_shared();
        let bf = BruteForce::new(all.clone(), Euclidean);
        for qi in [0usize, 119, 120, 179] {
            let mut st = SearchStats::new();
            let got = tree.knn(all.point(qi), 9, Some(qi), &mut st);
            let want = bf.knn(all.point(qi), 9, Some(qi), &mut SearchStats::new());
            assert_eq!(
                got.iter().map(|n| n.dist.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|n| n.dist.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn remove_hides_points_and_compact_preserves_results() {
        let ds = random_dataset(200, 4, 13);
        let mut tree = VpTree::build(ds.clone(), Euclidean);
        for _ in 0..30 {
            tree.insert(&[9.0, 9.0, 9.0, 9.0]).unwrap();
        }
        for id in (0..230).step_by(3) {
            assert!(tree.remove(id));
        }
        let q = ds.point(1).to_vec();
        let want: Vec<_> = {
            let mut before = tree.cursor(&q, None);
            std::iter::from_fn(|| before.next())
                .map(|n| (n.id, n.dist.to_bits()))
                .collect()
        };
        assert_eq!(want.len(), tree.num_points());
        assert!(want.iter().all(|&(id, _)| id % 3 != 0));

        tree.compact();
        assert!(tree.check_invariants());
        let mut after = tree.cursor(&q, None);
        let got: Vec<_> = std::iter::from_fn(|| after.next())
            .map(|n| (n.id, n.dist.to_bits()))
            .collect();
        assert_eq!(want, got, "compaction must not change the stream");
        // Historical coordinates stay addressable after compaction.
        assert_eq!(tree.point(0), ds.point(0));
    }

    #[test]
    fn rebuild_policy_drives_needs_compaction() {
        let ds = random_dataset(300, 2, 17);
        let mut tree = VpTree::build(ds, Euclidean);
        assert!(!tree.needs_compaction());
        for id in 0..100 {
            tree.remove(id);
        }
        assert!(tree.needs_compaction(), "100/300 dead exceeds the policy");
        tree.compact();
        assert!(!tree.needs_compaction(), "compaction resets the counter");
    }
}
