//! Growable point storage backing dynamic indexes.
//!
//! A [`PointPool`] starts from a shared immutable [`Dataset`] (no copy) and
//! supports appending new points and tombstoning removed ones. Dynamic
//! indexes (linear scan, cover tree, vp-tree, r-tree) keep removed points
//! for routing but filter them from results, matching the paper's claim
//! that RDT supports "dynamic insertion and deletion of data points" with
//! no costs beyond those of the forward index (§4).
//!
//! Appended points live in a [`PaddedRows`] segment with the **same**
//! 32-byte-aligned, zero-padded layout as the base dataset, so scans can
//! stream both segments through the SIMD tile kernel
//! ([`rknn_core::Metric::dist_tile`]) — the tile fast path survives churn
//! instead of degrading to per-point evaluation (see
//! [`PointPool::segments`]).

use rknn_core::{CoreError, Dataset, PaddedRows, PointId};
use std::sync::Arc;

/// A base dataset plus appended points and liveness flags.
#[derive(Debug, Clone)]
pub struct PointPool {
    base: Arc<Dataset>,
    dim: usize,
    /// Appended points in the same padded aligned layout as `base`.
    extra: PaddedRows,
    /// Tombstones for removed ids; indexed lazily (empty = all alive).
    dead: Vec<bool>,
    live_count: usize,
}

/// One contiguous padded-row segment of a pool, tile-kernel ready.
///
/// Row `i` of the segment holds point `first_id + i`; rows may include
/// tombstoned points, which scans must skip via [`PointPool::is_alive`].
#[derive(Debug, Clone, Copy)]
pub struct PoolSegment<'a> {
    /// Pool id of the segment's first row.
    pub first_id: PointId,
    /// Number of rows in the segment.
    pub len: usize,
    /// The padded row-major buffer (`len * stride` coordinates, 32-byte
    /// aligned) — the layout [`rknn_core::Metric::dist_tile`] consumes.
    pub padded: &'a [f64],
}

impl PointPool {
    /// Wraps a shared dataset.
    pub fn new(base: Arc<Dataset>) -> Self {
        let dim = base.dim();
        let live_count = base.len();
        PointPool {
            base,
            dim,
            extra: PaddedRows::new(dim),
            dead: Vec::new(),
            live_count,
        }
    }

    /// Dimensionality of all points.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total ids ever allocated (live + tombstoned).
    #[inline]
    pub fn total(&self) -> usize {
        self.base.len() + self.extra.len()
    }

    /// Number of live points.
    #[inline]
    pub fn live(&self) -> usize {
        self.live_count
    }

    /// Number of tombstoned points still occupying storage.
    #[inline]
    pub fn dead_count(&self) -> usize {
        self.total() - self.live_count
    }

    /// Fraction of allocated ids that are tombstoned (0 for an empty pool).
    #[inline]
    pub fn dead_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.dead_count() as f64 / total as f64
        }
    }

    /// Whether the id refers to a live point.
    #[inline]
    pub fn is_alive(&self, id: PointId) -> bool {
        id < self.total() && !self.dead.get(id).copied().unwrap_or(false)
    }

    /// Coordinates of point `id` (live or tombstoned).
    ///
    /// # Panics
    ///
    /// Panics if `id` was never allocated.
    #[inline]
    pub fn point(&self, id: PointId) -> &[f64] {
        let n0 = self.base.len();
        if id < n0 {
            self.base.point(id)
        } else {
            self.extra.point(id - n0)
        }
    }

    /// Appends a new point, returning its id.
    pub fn insert(&mut self, p: &[f64]) -> Result<PointId, CoreError> {
        if p.len() != self.dim {
            return Err(CoreError::DimensionMismatch {
                expected: self.dim,
                got: p.len(),
            });
        }
        let id = self.total();
        for (j, v) in p.iter().enumerate() {
            if !v.is_finite() {
                return Err(CoreError::NonFinite {
                    point: id,
                    coordinate: j,
                });
            }
        }
        self.extra.push(p);
        self.live_count += 1;
        debug_assert!(self.dead.len() <= id);
        Ok(id)
    }

    /// Tombstones a point; returns whether it was alive.
    pub fn remove(&mut self, id: PointId) -> bool {
        if !self.is_alive(id) {
            return false;
        }
        if self.dead.len() < self.total() {
            self.dead.resize(self.total(), false);
        }
        self.dead[id] = true;
        self.live_count -= 1;
        true
    }

    /// Iterates over `(id, coordinates)` of live points.
    pub fn iter_live(&self) -> impl Iterator<Item = (PointId, &[f64])> {
        (0..self.total())
            .filter(|&id| self.is_alive(id))
            .map(move |id| (id, self.point(id)))
    }

    /// The shared base dataset this pool was created from.
    pub fn base(&self) -> &Arc<Dataset> {
        &self.base
    }

    /// The row stride shared by both segments (`dim` rounded up to a
    /// multiple of four).
    #[inline]
    pub fn stride(&self) -> usize {
        self.extra.stride()
    }

    /// The pool's storage as contiguous padded-row segments (base dataset
    /// first, then appended points), each streamable through the tile
    /// kernel at the common [`PointPool::stride`]. Empty segments are
    /// omitted. Rows cover **all** allocated ids in order; tombstoned rows
    /// are included and must be skipped via [`PointPool::is_alive`].
    pub fn segments(&self) -> impl Iterator<Item = PoolSegment<'_>> {
        let base = PoolSegment {
            first_id: 0,
            len: self.base.len(),
            padded: self.base.padded_flat(),
        };
        let extra = PoolSegment {
            first_id: self.base.len(),
            len: self.extra.len(),
            padded: self.extra.padded_flat(),
        };
        [base, extra].into_iter().filter(|s| s.len > 0)
    }

    /// The f32 row stride shared by both segments (`dim` rounded up to a
    /// multiple of eight); see [`rknn_core::F32Rows::stride32`].
    #[inline]
    pub fn stride32(&self) -> usize {
        self.extra.stride32()
    }

    /// [`PointPool::segments`] paired with each segment's f32 quantization
    /// (rows of [`PointPool::stride32`] coordinates) — the inputs of the
    /// fast-f32 tile path ([`rknn_core::Metric::dist_tile_f32`]). The base
    /// dataset's mirror is built lazily on first call and cached
    /// ([`rknn_core::Dataset::f32_rows`]); the appended segment's shadow is
    /// maintained on every insert. Exact-tier scans that never call this
    /// never materialize the base mirror.
    pub fn segments_f32(&self) -> impl Iterator<Item = (PoolSegment<'_>, &'_ [f32])> {
        let base = (
            PoolSegment {
                first_id: 0,
                len: self.base.len(),
                padded: self.base.padded_flat(),
            },
            self.base.f32_rows().padded_flat(),
        );
        let extra = (
            PoolSegment {
                first_id: self.base.len(),
                len: self.extra.len(),
                padded: self.extra.padded_flat(),
            },
            self.extra.padded_flat32(),
        );
        [base, extra].into_iter().filter(|(s, _)| s.len > 0)
    }

    /// The base dataset when it still *is* the live point set: no points
    /// appended, none tombstoned, ids `0..len` mapping identically. Scans
    /// over all points (ground truth, all-pairs passes) can then borrow the
    /// dataset wholesale; anything else goes through [`PointPool::segments`]
    /// or per-point iteration.
    pub fn contiguous_base(&self) -> Option<&Dataset> {
        (self.extra.is_empty() && self.live_count == self.base.len() && !self.base.is_empty())
            .then(|| self.base.as_ref())
    }
}

/// When a dynamic index should rebuild its routing structure over the live
/// points only ([`crate::DynamicIndex::compact`]).
///
/// Tombstoned points keep routing searches until compaction: they cost
/// traversal work (and tile-lane evaluations) but never appear in results.
/// The policy bounds that overhead: compaction is recommended once at
/// least `min_dead` points are tombstoned **and** they exceed
/// `max_dead_fraction` of all allocated ids. Point ids are stable across
/// compaction — only the structure is rebuilt, never the id mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebuildPolicy {
    /// Tombstone fraction above which rebuilding pays off.
    pub max_dead_fraction: f64,
    /// Minimum tombstone count before fractions matter (tiny pools churn
    /// harmlessly).
    pub min_dead: usize,
}

impl Default for RebuildPolicy {
    fn default() -> Self {
        RebuildPolicy {
            max_dead_fraction: 0.3,
            min_dead: 64,
        }
    }
}

impl RebuildPolicy {
    /// Whether the policy recommends compacting a pool in this state.
    pub fn recommends(&self, pool: &PointPool) -> bool {
        self.recommends_counts(pool.dead_count(), pool.total())
    }

    /// The raw threshold test on explicit counts. Substrates that unlink
    /// tombstones on compaction without forgetting them (the pool keeps
    /// every historical coordinate addressable) track their own stale
    /// count and consult the policy through this entry point.
    pub fn recommends_counts(&self, dead: usize, total: usize) -> bool {
        let fraction = if total == 0 {
            0.0
        } else {
            dead as f64 / total as f64
        };
        dead >= self.min_dead && fraction > self.max_dead_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> PointPool {
        let ds = Dataset::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]])
            .unwrap()
            .into_shared();
        PointPool::new(ds)
    }

    #[test]
    fn base_points_are_visible() {
        let p = pool();
        assert_eq!(p.total(), 2);
        assert_eq!(p.live(), 2);
        assert_eq!(p.point(1), &[1.0, 1.0]);
        assert!(p.is_alive(0));
        assert!(!p.is_alive(7));
    }

    #[test]
    fn insert_allocates_sequential_ids() {
        let mut p = pool();
        assert_eq!(p.insert(&[2.0, 2.0]).unwrap(), 2);
        assert_eq!(p.insert(&[3.0, 3.0]).unwrap(), 3);
        assert_eq!(p.point(3), &[3.0, 3.0]);
        assert_eq!(p.live(), 4);
        assert!(p.insert(&[1.0]).is_err());
        assert!(p.insert(&[f64::NAN, 0.0]).is_err());
    }

    #[test]
    fn insert_errors_are_descriptive_and_mutate_nothing() {
        let mut p = pool();
        assert_eq!(
            p.insert(&[1.0]).unwrap_err(),
            CoreError::DimensionMismatch {
                expected: 2,
                got: 1
            }
        );
        assert_eq!(
            p.insert(&[0.0, f64::INFINITY]).unwrap_err(),
            CoreError::NonFinite {
                point: 2,
                coordinate: 1
            }
        );
        // Failed inserts allocate no id and change no counts.
        assert_eq!(p.total(), 2);
        assert_eq!(p.live(), 2);
        assert_eq!(p.insert(&[9.0, 9.0]).unwrap(), 2);
    }

    #[test]
    fn remove_tombstones_but_keeps_coordinates() {
        let mut p = pool();
        assert!(p.remove(0));
        assert!(!p.remove(0), "double remove is a no-op");
        assert_eq!(p.live(), 1);
        assert_eq!(p.dead_count(), 1);
        assert_eq!(p.point(0), &[0.0, 0.0], "coordinates remain for routing");
        let live: Vec<_> = p.iter_live().map(|(id, _)| id).collect();
        assert_eq!(live, vec![1]);
    }

    #[test]
    fn remove_then_insert_mixes() {
        let mut p = pool();
        p.remove(1);
        let id = p.insert(&[5.0, 5.0]).unwrap();
        assert_eq!(id, 2);
        let live: Vec<_> = p.iter_live().map(|(id, _)| id).collect();
        assert_eq!(live, vec![0, 2]);
    }

    #[test]
    fn contiguous_base_is_none_after_any_churn() {
        let mut p = pool();
        assert!(p.contiguous_base().is_some());
        // A tombstone breaks identity mapping.
        p.remove(0);
        assert!(p.contiguous_base().is_none());

        // An appended point breaks it too, even with all base points live.
        let mut p = pool();
        p.insert(&[2.0, 2.0]).unwrap();
        assert!(p.contiguous_base().is_none());

        // And an empty base never qualifies.
        let empty = PointPool::new(Dataset::from_flat(2, vec![]).unwrap().into_shared());
        assert!(empty.contiguous_base().is_none());
    }

    #[test]
    fn segments_cover_all_ids_in_padded_layout() {
        let mut p = pool();
        p.insert(&[2.0, 2.0]).unwrap();
        p.insert(&[3.0, 4.0]).unwrap();
        p.remove(1);
        let segs: Vec<_> = p.segments().collect();
        assert_eq!(segs.len(), 2);
        assert_eq!((segs[0].first_id, segs[0].len), (0, 2));
        assert_eq!((segs[1].first_id, segs[1].len), (2, 2));
        let stride = p.stride();
        assert_eq!(stride, p.base().stride());
        for seg in &segs {
            assert_eq!(seg.padded.len(), seg.len * stride);
            for i in 0..seg.len {
                let row = &seg.padded[i * stride..i * stride + p.dim()];
                assert_eq!(row, p.point(seg.first_id + i), "segment rows match ids");
                assert!(seg.padded[i * stride + p.dim()..(i + 1) * stride]
                    .iter()
                    .all(|&v| v == 0.0));
            }
        }
        // A pool with no appended points exposes only the base segment.
        assert_eq!(pool().segments().count(), 1);
    }

    #[test]
    fn f32_segments_mirror_the_f64_segments() {
        let mut p = pool();
        p.insert(&[2.5, 2.0]).unwrap();
        p.insert(&[1.0 / 3.0, 4.0]).unwrap();
        p.remove(1);
        let stride32 = p.stride32();
        assert_eq!(stride32, 8, "dim 2 pads to one 8-lane f32 row");
        let segs: Vec<_> = p.segments_f32().collect();
        assert_eq!(segs.len(), 2);
        for (seg, rows32) in &segs {
            assert_eq!(rows32.len(), seg.len * stride32);
            for i in 0..seg.len {
                let row32 = &rows32[i * stride32..(i + 1) * stride32];
                let want = p.point(seg.first_id + i);
                for (j, &v) in want.iter().enumerate() {
                    assert_eq!(row32[j].to_bits(), (v as f32).to_bits());
                }
                assert!(row32[p.dim()..].iter().all(|&v| v == 0.0));
            }
        }
        // Both segment views agree on ids and lengths.
        let f64s: Vec<_> = p.segments().map(|s| (s.first_id, s.len)).collect();
        let f32s: Vec<_> = segs.iter().map(|(s, _)| (s.first_id, s.len)).collect();
        assert_eq!(f64s, f32s);
    }

    #[test]
    fn rebuild_policy_thresholds() {
        let ds = Dataset::from_rows(&(0..10).map(|i| vec![i as f64]).collect::<Vec<_>>())
            .unwrap()
            .into_shared();
        let mut p = PointPool::new(ds);
        let policy = RebuildPolicy {
            max_dead_fraction: 0.3,
            min_dead: 2,
        };
        assert!(!policy.recommends(&p));
        p.remove(0);
        p.remove(1);
        p.remove(2);
        assert_eq!(p.dead_count(), 3);
        assert!(!policy.recommends(&p), "0.3 is not > 0.3");
        p.remove(3);
        assert!(policy.recommends(&p));
        // min_dead gates tiny pools regardless of fraction.
        let strict = RebuildPolicy {
            max_dead_fraction: 0.0,
            min_dead: 100,
        };
        assert!(!strict.recommends(&p));
    }
}
