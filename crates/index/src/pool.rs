//! Growable point storage backing dynamic indexes.
//!
//! A [`PointPool`] starts from a shared immutable [`Dataset`] (no copy) and
//! supports appending new points and tombstoning removed ones. Dynamic
//! indexes (linear scan, cover tree) keep removed points for routing but
//! filter them from results, matching the paper's claim that RDT supports
//! "dynamic insertion and deletion of data points" with no costs beyond
//! those of the forward index (§4).

use rknn_core::{CoreError, Dataset, PointId};
use std::sync::Arc;

/// A base dataset plus appended points and liveness flags.
#[derive(Debug, Clone)]
pub struct PointPool {
    base: Arc<Dataset>,
    dim: usize,
    extra: Vec<f64>,
    /// Tombstones for removed ids; indexed lazily (empty = all alive).
    dead: Vec<bool>,
    live_count: usize,
}

impl PointPool {
    /// Wraps a shared dataset.
    pub fn new(base: Arc<Dataset>) -> Self {
        let dim = base.dim();
        let live_count = base.len();
        PointPool {
            base,
            dim,
            extra: Vec::new(),
            dead: Vec::new(),
            live_count,
        }
    }

    /// Dimensionality of all points.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total ids ever allocated (live + tombstoned).
    #[inline]
    pub fn total(&self) -> usize {
        self.base.len() + self.extra.len() / self.dim
    }

    /// Number of live points.
    #[inline]
    pub fn live(&self) -> usize {
        self.live_count
    }

    /// Whether the id refers to a live point.
    #[inline]
    pub fn is_alive(&self, id: PointId) -> bool {
        id < self.total() && !self.dead.get(id).copied().unwrap_or(false)
    }

    /// Coordinates of point `id` (live or tombstoned).
    ///
    /// # Panics
    ///
    /// Panics if `id` was never allocated.
    #[inline]
    pub fn point(&self, id: PointId) -> &[f64] {
        let n0 = self.base.len();
        if id < n0 {
            self.base.point(id)
        } else {
            let off = (id - n0) * self.dim;
            &self.extra[off..off + self.dim]
        }
    }

    /// Appends a new point, returning its id.
    pub fn insert(&mut self, p: &[f64]) -> Result<PointId, CoreError> {
        if p.len() != self.dim {
            return Err(CoreError::DimensionMismatch {
                expected: self.dim,
                got: p.len(),
            });
        }
        let id = self.total();
        for (j, v) in p.iter().enumerate() {
            if !v.is_finite() {
                return Err(CoreError::NonFinite {
                    point: id,
                    coordinate: j,
                });
            }
        }
        self.extra.extend_from_slice(p);
        self.live_count += 1;
        debug_assert!(self.dead.len() <= id);
        Ok(id)
    }

    /// Tombstones a point; returns whether it was alive.
    pub fn remove(&mut self, id: PointId) -> bool {
        if !self.is_alive(id) {
            return false;
        }
        if self.dead.len() < self.total() {
            self.dead.resize(self.total(), false);
        }
        self.dead[id] = true;
        self.live_count -= 1;
        true
    }

    /// Iterates over `(id, coordinates)` of live points.
    pub fn iter_live(&self) -> impl Iterator<Item = (PointId, &[f64])> {
        (0..self.total())
            .filter(|&id| self.is_alive(id))
            .map(move |id| (id, self.point(id)))
    }

    /// The shared base dataset this pool was created from.
    pub fn base(&self) -> &Arc<Dataset> {
        &self.base
    }

    /// The base dataset when it still *is* the live point set: no points
    /// appended, none tombstoned, ids `0..len` mapping identically. Scans
    /// can then stream the dataset's padded contiguous rows through the
    /// SIMD tile kernel instead of chasing ids; anything else falls back to
    /// per-point iteration.
    pub fn contiguous_base(&self) -> Option<&Dataset> {
        (self.extra.is_empty() && self.live_count == self.base.len() && !self.base.is_empty())
            .then(|| self.base.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> PointPool {
        let ds = Dataset::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]])
            .unwrap()
            .into_shared();
        PointPool::new(ds)
    }

    #[test]
    fn base_points_are_visible() {
        let p = pool();
        assert_eq!(p.total(), 2);
        assert_eq!(p.live(), 2);
        assert_eq!(p.point(1), &[1.0, 1.0]);
        assert!(p.is_alive(0));
        assert!(!p.is_alive(7));
    }

    #[test]
    fn insert_allocates_sequential_ids() {
        let mut p = pool();
        assert_eq!(p.insert(&[2.0, 2.0]).unwrap(), 2);
        assert_eq!(p.insert(&[3.0, 3.0]).unwrap(), 3);
        assert_eq!(p.point(3), &[3.0, 3.0]);
        assert_eq!(p.live(), 4);
        assert!(p.insert(&[1.0]).is_err());
        assert!(p.insert(&[f64::NAN, 0.0]).is_err());
    }

    #[test]
    fn remove_tombstones_but_keeps_coordinates() {
        let mut p = pool();
        assert!(p.remove(0));
        assert!(!p.remove(0), "double remove is a no-op");
        assert_eq!(p.live(), 1);
        assert_eq!(p.point(0), &[0.0, 0.0], "coordinates remain for routing");
        let live: Vec<_> = p.iter_live().map(|(id, _)| id).collect();
        assert_eq!(live, vec![1]);
    }

    #[test]
    fn remove_then_insert_mixes() {
        let mut p = pool();
        p.remove(1);
        let id = p.insert(&[5.0, 5.0]).unwrap();
        assert_eq!(id, 2);
        let live: Vec<_> = p.iter_live().map(|(id, _)| id).collect();
        assert_eq!(live, vec![0, 2]);
    }
}
