//! The generic best-first traversal core shared by every tree substrate.
//!
//! The five tree indexes of this crate (cover tree, VP-tree, ball tree,
//! M-tree, R-tree) all answer incremental NN queries the same way: pop the
//! entry with the smallest key from a [`rknn_core::bestfirst::BestFirst`]
//! queue, emit it if it is
//! a point, expand it into child lower bounds and candidate points if it is
//! a node. Only the *expansion step* differs between them. This module
//! factors the shared loop into one [`TreeCursor`] driven by a per-substrate
//! [`TreeSubstrate`] implementation, so that
//!
//! * every metric evaluation, node visit and heap push is counted in one
//!   place ([`SearchStats`] accounting is uniform by construction);
//! * the traversal queue and the bounded-mode frontier live in a caller-owned
//!   [`TreeScratch`] ([`rknn_core::CursorScratch`]`::tree`), so batch drivers
//!   amortize both heaps across queries on **any** substrate;
//! * bounded cursors ([`crate::KnnIndex::cursor_bounded`]) prune on every
//!   substrate: candidate distances are evaluated through
//!   [`Metric::dist_lt`] against the current *emission frontier* — the
//!   max-heap of the `limit` smallest `(distance, id)` keys queued so far —
//!   and subtrees whose lower bound exceeds the frontier threshold are
//!   dropped without being pushed;
//! * candidate points emitted by an expansion are batched (their padded
//!   coordinates gathered into the scratch tile) and evaluated by one
//!   [`Metric::dist_tile`] kernel call per batch — every substrate's leaf
//!   scan runs at SIMD speed, with decisions, streams, and counters
//!   byte-identical to per-point evaluation;
//! * every future hot-path optimization of the loop benefits all substrates
//!   at once.
//!
//! The traversal itself is kernel-tier agnostic: every distance — pivot
//! checks, tile batches, lower bounds — flows through the one [`Metric`]
//! instance, so whichever tier that metric resolves to
//! ([`rknn_core::KernelTier`]) governs the whole cursor uniformly. Under a
//! fast tier the per-point and tile evaluations still agree bitwise
//! *within* the tier (fast kernels are zero-padding invariant), so pruning
//! decisions stay consistent with emitted distances; only cross-tier
//! comparisons are out of contract. Gathered candidate tiles remain f64
//! even under the fast-f32 tier — the f32 storage path is confined to
//! contiguous scans over pool segments, where halved memory traffic
//! actually pays.
//!
//! # Bounded-mode soundness
//!
//! With a drain bound of `limit`, the frontier holds the `limit` smallest
//! `(distance, id)` keys among all points pushed so far (emitted or still
//! queued). Once full, its maximum `τ` is a certificate: at least `limit`
//! points with key `≤ τ` are already guaranteed to be emitted before any
//! entry whose key exceeds `τ`, because queued points are never removed and
//! the queue pops in key order. A candidate point with key `> τ`, or a
//! subtree whose distance lower bound is `> τ.dist`, therefore cannot
//! contribute to the first `limit` emissions and may be discarded. `τ` only
//! tightens over time, so a discard can never be invalidated later; the
//! first `limit` emissions are *identical* to the unbounded stream's prefix
//! (pruning removes only entries the unbounded traversal would pop after
//! `limit` points have already been emitted).
//!
//! Distance evaluations against the frontier go through
//! [`Metric::dist_lt`] with bound `τ.dist.next_up()` (candidate points) or
//! `(τ.dist + reach).next_up()` (pivots whose children subtract up to
//! `reach` from the distance), so an accumulation abandons as soon as the
//! point — and every subtree bound derived from it — is provably beyond the
//! frontier. A completed evaluation carries the identical floating-point
//! value `dist` would produce, so emitted streams are bit-identical across
//! the bounded, scratch and boxed entry points.

use crate::traits::NnCursor;
use rknn_core::bestfirst::Popped;
use rknn_core::neighbor::MaxByDist;
use rknn_core::{CursorScratch, Metric, Neighbor, PointId, SearchStats, TreeScratch};
use std::borrow::BorrowMut;
use std::cmp::Ordering;
use std::marker::PhantomData;

/// A hierarchical index expressed as nodes that expand into candidate
/// points and covered child subtrees.
///
/// Implementations describe *structure only*: which points and subtrees a
/// node contains and how tight their covering bounds are. All metric
/// evaluations, threshold pruning, statistics, and queue management happen
/// inside the [`ExpandSink`] the generic [`TreeCursor`] passes in, so a
/// substrate cannot get the accounting or the stream contract wrong.
pub trait TreeSubstrate<M: Metric>: Send + Sync + Sized {
    /// The metric the index was built with.
    fn metric(&self) -> &M;

    /// Coordinates of a (live or tombstoned) point id.
    fn coords(&self, id: PointId) -> &[f64];

    /// Whether a point may be emitted (`false` for tombstoned points that
    /// still route the search).
    fn is_emittable(&self, _id: PointId) -> bool {
        true
    }

    /// Seeds the traversal by pushing the root subtree (if any) into the
    /// sink, exactly as [`TreeSubstrate::expand`] pushes children.
    fn seed(&self, sink: &mut ExpandSink<'_, M, Self>);

    /// Expands node `id` into the sink. `d_pivot` is the payload the node
    /// was queued with — the exact query–pivot distance for subtrees pushed
    /// via [`ExpandSink::pivot`] + [`ExpandSink::child`], or NaN for
    /// subtrees queued with a geometric bound only.
    fn expand(&self, id: usize, d_pivot: f64, sink: &mut ExpandSink<'_, M, Self>);
}

/// The receiving side of a node expansion: evaluates, prunes, counts, and
/// queues whatever the substrate describes.
pub struct ExpandSink<'c, M: Metric, S: TreeSubstrate<M>> {
    tree: &'c S,
    q: &'c [f64],
    exclude: Option<PointId>,
    /// `None` = unbounded stream; `Some(l)` = the caller drains at most `l`.
    limit: Option<usize>,
    scratch: &'c mut TreeScratch,
    stats: &'c mut SearchStats,
    _metric: PhantomData<M>,
}

/// Candidate points buffered per expansion before one gather-tile
/// evaluation ([`Metric::dist_tile`]) flushes them.
const POINT_TILE: usize = 64;

/// Below this many pending points a gather-tile gains nothing over the
/// per-point kernel; the flush takes the one-to-one path instead. Both
/// paths make bit-identical decisions, so the cutoff is pure tuning.
const MIN_POINT_TILE: usize = 8;

impl<'c, M: Metric, S: TreeSubstrate<M>> ExpandSink<'c, M, S> {
    /// The query coordinates (for substrates computing their own geometric
    /// bounds, e.g. R-tree box MINDIST).
    pub fn query(&self) -> &[f64] {
        self.q
    }

    /// The current frontier threshold: the largest of the `limit` smallest
    /// point keys queued so far, once `limit` points exist. `None` while
    /// unbounded or not yet full (no pruning possible).
    fn tau(&self) -> Option<Neighbor> {
        let l = self.limit?;
        if self.scratch.frontier.len() >= l {
            self.scratch.frontier.peek().map(|m| m.0)
        } else {
            None
        }
    }

    /// The `dist_under` bound derived from the frontier: just beyond `τ`
    /// (so exact ties on distance survive to the strict `(dist, id)` check
    /// in `push_point`), or +∞ when unbounded — which must still admit
    /// distances that overflow to +∞, or the completeness contract breaks
    /// on extreme coordinates.
    fn point_bound(&self) -> f64 {
        match self.tau() {
            Some(t) => t.dist.next_up(),
            None => f64::INFINITY,
        }
    }

    /// Queues a candidate point for evaluation against the frontier.
    /// Excluded and tombstoned points are skipped before any evaluation
    /// (and are not counted).
    ///
    /// Consecutive candidate points of one expansion are batched and
    /// evaluated by a single gather-tile kernel call
    /// (`ExpandSink::flush_points`); any interleaving sink operation that
    /// observes the frontier or the queue (pivots, children, known-distance
    /// points, the end of the expansion) flushes first, so the queue and
    /// frontier evolve exactly as in per-point evaluation.
    pub fn point(&mut self, id: PointId) {
        if Some(id) == self.exclude || !self.tree.is_emittable(id) {
            return;
        }
        self.scratch.tiles.ids.push(id);
        if self.scratch.tiles.ids.len() >= POINT_TILE {
            self.flush_points();
        }
    }

    /// Evaluates and queues the pending candidate points.
    ///
    /// The batch is evaluated at a *snapshot* of the frontier bound; the
    /// frontier only tightens while the batch commits, so a point the
    /// snapshot prunes (`d > τ_snapshot ≥ τ_commit`) would also be pruned
    /// by per-point evaluation, and an admitted point carries the
    /// bit-identical distance into the same strict `(dist, id)` frontier
    /// check `push_point` always applies. Decisions, queue contents,
    /// emitted streams and counters are therefore identical to the
    /// per-point path — the snapshot only trades a little extra coordinate
    /// work for blockwise SIMD evaluation.
    fn flush_points(&mut self) {
        let pending = self.scratch.tiles.ids.len();
        if pending == 0 {
            return;
        }
        let dim = self.q.len();
        if pending < MIN_POINT_TILE || dim == 0 {
            for i in 0..pending {
                let id = self.scratch.tiles.ids[i];
                self.stats.count_dist();
                let bound = self.point_bound();
                if let Some(d) = self
                    .tree
                    .metric()
                    .dist_under(self.q, self.tree.coords(id), bound)
                {
                    self.push_point(Neighbor::new(id, d));
                }
            }
            self.scratch.tiles.ids.clear();
            return;
        }
        let bound = self.point_bound();
        let tiles = &mut self.scratch.tiles;
        let stride = tiles.set_query(self.q);
        tiles.ensure_rows(dim, pending);
        for i in 0..pending {
            let coords = self.tree.coords(tiles.ids[i]);
            tiles.fill_row(i, coords);
        }
        tiles.bounds[..pending].fill(bound);
        let (qpad, rows, bounds, out) = (
            &tiles.qpad,
            &tiles.rows[..pending * stride],
            &tiles.bounds[..pending],
            &mut tiles.out[..pending],
        );
        self.tree
            .metric()
            .dist_tile(qpad, rows, stride, dim, bounds, out);
        for i in 0..pending {
            let id = self.scratch.tiles.ids[i];
            let d = self.scratch.tiles.out[i];
            self.stats.count_dist();
            if d.is_nan() {
                continue;
            }
            self.push_point(Neighbor::new(id, d));
        }
        self.scratch.tiles.ids.clear();
    }

    /// Queues a candidate point whose exact distance is already known
    /// (typically a pivot evaluated earlier via [`ExpandSink::pivot`]); no
    /// distance computation is charged.
    pub fn point_at(&mut self, id: PointId, d: f64) {
        self.flush_points();
        if Some(id) == self.exclude || !self.tree.is_emittable(id) {
            return;
        }
        self.push_point(Neighbor::new(id, d));
    }

    fn push_point(&mut self, n: Neighbor) {
        if let Some(t) = self.tau() {
            // Strict (dist, id) comparison: a key at or beyond the frontier
            // threshold cannot be among the first `limit` emissions.
            if n.cmp_by_dist(&t) != Ordering::Less {
                return;
            }
        }
        self.scratch.queue.push_point(n);
        self.stats.count_push();
        if let Some(l) = self.limit {
            self.scratch.frontier.push(MaxByDist(n));
            self.stats.count_push();
            if self.scratch.frontier.len() > l {
                self.scratch.frontier.pop();
            }
        }
    }

    /// Evaluates the exact query–pivot distance `d(q, pivot)`, counted as
    /// one distance computation, abandoning (and returning `None`) only
    /// when `d > τ.dist + reach` — i.e. when the pivot itself *and* every
    /// child bound of the form `d − outer` with `outer ≤ reach` are provably
    /// beyond the frontier. `reach` must be at least the largest covering
    /// radius the caller will subtract from the returned distance.
    pub fn pivot(&mut self, pivot: PointId, reach: f64) -> Option<f64> {
        self.flush_points();
        self.stats.count_dist();
        let bound = match self.tau() {
            Some(t) => (t.dist + reach).next_up(),
            None => f64::INFINITY,
        };
        self.tree
            .metric()
            .dist_under(self.q, self.tree.coords(pivot), bound)
    }

    /// Queues a child subtree with distance lower bound `lower` and payload
    /// `d_pivot` (handed back verbatim to [`TreeSubstrate::expand`]).
    /// Subtrees provably beyond the frontier are dropped.
    pub fn child(&mut self, node: usize, lower: f64, d_pivot: f64) {
        self.flush_points();
        if let Some(t) = self.tau() {
            if lower > t.dist {
                return;
            }
        }
        self.scratch.queue.push_node(node, lower, d_pivot);
        self.stats.count_push();
    }
}

/// The generic incremental NN cursor over any [`TreeSubstrate`].
///
/// Generic over scratch ownership: the boxed [`crate::KnnIndex::cursor`]
/// path owns a fresh [`TreeScratch`], while the
/// [`crate::KnnIndex::cursor_with`] / `cursor_bounded` paths borrow the
/// caller's, so batch drivers reuse the heap allocations across queries.
pub struct TreeCursor<'a, M: Metric, S: TreeSubstrate<M>, T: BorrowMut<TreeScratch>> {
    tree: &'a S,
    q: &'a [f64],
    exclude: Option<PointId>,
    limit: Option<usize>,
    scratch: T,
    stats: SearchStats,
    _metric: PhantomData<M>,
}

impl<'a, M: Metric, S: TreeSubstrate<M>, T: BorrowMut<TreeScratch>> TreeCursor<'a, M, S, T> {
    /// Opens a cursor over `tree` from `q`, resetting (but not
    /// reallocating) `scratch` and seeding the traversal. `limit` of
    /// `Some(l)` promises the caller drains at most `l` entries and enables
    /// frontier pruning.
    pub fn new(
        tree: &'a S,
        q: &'a [f64],
        exclude: Option<PointId>,
        limit: Option<usize>,
        mut scratch: T,
    ) -> Self {
        scratch.borrow_mut().reset();
        let mut cursor = TreeCursor {
            tree,
            q,
            exclude,
            limit,
            scratch,
            stats: SearchStats::new(),
            _metric: PhantomData,
        };
        // A zero bound means nothing may be drained: leave the queue empty.
        if limit != Some(0) {
            let mut sink = ExpandSink {
                tree: cursor.tree,
                q: cursor.q,
                exclude: cursor.exclude,
                limit: cursor.limit,
                scratch: cursor.scratch.borrow_mut(),
                stats: &mut cursor.stats,
                _metric: PhantomData,
            };
            tree.seed(&mut sink);
            sink.flush_points();
        }
        cursor
    }
}

impl<'a, M: Metric, S: TreeSubstrate<M>, T: BorrowMut<TreeScratch>> NnCursor
    for TreeCursor<'a, M, S, T>
{
    fn next(&mut self) -> Option<Neighbor> {
        loop {
            match self.scratch.borrow_mut().queue.pop()? {
                Popped::Point(n) => return Some(n),
                Popped::Node { id, payload, .. } => {
                    self.stats.count_node();
                    let mut sink = ExpandSink {
                        tree: self.tree,
                        q: self.q,
                        exclude: self.exclude,
                        limit: self.limit,
                        scratch: self.scratch.borrow_mut(),
                        stats: &mut self.stats,
                        _metric: PhantomData,
                    };
                    self.tree.expand(id, payload, &mut sink);
                    sink.flush_points();
                }
            }
        }
    }

    fn stats(&self) -> SearchStats {
        self.stats
    }
}

/// Boxed unbounded cursor with self-owned scratch — the
/// [`crate::KnnIndex::cursor`] implementation for tree substrates.
pub fn tree_cursor<'a, M, S>(
    tree: &'a S,
    q: &'a [f64],
    exclude: Option<PointId>,
) -> Box<dyn NnCursor + 'a>
where
    M: Metric + 'a,
    S: TreeSubstrate<M>,
{
    Box::new(TreeCursor::new(tree, q, exclude, None, TreeScratch::new()))
}

/// Unbounded cursor over caller-owned scratch — the
/// [`crate::KnnIndex::cursor_with`] implementation for tree substrates.
pub fn tree_cursor_with<'a, M, S>(
    tree: &'a S,
    q: &'a [f64],
    exclude: Option<PointId>,
    scratch: &'a mut CursorScratch,
) -> Box<dyn NnCursor + 'a>
where
    M: Metric + 'a,
    S: TreeSubstrate<M>,
{
    Box::new(TreeCursor::new(tree, q, exclude, None, &mut scratch.tree))
}

/// Frontier-pruned cursor over caller-owned scratch — the
/// [`crate::KnnIndex::cursor_bounded`] implementation for tree substrates.
pub fn tree_cursor_bounded<'a, M, S>(
    tree: &'a S,
    q: &'a [f64],
    exclude: Option<PointId>,
    limit: usize,
    scratch: &'a mut CursorScratch,
) -> Box<dyn NnCursor + 'a>
where
    M: Metric + 'a,
    S: TreeSubstrate<M>,
{
    Box::new(TreeCursor::new(
        tree,
        q,
        exclude,
        Some(limit),
        &mut scratch.tree,
    ))
}

#[cfg(test)]
mod tests {
    use crate::{BallTree, CoverTree, KnnIndex, MTree, RTree, VpTree};
    use rknn_core::{CursorScratch, Dataset, Euclidean, Neighbor, PointId};
    use std::sync::Arc;

    /// A tie-heavy dataset: coordinates on a coarse half-integer grid.
    fn grid(n: usize, dim: usize) -> Arc<Dataset> {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..dim)
                    .map(|j| ((i * 7 + j * 3) % 9) as f64 * 0.5)
                    .collect()
            })
            .collect();
        Dataset::from_rows(&rows).unwrap().into_shared()
    }

    fn drain(mut cur: Box<dyn crate::NnCursor + '_>, cap: usize) -> Vec<Neighbor> {
        let mut out = Vec::new();
        while out.len() < cap {
            match cur.next() {
                Some(n) => out.push(n),
                None => break,
            }
        }
        out
    }

    fn substrates(ds: &Arc<Dataset>) -> Vec<Box<dyn KnnIndex<Euclidean>>> {
        vec![
            Box::new(CoverTree::build(ds.clone(), Euclidean)),
            Box::new(VpTree::build(ds.clone(), Euclidean)),
            Box::new(BallTree::build(ds.clone(), Euclidean)),
            Box::new(MTree::build(ds.clone(), Euclidean)),
            Box::new(RTree::build(ds.clone(), Euclidean)),
        ]
    }

    #[test]
    fn bounded_stream_is_the_unbounded_prefix() {
        let ds = grid(120, 2);
        let q = ds.point(11).to_vec();
        let mut scratch = CursorScratch::new();
        for idx in substrates(&ds) {
            let full = drain(idx.cursor(&q, Some(11)), usize::MAX);
            assert_eq!(full.len(), 119, "{}", idx.name());
            for limit in [0usize, 1, 5, 40, 119, 500] {
                let bounded = drain(idx.cursor_bounded(&q, Some(11), limit, &mut scratch), limit);
                assert_eq!(
                    bounded.len(),
                    limit.min(119),
                    "{} limit={limit}",
                    idx.name()
                );
                for (i, (b, f)) in bounded.iter().zip(&full).enumerate() {
                    assert_eq!(b.id, f.id, "{} limit={limit} step={i}", idx.name());
                    assert_eq!(
                        b.dist.to_bits(),
                        f.dist.to_bits(),
                        "{} limit={limit} step={i}",
                        idx.name()
                    );
                }
            }
        }
    }

    #[test]
    fn scratch_cursor_matches_boxed_and_reuses_buffers() {
        let ds = grid(90, 3);
        let mut scratch = CursorScratch::new();
        for idx in substrates(&ds) {
            // Same scratch back to back across queries and substrates.
            for q_id in [0usize, 17, 89] {
                let q = ds.point(q_id).to_vec();
                let boxed = drain(idx.cursor(&q, Some(q_id)), usize::MAX);
                let scratched = drain(idx.cursor_with(&q, Some(q_id), &mut scratch), usize::MAX);
                assert_eq!(boxed.len(), scratched.len(), "{}", idx.name());
                for (b, s) in boxed.iter().zip(&scratched) {
                    assert_eq!(b.id, s.id, "{}", idx.name());
                    assert_eq!(b.dist.to_bits(), s.dist.to_bits(), "{}", idx.name());
                }
            }
        }
    }

    #[test]
    fn bounded_pruning_discards_hopeless_entries() {
        // Draining a bounded cursor *past* its limit exposes the pruning:
        // entries provably outside the first `limit` emissions were never
        // queued, so the stream runs dry long before n — while its first
        // `limit` entries are exactly the unbounded prefix (checked in
        // `bounded_stream_is_the_unbounded_prefix`).
        let ds = grid(400, 4);
        let q = ds.point(0).to_vec();
        let mut scratch = CursorScratch::new();
        for idx in substrates(&ds) {
            let over_drained = drain(
                idx.cursor_bounded(&q, Some(0), 10, &mut scratch),
                usize::MAX,
            );
            assert!(over_drained.len() >= 10, "{}", idx.name());
            assert!(
                over_drained.len() < 399,
                "{}: pruning should discard most of this tie-heavy set, kept {}",
                idx.name(),
                over_drained.len()
            );
        }
    }

    #[test]
    fn exclusion_is_uniform_across_entry_points() {
        let ds = grid(60, 2);
        let q = ds.point(7).to_vec();
        let mut scratch = CursorScratch::new();
        for idx in substrates(&ds) {
            for drained in [
                drain(idx.cursor(&q, Some(7)), usize::MAX),
                drain(idx.cursor_with(&q, Some(7), &mut scratch), usize::MAX),
                drain(idx.cursor_bounded(&q, Some(7), 60, &mut scratch), 60),
            ] {
                assert_eq!(drained.len(), 59, "{}", idx.name());
                assert!(drained.iter().all(|n| n.id != 7), "{}", idx.name());
                let mut seen = std::collections::HashSet::<PointId>::new();
                assert!(drained.iter().all(|n| seen.insert(n.id)), "{}", idx.name());
            }
        }
    }
}
