//! Forward nearest-neighbor index substrates.
//!
//! RDT (Algorithm 1 of the paper) "requires only that it be provided with
//! some auxiliary index structure that can efficiently process incremental
//! nearest neighbor queries" (§4). This crate provides that abstraction —
//! [`KnnIndex`] with an incremental [`NnCursor`] — and five substrates:
//!
//! * [`LinearScan`] — the "straightforward sequential database scan" used by
//!   the paper for MNIST and Imagenet (§7.1); exact and dimension-proof.
//! * [`CoverTree`] — the paper's primary substrate \[6\]; a simplified cover
//!   tree with cached subtree radii and best-first traversal.
//! * [`VpTree`] — a vantage-point tree; an extra metric substrate
//!   exercising RDT's "any index" claim.
//! * [`RTree`] — an STR-bulk-packed R-tree with best-first queries and
//!   quadratic-split inserts; the substrate of the RdNN-Tree and TPL
//!   baselines (Minkowski metrics only).
//! * [`MTree`] — an insertion-built metric tree with covering radii; the
//!   substrate of the MRkNNCoP baseline.
//! * [`BallTree`] — a statically built metric ball tree (pole splits);
//!   an extra any-metric substrate for agreement tests.
//!
//! All cursors emit neighbors in exact nondecreasing distance order and
//! count their work in [`rknn_core::SearchStats`]. The five tree substrates
//! share a single traversal engine ([`traversal::TreeCursor`] over
//! [`traversal::TreeSubstrate`]): each tree describes only how a node
//! expands into child lower bounds and candidate points, while the generic
//! cursor owns the best-first loop, uniform statistics, scratch reuse
//! ([`rknn_core::TreeScratch`]), and threshold-pruned distance evaluation
//! for bounded streams.

#![warn(missing_docs)]

pub mod ball_tree;
pub mod cover_tree;
pub mod linear;
pub mod mtree;
pub mod pool;
pub mod rtree;
pub mod traits;
pub mod traversal;
pub mod vp_tree;

pub use ball_tree::BallTree;
pub use cover_tree::CoverTree;
pub use linear::LinearScan;
pub use mtree::MTree;
pub use pool::{PointPool, PoolSegment, RebuildPolicy};
// The best-first queue moved to `rknn_core` so scratch buffers can own it;
// re-exported here for the historical path.
pub use rknn_core::bestfirst;
pub use rtree::{Mbr, RTree};
pub use traits::{DynamicIndex, KnnIndex, NnCursor};
pub use traversal::{TreeCursor, TreeSubstrate};
pub use vp_tree::VpTree;
