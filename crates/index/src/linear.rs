//! Sequential-scan index — the paper's fallback substrate.
//!
//! For MNIST and Imagenet the paper found sequential scan to outperform the
//! cover tree (§7.1): in very high dimensions, n straight-line distance
//! computations beat any tree traversal. The incremental cursor computes
//! all distances once at creation into a flat table, sorts it, and drains
//! it by position — contiguous memory instead of a pointer-heavy
//! `BinaryHeap`, and with [`KnnIndex::cursor_with`] the table lives in a
//! caller-owned buffer that batch drivers reuse across queries. Direct
//! `knn`/`range`/`range_count` traversals prune each candidate against the
//! current threshold, abandoning hopeless distance accumulations early.
//!
//! Every scan streams the pool's padded contiguous segments (the base
//! dataset, then the appended points — both in the same 32-byte-aligned
//! zero-padded layout, see [`crate::PointPool::segments`]) through the
//! SIMD tile kernel [`Metric::dist_tile`] in blocks of `TILE` rows, pruned
//! at a per-block snapshot of the current selection threshold and
//! committed row by row against the live threshold. Tombstoned rows are
//! evaluated with their block but skipped — uncounted — at commit, so
//! results and counters stay byte-identical to the per-point liveness
//! loop (still present as the test-pinned reference path), at hardware
//! vector speed even under insert/delete churn.

use crate::pool::PointPool;
use crate::traits::{DynamicIndex, KnnIndex, NnCursor};
use rknn_core::neighbor::MaxByDist;
use rknn_core::{
    CoreError, CursorScratch, Dataset, KnnHeap, Metric, Neighbor, PointId, SearchStats,
};
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Exact sequential-scan index over a [`PointPool`].
#[derive(Debug, Clone)]
pub struct LinearScan<M: Metric> {
    pool: PointPool,
    metric: M,
    use_tiles: bool,
}

impl<M: Metric> LinearScan<M> {
    /// Builds a scan index over a shared dataset.
    pub fn build(ds: Arc<Dataset>, metric: M) -> Self {
        LinearScan {
            pool: PointPool::new(ds),
            metric,
            use_tiles: true,
        }
    }

    /// Read access to the underlying pool.
    pub fn pool(&self) -> &PointPool {
        &self.pool
    }

    /// Forces every scan onto the per-point fallback (or back onto the
    /// tile path). Results, streams, and counters are byte-identical
    /// either way; equivalence tests flip this to prove it. Test support.
    #[doc(hidden)]
    pub fn set_tile_enabled(&mut self, enabled: bool) {
        self.use_tiles = enabled;
    }
}

/// Cursor draining a distance table already sorted ascending by
/// `(dist, id)`. Generic over the table's ownership so the same drain logic
/// serves both the self-owned boxed path and the caller-owned scratch path.
struct ScanCursor<B> {
    entries: B,
    pos: usize,
    stats: SearchStats,
}

impl<B: AsRef<[Neighbor]>> NnCursor for ScanCursor<B> {
    fn next(&mut self) -> Option<Neighbor> {
        let n = self.entries.as_ref().get(self.pos).copied();
        self.pos += usize::from(n.is_some());
        n
    }

    fn stats(&self) -> SearchStats {
        self.stats
    }
}

/// Rows per tile block in the sequential-scan fast paths: enough to
/// amortize the per-block kernel dispatch, small enough for the per-block
/// bounds/output arrays to live on the stack.
const TILE: usize = 64;

/// Zero-pads `q` to `stride` coordinates in a reusable buffer.
fn pad_query(q: &[f64], stride: usize, buf: &mut Vec<f64>) {
    buf.clear();
    buf.resize(stride, 0.0);
    buf[..q.len()].copy_from_slice(q);
}

/// The shared tile driver behind every sequential-scan fast path: streams
/// the pool's padded contiguous segments (base dataset, then appended
/// points) against `qpad` in `TILE`-row blocks through
/// [`Metric::dist_tile`]. Each block's (uniform) pruning bound is a
/// *snapshot* taken by `block_bound` just before evaluation; `commit` then
/// consumes every **live** row's output (`NaN` = pruned at the snapshot)
/// in id order — tombstoned rows ride along in their block but are skipped
/// uncounted, exactly as the per-point loop never visits them. Both
/// callbacks receive the caller's `state`, so commits can tighten the very
/// threshold the next block snapshots.
///
/// Why the snapshot changes no decision: the bound only tightens as rows
/// commit, so a row the snapshot prunes (`d` at or beyond the snapshot,
/// which is at or beyond every later threshold) would also be pruned by
/// per-point evaluation, and an admitted row carries the bit-identical
/// distance into the caller's own exact commit comparison against the
/// *live* threshold. Decisions, entries, and counters therefore match the
/// per-point liveness loop exactly; the snapshot only trades a little
/// extra coordinate work for blockwise SIMD evaluation.
///
/// When the metric asks for f32 tiles ([`Metric::wants_f32_tiles`], the
/// fast-f32 kernel tier), each block first streams the pool's f32
/// quantization ([`crate::PointPool::segments_f32`]) through
/// [`Metric::dist_tile_f32`] — half the memory traffic — and falls back to
/// the f64 tile only if the metric declines the layout. Distances then
/// carry f32 quantization error, so the per-point byte-identity above holds
/// per *tier*: the fast-f32 tier promises matching answer sets on tie-free
/// inputs rather than matching bits (see the kernel-tier contract in
/// `rknn-core`).
fn scan_tiles<M: Metric, St>(
    metric: &M,
    pool: &PointPool,
    qpad: &[f64],
    state: &mut St,
    mut block_bound: impl FnMut(&mut St) -> f64,
    mut commit: impl FnMut(&mut St, PointId, f64),
) {
    let (stride, dim) = (pool.stride(), pool.dim());
    let (stride32, want32) = (pool.stride32(), metric.wants_f32_tiles() && dim > 0);
    // The query's f32 quantization, padded like the rows; built only for
    // the fast-f32 tier (one small allocation per scan, dwarfed by the
    // halved row traffic it buys).
    let mut q32: Vec<f32> = Vec::new();
    if want32 {
        q32.resize(stride32, 0.0);
        for (j, &v) in qpad[..dim].iter().enumerate() {
            q32[j] = v as f32;
        }
    }
    let mut bounds = [0.0f64; TILE];
    let mut out = [0.0f64; TILE];
    let mut do_seg = |seg: crate::PoolSegment<'_>, rows32: Option<&[f32]>, state: &mut St| {
        let mut start = 0usize;
        while start < seg.len {
            let m = TILE.min(seg.len - start);
            bounds[..m].fill(block_bound(state));
            let evaluated32 = rows32.is_some_and(|r32| {
                metric.dist_tile_f32(
                    &q32,
                    &r32[start * stride32..(start + m) * stride32],
                    stride32,
                    dim,
                    &bounds[..m],
                    &mut out[..m],
                )
            });
            if !evaluated32 {
                metric.dist_tile(
                    qpad,
                    &seg.padded[start * stride..(start + m) * stride],
                    stride,
                    dim,
                    &bounds[..m],
                    &mut out[..m],
                );
            }
            for (i, &d) in out[..m].iter().enumerate() {
                let id = seg.first_id + start + i;
                if !pool.is_alive(id) {
                    continue;
                }
                commit(state, id, d);
            }
            start += m;
        }
    };
    if want32 {
        for (seg, rows32) in pool.segments_f32() {
            do_seg(seg, Some(rows32), state);
        }
    } else {
        for seg in pool.segments() {
            do_seg(seg, None, state);
        }
    }
}

impl<M: Metric> LinearScan<M> {
    /// Whether the tile fast paths apply: tiles enabled and `q` matching
    /// the pool's (nonzero) dimensionality. Churn does not disqualify the
    /// pool — both its segments share the padded aligned layout.
    #[inline]
    fn tile_eligible(&self, q: &[f64]) -> bool {
        self.use_tiles && self.pool.dim() > 0 && self.pool.dim() == q.len()
    }

    /// Fills `entries` with the sorted distance table for query `q`; the
    /// shared setup behind both cursor entry points. `qpad` is the reusable
    /// padded-query buffer for the tile fast path.
    fn fill_table(
        &self,
        q: &[f64],
        exclude: Option<PointId>,
        entries: &mut Vec<Neighbor>,
        qpad: &mut Vec<f64>,
    ) -> SearchStats {
        let mut stats = SearchStats::new();
        entries.clear();
        entries.reserve(self.pool.live());
        if self.tile_eligible(q) {
            // Tile fast path, unbounded (+∞ admits everything, including
            // distances that overflow to +∞). The excluded row is evaluated
            // with its block but skipped — uncounted — at commit, exactly
            // like the per-point loop.
            pad_query(q, self.pool.stride(), qpad);
            scan_tiles(
                &self.metric,
                &self.pool,
                qpad,
                &mut (&mut stats, &mut *entries),
                |_| f64::INFINITY,
                |st, id, d| {
                    if Some(id) == exclude {
                        return;
                    }
                    st.0.count_dist();
                    st.1.push(Neighbor::new(id, d));
                },
            );
        } else {
            for (id, p) in self.pool.iter_live() {
                if Some(id) == exclude {
                    continue;
                }
                stats.count_dist();
                entries.push(Neighbor::new(id, self.metric.dist(q, p)));
            }
        }
        stats.heap_pushes += entries.len() as u64;
        entries.sort_unstable_by(Neighbor::cmp_by_dist);
        stats
    }

    /// Fills `scratch.entries` with the `limit` nearest candidates only,
    /// selected through a bounded max-heap whose threshold prunes each
    /// candidate's distance accumulation. Yields exactly the prefix the
    /// full sorted table would: ties at the boundary keep the lowest ids,
    /// matching the `(dist, id)` sort order.
    fn fill_bounded(
        &self,
        q: &[f64],
        exclude: Option<PointId>,
        limit: usize,
        scratch: &mut CursorScratch,
    ) -> SearchStats {
        let mut stats = SearchStats::new();
        // Adopt the scratch buffer as heap storage (free for an emptied
        // vec) and hand it back afterwards, so steady-state batch queries
        // allocate nothing.
        let mut spare = std::mem::take(&mut scratch.heap);
        spare.clear();
        let mut heap: BinaryHeap<MaxByDist> = BinaryHeap::from(spare);
        // The selection threshold: the current `limit`-th best distance
        // once the heap is full, +∞ while it is filling (`dist_under`
        // semantics — a distance overflowing to +∞ must be admitted there,
        // or the bounded table loses entries the full sorted table keeps).
        let threshold = |heap: &BinaryHeap<MaxByDist>| {
            if heap.len() >= limit {
                heap.peek().map(|m| m.0.dist).unwrap_or(f64::NEG_INFINITY)
            } else {
                f64::INFINITY
            }
        };
        if self.tile_eligible(q) {
            // Tile fast path: blocks pruned at a snapshot of the selection
            // threshold, rows committed against the live one (see
            // `scan_tiles` for the equivalence argument).
            pad_query(q, self.pool.stride(), &mut scratch.tiles.qpad);
            scan_tiles(
                &self.metric,
                &self.pool,
                &scratch.tiles.qpad,
                &mut (&mut heap, &mut stats),
                |st| threshold(st.0),
                |st, id, d| {
                    if Some(id) == exclude {
                        return;
                    }
                    st.1.count_dist();
                    if d.is_nan() {
                        return;
                    }
                    let thr = threshold(st.0);
                    if thr == f64::INFINITY || d < thr {
                        st.0.push(MaxByDist(Neighbor::new(id, d)));
                        st.1.count_push();
                        if st.0.len() > limit {
                            st.0.pop();
                        }
                    }
                },
            );
        } else {
            for (id, p) in self.pool.iter_live() {
                if Some(id) == exclude {
                    continue;
                }
                stats.count_dist();
                if let Some(d) = self.metric.dist_under(q, p, threshold(&heap)) {
                    heap.push(MaxByDist(Neighbor::new(id, d)));
                    stats.count_push();
                    if heap.len() > limit {
                        heap.pop();
                    }
                }
            }
        }
        let entries = &mut scratch.entries;
        entries.clear();
        entries.extend(heap.iter().map(|m| m.0));
        entries.sort_unstable_by(Neighbor::cmp_by_dist);
        scratch.heap = heap.into_vec();
        stats
    }
}

impl<M: Metric> KnnIndex<M> for LinearScan<M> {
    fn num_points(&self) -> usize {
        self.pool.live()
    }

    fn has_point(&self, id: PointId) -> bool {
        self.pool.is_alive(id)
    }

    fn dim(&self) -> usize {
        self.pool.dim()
    }

    fn point(&self, id: PointId) -> &[f64] {
        self.pool.point(id)
    }

    fn metric(&self) -> &M {
        &self.metric
    }

    fn name(&self) -> &'static str {
        "linear-scan"
    }

    fn base_rows(&self) -> Option<&Dataset> {
        self.pool.contiguous_base()
    }

    fn cursor<'a>(&'a self, q: &'a [f64], exclude: Option<PointId>) -> Box<dyn NnCursor + 'a> {
        let mut entries = Vec::new();
        let mut qpad = Vec::new();
        let stats = self.fill_table(q, exclude, &mut entries, &mut qpad);
        Box::new(ScanCursor {
            entries,
            pos: 0,
            stats,
        })
    }

    fn cursor_with<'a>(
        &'a self,
        q: &'a [f64],
        exclude: Option<PointId>,
        scratch: &'a mut CursorScratch,
    ) -> Box<dyn NnCursor + 'a> {
        let CursorScratch { entries, tiles, .. } = &mut *scratch;
        let stats = self.fill_table(q, exclude, entries, &mut tiles.qpad);
        Box::new(ScanCursor {
            entries: &mut scratch.entries,
            pos: 0,
            stats,
        })
    }

    fn cursor_bounded<'a>(
        &'a self,
        q: &'a [f64],
        exclude: Option<PointId>,
        limit: usize,
        scratch: &'a mut CursorScratch,
    ) -> Box<dyn NnCursor + 'a> {
        // A bound that admits every candidate prunes nothing; the plain
        // sorted table skips the heap bookkeeping.
        let stats = if limit >= self.pool.live() {
            let CursorScratch { entries, tiles, .. } = &mut *scratch;
            self.fill_table(q, exclude, entries, &mut tiles.qpad)
        } else {
            self.fill_bounded(q, exclude, limit, scratch)
        };
        Box::new(ScanCursor {
            entries: &mut scratch.entries,
            pos: 0,
            stats,
        })
    }

    fn knn(
        &self,
        q: &[f64],
        k: usize,
        exclude: Option<PointId>,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        if k == 0 {
            return Vec::new();
        }
        let mut heap = KnnHeap::new(k);
        // Once the heap is full its threshold is the k-th best distance; a
        // candidate that cannot beat it would be rejected by `offer`, so
        // the distance accumulation may abandon as soon as the threshold is
        // provably unreachable. While the heap is filling the threshold is
        // +∞ and the full distance is computed — `dist_under` keeps
        // distances that overflow to +∞ admissible there, since `offer`
        // retains everything until full.
        if self.tile_eligible(q) {
            // Tile fast path: block-snapshot pruning, exact strict commit
            // against the live threshold (see `scan_tiles`).
            let mut qpad = Vec::new();
            pad_query(q, self.pool.stride(), &mut qpad);
            scan_tiles(
                &self.metric,
                &self.pool,
                &qpad,
                &mut (&mut heap, &mut *stats),
                |st| st.0.threshold(),
                |st, id, d| {
                    if Some(id) == exclude {
                        return;
                    }
                    st.1.count_dist();
                    if d.is_nan() {
                        return;
                    }
                    let thr = st.0.threshold();
                    if thr == f64::INFINITY || d < thr {
                        st.0.offer(Neighbor::new(id, d));
                    }
                },
            );
        } else {
            for (id, p) in self.pool.iter_live() {
                if Some(id) == exclude {
                    continue;
                }
                stats.count_dist();
                if let Some(d) = self.metric.dist_under(q, p, heap.threshold()) {
                    heap.offer(Neighbor::new(id, d));
                }
            }
        }
        heap.into_sorted()
    }

    fn range(
        &self,
        q: &[f64],
        r: f64,
        exclude: Option<PointId>,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        // The closed ball `d <= r` equals the open ball below next_up(r).
        let bound = r.next_up();
        let mut out = Vec::new();
        if self.tile_eligible(q) {
            // Tile fast path. The tile has `dist_under` semantics: at an
            // infinite bound it admits distances overflowing to +∞, which
            // the strict `dist_lt` contract of `range` must still reject —
            // hence the finiteness re-check at commit.
            let mut qpad = Vec::new();
            pad_query(q, self.pool.stride(), &mut qpad);
            scan_tiles(
                &self.metric,
                &self.pool,
                &qpad,
                &mut (&mut out, &mut *stats),
                |_| bound,
                |st, id, d| {
                    if Some(id) == exclude {
                        return;
                    }
                    st.1.count_dist();
                    if d.is_nan() || (bound == f64::INFINITY && !d.is_finite()) {
                        return;
                    }
                    st.0.push(Neighbor::new(id, d));
                },
            );
        } else {
            for (id, p) in self.pool.iter_live() {
                if Some(id) == exclude {
                    continue;
                }
                stats.count_dist();
                if let Some(d) = self.metric.dist_lt(q, p, bound) {
                    out.push(Neighbor::new(id, d));
                }
            }
        }
        rknn_core::neighbor::sort_neighbors(&mut out);
        out
    }

    fn range_count(
        &self,
        q: &[f64],
        r: f64,
        strict: bool,
        exclude: Option<PointId>,
        stats: &mut SearchStats,
    ) -> usize {
        let bound = if strict { r } else { r.next_up() };
        let mut count = 0;
        if self.tile_eligible(q) {
            // Same strict-vs-`dist_under` commit re-check as `range`.
            let mut qpad = Vec::new();
            pad_query(q, self.pool.stride(), &mut qpad);
            scan_tiles(
                &self.metric,
                &self.pool,
                &qpad,
                &mut (&mut count, &mut *stats),
                |_| bound,
                |st, id, d| {
                    if Some(id) == exclude {
                        return;
                    }
                    st.1.count_dist();
                    if d.is_nan() || (bound == f64::INFINITY && !d.is_finite()) {
                        return;
                    }
                    *st.0 += 1;
                },
            );
        } else {
            for (id, p) in self.pool.iter_live() {
                if Some(id) == exclude {
                    continue;
                }
                stats.count_dist();
                if self.metric.dist_lt(q, p, bound).is_some() {
                    count += 1;
                }
            }
        }
        count
    }
}

impl<M: Metric> DynamicIndex<M> for LinearScan<M> {
    fn insert(&mut self, point: &[f64]) -> Result<PointId, CoreError> {
        self.pool.insert(point)
    }

    fn remove(&mut self, id: PointId) -> bool {
        self.pool.remove(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknn_core::Euclidean;

    fn index() -> LinearScan<Euclidean> {
        let ds = Dataset::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![2.0, 0.0],
            vec![0.0, 3.0],
        ])
        .unwrap()
        .into_shared();
        LinearScan::build(ds, Euclidean)
    }

    #[test]
    fn cursor_streams_in_order() {
        let idx = index();
        let mut cur = idx.cursor(&[0.0, 0.0], None);
        let order: Vec<_> = std::iter::from_fn(|| cur.next()).map(|n| n.id).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert_eq!(cur.stats().dist_computations, 4);
    }

    #[test]
    fn scratch_cursor_matches_boxed_cursor_and_reuses_buffer() {
        let idx = index();
        let mut scratch = CursorScratch::new();
        for q in [[0.0, 0.0], [2.0, 1.0]] {
            let mut boxed = idx.cursor(&q, None);
            let mut scratched = idx.cursor_with(&q, None, &mut scratch);
            loop {
                let a = boxed.next();
                let b = scratched.next();
                assert_eq!(a.map(|n| n.id), b.map(|n| n.id));
                assert_eq!(a.map(|n| n.dist), b.map(|n| n.dist));
                if a.is_none() {
                    break;
                }
            }
            assert_eq!(boxed.stats(), scratched.stats());
        }
        // The buffer stays filled (and its capacity reusable) after the
        // cursor is dropped.
        assert_eq!(scratch.entries.len(), 4);
    }

    #[test]
    fn bounded_cursor_yields_exact_prefix() {
        let ds = Dataset::from_rows(
            &(0..60)
                .map(|i| vec![(i % 17) as f64, (i % 5) as f64])
                .collect::<Vec<_>>(),
        )
        .unwrap()
        .into_shared();
        let idx = LinearScan::build(ds, Euclidean);
        let mut scratch = CursorScratch::new();
        let q = [3.2, 1.1];
        for limit in [0usize, 1, 7, 59, 60, 500] {
            let mut full = idx.cursor(&q, Some(2));
            let mut bounded = idx.cursor_bounded(&q, Some(2), limit, &mut scratch);
            for step in 0..limit {
                let want = full.next();
                let got = bounded.next();
                assert_eq!(
                    want.map(|n| (n.id, n.dist)),
                    got.map(|n| (n.id, n.dist)),
                    "limit={limit} step={step}"
                );
                if want.is_none() {
                    break;
                }
            }
            // Distance work is one evaluation per candidate either way.
            assert_eq!(bounded.stats().dist_computations, 59, "limit={limit}");
        }
    }

    #[test]
    fn cursor_respects_exclusion() {
        let idx = index();
        let mut cur = idx.cursor(&[0.0, 0.0], Some(0));
        assert_eq!(cur.next().unwrap().id, 1);
    }

    #[test]
    fn knn_range_and_count_agree_with_defaults() {
        let idx = index();
        let mut st = SearchStats::new();
        let nn = idx.knn(&[0.1, 0.0], 2, None, &mut st);
        assert_eq!(nn[0].id, 0);
        assert_eq!(nn[1].id, 1);
        let within = idx.range(&[0.0, 0.0], 2.0, None, &mut st);
        assert_eq!(within.len(), 3);
        assert_eq!(idx.range_count(&[0.0, 0.0], 2.0, false, None, &mut st), 3);
        assert_eq!(idx.range_count(&[0.0, 0.0], 2.0, true, None, &mut st), 2);
        assert_eq!(idx.range_count(&[0.0, 0.0], 2.0, true, Some(0), &mut st), 1);
    }

    #[test]
    fn dynamic_insert_and_remove() {
        let mut idx = index();
        let id = idx.insert(&[0.5, 0.0]).unwrap();
        assert_eq!(id, 4);
        let mut st = SearchStats::new();
        let nn = idx.knn(&[0.5, 0.0], 1, None, &mut st);
        assert_eq!(nn[0].id, 4);
        assert!(idx.remove(4));
        let nn = idx.knn(&[0.5, 0.0], 1, None, &mut st);
        assert_ne!(nn[0].id, 4);
        assert_eq!(idx.num_points(), 4);
    }

    #[test]
    fn knn_when_k_exceeds_n() {
        let idx = index();
        let mut st = SearchStats::new();
        assert_eq!(idx.knn(&[0.0, 0.0], 100, None, &mut st).len(), 4);
        assert!(idx.knn(&[0.0, 0.0], 0, None, &mut st).is_empty());
    }

    /// A churned scan: a tie-heavy base dataset large enough for several
    /// tile blocks, plus enough inserts to spill into the appended segment,
    /// with removals in both segments.
    fn churned_index() -> LinearScan<Euclidean> {
        let rows: Vec<Vec<f64>> = (0..150)
            .map(|i| vec![((i * 7) % 9) as f64 * 0.5, ((i * 3) % 5) as f64 * 0.5, 0.0])
            .collect();
        let ds = Dataset::from_rows(&rows).unwrap().into_shared();
        let mut idx = LinearScan::build(ds, Euclidean);
        for j in 0..80 {
            idx.insert(&[((j * 5) % 9) as f64 * 0.5, ((j * 11) % 5) as f64 * 0.5, 1.0])
                .unwrap();
        }
        for id in [0, 1, 63, 64, 65, 149, 150, 151, 200, 229] {
            assert!(idx.remove(id));
        }
        idx
    }

    fn drain(cur: &mut dyn NnCursor) -> (Vec<(PointId, u64)>, SearchStats) {
        let got: Vec<_> = std::iter::from_fn(|| cur.next())
            .map(|n| (n.id, n.dist.to_bits()))
            .collect();
        (got, cur.stats())
    }

    /// The tile path and the per-point fallback must be byte-identical —
    /// ids, distance bits, and stats — on a pool with inserts and
    /// tombstones in both segments, across every scan entry point.
    #[test]
    fn tile_path_matches_per_point_under_churn() {
        let tiled = churned_index();
        let mut plain = tiled.clone();
        plain.set_tile_enabled(false);
        assert!(tiled.pool().contiguous_base().is_none());
        let queries = [
            vec![1.3, 0.4, 0.5],
            vec![-2.0, 7.0, 1.0],
            vec![2.0, 1.0, 0.0],
        ];
        let mut scr_t = CursorScratch::new();
        let mut scr_p = CursorScratch::new();
        for q in &queries {
            for exclude in [None, Some(70), Some(64)] {
                let (a, sa) = drain(&mut *tiled.cursor(q, exclude));
                let (b, sb) = drain(&mut *plain.cursor(q, exclude));
                assert_eq!(a, b);
                assert_eq!(sa, sb);
                let (a, sa) = drain(&mut *tiled.cursor_with(q, exclude, &mut scr_t));
                let (b, sb) = drain(&mut *plain.cursor_with(q, exclude, &mut scr_p));
                assert_eq!(a, b);
                assert_eq!(sa, sb);
                for limit in [0usize, 3, 64, 219, 220, 1000] {
                    let (a, sa) = drain(&mut *tiled.cursor_bounded(q, exclude, limit, &mut scr_t));
                    let (b, sb) = drain(&mut *plain.cursor_bounded(q, exclude, limit, &mut scr_p));
                    assert_eq!(a, b, "limit={limit}");
                    assert_eq!(sa, sb, "limit={limit}");
                }
                let (mut sa, mut sb) = (SearchStats::new(), SearchStats::new());
                let a = tiled.knn(q, 17, exclude, &mut sa);
                let b = plain.knn(q, 17, exclude, &mut sb);
                assert_eq!(
                    a.iter()
                        .map(|n| (n.id, n.dist.to_bits()))
                        .collect::<Vec<_>>(),
                    b.iter()
                        .map(|n| (n.id, n.dist.to_bits()))
                        .collect::<Vec<_>>()
                );
                assert_eq!(sa, sb);
                for r in [0.0, 1.25, 4.0, f64::INFINITY] {
                    let (mut sa, mut sb) = (SearchStats::new(), SearchStats::new());
                    let a = tiled.range(q, r, exclude, &mut sa);
                    let b = plain.range(q, r, exclude, &mut sb);
                    assert_eq!(
                        a.iter()
                            .map(|n| (n.id, n.dist.to_bits()))
                            .collect::<Vec<_>>(),
                        b.iter()
                            .map(|n| (n.id, n.dist.to_bits()))
                            .collect::<Vec<_>>(),
                        "r={r}"
                    );
                    assert_eq!(sa, sb, "r={r}");
                    for strict in [false, true] {
                        let (mut sa, mut sb) = (SearchStats::new(), SearchStats::new());
                        let a = tiled.range_count(q, r, strict, exclude, &mut sa);
                        let b = plain.range_count(q, r, strict, exclude, &mut sb);
                        assert_eq!(a, b, "r={r} strict={strict}");
                        assert_eq!(sa, sb, "r={r} strict={strict}");
                    }
                }
            }
        }
    }

    /// The fast-f32 tile path must return the same answer *sets* as the
    /// exact tier on tie-free data (the fast-f32 contract), with distances
    /// within f32 quantization error — under churn, so both the lazy base
    /// mirror and the appended shadow are exercised.
    #[test]
    fn f32_tile_scan_matches_exact_answer_sets_on_tie_free_data() {
        let rows: Vec<Vec<f64>> = (0..150)
            .map(|i| {
                let x = i as f64;
                vec![(x * 0.37).sin() * 3.0, (x * 0.11).cos() * 2.0, x * 0.01]
            })
            .collect();
        let ds = Dataset::from_rows(&rows).unwrap().into_shared();
        let mut fast = LinearScan::build(ds.clone(), Euclidean::fast_f32());
        let mut exact = LinearScan::build(ds, Euclidean::exact());
        assert!(fast.metric().wants_f32_tiles());
        for j in 0..40 {
            let x = 200.0 + j as f64;
            let p = [(x * 0.37).sin() * 3.0, (x * 0.11).cos() * 2.0, x * 0.01];
            fast.insert(&p).unwrap();
            exact.insert(&p).unwrap();
        }
        for id in [0, 63, 64, 149, 150, 155] {
            assert!(fast.remove(id) && exact.remove(id));
        }
        let mut st = SearchStats::new();
        for q in [[0.3, -1.2, 0.7], [2.5, 1.5, 1.4], [-3.0, 0.0, 0.0]] {
            for k in [1usize, 5, 17] {
                let a = fast.knn(&q, k, None, &mut st);
                let b = exact.knn(&q, k, None, &mut st);
                let ids = |v: &[Neighbor]| v.iter().map(|n| n.id).collect::<Vec<_>>();
                assert_eq!(ids(&a), ids(&b), "k={k} q={q:?}");
                for (na, nb) in a.iter().zip(&b) {
                    assert!(
                        (na.dist - nb.dist).abs() <= 1e-4 * (1.0 + nb.dist),
                        "id={} {} vs {}",
                        na.id,
                        na.dist,
                        nb.dist
                    );
                }
            }
            // The full sorted table drains in the same id order.
            let (a, _) = drain(&mut *fast.cursor(&q, Some(10)));
            let (b, _) = drain(&mut *exact.cursor(&q, Some(10)));
            assert_eq!(
                a.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
                b.iter().map(|&(id, _)| id).collect::<Vec<_>>()
            );
        }
    }

    /// Stats count only live points, never tombstones — on both paths.
    #[test]
    fn tombstones_are_uncounted() {
        let idx = churned_index();
        let live = idx.pool().live() as u64;
        let (_, st) = drain(&mut *idx.cursor(&[0.0, 0.0, 0.0], None));
        assert_eq!(st.dist_computations, live);
        let mut plain = idx.clone();
        plain.set_tile_enabled(false);
        let (_, st) = drain(&mut *plain.cursor(&[0.0, 0.0, 0.0], None));
        assert_eq!(st.dist_computations, live);
    }
}
