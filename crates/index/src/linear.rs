//! Sequential-scan index — the paper's fallback substrate.
//!
//! For MNIST and Imagenet the paper found sequential scan to outperform the
//! cover tree (§7.1): in very high dimensions, n straight-line distance
//! computations beat any tree traversal. The incremental cursor computes
//! all distances once at creation into a flat table, sorts it, and drains
//! it by position — contiguous memory instead of a pointer-heavy
//! `BinaryHeap`, and with [`KnnIndex::cursor_with`] the table lives in a
//! caller-owned buffer that batch drivers reuse across queries. Direct
//! `knn`/`range`/`range_count` traversals prune each candidate against the
//! current threshold via [`Metric::dist_lt`], abandoning hopeless distance
//! accumulations early.

use crate::pool::PointPool;
use crate::traits::{DynamicIndex, KnnIndex, NnCursor};
use rknn_core::neighbor::MaxByDist;
use rknn_core::{
    CoreError, CursorScratch, Dataset, KnnHeap, Metric, Neighbor, PointId, SearchStats,
};
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Exact sequential-scan index over a [`PointPool`].
#[derive(Debug, Clone)]
pub struct LinearScan<M: Metric> {
    pool: PointPool,
    metric: M,
}

impl<M: Metric> LinearScan<M> {
    /// Builds a scan index over a shared dataset.
    pub fn build(ds: Arc<Dataset>, metric: M) -> Self {
        LinearScan {
            pool: PointPool::new(ds),
            metric,
        }
    }

    /// Read access to the underlying pool.
    pub fn pool(&self) -> &PointPool {
        &self.pool
    }
}

/// Cursor draining a distance table already sorted ascending by
/// `(dist, id)`. Generic over the table's ownership so the same drain logic
/// serves both the self-owned boxed path and the caller-owned scratch path.
struct ScanCursor<B> {
    entries: B,
    pos: usize,
    stats: SearchStats,
}

impl<B: AsRef<[Neighbor]>> NnCursor for ScanCursor<B> {
    fn next(&mut self) -> Option<Neighbor> {
        let n = self.entries.as_ref().get(self.pos).copied();
        self.pos += usize::from(n.is_some());
        n
    }

    fn stats(&self) -> SearchStats {
        self.stats
    }
}

impl<M: Metric> LinearScan<M> {
    /// Fills `entries` with the sorted distance table for query `q`; the
    /// shared setup behind both cursor entry points.
    fn fill_table(
        &self,
        q: &[f64],
        exclude: Option<PointId>,
        entries: &mut Vec<Neighbor>,
    ) -> SearchStats {
        let mut stats = SearchStats::new();
        entries.clear();
        entries.reserve(self.pool.live());
        for (id, p) in self.pool.iter_live() {
            if Some(id) == exclude {
                continue;
            }
            stats.count_dist();
            entries.push(Neighbor::new(id, self.metric.dist(q, p)));
        }
        stats.heap_pushes += entries.len() as u64;
        entries.sort_unstable_by(Neighbor::cmp_by_dist);
        stats
    }

    /// Fills `scratch.entries` with the `limit` nearest candidates only,
    /// selected through a bounded max-heap whose threshold prunes each
    /// candidate's distance accumulation. Yields exactly the prefix the
    /// full sorted table would: ties at the boundary keep the lowest ids,
    /// matching the `(dist, id)` sort order.
    fn fill_bounded(
        &self,
        q: &[f64],
        exclude: Option<PointId>,
        limit: usize,
        scratch: &mut CursorScratch,
    ) -> SearchStats {
        let mut stats = SearchStats::new();
        // Adopt the scratch buffer as heap storage (free for an emptied
        // vec) and hand it back afterwards, so steady-state batch queries
        // allocate nothing.
        let mut spare = std::mem::take(&mut scratch.heap);
        spare.clear();
        let mut heap: BinaryHeap<MaxByDist> = BinaryHeap::from(spare);
        for (id, p) in self.pool.iter_live() {
            if Some(id) == exclude {
                continue;
            }
            stats.count_dist();
            let threshold = if heap.len() >= limit {
                heap.peek().map(|m| m.0.dist).unwrap_or(f64::NEG_INFINITY)
            } else {
                f64::INFINITY
            };
            // `dist_under`: while the heap is filling (threshold +∞) even a
            // distance overflowing to +∞ must be admitted, or the bounded
            // table loses entries the full sorted table would keep.
            if let Some(d) = self.metric.dist_under(q, p, threshold) {
                heap.push(MaxByDist(Neighbor::new(id, d)));
                stats.count_push();
                if heap.len() > limit {
                    heap.pop();
                }
            }
        }
        let entries = &mut scratch.entries;
        entries.clear();
        entries.extend(heap.iter().map(|m| m.0));
        entries.sort_unstable_by(Neighbor::cmp_by_dist);
        scratch.heap = heap.into_vec();
        stats
    }
}

impl<M: Metric> KnnIndex<M> for LinearScan<M> {
    fn num_points(&self) -> usize {
        self.pool.live()
    }

    fn dim(&self) -> usize {
        self.pool.dim()
    }

    fn point(&self, id: PointId) -> &[f64] {
        self.pool.point(id)
    }

    fn metric(&self) -> &M {
        &self.metric
    }

    fn name(&self) -> &'static str {
        "linear-scan"
    }

    fn cursor<'a>(&'a self, q: &'a [f64], exclude: Option<PointId>) -> Box<dyn NnCursor + 'a> {
        let mut entries = Vec::new();
        let stats = self.fill_table(q, exclude, &mut entries);
        Box::new(ScanCursor {
            entries,
            pos: 0,
            stats,
        })
    }

    fn cursor_with<'a>(
        &'a self,
        q: &'a [f64],
        exclude: Option<PointId>,
        scratch: &'a mut CursorScratch,
    ) -> Box<dyn NnCursor + 'a> {
        let stats = self.fill_table(q, exclude, &mut scratch.entries);
        Box::new(ScanCursor {
            entries: &mut scratch.entries,
            pos: 0,
            stats,
        })
    }

    fn cursor_bounded<'a>(
        &'a self,
        q: &'a [f64],
        exclude: Option<PointId>,
        limit: usize,
        scratch: &'a mut CursorScratch,
    ) -> Box<dyn NnCursor + 'a> {
        // A bound that admits every candidate prunes nothing; the plain
        // sorted table skips the heap bookkeeping.
        let stats = if limit >= self.pool.live() {
            self.fill_table(q, exclude, &mut scratch.entries)
        } else {
            self.fill_bounded(q, exclude, limit, scratch)
        };
        Box::new(ScanCursor {
            entries: &mut scratch.entries,
            pos: 0,
            stats,
        })
    }

    fn knn(
        &self,
        q: &[f64],
        k: usize,
        exclude: Option<PointId>,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        if k == 0 {
            return Vec::new();
        }
        let mut heap = KnnHeap::new(k);
        for (id, p) in self.pool.iter_live() {
            if Some(id) == exclude {
                continue;
            }
            stats.count_dist();
            // Once the heap is full its threshold is the k-th best distance;
            // a candidate that cannot beat it would be rejected by `offer`,
            // so the distance accumulation may abandon as soon as the
            // threshold is provably unreachable. While the heap is filling
            // the threshold is +∞ and the full distance is computed —
            // `dist_under` keeps distances that overflow to +∞ admissible
            // there, since `offer` retains everything until full.
            if let Some(d) = self.metric.dist_under(q, p, heap.threshold()) {
                heap.offer(Neighbor::new(id, d));
            }
        }
        heap.into_sorted()
    }

    fn range(
        &self,
        q: &[f64],
        r: f64,
        exclude: Option<PointId>,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        // The closed ball `d <= r` equals the open ball below next_up(r).
        let bound = r.next_up();
        let mut out = Vec::new();
        for (id, p) in self.pool.iter_live() {
            if Some(id) == exclude {
                continue;
            }
            stats.count_dist();
            if let Some(d) = self.metric.dist_lt(q, p, bound) {
                out.push(Neighbor::new(id, d));
            }
        }
        rknn_core::neighbor::sort_neighbors(&mut out);
        out
    }

    fn range_count(
        &self,
        q: &[f64],
        r: f64,
        strict: bool,
        exclude: Option<PointId>,
        stats: &mut SearchStats,
    ) -> usize {
        let bound = if strict { r } else { r.next_up() };
        let mut count = 0;
        for (id, p) in self.pool.iter_live() {
            if Some(id) == exclude {
                continue;
            }
            stats.count_dist();
            if self.metric.dist_lt(q, p, bound).is_some() {
                count += 1;
            }
        }
        count
    }
}

impl<M: Metric> DynamicIndex<M> for LinearScan<M> {
    fn insert(&mut self, point: &[f64]) -> Result<PointId, CoreError> {
        self.pool.insert(point)
    }

    fn remove(&mut self, id: PointId) -> bool {
        self.pool.remove(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknn_core::Euclidean;

    fn index() -> LinearScan<Euclidean> {
        let ds = Dataset::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![2.0, 0.0],
            vec![0.0, 3.0],
        ])
        .unwrap()
        .into_shared();
        LinearScan::build(ds, Euclidean)
    }

    #[test]
    fn cursor_streams_in_order() {
        let idx = index();
        let mut cur = idx.cursor(&[0.0, 0.0], None);
        let order: Vec<_> = std::iter::from_fn(|| cur.next()).map(|n| n.id).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert_eq!(cur.stats().dist_computations, 4);
    }

    #[test]
    fn scratch_cursor_matches_boxed_cursor_and_reuses_buffer() {
        let idx = index();
        let mut scratch = CursorScratch::new();
        for q in [[0.0, 0.0], [2.0, 1.0]] {
            let mut boxed = idx.cursor(&q, None);
            let mut scratched = idx.cursor_with(&q, None, &mut scratch);
            loop {
                let a = boxed.next();
                let b = scratched.next();
                assert_eq!(a.map(|n| n.id), b.map(|n| n.id));
                assert_eq!(a.map(|n| n.dist), b.map(|n| n.dist));
                if a.is_none() {
                    break;
                }
            }
            assert_eq!(boxed.stats(), scratched.stats());
        }
        // The buffer stays filled (and its capacity reusable) after the
        // cursor is dropped.
        assert_eq!(scratch.entries.len(), 4);
    }

    #[test]
    fn bounded_cursor_yields_exact_prefix() {
        let ds = Dataset::from_rows(
            &(0..60)
                .map(|i| vec![(i % 17) as f64, (i % 5) as f64])
                .collect::<Vec<_>>(),
        )
        .unwrap()
        .into_shared();
        let idx = LinearScan::build(ds, Euclidean);
        let mut scratch = CursorScratch::new();
        let q = [3.2, 1.1];
        for limit in [0usize, 1, 7, 59, 60, 500] {
            let mut full = idx.cursor(&q, Some(2));
            let mut bounded = idx.cursor_bounded(&q, Some(2), limit, &mut scratch);
            for step in 0..limit {
                let want = full.next();
                let got = bounded.next();
                assert_eq!(
                    want.map(|n| (n.id, n.dist)),
                    got.map(|n| (n.id, n.dist)),
                    "limit={limit} step={step}"
                );
                if want.is_none() {
                    break;
                }
            }
            // Distance work is one evaluation per candidate either way.
            assert_eq!(bounded.stats().dist_computations, 59, "limit={limit}");
        }
    }

    #[test]
    fn cursor_respects_exclusion() {
        let idx = index();
        let mut cur = idx.cursor(&[0.0, 0.0], Some(0));
        assert_eq!(cur.next().unwrap().id, 1);
    }

    #[test]
    fn knn_range_and_count_agree_with_defaults() {
        let idx = index();
        let mut st = SearchStats::new();
        let nn = idx.knn(&[0.1, 0.0], 2, None, &mut st);
        assert_eq!(nn[0].id, 0);
        assert_eq!(nn[1].id, 1);
        let within = idx.range(&[0.0, 0.0], 2.0, None, &mut st);
        assert_eq!(within.len(), 3);
        assert_eq!(idx.range_count(&[0.0, 0.0], 2.0, false, None, &mut st), 3);
        assert_eq!(idx.range_count(&[0.0, 0.0], 2.0, true, None, &mut st), 2);
        assert_eq!(idx.range_count(&[0.0, 0.0], 2.0, true, Some(0), &mut st), 1);
    }

    #[test]
    fn dynamic_insert_and_remove() {
        let mut idx = index();
        let id = idx.insert(&[0.5, 0.0]).unwrap();
        assert_eq!(id, 4);
        let mut st = SearchStats::new();
        let nn = idx.knn(&[0.5, 0.0], 1, None, &mut st);
        assert_eq!(nn[0].id, 4);
        assert!(idx.remove(4));
        let nn = idx.knn(&[0.5, 0.0], 1, None, &mut st);
        assert_ne!(nn[0].id, 4);
        assert_eq!(idx.num_points(), 4);
    }

    #[test]
    fn knn_when_k_exceeds_n() {
        let idx = index();
        let mut st = SearchStats::new();
        assert_eq!(idx.knn(&[0.0, 0.0], 100, None, &mut st).len(), 4);
        assert!(idx.knn(&[0.0, 0.0], 0, None, &mut st).is_empty());
    }
}
