//! Sequential-scan index — the paper's fallback substrate.
//!
//! For MNIST and Imagenet the paper found sequential scan to outperform the
//! cover tree (§7.1): in very high dimensions, n straight-line distance
//! computations beat any tree traversal. The incremental cursor computes all
//! distances once at creation and then drains a binary heap lazily, so a
//! cursor that RDT terminates after `s` steps costs `O(n + s·log n)`.

use crate::pool::PointPool;
use crate::traits::{DynamicIndex, KnnIndex, NnCursor};
use rknn_core::neighbor::MinByDist;
use rknn_core::{CoreError, Dataset, KnnHeap, Metric, Neighbor, PointId, SearchStats};
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Exact sequential-scan index over a [`PointPool`].
#[derive(Debug, Clone)]
pub struct LinearScan<M: Metric> {
    pool: PointPool,
    metric: M,
}

impl<M: Metric> LinearScan<M> {
    /// Builds a scan index over a shared dataset.
    pub fn build(ds: Arc<Dataset>, metric: M) -> Self {
        LinearScan { pool: PointPool::new(ds), metric }
    }

    /// Read access to the underlying pool.
    pub fn pool(&self) -> &PointPool {
        &self.pool
    }
}

struct ScanCursor {
    heap: BinaryHeap<MinByDist>,
    stats: SearchStats,
}

impl NnCursor for ScanCursor {
    fn next(&mut self) -> Option<Neighbor> {
        self.heap.pop().map(|m| m.0)
    }

    fn stats(&self) -> SearchStats {
        self.stats
    }
}

impl<M: Metric> KnnIndex<M> for LinearScan<M> {
    fn num_points(&self) -> usize {
        self.pool.live()
    }

    fn dim(&self) -> usize {
        self.pool.dim()
    }

    fn point(&self, id: PointId) -> &[f64] {
        self.pool.point(id)
    }

    fn metric(&self) -> &M {
        &self.metric
    }

    fn name(&self) -> &'static str {
        "linear-scan"
    }

    fn cursor<'a>(&'a self, q: &'a [f64], exclude: Option<PointId>) -> Box<dyn NnCursor + 'a> {
        let mut stats = SearchStats::new();
        let mut entries = Vec::with_capacity(self.pool.live());
        for (id, p) in self.pool.iter_live() {
            if Some(id) == exclude {
                continue;
            }
            stats.count_dist();
            entries.push(MinByDist(Neighbor::new(id, self.metric.dist(q, p))));
        }
        stats.heap_pushes += entries.len() as u64;
        Box::new(ScanCursor { heap: BinaryHeap::from(entries), stats })
    }

    fn knn(
        &self,
        q: &[f64],
        k: usize,
        exclude: Option<PointId>,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        if k == 0 {
            return Vec::new();
        }
        let mut heap = KnnHeap::new(k);
        for (id, p) in self.pool.iter_live() {
            if Some(id) == exclude {
                continue;
            }
            stats.count_dist();
            heap.offer(Neighbor::new(id, self.metric.dist(q, p)));
        }
        heap.into_sorted()
    }

    fn range(
        &self,
        q: &[f64],
        r: f64,
        exclude: Option<PointId>,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        let mut out = Vec::new();
        for (id, p) in self.pool.iter_live() {
            if Some(id) == exclude {
                continue;
            }
            stats.count_dist();
            let d = self.metric.dist(q, p);
            if d <= r {
                out.push(Neighbor::new(id, d));
            }
        }
        rknn_core::neighbor::sort_neighbors(&mut out);
        out
    }

    fn range_count(
        &self,
        q: &[f64],
        r: f64,
        strict: bool,
        exclude: Option<PointId>,
        stats: &mut SearchStats,
    ) -> usize {
        let mut count = 0;
        for (id, p) in self.pool.iter_live() {
            if Some(id) == exclude {
                continue;
            }
            stats.count_dist();
            let d = self.metric.dist(q, p);
            if (strict && d < r) || (!strict && d <= r) {
                count += 1;
            }
        }
        count
    }
}

impl<M: Metric> DynamicIndex<M> for LinearScan<M> {
    fn insert(&mut self, point: &[f64]) -> Result<PointId, CoreError> {
        self.pool.insert(point)
    }

    fn remove(&mut self, id: PointId) -> bool {
        self.pool.remove(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknn_core::Euclidean;

    fn index() -> LinearScan<Euclidean> {
        let ds = Dataset::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![2.0, 0.0],
            vec![0.0, 3.0],
        ])
        .unwrap()
        .into_shared();
        LinearScan::build(ds, Euclidean)
    }

    #[test]
    fn cursor_streams_in_order() {
        let idx = index();
        let mut cur = idx.cursor(&[0.0, 0.0], None);
        let order: Vec<_> = std::iter::from_fn(|| cur.next()).map(|n| n.id).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert_eq!(cur.stats().dist_computations, 4);
    }

    #[test]
    fn cursor_respects_exclusion() {
        let idx = index();
        let mut cur = idx.cursor(&[0.0, 0.0], Some(0));
        assert_eq!(cur.next().unwrap().id, 1);
    }

    #[test]
    fn knn_range_and_count_agree_with_defaults() {
        let idx = index();
        let mut st = SearchStats::new();
        let nn = idx.knn(&[0.1, 0.0], 2, None, &mut st);
        assert_eq!(nn[0].id, 0);
        assert_eq!(nn[1].id, 1);
        let within = idx.range(&[0.0, 0.0], 2.0, None, &mut st);
        assert_eq!(within.len(), 3);
        assert_eq!(idx.range_count(&[0.0, 0.0], 2.0, false, None, &mut st), 3);
        assert_eq!(idx.range_count(&[0.0, 0.0], 2.0, true, None, &mut st), 2);
        assert_eq!(idx.range_count(&[0.0, 0.0], 2.0, true, Some(0), &mut st), 1);
    }

    #[test]
    fn dynamic_insert_and_remove() {
        let mut idx = index();
        let id = idx.insert(&[0.5, 0.0]).unwrap();
        assert_eq!(id, 4);
        let mut st = SearchStats::new();
        let nn = idx.knn(&[0.5, 0.0], 1, None, &mut st);
        assert_eq!(nn[0].id, 4);
        assert!(idx.remove(4));
        let nn = idx.knn(&[0.5, 0.0], 1, None, &mut st);
        assert_ne!(nn[0].id, 4);
        assert_eq!(idx.num_points(), 4);
    }

    #[test]
    fn knn_when_k_exceeds_n() {
        let idx = index();
        let mut st = SearchStats::new();
        assert_eq!(idx.knn(&[0.0, 0.0], 100, None, &mut st).len(), 4);
        assert!(idx.knn(&[0.0, 0.0], 0, None, &mut st).is_empty());
    }
}
