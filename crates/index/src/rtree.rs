//! An R-tree with Sort-Tile-Recursive bulk packing, best-first queries,
//! quadratic-split inserts and tombstone deletes.
//!
//! This is the substrate of the RdNN-Tree and TPL baselines. The paper's
//! baselines use the R\*-tree; we substitute STR bulk loading plus quadratic
//! splits (see `DESIGN.md` §4) — the query-side behavior the experiments
//! measure (mindist/maxdist pruning and its collapse in high dimensions
//! \[47\]) is identical in shape. Split and subtree-choice decisions use the
//! *margin* (sum of side lengths) instead of volume, which degenerates
//! numerically in high dimensions.
//!
//! The tree optionally carries a per-point *auxiliary value* with per-node
//! subtree maxima. The RdNN-Tree stores each point's kNN distance there and
//! answers reverse-kNN queries with [`RTree::aux_containment`].
//!
//! Box distance bounds come from [`Metric::box_min_dist`] /
//! [`Metric::box_max_dist`]; building an R-tree with a metric that does not
//! support them panics with a descriptive message.

use crate::pool::{PointPool, RebuildPolicy};
use crate::traits::{DynamicIndex, KnnIndex, NnCursor};
use crate::traversal::{self, ExpandSink, TreeSubstrate};
use rknn_core::{
    CoreError, CursorScratch, Dataset, Metric, Neighbor, OrderedF64, PointId, SearchStats,
};
use std::sync::Arc;

/// Minimum bounding rectangle.
#[derive(Debug, Clone, PartialEq)]
pub struct Mbr {
    /// Lower corner.
    pub lo: Vec<f64>,
    /// Upper corner.
    pub hi: Vec<f64>,
}

impl Mbr {
    /// The degenerate box of a single point.
    pub fn of_point(p: &[f64]) -> Self {
        Mbr {
            lo: p.to_vec(),
            hi: p.to_vec(),
        }
    }

    /// An "empty" box that unions as the identity.
    pub fn empty(dim: usize) -> Self {
        Mbr {
            lo: vec![f64::INFINITY; dim],
            hi: vec![f64::NEG_INFINITY; dim],
        }
    }

    /// Grows the box to cover `p`.
    pub fn extend_point(&mut self, p: &[f64]) {
        for (i, &x) in p.iter().enumerate() {
            self.lo[i] = self.lo[i].min(x);
            self.hi[i] = self.hi[i].max(x);
        }
    }

    /// Grows the box to cover `other`.
    pub fn extend_mbr(&mut self, other: &Mbr) {
        for i in 0..self.lo.len() {
            self.lo[i] = self.lo[i].min(other.lo[i]);
            self.hi[i] = self.hi[i].max(other.hi[i]);
        }
    }

    /// Whether the box contains `p`.
    pub fn contains(&self, p: &[f64]) -> bool {
        (0..self.lo.len()).all(|i| self.lo[i] <= p[i] && p[i] <= self.hi[i])
    }

    /// Whether the box fully contains `other`.
    pub fn contains_mbr(&self, other: &Mbr) -> bool {
        (0..self.lo.len()).all(|i| self.lo[i] <= other.lo[i] && other.hi[i] <= self.hi[i])
    }

    /// Sum of side lengths. Used as the split/insert cost measure instead of
    /// volume, which degenerates (under/overflows) in high dimensions.
    pub fn margin(&self) -> f64 {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(l, h)| (h - l).max(0.0))
            .sum()
    }

    /// Margin increase needed to absorb `p`.
    pub fn enlargement_for(&self, p: &[f64]) -> f64 {
        let mut inc = 0.0;
        for (i, &x) in p.iter().enumerate() {
            if x < self.lo[i] {
                inc += self.lo[i] - x;
            } else if x > self.hi[i] {
                inc += x - self.hi[i];
            }
        }
        inc
    }

    /// Margin increase needed to absorb `other`.
    pub fn enlargement_for_mbr(&self, other: &Mbr) -> f64 {
        let mut inc = 0.0;
        for i in 0..self.lo.len() {
            if other.lo[i] < self.lo[i] {
                inc += self.lo[i] - other.lo[i];
            }
            if other.hi[i] > self.hi[i] {
                inc += other.hi[i] - self.hi[i];
            }
        }
        inc
    }
}

/// Quadratic-split partitioning of item bounding boxes into two groups.
///
/// Returns index sets; each group receives at least `min_fill` items.
/// Seeds are the pair whose union wastes the most margin; remaining items
/// go to the group needing the least enlargement (ties: smaller margin).
pub(crate) fn quadratic_split_indices(boxes: &[Mbr], min_fill: usize) -> (Vec<usize>, Vec<usize>) {
    let n = boxes.len();
    debug_assert!(n >= 2 && 2 * min_fill <= n);
    // Seed selection.
    let mut best = (0usize, 1usize, f64::NEG_INFINITY);
    for i in 0..n {
        for j in (i + 1)..n {
            let mut u = boxes[i].clone();
            u.extend_mbr(&boxes[j]);
            let waste = u.margin() - boxes[i].margin() - boxes[j].margin();
            if waste > best.2 {
                best = (i, j, waste);
            }
        }
    }
    let (s1, s2, _) = best;
    let mut g1 = vec![s1];
    let mut g2 = vec![s2];
    let mut m1 = boxes[s1].clone();
    let mut m2 = boxes[s2].clone();
    let mut rest: Vec<usize> = (0..n).filter(|&i| i != s1 && i != s2).collect();
    while let Some(&i) = rest.first() {
        // Min-fill guarantee: hand the remainder to a starving group.
        if g1.len() + rest.len() == min_fill {
            for &r in &rest {
                m1.extend_mbr(&boxes[r]);
            }
            g1.append(&mut rest);
            break;
        }
        if g2.len() + rest.len() == min_fill {
            for &r in &rest {
                m2.extend_mbr(&boxes[r]);
            }
            g2.append(&mut rest);
            break;
        }
        let e1 = m1.enlargement_for_mbr(&boxes[i]);
        let e2 = m2.enlargement_for_mbr(&boxes[i]);
        let to_first = match e1.partial_cmp(&e2) {
            Some(std::cmp::Ordering::Less) => true,
            Some(std::cmp::Ordering::Greater) => false,
            _ => m1.margin() <= m2.margin(),
        };
        if to_first {
            m1.extend_mbr(&boxes[i]);
            g1.push(i);
        } else {
            m2.extend_mbr(&boxes[i]);
            g2.push(i);
        }
        rest.remove(0);
    }
    (g1, g2)
}

#[derive(Debug, Clone)]
enum RNodeKind {
    Leaf(Vec<PointId>),
    Inner(Vec<usize>),
}

#[derive(Debug, Clone)]
struct RNode {
    mbr: Mbr,
    kind: RNodeKind,
    /// Max auxiliary value over the subtree (−∞ when aux is unused).
    aux_max: f64,
}

/// An R-tree over a point pool.
#[derive(Debug, Clone)]
pub struct RTree<M: Metric> {
    pool: PointPool,
    metric: M,
    nodes: Vec<RNode>,
    root: usize,
    capacity: usize,
    aux: Option<Vec<f64>>,
    policy: RebuildPolicy,
    /// Tombstoned points still linked into leaves — reset by
    /// [`DynamicIndex::compact`], which re-packs without them.
    stale: usize,
}

const DEFAULT_CAPACITY: usize = 32;

impl<M: Metric> RTree<M> {
    /// Bulk-builds an R-tree (STR packing) with default node capacity.
    pub fn build(ds: Arc<Dataset>, metric: M) -> Self {
        Self::build_with(ds, metric, DEFAULT_CAPACITY, None)
    }

    /// Bulk-builds with per-point auxiliary values (e.g. kNN distances for
    /// the RdNN-Tree). `aux.len()` must equal `ds.len()`.
    pub fn build_with_aux(ds: Arc<Dataset>, metric: M, aux: Vec<f64>) -> Self {
        assert_eq!(aux.len(), ds.len(), "one aux value per point required");
        Self::build_with(ds, metric, DEFAULT_CAPACITY, Some(aux))
    }

    /// Bulk-builds with explicit node capacity.
    pub fn build_with(ds: Arc<Dataset>, metric: M, capacity: usize, aux: Option<Vec<f64>>) -> Self {
        assert!(capacity >= 4, "R-tree node capacity must be at least 4");
        let n = ds.len();
        let mut tree = RTree {
            pool: PointPool::new(ds),
            metric,
            nodes: Vec::new(),
            root: 0,
            capacity,
            aux,
            policy: RebuildPolicy::default(),
            stale: 0,
        };
        tree.rebuild_structure((0..n).collect());
        tree
    }

    /// Replaces the whole node structure with a fresh STR packing of `ids`
    /// (the pool and aux values are untouched). Shared by the bulk build
    /// and [`DynamicIndex::compact`].
    fn rebuild_structure(&mut self, mut ids: Vec<PointId>) {
        let dim = self.pool.dim().max(1);
        self.nodes.clear();
        if ids.is_empty() {
            self.nodes.push(RNode {
                mbr: Mbr::empty(dim),
                kind: RNodeKind::Leaf(Vec::new()),
                aux_max: f64::NEG_INFINITY,
            });
            self.root = 0;
            return;
        }
        // Recursive sort-tile packing: cycle the split dimension, halving the
        // id range until groups fit in a leaf. Produces locality-preserving
        // leaf order for the upper-level packing below.
        let mut leaves: Vec<usize> = Vec::new();
        self.pack(&mut ids, 0, &mut leaves);
        // Pack upper levels over consecutive runs of children.
        let mut level = leaves;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(self.capacity));
            for chunk in level.chunks(self.capacity) {
                let mut mbr = Mbr::empty(dim);
                let mut aux_max = f64::NEG_INFINITY;
                for &c in chunk {
                    mbr.extend_mbr(&self.nodes[c].mbr);
                    aux_max = aux_max.max(self.nodes[c].aux_max);
                }
                self.nodes.push(RNode {
                    mbr,
                    kind: RNodeKind::Inner(chunk.to_vec()),
                    aux_max,
                });
                next.push(self.nodes.len() - 1);
            }
            level = next;
        }
        self.root = level[0];
    }

    fn pack(&mut self, ids: &mut [PointId], depth: usize, leaves: &mut Vec<usize>) {
        if ids.len() <= self.capacity {
            let mut mbr = Mbr::empty(self.pool.dim());
            let mut aux_max = f64::NEG_INFINITY;
            for &id in ids.iter() {
                mbr.extend_point(self.pool.point(id));
                if let Some(aux) = &self.aux {
                    aux_max = aux_max.max(aux[id]);
                }
            }
            self.nodes.push(RNode {
                mbr,
                kind: RNodeKind::Leaf(ids.to_vec()),
                aux_max,
            });
            leaves.push(self.nodes.len() - 1);
            return;
        }
        let dim = depth % self.pool.dim();
        let mid = ids.len() / 2;
        let pool = &self.pool;
        ids.select_nth_unstable_by(mid, |&a, &b| {
            OrderedF64(pool.point(a)[dim]).cmp(&OrderedF64(pool.point(b)[dim]))
        });
        let (left, right) = ids.split_at_mut(mid);
        self.pack(left, depth + 1, leaves);
        self.pack(right, depth + 1, leaves);
    }

    /// Smallest possible distance from `q` to a point inside `mbr`.
    pub fn min_dist(&self, q: &[f64], mbr: &Mbr) -> f64 {
        self.metric
            .box_min_dist(q, &mbr.lo, &mbr.hi)
            .expect("R-tree requires a metric with box distance bounds (Minkowski family)")
    }

    /// Largest possible distance from `q` to a point inside `mbr`.
    pub fn max_dist(&self, q: &[f64], mbr: &Mbr) -> f64 {
        self.metric
            .box_max_dist(q, &mbr.lo, &mbr.hi)
            .expect("R-tree requires a metric with box distance bounds (Minkowski family)")
    }

    // ----- dynamic updates -----

    /// Inserts a point into a plain (non-aux) tree.
    ///
    /// # Panics
    ///
    /// Panics on aux-augmented trees — use [`RTree::insert_with_aux`].
    pub fn insert(&mut self, p: &[f64]) -> Result<PointId, CoreError> {
        assert!(
            self.aux.is_none(),
            "aux-augmented R-tree requires insert_with_aux(point, aux_value)"
        );
        self.insert_impl(p, f64::NEG_INFINITY)
    }

    /// Inserts a point with its auxiliary value into an aux-augmented tree.
    ///
    /// # Panics
    ///
    /// Panics on plain trees — use [`RTree::insert`].
    pub fn insert_with_aux(&mut self, p: &[f64], aux_value: f64) -> Result<PointId, CoreError> {
        assert!(
            self.aux.is_some(),
            "plain R-tree has no aux values; use insert(point)"
        );
        self.insert_impl(p, aux_value)
    }

    fn insert_impl(&mut self, p: &[f64], aux_value: f64) -> Result<PointId, CoreError> {
        let id = self.pool.insert(p)?;
        if let Some(aux) = &mut self.aux {
            debug_assert_eq!(aux.len() + 1, self.pool.total());
            aux.push(aux_value);
        }
        if let Some(sibling) = self.insert_rec(self.root, id, aux_value) {
            // Root split: grow the tree.
            let mut mbr = self.nodes[self.root].mbr.clone();
            mbr.extend_mbr(&self.nodes[sibling].mbr);
            let aux_max = self.nodes[self.root]
                .aux_max
                .max(self.nodes[sibling].aux_max);
            self.nodes.push(RNode {
                mbr,
                kind: RNodeKind::Inner(vec![self.root, sibling]),
                aux_max,
            });
            self.root = self.nodes.len() - 1;
        }
        Ok(id)
    }

    /// Inserts `id` into the subtree at `node`; returns a new sibling node
    /// if `node` split.
    fn insert_rec(&mut self, node: usize, id: PointId, aux_value: f64) -> Option<usize> {
        // Maintain this node's bounds on the way down.
        let p = self.pool.point(id).to_vec();
        self.nodes[node].mbr.extend_point(&p);
        if aux_value > self.nodes[node].aux_max {
            self.nodes[node].aux_max = aux_value;
        }
        let child_split = match &self.nodes[node].kind {
            RNodeKind::Leaf(_) => None,
            RNodeKind::Inner(children) => {
                // Least margin enlargement, ties by smaller margin.
                let mut best: Option<(usize, f64, f64)> = None;
                for &c in children {
                    let e = self.nodes[c].mbr.enlargement_for(&p);
                    let m = self.nodes[c].mbr.margin();
                    if best.map(|(_, be, bm)| (e, m) < (be, bm)).unwrap_or(true) {
                        best = Some((c, e, m));
                    }
                }
                let (chosen, _, _) = best.expect("inner node has children");
                self.insert_rec(chosen, id, aux_value)
                    .map(|sib| (chosen, sib))
            }
        };
        match &mut self.nodes[node].kind {
            RNodeKind::Leaf(entries) => {
                entries.push(id);
                if entries.len() > self.capacity {
                    return Some(self.split_node(node));
                }
            }
            RNodeKind::Inner(children) => {
                if let Some((_, sib)) = child_split {
                    children.push(sib);
                    if children.len() > self.capacity {
                        return Some(self.split_node(node));
                    }
                }
            }
        }
        None
    }

    /// Splits an overflowing node in place; returns the new sibling's id.
    fn split_node(&mut self, node: usize) -> usize {
        let min_fill = (self.capacity / 2).max(1);
        let (kind, boxes): (RNodeKind, Vec<Mbr>) = match &self.nodes[node].kind {
            RNodeKind::Leaf(entries) => (
                RNodeKind::Leaf(entries.clone()),
                entries
                    .iter()
                    .map(|&e| Mbr::of_point(self.pool.point(e)))
                    .collect(),
            ),
            RNodeKind::Inner(children) => (
                RNodeKind::Inner(children.clone()),
                children
                    .iter()
                    .map(|&c| self.nodes[c].mbr.clone())
                    .collect(),
            ),
        };
        let (g1, g2) = quadratic_split_indices(&boxes, min_fill);
        let rebuild = |idxs: &[usize]| -> (RNodeKind, Mbr, f64) {
            let mut mbr = Mbr::empty(self.pool.dim());
            let mut aux_max = f64::NEG_INFINITY;
            let kind = match &kind {
                RNodeKind::Leaf(entries) => {
                    let picked: Vec<PointId> = idxs.iter().map(|&i| entries[i]).collect();
                    for &e in &picked {
                        mbr.extend_point(self.pool.point(e));
                        if let Some(aux) = &self.aux {
                            aux_max = aux_max.max(aux[e]);
                        }
                    }
                    RNodeKind::Leaf(picked)
                }
                RNodeKind::Inner(children) => {
                    let picked: Vec<usize> = idxs.iter().map(|&i| children[i]).collect();
                    for &c in &picked {
                        mbr.extend_mbr(&self.nodes[c].mbr);
                        aux_max = aux_max.max(self.nodes[c].aux_max);
                    }
                    RNodeKind::Inner(picked)
                }
            };
            (kind, mbr, aux_max)
        };
        let (k1, m1, a1) = rebuild(&g1);
        let (k2, m2, a2) = rebuild(&g2);
        self.nodes[node] = RNode {
            mbr: m1,
            kind: k1,
            aux_max: a1,
        };
        self.nodes.push(RNode {
            mbr: m2,
            kind: k2,
            aux_max: a2,
        });
        self.nodes.len() - 1
    }

    // ----- read-only node API (used by the TPL and RdNN baselines) -----

    /// Root node id.
    pub fn root_id(&self) -> usize {
        self.root
    }

    /// A node's bounding box.
    pub fn node_mbr(&self, id: usize) -> &Mbr {
        &self.nodes[id].mbr
    }

    /// Children of an inner node, or `None` for leaves.
    pub fn node_children(&self, id: usize) -> Option<&[usize]> {
        match &self.nodes[id].kind {
            RNodeKind::Inner(c) => Some(c),
            RNodeKind::Leaf(_) => None,
        }
    }

    /// Point entries of a leaf, or `None` for inner nodes.
    pub fn node_entries(&self, id: usize) -> Option<&[PointId]> {
        match &self.nodes[id].kind {
            RNodeKind::Leaf(e) => Some(e),
            RNodeKind::Inner(_) => None,
        }
    }

    /// Subtree-max auxiliary value of a node.
    pub fn node_aux_max(&self, id: usize) -> f64 {
        self.nodes[id].aux_max
    }

    /// The auxiliary value of a point, if the tree carries them.
    pub fn aux_of(&self, id: PointId) -> Option<f64> {
        self.aux.as_ref().map(|a| a[id])
    }

    /// Number of tree nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Read access to the underlying pool.
    pub fn pool(&self) -> &PointPool {
        &self.pool
    }

    /// Whether a point id is live (not tombstoned).
    #[inline]
    fn alive(&self, id: PointId) -> bool {
        self.pool.is_alive(id)
    }

    /// All live points `p` with `d(q, p) ≤ aux(p)`, pruning subtrees where
    /// `mindist(q, MBR) > subtree-max aux` — the RdNN-Tree reverse-kNN
    /// containment traversal.
    ///
    /// Leaf evaluations run through [`Metric::dist_le`], so a point's
    /// distance accumulation is abandoned as soon as it provably exceeds
    /// the point's containment radius `aux(p)`; decisions and reported
    /// distances are identical to the full-precision evaluation.
    ///
    /// # Panics
    ///
    /// Panics if the tree was built without auxiliary values.
    pub fn aux_containment(&self, q: &[f64], stats: &mut SearchStats) -> Vec<Neighbor> {
        let aux = self
            .aux
            .as_ref()
            .expect("aux_containment requires aux values");
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            stats.count_node();
            let node = &self.nodes[id];
            if self.min_dist(q, &node.mbr) > node.aux_max {
                continue;
            }
            match &node.kind {
                RNodeKind::Leaf(entries) => {
                    for &p in entries {
                        if !self.alive(p) {
                            continue;
                        }
                        stats.count_dist();
                        if let Some(d) = self.metric.dist_le(q, self.pool.point(p), aux[p]) {
                            out.push(Neighbor::new(p, d));
                        }
                    }
                }
                RNodeKind::Inner(children) => stack.extend_from_slice(children),
            }
        }
        rknn_core::neighbor::sort_neighbors(&mut out);
        out
    }

    /// Checks structural invariants: child boxes inside parents, leaf points
    /// inside leaf boxes, every point linked at most once with every *live*
    /// point linked (tombstones may have been unlinked by compaction),
    /// subtree aux maxima correct. Test support.
    #[doc(hidden)]
    pub fn check_invariants(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            match &node.kind {
                RNodeKind::Leaf(entries) => {
                    let mut amax = f64::NEG_INFINITY;
                    for &p in entries {
                        if !node.mbr.contains(self.pool.point(p)) {
                            return false;
                        }
                        if !seen.insert(p) {
                            return false; // duplicate placement
                        }
                        if let Some(aux) = &self.aux {
                            amax = amax.max(aux[p]);
                        }
                    }
                    if self.aux.is_some() && amax > node.aux_max + 1e-12 {
                        return false;
                    }
                }
                RNodeKind::Inner(children) => {
                    if children.is_empty() {
                        return false;
                    }
                    for &c in children {
                        if !node.mbr.contains_mbr(&self.nodes[c].mbr) {
                            return false;
                        }
                        if self.nodes[c].aux_max > node.aux_max + 1e-12 {
                            return false;
                        }
                        stack.push(c);
                    }
                }
            }
        }
        (0..self.pool.total())
            .filter(|&id| self.pool.is_alive(id))
            .all(|id| seen.contains(&id))
    }
}

impl<M: Metric> TreeSubstrate<M> for RTree<M> {
    fn metric(&self) -> &M {
        &self.metric
    }

    fn coords(&self, id: PointId) -> &[f64] {
        self.pool.point(id)
    }

    fn is_emittable(&self, id: PointId) -> bool {
        self.pool.is_alive(id)
    }

    fn seed(&self, sink: &mut ExpandSink<'_, M, Self>) {
        if self.pool.live() > 0 {
            let lb = self.min_dist(sink.query(), &self.nodes[self.root].mbr);
            sink.child(self.root, lb, f64::NAN);
        }
    }

    fn expand(&self, id: usize, _d_pivot: f64, sink: &mut ExpandSink<'_, M, Self>) {
        // Box MINDIST bounds are geometric, not metric evaluations: they
        // are computed here and not charged to `dist_computations`,
        // matching the paper's cost model.
        match &self.nodes[id].kind {
            RNodeKind::Leaf(entries) => {
                for &p in entries {
                    sink.point(p);
                }
            }
            RNodeKind::Inner(children) => {
                for &c in children {
                    let lb = self.min_dist(sink.query(), &self.nodes[c].mbr);
                    sink.child(c, lb, f64::NAN);
                }
            }
        }
    }
}

impl<M: Metric> KnnIndex<M> for RTree<M> {
    fn num_points(&self) -> usize {
        self.pool.live()
    }

    fn has_point(&self, id: PointId) -> bool {
        self.pool.is_alive(id)
    }

    fn dim(&self) -> usize {
        self.pool.dim()
    }

    fn point(&self, id: PointId) -> &[f64] {
        self.pool.point(id)
    }

    fn metric(&self) -> &M {
        &self.metric
    }

    fn name(&self) -> &'static str {
        "r-tree"
    }

    fn cursor<'a>(&'a self, q: &'a [f64], exclude: Option<PointId>) -> Box<dyn NnCursor + 'a> {
        traversal::tree_cursor(self, q, exclude)
    }

    fn cursor_with<'a>(
        &'a self,
        q: &'a [f64],
        exclude: Option<PointId>,
        scratch: &'a mut CursorScratch,
    ) -> Box<dyn NnCursor + 'a> {
        traversal::tree_cursor_with(self, q, exclude, scratch)
    }

    fn cursor_bounded<'a>(
        &'a self,
        q: &'a [f64],
        exclude: Option<PointId>,
        limit: usize,
        scratch: &'a mut CursorScratch,
    ) -> Box<dyn NnCursor + 'a> {
        traversal::tree_cursor_bounded(self, q, exclude, limit, scratch)
    }

    fn range(
        &self,
        q: &[f64],
        r: f64,
        exclude: Option<PointId>,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        let mut out = Vec::new();
        if self.pool.live() == 0 {
            return out;
        }
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            stats.count_node();
            let node = &self.nodes[id];
            if self.min_dist(q, &node.mbr) > r {
                continue;
            }
            match &node.kind {
                RNodeKind::Leaf(entries) => {
                    for &p in entries {
                        if Some(p) == exclude || !self.alive(p) {
                            continue;
                        }
                        stats.count_dist();
                        let d = self.metric.dist(q, self.pool.point(p));
                        if d <= r {
                            out.push(Neighbor::new(p, d));
                        }
                    }
                }
                RNodeKind::Inner(children) => stack.extend_from_slice(children),
            }
        }
        rknn_core::neighbor::sort_neighbors(&mut out);
        out
    }

    fn range_count(
        &self,
        q: &[f64],
        r: f64,
        strict: bool,
        exclude: Option<PointId>,
        stats: &mut SearchStats,
    ) -> usize {
        let mut count = 0;
        if self.pool.live() == 0 {
            return 0;
        }
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            stats.count_node();
            let node = &self.nodes[id];
            if self.min_dist(q, &node.mbr) > r {
                continue;
            }
            match &node.kind {
                RNodeKind::Leaf(entries) => {
                    for &p in entries {
                        if Some(p) == exclude || !self.alive(p) {
                            continue;
                        }
                        stats.count_dist();
                        let d = self.metric.dist(q, self.pool.point(p));
                        if (strict && d < r) || (!strict && d <= r) {
                            count += 1;
                        }
                    }
                }
                RNodeKind::Inner(children) => stack.extend_from_slice(children),
            }
        }
        count
    }
}

impl<M: Metric> DynamicIndex<M> for RTree<M> {
    /// Dynamic insert for plain trees (panics on aux-augmented trees; those
    /// must supply the aux value via [`RTree::insert_with_aux`]).
    fn insert(&mut self, point: &[f64]) -> Result<PointId, CoreError> {
        RTree::insert(self, point)
    }

    fn remove(&mut self, id: PointId) -> bool {
        let removed = self.pool.remove(id);
        self.stale += usize::from(removed);
        removed
    }

    fn compact(&mut self) {
        let live: Vec<PointId> = self.pool.iter_live().map(|(id, _)| id).collect();
        self.rebuild_structure(live);
        self.stale = 0;
    }

    fn needs_compaction(&self) -> bool {
        self.policy.recommends_counts(self.stale, self.pool.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknn_core::{BruteForce, Euclidean};

    fn random_dataset(n: usize, dim: usize, seed: u64) -> Arc<Dataset> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| next() * 10.0 - 5.0).collect())
            .collect();
        Dataset::from_rows(&rows).unwrap().into_shared()
    }

    #[test]
    fn mbr_operations() {
        let mut m = Mbr::empty(2);
        m.extend_point(&[1.0, 2.0]);
        m.extend_point(&[3.0, 0.0]);
        assert_eq!(m.lo, vec![1.0, 0.0]);
        assert_eq!(m.hi, vec![3.0, 2.0]);
        assert!(m.contains(&[2.0, 1.0]));
        assert!(!m.contains(&[0.0, 1.0]));
        assert_eq!(m.margin(), 4.0);
        assert_eq!(m.enlargement_for(&[4.0, 1.0]), 1.0);
        let mut other = Mbr::of_point(&[10.0, 10.0]);
        other.extend_mbr(&m);
        assert!(other.contains(&[1.0, 0.0]));
        assert!(other.contains_mbr(&m));
        assert!(!m.contains_mbr(&other));
        assert_eq!(m.enlargement_for_mbr(&other), (10.0 - 3.0) + (10.0 - 2.0));
    }

    #[test]
    fn quadratic_split_respects_min_fill() {
        let boxes: Vec<Mbr> = (0..9)
            .map(|i| Mbr::of_point(&[i as f64, if i < 5 { 0.0 } else { 100.0 }]))
            .collect();
        let (g1, g2) = quadratic_split_indices(&boxes, 4);
        assert!(g1.len() >= 4 && g2.len() >= 4);
        assert_eq!(g1.len() + g2.len(), 9);
        let mut all: Vec<usize> = g1.iter().chain(&g2).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn quadratic_split_separates_clusters() {
        // Two clearly separated clusters split along the gap.
        let boxes: Vec<Mbr> = (0..8)
            .map(|i| {
                let base = if i < 4 { 0.0 } else { 1000.0 };
                Mbr::of_point(&[base + i as f64, 0.0])
            })
            .collect();
        let (g1, g2) = quadratic_split_indices(&boxes, 2);
        let side = |g: &[usize]| g.iter().all(|&i| i < 4) || g.iter().all(|&i| i >= 4);
        assert!(
            side(&g1) && side(&g2),
            "clusters must not be mixed: {g1:?} {g2:?}"
        );
    }

    #[test]
    fn structural_invariant_after_bulk_build() {
        let ds = random_dataset(500, 4, 11);
        let tree = RTree::build(ds.clone(), Euclidean);
        assert!(tree.check_invariants());
    }

    #[test]
    fn cursor_matches_brute_force() {
        let ds = random_dataset(400, 3, 12);
        let tree = RTree::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds.clone(), Euclidean);
        let q = ds.point(42).to_vec();
        let mut st = SearchStats::new();
        let want = bf.knn(&q, 400, None, &mut st);
        let mut cur = tree.cursor(&q, None);
        let got: Vec<_> = std::iter::from_fn(|| cur.next()).collect();
        assert_eq!(got.len(), 400);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.dist - w.dist).abs() < 1e-9);
        }
    }

    #[test]
    fn range_and_count_match_defaults() {
        let ds = random_dataset(300, 2, 13);
        let tree = RTree::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds.clone(), Euclidean);
        let q = ds.point(5).to_vec();
        let mut st = SearchStats::new();
        for r in [0.5, 1.5, 4.0] {
            let got = tree.range(&q, r, Some(5), &mut st);
            let want: Vec<_> = bf
                .knn(&q, 300, Some(5), &mut SearchStats::new())
                .into_iter()
                .filter(|n| n.dist <= r)
                .collect();
            assert_eq!(got.len(), want.len(), "r={r}");
            assert_eq!(tree.range_count(&q, r, false, Some(5), &mut st), want.len());
            let strict_want = want.iter().filter(|n| n.dist < r).count();
            assert_eq!(tree.range_count(&q, r, true, Some(5), &mut st), strict_want);
        }
    }

    #[test]
    fn dynamic_inserts_keep_tree_exact() {
        let ds = random_dataset(200, 3, 14);
        let mut tree = RTree::build_with(ds.clone(), Euclidean, 8, None);
        let mut all_rows: Vec<Vec<f64>> = ds.iter().map(|(_, p)| p.to_vec()).collect();
        let mut state = 99u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..300 {
            let p: Vec<f64> = (0..3).map(|_| next() * 10.0 - 5.0).collect();
            tree.insert(&p).unwrap();
            all_rows.push(p);
        }
        assert!(
            tree.check_invariants(),
            "invariants after 300 inserts with capacity 8"
        );
        assert_eq!(tree.num_points(), 500);
        // Exactness against a scan over the union.
        let full = Dataset::from_rows(&all_rows).unwrap().into_shared();
        let reference = crate::linear::LinearScan::build(full.clone(), Euclidean);
        let mut st = SearchStats::new();
        let q = full.point(450).to_vec();
        let got = tree.knn(&q, 12, None, &mut st);
        let want = reference.knn(&q, 12, None, &mut st);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.dist - w.dist).abs() < 1e-9);
        }
    }

    #[test]
    fn remove_hides_points() {
        let ds = random_dataset(100, 2, 15);
        let mut tree = RTree::build(ds.clone(), Euclidean);
        assert!(DynamicIndex::remove(&mut tree, 7));
        assert!(!DynamicIndex::remove(&mut tree, 7));
        let mut st = SearchStats::new();
        let all = tree.knn(ds.point(7), 100, None, &mut st);
        assert_eq!(all.len(), 99);
        assert!(all.iter().all(|n| n.id != 7));
        assert_eq!(tree.range_count(ds.point(7), 0.0, false, None, &mut st), 0);
    }

    #[test]
    fn compact_preserves_results_and_resets_policy() {
        let ds = random_dataset(200, 3, 21);
        let mut tree = RTree::build_with(ds.clone(), Euclidean, 8, None);
        for i in 0..40 {
            tree.insert(&[i as f64 * 0.1, 0.0, 0.0]).unwrap();
        }
        for id in (0..240).step_by(3) {
            assert!(DynamicIndex::remove(&mut tree, id));
        }
        assert!(tree.needs_compaction());
        let q = ds.point(4).to_vec();
        let want: Vec<_> = {
            let mut cur = tree.cursor(&q, None);
            std::iter::from_fn(|| cur.next())
                .map(|n| (n.id, n.dist.to_bits()))
                .collect()
        };
        tree.compact();
        assert!(tree.check_invariants());
        assert!(!tree.needs_compaction());
        let got: Vec<_> = {
            let mut cur = tree.cursor(&q, None);
            std::iter::from_fn(|| cur.next())
                .map(|n| (n.id, n.dist.to_bits()))
                .collect()
        };
        assert_eq!(want, got, "compaction must not change the stream");
        assert_eq!(
            tree.point(0),
            ds.point(0),
            "historical ids stay addressable"
        );
    }

    #[test]
    fn aux_insert_updates_containment() {
        // 1-NN-distance aux; inserting a new point with its own aux value
        // makes it discoverable by containment queries.
        let ds = random_dataset(120, 2, 16);
        let bf = BruteForce::new(ds.clone(), Euclidean);
        let mut st = SearchStats::new();
        let aux: Vec<f64> = (0..ds.len())
            .map(|i| bf.dk(i, 1, &mut st).unwrap())
            .collect();
        let mut tree = RTree::build_with_aux(ds.clone(), Euclidean, aux);
        let new_point = vec![0.25, 0.25];
        let id = tree.insert_with_aux(&new_point, 10.0).unwrap();
        assert!(tree.check_invariants());
        let hits = tree.aux_containment(&[0.5, 0.5], &mut st);
        assert!(
            hits.iter().any(|n| n.id == id),
            "new point with generous aux must be found"
        );
        assert_eq!(tree.aux_of(id), Some(10.0));
    }

    #[test]
    #[should_panic(expected = "insert_with_aux")]
    fn plain_insert_on_aux_tree_panics() {
        let ds = random_dataset(10, 2, 17);
        let mut tree = RTree::build_with_aux(ds, Euclidean, vec![1.0; 10]);
        let _ = RTree::insert(&mut tree, &[0.0, 0.0]);
    }

    #[test]
    fn aux_containment_finds_self_cover() {
        // aux = 1-NN distance: every point contains its own nearest neighbor
        // ⇒ aux_containment(q) from a dataset point returns its reverse-1NNs.
        let ds = random_dataset(120, 2, 14);
        let bf = BruteForce::new(ds.clone(), Euclidean);
        let mut st = SearchStats::new();
        let aux: Vec<f64> = (0..ds.len())
            .map(|i| bf.dk(i, 1, &mut st).unwrap())
            .collect();
        let tree = RTree::build_with_aux(ds.clone(), Euclidean, aux);
        for q in [0usize, 60, 119] {
            let got: Vec<_> = tree
                .aux_containment(ds.point(q), &mut st)
                .into_iter()
                .filter(|n| n.id != q)
                .map(|n| n.id)
                .collect();
            let want: Vec<_> = bf.rknn(q, 1, &mut st).into_iter().map(|n| n.id).collect();
            assert_eq!(got, want, "q={q}");
        }
    }

    #[test]
    fn empty_and_tiny_trees() {
        let ds = Dataset::from_flat(2, vec![]).unwrap().into_shared();
        let mut tree = RTree::build(ds, Euclidean);
        let mut st = SearchStats::new();
        assert!(tree.knn(&[0.0, 0.0], 3, None, &mut st).is_empty());
        assert_eq!(tree.range_count(&[0.0, 0.0], 1.0, false, None, &mut st), 0);
        // An empty tree accepts inserts.
        let id = tree.insert(&[1.0, 1.0]).unwrap();
        assert_eq!(tree.knn(&[0.0, 0.0], 3, None, &mut st)[0].id, id);

        let ds = Dataset::from_rows(&[vec![1.0, 1.0]]).unwrap().into_shared();
        let tree = RTree::build(ds, Euclidean);
        assert_eq!(tree.knn(&[0.0, 0.0], 3, None, &mut st).len(), 1);
    }
}
