//! The index abstraction RDT and the baselines are written against.

use rknn_core::{CursorScratch, Dataset, Metric, Neighbor, PointId, SearchStats};

/// An incremental nearest-neighbor stream.
///
/// Successive calls to [`NnCursor::next`] return the points of the indexed
/// set in exact nondecreasing order of distance from the query, each exactly
/// once, until the set is exhausted. This is the only capability RDT's
/// expanding filter phase requires of its substrate.
pub trait NnCursor {
    /// The next nearest unreported neighbor, or `None` when exhausted.
    fn next(&mut self) -> Option<Neighbor>;

    /// Work performed by this cursor so far.
    fn stats(&self) -> SearchStats;
}

/// A forward-kNN index over a point set.
///
/// `knn`, `range` and `range_count` have default implementations in terms of
/// the incremental cursor; substrates override them where a direct traversal
/// is cheaper. The `exclude` parameter implements the self-excluding
/// convention of `DESIGN.md` §2 for queries located at dataset points.
///
/// # Choosing a cursor entry point
///
/// Three entry points open the same exact stream; they differ in where the
/// working memory lives and how much the substrate may prune:
///
/// * [`KnnIndex::cursor`] — self-owned buffers, allocated per call. Use for
///   one-off queries and exploratory code; nothing to thread through.
/// * [`KnnIndex::cursor_with`] — fills a caller-owned [`CursorScratch`]
///   instead of allocating. Use whenever one worker issues many queries
///   (batch drivers, verification loops): buffer capacity is amortized
///   across all of them. Stream and distances are bit-identical to
///   [`KnnIndex::cursor`].
/// * [`KnnIndex::cursor_bounded`] — additionally promises the substrate the
///   caller drains at most `limit` entries, unlocking threshold pruning
///   (bounded selection heaps on the sequential scan, emission-frontier
///   pruning in the shared tree traversal core). Use whenever a drain bound
///   is known up front — RDT's filter phase under a fixed scale parameter,
///   or a plain k-nearest drain. The first `limit` entries are identical to
///   the unbounded stream; entries past the bound may be missing.
///
/// All five tree substrates route the three entry points through the
/// generic [`crate::traversal::TreeCursor`], so their statistics are
/// counted uniformly and their scratch reuse comes from the same
/// [`rknn_core::TreeScratch`].
pub trait KnnIndex<M: Metric>: Send + Sync {
    /// Number of live points in the index.
    fn num_points(&self) -> usize;

    /// Whether `id` names a live, queryable point. The default assumes a
    /// dense id space (`0..num_points()`); tombstoning substrates override
    /// it so ids churned in past the live count validate and ids churned
    /// out reject — this is the check serving drivers apply at submit.
    fn has_point(&self, id: PointId) -> bool {
        id < self.num_points()
    }

    /// Dimensionality of the indexed points.
    fn dim(&self) -> usize;

    /// Coordinates of a (live or historical) point id.
    fn point(&self, id: PointId) -> &[f64];

    /// The metric the index was built with.
    fn metric(&self) -> &M;

    /// A human-readable substrate name for experiment reports.
    fn name(&self) -> &'static str;

    /// The indexed points as one contiguous, identity-mapped [`Dataset`]
    /// (`Some` only when ids `0..dataset.len()` are exactly the live points
    /// of this index, in order). Scans over *all* points — ground-truth
    /// passes, all-pairs evaluation — use this to stream the dataset's
    /// padded rows through [`Metric::dist_tile`] instead of calling
    /// [`KnnIndex::point`] per id; the default (`None`) keeps them on the
    /// per-point path.
    fn base_rows(&self) -> Option<&Dataset> {
        None
    }

    /// Opens an incremental nearest-neighbor stream from `q`.
    fn cursor<'a>(&'a self, q: &'a [f64], exclude: Option<PointId>) -> Box<dyn NnCursor + 'a>;

    /// Opens an incremental nearest-neighbor stream from `q`, reusing
    /// caller-owned working memory.
    ///
    /// Substrates that materialize per-query state (the sequential scan's
    /// distance table, for example) override this to fill
    /// `scratch.entries` instead of allocating their own container, so a
    /// batch driver that issues many queries per worker amortizes the
    /// buffer across all of them. The stream contract is identical to
    /// [`KnnIndex::cursor`]; the default implementation simply ignores the
    /// scratch and takes the boxed path.
    fn cursor_with<'a>(
        &'a self,
        q: &'a [f64],
        exclude: Option<PointId>,
        scratch: &'a mut CursorScratch,
    ) -> Box<dyn NnCursor + 'a> {
        let _ = scratch;
        self.cursor(q, exclude)
    }

    /// Opens a nearest-neighbor stream that the caller promises to drain at
    /// most `limit` entries from.
    ///
    /// The stream must yield the `limit` nearest neighbors (fewer when the
    /// index holds fewer) in exact nondecreasing order, and *may* yield
    /// more — the default implementation delegates to
    /// [`KnnIndex::cursor_with`] and yields everything. Substrates can use
    /// the bound to prune: the sequential scan selects only the
    /// `limit`-nearest with a bounded heap, abandoning each candidate's
    /// distance accumulation against the heap threshold
    /// ([`Metric::dist_lt`]). RDT's filter phase under a fixed scale
    /// parameter never drains past its rank cap `⌊2^t·k⌋`, which is
    /// exactly this bound.
    fn cursor_bounded<'a>(
        &'a self,
        q: &'a [f64],
        exclude: Option<PointId>,
        limit: usize,
        scratch: &'a mut CursorScratch,
    ) -> Box<dyn NnCursor + 'a> {
        let _ = limit;
        self.cursor_with(q, exclude, scratch)
    }

    /// The `k` nearest neighbors of `q`, ascending by distance.
    ///
    /// Returns fewer than `k` when the index holds fewer points.
    fn knn(
        &self,
        q: &[f64],
        k: usize,
        exclude: Option<PointId>,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        let mut cur = self.cursor(q, exclude);
        let mut out = Vec::with_capacity(k);
        while out.len() < k {
            match cur.next() {
                Some(n) => out.push(n),
                None => break,
            }
        }
        stats.absorb(&cur.stats());
        out
    }

    /// All neighbors within the closed ball of radius `r`, ascending.
    fn range(
        &self,
        q: &[f64],
        r: f64,
        exclude: Option<PointId>,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        let mut cur = self.cursor(q, exclude);
        let mut out = Vec::new();
        while let Some(n) = cur.next() {
            if n.dist > r {
                break;
            }
            out.push(n);
        }
        stats.absorb(&cur.stats());
        out
    }

    /// Number of points within radius `r` of `q` (`strict` selects the open
    /// ball `d < r`). This is the "count range query" primitive of SFT.
    fn range_count(
        &self,
        q: &[f64],
        r: f64,
        strict: bool,
        exclude: Option<PointId>,
        stats: &mut SearchStats,
    ) -> usize {
        let mut cur = self.cursor(q, exclude);
        let mut count = 0;
        while let Some(n) = cur.next() {
            if (strict && n.dist >= r) || (!strict && n.dist > r) {
                break;
            }
            count += 1;
        }
        stats.absorb(&cur.stats());
        count
    }
}

/// An index supporting online insertion and deletion.
///
/// Removal is by tombstone: the substrate keeps the dead point's
/// coordinates addressable (so [`KnnIndex::point`] stays valid for
/// historical ids) but excludes it from every stream, count, and result.
/// Ids are append-only — an insert never reuses a tombstoned id, and
/// [`DynamicIndex::compact`] never renumbers, so ids remain stable for the
/// lifetime of the index.
pub trait DynamicIndex<M: Metric>: KnnIndex<M> {
    /// Inserts a new point, returning its id.
    fn insert(&mut self, point: &[f64]) -> Result<PointId, rknn_core::CoreError>;

    /// Removes a point; returns whether it was present and live.
    fn remove(&mut self, id: PointId) -> bool;

    /// Rebuilds the navigation structure over the live points only,
    /// unlinking accumulated tombstones from the traversal (their
    /// coordinates stay addressable and their ids stay retired). Query
    /// results are unchanged — compaction only removes dead weight the
    /// tombstone-skipping contract was already filtering. The default is a
    /// no-op, correct for substrates (like the sequential scan) whose scan
    /// cost already degrades gracefully with tombstone count.
    fn compact(&mut self) {}

    /// Whether the substrate's rebuild-threshold policy recommends
    /// [`DynamicIndex::compact`] now (typically: tombstones exceed a fixed
    /// fraction of stored rows, see [`crate::RebuildPolicy`]). Advisory —
    /// callers choose when to pay the rebuild.
    fn needs_compaction(&self) -> bool {
        false
    }
}
