//! A simplified cover tree (Beygelzimer, Kakade & Langford; simplified per
//! Izbicki & Shelton) supporting incremental nearest-neighbor search.
//!
//! This is the substrate the paper uses for all datasets except MNIST and
//! Imagenet (§7.1). Structure is guided by the usual geometric level
//! invariant (`covdist(ℓ) = base^ℓ`); *correctness* of search relies only on
//! the cached `max_dist` of each node — an upper bound on the distance from
//! the node's point to any point in its subtree — so the tree remains exact
//! under the relaxed invariants of insert-based construction.
//!
//! Deletions are handled by tombstoning: removed points keep routing the
//! search but are filtered from results.

use crate::pool::{PointPool, RebuildPolicy};
use crate::traits::{DynamicIndex, KnnIndex, NnCursor};
use crate::traversal::{self, ExpandSink, TreeSubstrate};
use rknn_core::{CoreError, CursorScratch, Dataset, Metric, PointId};
use std::sync::Arc;

/// Configuration for [`CoverTree`].
#[derive(Debug, Clone, Copy)]
pub struct CoverTreeConfig {
    /// Geometric base of the level radii (`covdist(ℓ) = base^ℓ`). The
    /// classic construction uses 2.0; smaller bases (1.3) trade deeper trees
    /// for tighter covers and are the common practical choice.
    pub base: f64,
    /// Seed of the deterministic insertion shuffle used by [`CoverTree::build`].
    pub shuffle_seed: u64,
}

impl Default for CoverTreeConfig {
    fn default() -> Self {
        CoverTreeConfig {
            base: 1.3,
            shuffle_seed: 0x0005_eedc_0de7,
        }
    }
}

#[derive(Debug, Clone)]
struct CtNode {
    point: PointId,
    level: i32,
    /// Upper bound on the distance from `point` to any descendant's point.
    max_dist: f64,
    children: Vec<u32>,
}

/// A simplified cover tree index.
#[derive(Debug, Clone)]
pub struct CoverTree<M: Metric> {
    pool: PointPool,
    metric: M,
    nodes: Vec<CtNode>,
    root: Option<usize>,
    base: f64,
    policy: RebuildPolicy,
    /// Tombstoned points still routing searches — reset by
    /// [`DynamicIndex::compact`], which rebuilds without them.
    stale: usize,
}

/// SplitMix64 step, used for the deterministic build shuffle without pulling
/// a random-number dependency into the index crate.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<M: Metric> CoverTree<M> {
    /// Builds a cover tree over a shared dataset with default configuration.
    pub fn build(ds: Arc<Dataset>, metric: M) -> Self {
        Self::build_with(ds, metric, CoverTreeConfig::default())
    }

    /// Builds a cover tree with explicit configuration.
    pub fn build_with(ds: Arc<Dataset>, metric: M, cfg: CoverTreeConfig) -> Self {
        let n = ds.len();
        let mut tree = CoverTree {
            pool: PointPool::new(ds),
            metric,
            nodes: Vec::with_capacity(n),
            root: None,
            base: cfg.base,
            policy: RebuildPolicy::default(),
            stale: 0,
        };
        // Deterministic Fisher–Yates shuffle of the insertion order: batch
        // construction by repeated insertion balances far better on shuffled
        // input (generators emit points cluster by cluster).
        let mut order: Vec<PointId> = (0..n).collect();
        let mut state = cfg.shuffle_seed;
        for i in (1..n).rev() {
            let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        for id in order {
            tree.attach(id);
        }
        tree
    }

    /// Covering radius at a level.
    #[inline]
    fn covdist(&self, level: i32) -> f64 {
        self.base.powi(level)
    }

    /// Read access to the underlying pool.
    pub fn pool(&self) -> &PointPool {
        &self.pool
    }

    /// Number of tree nodes (one per inserted point).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Attaches an existing pool point to the tree structure.
    fn attach(&mut self, id: PointId) {
        let Some(root) = self.root else {
            self.nodes.push(CtNode {
                point: id,
                level: 0,
                max_dist: 0.0,
                children: Vec::new(),
            });
            self.root = Some(self.nodes.len() - 1);
            return;
        };
        let x = id;
        let d_root = self
            .metric
            .dist(self.pool.point(x), self.pool.point(self.nodes[root].point));
        // Raise the root level until its cover radius reaches the new point.
        while d_root > self.covdist(self.nodes[root].level) {
            self.nodes[root].level += 1;
        }
        // Descend to the nearest covering child, maintaining max_dist along
        // the path (the new point becomes a descendant of every node on it).
        let mut cur = root;
        let mut d_cur = d_root;
        loop {
            if d_cur > self.nodes[cur].max_dist {
                self.nodes[cur].max_dist = d_cur;
            }
            let mut best: Option<(usize, f64)> = None;
            for ci in 0..self.nodes[cur].children.len() {
                let child = self.nodes[cur].children[ci] as usize;
                let d = self
                    .metric
                    .dist(self.pool.point(x), self.pool.point(self.nodes[child].point));
                if d <= self.covdist(self.nodes[child].level)
                    && best.map(|(_, bd)| d < bd).unwrap_or(true)
                {
                    best = Some((child, d));
                }
            }
            match best {
                Some((child, d)) => {
                    cur = child;
                    d_cur = d;
                }
                None => {
                    let level = self.nodes[cur].level - 1;
                    self.nodes.push(CtNode {
                        point: x,
                        level,
                        max_dist: 0.0,
                        children: Vec::new(),
                    });
                    let new_idx = (self.nodes.len() - 1) as u32;
                    self.nodes[cur].children.push(new_idx);
                    return;
                }
            }
        }
    }

    /// Checks the `max_dist` invariant over the whole tree (test support):
    /// every node's cached radius bounds the distance to each descendant.
    #[doc(hidden)]
    pub fn check_invariants(&self) -> bool {
        let Some(root) = self.root else {
            return self.nodes.is_empty();
        };
        let mut stack = vec![root];
        while let Some(i) = stack.pop() {
            let here = self.pool.point(self.nodes[i].point);
            // Walk this node's entire subtree.
            let mut sub = vec![i];
            while let Some(j) = sub.pop() {
                let d = self.metric.dist(here, self.pool.point(self.nodes[j].point));
                if d > self.nodes[i].max_dist + 1e-9 {
                    return false;
                }
                sub.extend(self.nodes[j].children.iter().map(|&c| c as usize));
            }
            stack.extend(self.nodes[i].children.iter().map(|&c| c as usize));
        }
        true
    }
}

impl<M: Metric> TreeSubstrate<M> for CoverTree<M> {
    fn metric(&self) -> &M {
        &self.metric
    }

    fn coords(&self, id: PointId) -> &[f64] {
        self.pool.point(id)
    }

    fn is_emittable(&self, id: PointId) -> bool {
        self.pool.is_alive(id)
    }

    fn seed(&self, sink: &mut ExpandSink<'_, M, Self>) {
        if let Some(root) = self.root {
            let node = &self.nodes[root];
            if let Some(d) = sink.pivot(node.point, node.max_dist) {
                sink.child(root, (d - node.max_dist).max(0.0), d);
            }
        }
    }

    fn expand(&self, id: usize, d_pivot: f64, sink: &mut ExpandSink<'_, M, Self>) {
        // Every node carries a point; its exact distance was evaluated when
        // the node was queued by its parent (or the seed).
        let node = &self.nodes[id];
        sink.point_at(node.point, d_pivot);
        for &c in &node.children {
            let child = &self.nodes[c as usize];
            if let Some(d) = sink.pivot(child.point, child.max_dist) {
                sink.child(c as usize, (d - child.max_dist).max(0.0), d);
            }
        }
    }
}

impl<M: Metric> KnnIndex<M> for CoverTree<M> {
    fn num_points(&self) -> usize {
        self.pool.live()
    }

    fn has_point(&self, id: PointId) -> bool {
        self.pool.is_alive(id)
    }

    fn dim(&self) -> usize {
        self.pool.dim()
    }

    fn point(&self, id: PointId) -> &[f64] {
        self.pool.point(id)
    }

    fn metric(&self) -> &M {
        &self.metric
    }

    fn name(&self) -> &'static str {
        "cover-tree"
    }

    fn cursor<'a>(&'a self, q: &'a [f64], exclude: Option<PointId>) -> Box<dyn NnCursor + 'a> {
        traversal::tree_cursor(self, q, exclude)
    }

    fn cursor_with<'a>(
        &'a self,
        q: &'a [f64],
        exclude: Option<PointId>,
        scratch: &'a mut CursorScratch,
    ) -> Box<dyn NnCursor + 'a> {
        traversal::tree_cursor_with(self, q, exclude, scratch)
    }

    fn cursor_bounded<'a>(
        &'a self,
        q: &'a [f64],
        exclude: Option<PointId>,
        limit: usize,
        scratch: &'a mut CursorScratch,
    ) -> Box<dyn NnCursor + 'a> {
        traversal::tree_cursor_bounded(self, q, exclude, limit, scratch)
    }
}

impl<M: Metric> DynamicIndex<M> for CoverTree<M> {
    fn insert(&mut self, point: &[f64]) -> Result<PointId, CoreError> {
        let id = self.pool.insert(point)?;
        self.attach(id);
        Ok(id)
    }

    fn remove(&mut self, id: PointId) -> bool {
        let removed = self.pool.remove(id);
        self.stale += usize::from(removed);
        removed
    }

    fn compact(&mut self) {
        self.nodes.clear();
        self.root = None;
        // Re-attach live points in id order: deterministic, and churn has
        // already decorrelated the order the batch build's shuffle exists
        // to create.
        let live: Vec<PointId> = self.pool.iter_live().map(|(id, _)| id).collect();
        for id in live {
            self.attach(id);
        }
        self.stale = 0;
    }

    fn needs_compaction(&self) -> bool {
        self.policy.recommends_counts(self.stale, self.pool.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknn_core::{BruteForce, Euclidean, SearchStats};

    fn random_dataset(n: usize, dim: usize, seed: u64) -> Arc<Dataset> {
        let mut state = seed;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = Vec::with_capacity(dim);
            for _ in 0..dim {
                row.push((splitmix64(&mut state) as f64 / u64::MAX as f64) * 10.0 - 5.0);
            }
            rows.push(row);
        }
        Dataset::from_rows(&rows).unwrap().into_shared()
    }

    #[test]
    fn invariants_hold_after_build() {
        let ds = random_dataset(300, 3, 1);
        let tree = CoverTree::build(ds, Euclidean);
        assert_eq!(tree.node_count(), 300);
        assert!(tree.check_invariants());
    }

    #[test]
    fn cursor_matches_brute_force_order() {
        let ds = random_dataset(200, 4, 2);
        let tree = CoverTree::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds.clone(), Euclidean);
        let q = ds.point(17).to_vec();
        let mut st = SearchStats::new();
        let want = bf.knn(&q, 200, None, &mut st);
        let mut cur = tree.cursor(&q, None);
        let got: Vec<_> = std::iter::from_fn(|| cur.next()).collect();
        assert_eq!(got.len(), want.len());
        let mut prev = 0.0;
        for (g, w) in got.iter().zip(&want) {
            assert!(g.dist >= prev - 1e-12, "nondecreasing order");
            prev = g.dist;
            assert!(
                (g.dist - w.dist).abs() < 1e-9,
                "distance sequence matches brute force"
            );
        }
    }

    #[test]
    fn knn_exact_vs_brute_force() {
        let ds = random_dataset(500, 6, 3);
        let tree = CoverTree::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds.clone(), Euclidean);
        for qi in [0usize, 13, 99, 499] {
            let mut st1 = SearchStats::new();
            let mut st2 = SearchStats::new();
            let got = tree.knn(ds.point(qi), 10, Some(qi), &mut st1);
            let want = bf.knn(ds.point(qi), 10, Some(qi), &mut st2);
            for (g, w) in got.iter().zip(&want) {
                assert!((g.dist - w.dist).abs() < 1e-9);
            }
            assert!(
                st1.dist_computations <= st2.dist_computations,
                "tree should not do more distance work than a scan on easy data"
            );
        }
    }

    #[test]
    fn dynamic_insert_then_query() {
        let ds = random_dataset(50, 2, 4);
        let mut tree = CoverTree::build(ds, Euclidean);
        let id = tree.insert(&[100.0, 100.0]).unwrap();
        assert!(tree.check_invariants());
        let mut st = SearchStats::new();
        let nn = tree.knn(&[101.0, 101.0], 1, None, &mut st);
        assert_eq!(nn[0].id, id);
    }

    #[test]
    fn remove_hides_point_but_routes() {
        let ds = random_dataset(50, 2, 5);
        let mut tree = CoverTree::build(ds.clone(), Euclidean);
        let victim = 7;
        assert!(tree.remove(victim));
        let mut st = SearchStats::new();
        let all = tree.knn(ds.point(victim), 50, None, &mut st);
        assert_eq!(all.len(), 49);
        assert!(all.iter().all(|n| n.id != victim));
    }

    #[test]
    fn duplicates_are_handled() {
        let rows = vec![vec![1.0, 1.0]; 20];
        let ds = Dataset::from_rows(&rows).unwrap().into_shared();
        let tree = CoverTree::build(ds, Euclidean);
        assert!(tree.check_invariants());
        let mut cur = tree.cursor(&[1.0, 1.0], None);
        let got: Vec<_> = std::iter::from_fn(|| cur.next()).collect();
        assert_eq!(got.len(), 20);
        assert!(got.iter().all(|n| n.dist == 0.0));
    }

    #[test]
    fn compact_preserves_results_and_resets_policy() {
        let ds = random_dataset(300, 3, 9);
        let mut tree = CoverTree::build(ds.clone(), Euclidean);
        for _ in 0..20 {
            tree.insert(&[50.0, 50.0, 50.0]).unwrap();
        }
        for id in (0..320).step_by(3) {
            assert!(tree.remove(id));
        }
        assert!(tree.needs_compaction());
        let q = ds.point(2).to_vec();
        let want: Vec<_> = {
            let mut cur = tree.cursor(&q, None);
            std::iter::from_fn(|| cur.next())
                .map(|n| (n.id, n.dist.to_bits()))
                .collect()
        };
        tree.compact();
        assert!(tree.check_invariants());
        assert!(!tree.needs_compaction());
        assert_eq!(tree.node_count(), tree.num_points());
        let got: Vec<_> = {
            let mut cur = tree.cursor(&q, None);
            std::iter::from_fn(|| cur.next())
                .map(|n| (n.id, n.dist.to_bits()))
                .collect()
        };
        assert_eq!(want, got, "compaction must not change the stream");
        assert_eq!(
            tree.point(0),
            ds.point(0),
            "historical ids stay addressable"
        );
    }

    #[test]
    fn range_queries_via_default_impl() {
        let ds = random_dataset(300, 3, 6);
        let tree = CoverTree::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds.clone(), Euclidean);
        let q = ds.point(0).to_vec();
        let mut st = SearchStats::new();
        let r = 2.5;
        let got = tree.range(&q, r, Some(0), &mut st);
        let want: Vec<_> = bf
            .knn(&q, 300, Some(0), &mut st)
            .into_iter()
            .filter(|n| n.dist <= r)
            .collect();
        assert_eq!(got.len(), want.len());
        assert_eq!(tree.range_count(&q, r, false, Some(0), &mut st), want.len(),);
    }
}
