//! An M-tree (Ciaccia, Patella & Zezula) for general metric spaces.
//!
//! The substrate of the MRkNNCoP baseline \[3\], which indexes objects in an
//! M-tree and aggregates per-subtree pruning information. Nodes hold routing
//! entries `(pivot, covering radius, distance to parent)`; search prunes
//! subtrees whose covering ball cannot intersect the query region.
//!
//! Construction is insertion-based with max-spread promotion and generalized
//! hyperplane partitioning. Covering radii are maintained conservatively
//! (upper bounds), which preserves exactness of every query.

use crate::traits::{KnnIndex, NnCursor};
use crate::traversal::{self, ExpandSink, TreeSubstrate};
use rknn_core::{CursorScratch, Dataset, Metric, PointId};
use std::sync::Arc;

/// A routing or leaf entry.
#[derive(Debug, Clone)]
pub struct MEntry {
    /// The routing object (a dataset point).
    pub pivot: PointId,
    /// Covering radius: upper bound on `d(pivot, x)` for all `x` in the
    /// subtree (0 for leaf entries).
    pub radius: f64,
    /// Child node for routing entries, `None` for leaf entries.
    pub child: Option<usize>,
}

/// A node: either a leaf of point entries or an internal node of routing
/// entries.
#[derive(Debug, Clone)]
pub struct MNode {
    /// Whether this node's entries are points (leaf) or routers.
    pub is_leaf: bool,
    /// The entries.
    pub entries: Vec<MEntry>,
}

/// An M-tree over a shared dataset.
#[derive(Debug, Clone)]
pub struct MTree<M: Metric> {
    ds: Arc<Dataset>,
    metric: M,
    nodes: Vec<MNode>,
    root: usize,
    capacity: usize,
}

const DEFAULT_CAPACITY: usize = 16;

impl<M: Metric> MTree<M> {
    /// Builds an M-tree by repeated insertion with default node capacity.
    pub fn build(ds: Arc<Dataset>, metric: M) -> Self {
        Self::build_with(ds, metric, DEFAULT_CAPACITY)
    }

    /// Builds with explicit node capacity (≥ 4).
    pub fn build_with(ds: Arc<Dataset>, metric: M, capacity: usize) -> Self {
        assert!(capacity >= 4, "M-tree capacity must be at least 4");
        let mut tree = MTree {
            ds: ds.clone(),
            metric,
            nodes: vec![MNode {
                is_leaf: true,
                entries: Vec::new(),
            }],
            root: 0,
            capacity,
        };
        for id in 0..ds.len() {
            tree.insert(id);
        }
        tree
    }

    /// Root node id (read-only node API for baseline traversals).
    pub fn root_id(&self) -> usize {
        self.root
    }

    /// A node by id.
    pub fn node(&self, id: usize) -> &MNode {
        &self.nodes[id]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn insert(&mut self, p: PointId) {
        if let Some((e1, e2)) = self.insert_rec(self.root, p) {
            // Root split: grow the tree by one level.
            let new_root = MNode {
                is_leaf: false,
                entries: vec![e1, e2],
            };
            self.nodes.push(new_root);
            self.root = self.nodes.len() - 1;
        }
    }

    /// Inserts into the subtree rooted at `node`; returns replacement
    /// entries if the node split.
    fn insert_rec(&mut self, node: usize, p: PointId) -> Option<(MEntry, MEntry)> {
        if self.nodes[node].is_leaf {
            self.nodes[node].entries.push(MEntry {
                pivot: p,
                radius: 0.0,
                child: None,
            });
            if self.nodes[node].entries.len() > self.capacity {
                return Some(self.split(node));
            }
            return None;
        }
        // Choose the routing entry with minimum distance to p, preferring
        // entries that need no radius enlargement.
        let pp = self.ds.point(p);
        let mut best: Option<(usize, f64, f64)> = None; // (entry idx, dist, enlargement)
        for (i, e) in self.nodes[node].entries.iter().enumerate() {
            let d = self.metric.dist(pp, self.ds.point(e.pivot));
            let enl = (d - e.radius).max(0.0);
            let better = match best {
                None => true,
                Some((_, bd, benl)) => (enl, d) < (benl, bd),
            };
            if better {
                best = Some((i, d, enl));
            }
        }
        let (idx, d, _) = best.expect("internal M-tree node cannot be empty");
        // Maintain the covering radius along the path.
        {
            let e = &mut self.nodes[node].entries[idx];
            if d > e.radius {
                e.radius = d;
            }
        }
        let child = self.nodes[node].entries[idx]
            .child
            .expect("routing entry must have a child");
        if let Some((e1, e2)) = self.insert_rec(child, p) {
            self.nodes[node].entries.swap_remove(idx);
            self.nodes[node].entries.push(e1);
            self.nodes[node].entries.push(e2);
            if self.nodes[node].entries.len() > self.capacity {
                return Some(self.split(node));
            }
        }
        None
    }

    /// Splits an overflowing node; returns the two routing entries that
    /// replace it in the parent.
    fn split(&mut self, node: usize) -> (MEntry, MEntry) {
        let entries = std::mem::take(&mut self.nodes[node].entries);
        let is_leaf = self.nodes[node].is_leaf;
        // Promotion: first pivot = first entry, second = farthest from it
        // (a linear-cost approximation of the max-spread "mM_RAD" policy).
        let p1 = entries[0].pivot;
        let mut p2 = entries[1].pivot;
        let mut best = f64::NEG_INFINITY;
        for e in &entries[1..] {
            let d = self.metric.dist(self.ds.point(p1), self.ds.point(e.pivot));
            if d > best {
                best = d;
                p2 = e.pivot;
            }
        }
        // Generalized hyperplane partition.
        let mut g1: Vec<MEntry> = Vec::new();
        let mut g2: Vec<MEntry> = Vec::new();
        let mut r1 = 0.0f64;
        let mut r2 = 0.0f64;
        for e in entries {
            let d1 = self.metric.dist(self.ds.point(p1), self.ds.point(e.pivot));
            let d2 = self.metric.dist(self.ds.point(p2), self.ds.point(e.pivot));
            // Covering radius must include the entry's own radius.
            if d1 <= d2 {
                r1 = r1.max(d1 + e.radius);
                g1.push(e);
            } else {
                r2 = r2.max(d2 + e.radius);
                g2.push(e);
            }
        }
        // Guard degenerate partitions (all points identical): rebalance by
        // moving half over.
        if g2.is_empty() {
            let half = g1.len() / 2;
            g2 = g1.split_off(half);
            r2 = g2
                .iter()
                .map(|e| self.metric.dist(self.ds.point(p2), self.ds.point(e.pivot)) + e.radius)
                .fold(0.0, f64::max);
        } else if g1.is_empty() {
            let half = g2.len() / 2;
            g1 = g2.split_off(half);
            r1 = g1
                .iter()
                .map(|e| self.metric.dist(self.ds.point(p1), self.ds.point(e.pivot)) + e.radius)
                .fold(0.0, f64::max);
        }
        self.nodes[node] = MNode {
            is_leaf,
            entries: g1,
        };
        self.nodes.push(MNode {
            is_leaf,
            entries: g2,
        });
        let n2 = self.nodes.len() - 1;
        (
            MEntry {
                pivot: p1,
                radius: r1,
                child: Some(node),
            },
            MEntry {
                pivot: p2,
                radius: r2,
                child: Some(n2),
            },
        )
    }

    /// Checks covering-radius invariants over the whole tree (test support).
    #[doc(hidden)]
    pub fn check_invariants(&self) -> bool {
        self.check_node(self.root)
    }

    fn check_node(&self, node: usize) -> bool {
        let n = &self.nodes[node];
        if n.is_leaf {
            return n
                .entries
                .iter()
                .all(|e| e.child.is_none() && e.radius == 0.0);
        }
        for e in n.entries.iter() {
            let Some(child) = e.child else { return false };
            // Every point in the child subtree must lie within e.radius.
            let mut stack = vec![child];
            while let Some(c) = stack.pop() {
                for ce in &self.nodes[c].entries {
                    let d = self
                        .metric
                        .dist(self.ds.point(e.pivot), self.ds.point(ce.pivot));
                    if d > e.radius + 1e-9 {
                        return false;
                    }
                    if let Some(cc) = ce.child {
                        stack.push(cc);
                    }
                }
            }
            if !self.check_node(child) {
                return false;
            }
        }
        true
    }
}

impl<M: Metric> TreeSubstrate<M> for MTree<M> {
    fn metric(&self) -> &M {
        &self.metric
    }

    fn coords(&self, id: PointId) -> &[f64] {
        self.ds.point(id)
    }

    fn seed(&self, sink: &mut ExpandSink<'_, M, Self>) {
        if !self.ds.is_empty() {
            sink.child(self.root, 0.0, f64::NAN);
        }
    }

    fn expand(&self, id: usize, _d_pivot: f64, sink: &mut ExpandSink<'_, M, Self>) {
        // Routing objects also appear as leaf entries, so only leaf entries
        // are emitted as points.
        for e in &self.nodes[id].entries {
            match e.child {
                None => sink.point(e.pivot),
                Some(c) => {
                    if let Some(d) = sink.pivot(e.pivot, e.radius) {
                        sink.child(c, (d - e.radius).max(0.0), d);
                    }
                }
            }
        }
    }
}

impl<M: Metric> KnnIndex<M> for MTree<M> {
    fn num_points(&self) -> usize {
        self.ds.len()
    }

    fn dim(&self) -> usize {
        self.ds.dim()
    }

    fn point(&self, id: PointId) -> &[f64] {
        self.ds.point(id)
    }

    fn metric(&self) -> &M {
        &self.metric
    }

    fn name(&self) -> &'static str {
        "m-tree"
    }

    fn cursor<'a>(&'a self, q: &'a [f64], exclude: Option<PointId>) -> Box<dyn NnCursor + 'a> {
        traversal::tree_cursor(self, q, exclude)
    }

    fn cursor_with<'a>(
        &'a self,
        q: &'a [f64],
        exclude: Option<PointId>,
        scratch: &'a mut CursorScratch,
    ) -> Box<dyn NnCursor + 'a> {
        traversal::tree_cursor_with(self, q, exclude, scratch)
    }

    fn cursor_bounded<'a>(
        &'a self,
        q: &'a [f64],
        exclude: Option<PointId>,
        limit: usize,
        scratch: &'a mut CursorScratch,
    ) -> Box<dyn NnCursor + 'a> {
        traversal::tree_cursor_bounded(self, q, exclude, limit, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknn_core::{BruteForce, Euclidean, Manhattan, SearchStats};

    fn random_dataset(n: usize, dim: usize, seed: u64) -> Arc<Dataset> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| next() * 10.0 - 5.0).collect())
            .collect();
        Dataset::from_rows(&rows).unwrap().into_shared()
    }

    #[test]
    fn invariants_hold_after_build() {
        let ds = random_dataset(400, 3, 21);
        let tree = MTree::build(ds, Euclidean);
        assert!(tree.check_invariants());
        assert!(tree.node_count() > 1, "tree actually split");
    }

    #[test]
    fn cursor_is_complete_ordered_and_exact() {
        let ds = random_dataset(350, 4, 22);
        let tree = MTree::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds.clone(), Euclidean);
        let q = ds.point(100).to_vec();
        let want = bf.knn(&q, 350, None, &mut SearchStats::new());
        let mut cur = tree.cursor(&q, None);
        let got: Vec<_> = std::iter::from_fn(|| cur.next()).collect();
        assert_eq!(got.len(), 350);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.dist - w.dist).abs() < 1e-9);
        }
    }

    #[test]
    fn works_with_non_euclidean_metric() {
        let ds = random_dataset(200, 6, 23);
        let tree = MTree::build(ds.clone(), Manhattan);
        let bf = BruteForce::new(ds.clone(), Manhattan);
        let mut st = SearchStats::new();
        let got = tree.knn(ds.point(0), 15, Some(0), &mut st);
        let want = bf.knn(ds.point(0), 15, Some(0), &mut SearchStats::new());
        for (g, w) in got.iter().zip(&want) {
            assert!((g.dist - w.dist).abs() < 1e-9);
        }
    }

    #[test]
    fn duplicate_points_split_safely() {
        let ds = Dataset::from_rows(&vec![vec![3.0, 3.0]; 100])
            .unwrap()
            .into_shared();
        let tree = MTree::build(ds, Euclidean);
        assert!(tree.check_invariants());
        let mut cur = tree.cursor(&[3.0, 3.0], None);
        assert_eq!(std::iter::from_fn(|| cur.next()).count(), 100);
    }

    #[test]
    fn empty_tree_queries() {
        let ds = Dataset::from_flat(2, vec![]).unwrap().into_shared();
        let tree = MTree::build(ds, Euclidean);
        let mut st = SearchStats::new();
        assert!(tree.knn(&[0.0, 0.0], 5, None, &mut st).is_empty());
    }
}
