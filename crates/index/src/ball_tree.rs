//! A ball tree with data-point pivots, for general metric spaces.
//!
//! A sixth substrate beyond the paper's two (§7.1): like the M-tree it
//! covers subtrees with metric balls, but it is built statically top-down
//! by splitting on approximate farthest pairs ("poles"), which yields
//! tighter balls than insertion-based construction. Included to broaden
//! the substrate-agreement tests and as another drop-in backend for RDT.

use crate::traits::{KnnIndex, NnCursor};
use crate::traversal::{self, ExpandSink, TreeSubstrate};
use rknn_core::{CursorScratch, Dataset, Metric, PointId};
use std::sync::Arc;

const LEAF_SIZE: usize = 16;

#[derive(Debug, Clone)]
struct BallNode {
    /// Covering pivot (a dataset point).
    pivot: PointId,
    /// Upper bound on `d(pivot, x)` for all `x` in the subtree.
    radius: f64,
    /// Children node ids, or `None` for leaves.
    children: Option<(usize, usize)>,
    /// Leaf points (empty for internal nodes).
    points: Vec<PointId>,
}

/// A static ball tree.
#[derive(Debug, Clone)]
pub struct BallTree<M: Metric> {
    ds: Arc<Dataset>,
    metric: M,
    nodes: Vec<BallNode>,
    root: Option<usize>,
}

impl<M: Metric> BallTree<M> {
    /// Builds a ball tree over a shared dataset.
    pub fn build(ds: Arc<Dataset>, metric: M) -> Self {
        let mut tree = BallTree {
            ds: ds.clone(),
            metric,
            nodes: Vec::new(),
            root: None,
        };
        let mut ids: Vec<PointId> = (0..ds.len()).collect();
        tree.root = tree.build_rec(&mut ids);
        tree
    }

    fn dist(&self, a: PointId, b: PointId) -> f64 {
        self.metric.dist(self.ds.point(a), self.ds.point(b))
    }

    fn build_rec(&mut self, ids: &mut [PointId]) -> Option<usize> {
        if ids.is_empty() {
            return None;
        }
        // Pole selection: farthest from an arbitrary seed, then farthest
        // from that — a linear-time approximation of the diameter pair.
        let seed = ids[0];
        let pole1 = *ids
            .iter()
            .max_by(|&&a, &&b| {
                self.dist(seed, a)
                    .partial_cmp(&self.dist(seed, b))
                    .expect("finite")
            })
            .expect("non-empty");
        let radius_of = |tree: &Self, pivot: PointId, ids: &[PointId]| {
            ids.iter()
                .map(|&x| tree.dist(pivot, x))
                .fold(0.0f64, f64::max)
        };
        if ids.len() <= LEAF_SIZE {
            let radius = radius_of(self, pole1, ids);
            self.nodes.push(BallNode {
                pivot: pole1,
                radius,
                children: None,
                points: ids.to_vec(),
            });
            return Some(self.nodes.len() - 1);
        }
        let pole2 = *ids
            .iter()
            .max_by(|&&a, &&b| {
                self.dist(pole1, a)
                    .partial_cmp(&self.dist(pole1, b))
                    .expect("finite")
            })
            .expect("non-empty");
        // Partition by nearer pole; ties to pole1.
        let mut near: Vec<PointId> = Vec::new();
        let mut far: Vec<PointId> = Vec::new();
        for &x in ids.iter() {
            if self.dist(pole1, x) <= self.dist(pole2, x) {
                near.push(x);
            } else {
                far.push(x);
            }
        }
        // Degenerate partitions (all points identical) fall back to a
        // balanced split.
        if near.is_empty() || far.is_empty() {
            let mut all: Vec<PointId> = ids.to_vec();
            let half = all.len() / 2;
            far = all.split_off(half);
            near = all;
        }
        let radius = radius_of(self, pole1, ids);
        let left = self.build_rec(&mut near).expect("non-empty side");
        let right = self.build_rec(&mut far).expect("non-empty side");
        self.nodes.push(BallNode {
            pivot: pole1,
            radius,
            children: Some((left, right)),
            points: Vec::new(),
        });
        Some(self.nodes.len() - 1)
    }

    /// Number of tree nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Checks ball-covering invariants and exactly-once leaf placement
    /// (test support).
    #[doc(hidden)]
    pub fn check_invariants(&self) -> bool {
        let Some(root) = self.root else {
            return self.ds.is_empty();
        };
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            // Every point in the subtree is inside the node's ball.
            let mut sub = vec![id];
            while let Some(j) = sub.pop() {
                let n = &self.nodes[j];
                for &p in &n.points {
                    if self.dist(node.pivot, p) > node.radius + 1e-9 {
                        return false;
                    }
                }
                if let Some((l, r)) = n.children {
                    sub.push(l);
                    sub.push(r);
                }
            }
            match node.children {
                Some((l, r)) => {
                    if !node.points.is_empty() {
                        return false;
                    }
                    stack.push(l);
                    stack.push(r);
                }
                None => {
                    for &p in &node.points {
                        if !seen.insert(p) {
                            return false;
                        }
                    }
                }
            }
        }
        seen.len() == self.ds.len()
    }
}

impl<M: Metric> TreeSubstrate<M> for BallTree<M> {
    fn metric(&self) -> &M {
        &self.metric
    }

    fn coords(&self, id: PointId) -> &[f64] {
        self.ds.point(id)
    }

    fn seed(&self, sink: &mut ExpandSink<'_, M, Self>) {
        if let Some(root) = self.root {
            let node = &self.nodes[root];
            if let Some(d) = sink.pivot(node.pivot, node.radius) {
                sink.child(root, (d - node.radius).max(0.0), d);
            }
        }
    }

    fn expand(&self, id: usize, _d_pivot: f64, sink: &mut ExpandSink<'_, M, Self>) {
        // Pivots are leaf points too, so they are emitted via their leaf,
        // never at expansion.
        let node = &self.nodes[id];
        match node.children {
            None => {
                for &p in &node.points {
                    sink.point(p);
                }
            }
            Some((l, r)) => {
                for c in [l, r] {
                    let child = &self.nodes[c];
                    if let Some(d) = sink.pivot(child.pivot, child.radius) {
                        sink.child(c, (d - child.radius).max(0.0), d);
                    }
                }
            }
        }
    }
}

impl<M: Metric> KnnIndex<M> for BallTree<M> {
    fn num_points(&self) -> usize {
        self.ds.len()
    }

    fn dim(&self) -> usize {
        self.ds.dim()
    }

    fn point(&self, id: PointId) -> &[f64] {
        self.ds.point(id)
    }

    fn metric(&self) -> &M {
        &self.metric
    }

    fn name(&self) -> &'static str {
        "ball-tree"
    }

    fn cursor<'a>(&'a self, q: &'a [f64], exclude: Option<PointId>) -> Box<dyn NnCursor + 'a> {
        traversal::tree_cursor(self, q, exclude)
    }

    fn cursor_with<'a>(
        &'a self,
        q: &'a [f64],
        exclude: Option<PointId>,
        scratch: &'a mut CursorScratch,
    ) -> Box<dyn NnCursor + 'a> {
        traversal::tree_cursor_with(self, q, exclude, scratch)
    }

    fn cursor_bounded<'a>(
        &'a self,
        q: &'a [f64],
        exclude: Option<PointId>,
        limit: usize,
        scratch: &'a mut CursorScratch,
    ) -> Box<dyn NnCursor + 'a> {
        traversal::tree_cursor_bounded(self, q, exclude, limit, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknn_core::{BruteForce, Chebyshev, Euclidean, SearchStats};

    fn random_dataset(n: usize, dim: usize, seed: u64) -> Arc<Dataset> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| next() * 10.0 - 5.0).collect())
            .collect();
        Dataset::from_rows(&rows).unwrap().into_shared()
    }

    #[test]
    fn invariants_after_build() {
        let ds = random_dataset(500, 4, 31);
        let tree = BallTree::build(ds, Euclidean);
        assert!(tree.check_invariants());
        assert!(tree.node_count() > 1);
    }

    #[test]
    fn cursor_is_exact_complete_and_ordered() {
        let ds = random_dataset(333, 3, 32);
        let tree = BallTree::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds.clone(), Euclidean);
        let q = ds.point(7).to_vec();
        let want = bf.knn(&q, 333, None, &mut SearchStats::new());
        let mut cur = tree.cursor(&q, None);
        let got: Vec<_> = std::iter::from_fn(|| cur.next()).collect();
        assert_eq!(got.len(), 333);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.dist - w.dist).abs() < 1e-9);
        }
    }

    #[test]
    fn works_in_chebyshev_metric() {
        let ds = random_dataset(250, 5, 33);
        let tree = BallTree::build(ds.clone(), Chebyshev);
        let bf = BruteForce::new(ds.clone(), Chebyshev);
        let mut st = SearchStats::new();
        let got = tree.knn(ds.point(3), 9, Some(3), &mut st);
        let want = bf.knn(ds.point(3), 9, Some(3), &mut SearchStats::new());
        for (g, w) in got.iter().zip(&want) {
            assert!((g.dist - w.dist).abs() < 1e-9);
        }
    }

    #[test]
    fn prunes_on_clustered_data() {
        let mut rows = Vec::new();
        for c in 0..8 {
            for i in 0..100 {
                rows.push(vec![c as f64 * 1000.0 + (i % 10) as f64, (i / 10) as f64]);
            }
        }
        let ds = Dataset::from_rows(&rows).unwrap().into_shared();
        let tree = BallTree::build(ds.clone(), Euclidean);
        let mut st = SearchStats::new();
        let _ = tree.knn(ds.point(5), 10, Some(5), &mut st);
        assert!(
            st.dist_computations < 400,
            "distant clusters should be pruned: {} dists",
            st.dist_computations
        );
    }

    #[test]
    fn degenerate_inputs() {
        let ds = Dataset::from_rows(&vec![vec![2.0, 2.0]; 50])
            .unwrap()
            .into_shared();
        let tree = BallTree::build(ds, Euclidean);
        assert!(tree.check_invariants());
        let mut cur = tree.cursor(&[0.0, 0.0], None);
        assert_eq!(std::iter::from_fn(|| cur.next()).count(), 50);

        let empty = Dataset::from_flat(2, vec![]).unwrap().into_shared();
        let tree = BallTree::build(empty, Euclidean);
        let mut st = SearchStats::new();
        assert!(tree.knn(&[0.0, 0.0], 3, None, &mut st).is_empty());
    }
}
