//! Property-based structural tests for every index under random builds and
//! updates.

use proptest::prelude::*;
use rknn_core::{BruteForce, Dataset, Euclidean, SearchStats};
use rknn_index::{BallTree, CoverTree, DynamicIndex, KnnIndex, LinearScan, MTree, RTree, VpTree};

fn arb_points(dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(-100.0f64..100.0, dim), 5..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Every substrate's cursor is a complete, duplicate-free,
    /// nondecreasing permutation of the dataset.
    #[test]
    fn cursors_enumerate_everything_in_order(pts in arb_points(3), qi in 0usize..120) {
        let ds = Dataset::from_rows(&pts).unwrap().into_shared();
        let q = ds.point(qi % ds.len()).to_vec();
        let cover = CoverTree::build(ds.clone(), Euclidean);
        let vp = VpTree::build(ds.clone(), Euclidean);
        let rtree = RTree::build(ds.clone(), Euclidean);
        let mtree = MTree::build(ds.clone(), Euclidean);
        let scan = LinearScan::build(ds.clone(), Euclidean);
        let check = |mut cur: Box<dyn rknn_index::NnCursor + '_>, name: &str| {
            let mut seen = std::collections::HashSet::new();
            let mut prev = 0.0f64;
            let mut count = 0usize;
            while let Some(n) = cur.next() {
                assert!(seen.insert(n.id), "{name}: duplicate {}", n.id);
                assert!(n.dist >= prev - 1e-12, "{name}: order violated");
                prev = n.dist;
                count += 1;
            }
            assert_eq!(count, ds.len(), "{name}: incomplete");
        };
        let ball = BallTree::build(ds.clone(), Euclidean);
        check(cover.cursor(&q, None), "cover");
        check(ball.cursor(&q, None), "ball");
        check(vp.cursor(&q, None), "vp");
        check(rtree.cursor(&q, None), "rtree");
        check(mtree.cursor(&q, None), "mtree");
        check(scan.cursor(&q, None), "scan");
    }

    /// Structural invariants hold after random builds.
    #[test]
    fn invariants_after_build(pts in arb_points(2)) {
        let ds = Dataset::from_rows(&pts).unwrap().into_shared();
        prop_assert!(CoverTree::build(ds.clone(), Euclidean).check_invariants());
        prop_assert!(MTree::build(ds.clone(), Euclidean).check_invariants());
        prop_assert!(RTree::build(ds.clone(), Euclidean).check_invariants());
        prop_assert!(BallTree::build(ds.clone(), Euclidean).check_invariants());
    }

    /// Invariants survive random insert/remove churn on the dynamic
    /// indexes, and the post-churn kNN answers agree across them.
    #[test]
    fn invariants_after_churn(
        pts in arb_points(2),
        extra in proptest::collection::vec(proptest::collection::vec(-100.0f64..100.0, 2), 1..25),
        removals in proptest::collection::vec(0usize..40, 0..10),
    ) {
        let ds = Dataset::from_rows(&pts).unwrap().into_shared();
        let mut cover = CoverTree::build(ds.clone(), Euclidean);
        let mut rtree = RTree::build_with(ds.clone(), Euclidean, 4, None);
        let mut scan = LinearScan::build(ds.clone(), Euclidean);
        for p in &extra {
            cover.insert(p).unwrap();
            DynamicIndex::insert(&mut rtree, p).unwrap();
            scan.insert(p).unwrap();
        }
        for &r in &removals {
            let id = r % ds.len();
            let a = cover.remove(id);
            let b = DynamicIndex::remove(&mut rtree, id);
            let c = scan.remove(id);
            prop_assert_eq!(a, b);
            prop_assert_eq!(b, c);
        }
        prop_assert!(cover.check_invariants());
        prop_assert!(rtree.check_invariants());
        let q = extra[0].clone();
        let mut st = SearchStats::new();
        let k = 5usize.min(scan.num_points());
        let a: Vec<_> = cover.knn(&q, k, None, &mut st).iter().map(|n| n.id).collect();
        let b: Vec<_> = rtree.knn(&q, k, None, &mut st).iter().map(|n| n.id).collect();
        let c: Vec<_> = scan.knn(&q, k, None, &mut st).iter().map(|n| n.id).collect();
        prop_assert_eq!(&a, &c, "cover vs scan");
        prop_assert_eq!(&b, &c, "rtree vs scan");
    }

    /// Range counts agree with brute force under both tie conventions.
    #[test]
    fn range_counts_match_brute(
        pts in arb_points(2),
        qi in 0usize..120,
        r in 0.0f64..150.0,
    ) {
        let ds = Dataset::from_rows(&pts).unwrap().into_shared();
        let q = ds.point(qi % ds.len()).to_vec();
        let bf = BruteForce::new(ds.clone(), Euclidean);
        let mut st = SearchStats::new();
        let all = bf.knn(&q, ds.len(), None, &mut st);
        let want_closed = all.iter().filter(|n| n.dist <= r).count();
        let want_open = all.iter().filter(|n| n.dist < r).count();
        for index in [
            Box::new(CoverTree::build(ds.clone(), Euclidean)) as Box<dyn KnnIndex<Euclidean>>,
            Box::new(RTree::build(ds.clone(), Euclidean)),
            Box::new(MTree::build(ds.clone(), Euclidean)),
            Box::new(VpTree::build(ds.clone(), Euclidean)),
            Box::new(BallTree::build(ds.clone(), Euclidean)),
        ] {
            prop_assert_eq!(index.range_count(&q, r, false, None, &mut st), want_closed);
            prop_assert_eq!(index.range_count(&q, r, true, None, &mut st), want_open);
        }
    }
}
