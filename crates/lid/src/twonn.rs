//! The TwoNN estimator of intrinsic dimensionality (Facco et al., 2017).
//!
//! Not part of the paper's §6 toolbox — included as an independent
//! cross-check for the generators and the other estimators (it appeared
//! the same year as the paper). TwoNN uses only each point's two nearest
//! neighbors: under a locally uniform density the ratio `μ = r₂/r₁`
//! follows `P(μ ≤ x) = 1 − x^{−d}`, giving the maximum-likelihood estimate
//!
//! ```text
//! d = n / Σᵢ ln μᵢ
//! ```
//!
//! Its appeal matches the Hill estimator's: purely local, cheap (two
//! neighbors per sampled point), and insensitive to density variation.

use crate::estimator::{IdEstimate, IdEstimator};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rknn_core::{BruteForce, Dataset, Metric, SearchStats};
use rknn_index::KnnIndex;
use std::sync::Arc;
use std::time::Instant;

/// TwoNN estimator configuration.
#[derive(Debug, Clone)]
pub struct TwoNnEstimator {
    /// Fraction of points sampled.
    pub sample_fraction: f64,
    /// Minimum sample size.
    pub min_sample: usize,
    /// Fraction of the largest ratios discarded before the MLE (the
    /// original method trims the tail, which manifold boundary effects
    /// contaminate; 0.1 is the authors' default).
    pub trim: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TwoNnEstimator {
    fn default() -> Self {
        TwoNnEstimator {
            sample_fraction: 0.2,
            min_sample: 100,
            trim: 0.1,
            seed: 0x22,
        }
    }
}

impl TwoNnEstimator {
    /// Default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// MLE over a list of `r₂/r₁` ratios (each > 1 after filtering).
    pub fn id_of_ratios(&self, ratios: &mut Vec<f64>) -> Option<f64> {
        ratios.retain(|&r| r.is_finite() && r > 1.0);
        if ratios.is_empty() {
            return None;
        }
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
        let keep = ((ratios.len() as f64) * (1.0 - self.trim)).ceil() as usize;
        let kept = &ratios[..keep.clamp(1, ratios.len())];
        let sum_ln: f64 = kept.iter().map(|r| r.ln()).sum();
        (sum_ln > 0.0).then(|| kept.len() as f64 / sum_ln)
    }

    fn sample_ids(&self, n: usize) -> Vec<usize> {
        let target = ((n as f64 * self.sample_fraction) as usize)
            .max(self.min_sample)
            .min(n);
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut ids: Vec<usize> = (0..n).collect();
        ids.shuffle(&mut rng);
        ids.truncate(target);
        ids
    }

    /// Estimates using an arbitrary forward index for the 2-NN lookups.
    pub fn estimate_with_index<M: Metric, I: KnnIndex<M>>(&self, index: &I) -> IdEstimate {
        let start = Instant::now();
        let mut stats = SearchStats::new();
        let mut ratios: Vec<f64> = Vec::new();
        for q in self.sample_ids(index.num_points()) {
            let nn = index.knn(index.point(q), 2, Some(q), &mut stats);
            if nn.len() == 2 && nn[0].dist > 0.0 {
                ratios.push(nn[1].dist / nn[0].dist);
            }
        }
        let used = ratios.len();
        let id = self.id_of_ratios(&mut ratios).unwrap_or(0.0);
        IdEstimate::new(id, used, start.elapsed())
    }
}

impl IdEstimator for TwoNnEstimator {
    fn name(&self) -> &'static str {
        "TwoNN"
    }

    fn estimate(&self, ds: &Arc<Dataset>, metric: &dyn Metric) -> IdEstimate {
        let start = Instant::now();
        let bf = BruteForce::new(ds.clone(), crate::hill::MetricRef(metric));
        let mut stats = SearchStats::new();
        let mut ratios: Vec<f64> = Vec::new();
        for q in self.sample_ids(ds.len()) {
            let nn = bf.knn(ds.point(q), 2, Some(q), &mut stats);
            if nn.len() == 2 && nn[0].dist > 0.0 {
                ratios.push(nn[1].dist / nn[0].dist);
            }
        }
        let used = ratios.len();
        let id = self.id_of_ratios(&mut ratios).unwrap_or(0.0);
        IdEstimate::new(id, used, start.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rknn_core::Euclidean;

    #[test]
    fn ratio_mle_on_exact_pareto_sample() {
        // μ ~ Pareto(d): F(x) = 1 − x^{−d}. Inverse-CDF sampling.
        for d in [2.0f64, 5.0] {
            let n = 50_000;
            let mut ratios: Vec<f64> = (1..=n)
                .map(|i| (1.0 - (i as f64 - 0.5) / n as f64).powf(-1.0 / d))
                .collect();
            let est = TwoNnEstimator {
                trim: 0.0,
                ..TwoNnEstimator::default()
            };
            let got = est.id_of_ratios(&mut ratios).unwrap();
            assert!((got - d).abs() < 0.05 * d, "d={d} got {got}");
        }
    }

    #[test]
    fn recovers_cube_dimensions() {
        let mut rng = SmallRng::seed_from_u64(9);
        for dim in [2usize, 6] {
            let rows: Vec<Vec<f64>> = (0..2500)
                .map(|_| (0..dim).map(|_| rng.random::<f64>()).collect())
                .collect();
            let ds = Dataset::from_rows(&rows).unwrap().into_shared();
            let got = TwoNnEstimator::new().estimate(&ds, &Euclidean);
            assert!(
                (got.id - dim as f64).abs() < 0.35 * dim as f64 + 0.6,
                "dim={dim} got {}",
                got.id
            );
        }
    }

    #[test]
    fn index_path_agrees_with_brute_path() {
        let mut rng = SmallRng::seed_from_u64(10);
        let rows: Vec<Vec<f64>> = (0..800)
            .map(|_| vec![rng.random::<f64>(), rng.random::<f64>()])
            .collect();
        let ds = Dataset::from_rows(&rows).unwrap().into_shared();
        let est = TwoNnEstimator::new();
        let a = est.estimate(&ds, &Euclidean);
        let idx = rknn_index::LinearScan::build(ds, Euclidean);
        let b = est.estimate_with_index(&idx);
        assert!((a.id - b.id).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        let est = TwoNnEstimator::new();
        assert!(est.id_of_ratios(&mut vec![]).is_none());
        assert!(est.id_of_ratios(&mut vec![1.0, 0.5, f64::NAN]).is_none());
        let ds = Dataset::from_rows(&vec![vec![1.0]; 5])
            .unwrap()
            .into_shared();
        assert_eq!(TwoNnEstimator::new().estimate(&ds, &Euclidean).id, 0.0);
    }
}
