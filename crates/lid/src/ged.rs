//! The generalized expansion dimension (GED) and MaxGED (§3.2).
//!
//! GED assesses two concentric neighborhood balls `B≤(q, r₁) ⊆ B≤(q, r₂)`
//! containing `k₁ ≤ k₂` points:
//!
//! ```text
//! GED = log(k₂ / k₁) / log(r₂ / r₁)
//! ```
//!
//! **MaxGED(S, k)** is the maximum GED over every dataset point `q` and
//! every outer rank `s ∈ (k, n−1]` with `d_s(q) ≠ d_k(q)`. Theorem 1
//! guarantees an exact RDT result whenever the scale parameter `t` is at
//! least `MaxGED(S ∪ {q}, k)`; for queries drawn from the dataset this is
//! `MaxGED(S, k)` itself.
//!
//! The exact computation sorts each point's distance list — `O(n² log n)`
//! overall — which is why the paper calls estimating MaxGED "extremely
//! impractical" for parameter selection (§6) and motivates the estimators in
//! the sibling modules. We provide the exact form for validation on small
//! sets plus a sampled upper-bound estimate.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rknn_core::float::sort_f64;
use rknn_core::{Dataset, Metric};

/// The generalized expansion dimension of two concentric balls.
///
/// Returns `None` for degenerate inputs (`r1 == r2`, zero radii, or zero
/// counts), matching the side condition `d_k(q) ≠ d_s(q)` in the paper's
/// MaxGED definition.
pub fn ged(k_inner: usize, r_inner: f64, k_outer: usize, r_outer: f64) -> Option<f64> {
    if k_inner == 0 || k_outer == 0 || r_inner <= 0.0 || r_outer <= 0.0 || r_inner == r_outer {
        return None;
    }
    Some(((k_outer as f64 / k_inner as f64).ln()) / ((r_outer / r_inner).ln()))
}

/// Maximum GED contribution of a single location's sorted distance list.
///
/// `dists` must be the ascending distances from the location to the data
/// points (self-excluded).
fn max_ged_of_sorted(dists: &[f64], k: usize) -> f64 {
    let n = dists.len();
    if k == 0 || k >= n {
        return 0.0;
    }
    let dk = dists[k - 1];
    if dk <= 0.0 {
        return 0.0;
    }
    let mut best = 0.0f64;
    for s in (k + 1)..=n {
        let ds = dists[s - 1];
        if let Some(g) = ged(k, dk, s, ds) {
            if g > best {
                best = g;
            }
        }
    }
    best
}

/// Exact `MaxGED(S, k)` by full enumeration. `O(n² log n)` — use on small
/// validation sets only.
pub fn max_ged(ds: &Dataset, metric: &dyn Metric, k: usize) -> f64 {
    let n = ds.len();
    let mut best = 0.0f64;
    let mut dists = Vec::with_capacity(n.saturating_sub(1));
    for (q, qp) in ds.iter() {
        dists.clear();
        for (x, xp) in ds.iter() {
            if x != q {
                dists.push(metric.dist(qp, xp));
            }
        }
        sort_f64(&mut dists);
        best = best.max(max_ged_of_sorted(&dists, k));
    }
    best
}

/// Sampled lower bound on `MaxGED(S, k)`: evaluates the per-location maximum
/// at `sample` randomly chosen dataset points. Deterministic per seed.
pub fn max_ged_sampled(
    ds: &Dataset,
    metric: &dyn Metric,
    k: usize,
    sample: usize,
    seed: u64,
) -> f64 {
    let n = ds.len();
    if sample >= n {
        return max_ged(ds, metric, k);
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ids: Vec<usize> = (0..n).collect();
    ids.shuffle(&mut rng);
    ids.truncate(sample);
    let mut best = 0.0f64;
    let mut dists = Vec::with_capacity(n - 1);
    for q in ids {
        dists.clear();
        let qp = ds.point(q);
        for (x, xp) in ds.iter() {
            if x != q {
                dists.push(metric.dist(qp, xp));
            }
        }
        sort_f64(&mut dists);
        best = best.max(max_ged_of_sorted(&dists, k));
    }
    best
}

/// [`crate::IdEstimator`]-flavored wrapper around the sampled MaxGED.
///
/// MaxGED is "an extremely conservative and loose upper bound on the
/// intrinsic dimensionality in the vicinity of the query" (§6); this wrapper
/// exists for the ablation comparing `t = MaxGED` against the practical
/// estimators, not as a recommended policy.
#[derive(Debug, Clone)]
pub struct GedEstimator {
    /// Neighborhood size `k` of the inner ball.
    pub k: usize,
    /// Number of sampled query locations.
    pub sample: usize,
    /// RNG seed.
    pub seed: u64,
}

impl GedEstimator {
    /// A MaxGED estimator for neighborhood size `k`.
    pub fn new(k: usize) -> Self {
        GedEstimator {
            k,
            sample: 200,
            seed: 0xced,
        }
    }
}

impl crate::estimator::IdEstimator for GedEstimator {
    fn name(&self) -> &'static str {
        "MaxGED"
    }

    fn estimate(
        &self,
        ds: &std::sync::Arc<Dataset>,
        metric: &dyn Metric,
    ) -> crate::estimator::IdEstimate {
        let start = std::time::Instant::now();
        let v = max_ged_sampled(ds, metric, self.k, self.sample, self.seed);
        crate::estimator::IdEstimate::new(v, self.sample.min(ds.len()), start.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rknn_core::Euclidean;

    #[test]
    fn ged_of_doubling_ball_matches_expansion_dimension() {
        // k doubles when radius doubles → GED = 1 (a line).
        assert!((ged(4, 1.0, 8, 2.0).unwrap() - 1.0).abs() < 1e-12);
        // k quadruples when radius doubles → GED = 2 (a plane).
        assert!((ged(4, 1.0, 16, 2.0).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ged_rejects_degenerate_balls() {
        assert!(ged(4, 1.0, 8, 1.0).is_none());
        assert!(ged(0, 1.0, 8, 2.0).is_none());
        assert!(ged(4, 0.0, 8, 2.0).is_none());
    }

    #[test]
    fn max_ged_on_uniform_grid_is_moderate() {
        // A regular 1-d grid: expansion from rank k to rank s gives
        // GED = ln(s/k)/ln(s/k) = 1 exactly (distance ∝ rank).
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let g = max_ged(&ds, &Euclidean, 2);
        // Boundary points see compressed distances, inflating GED slightly
        // above 1; it must stay well below 2.
        assert!((1.0..2.0).contains(&g), "grid MaxGED = {g}");
    }

    #[test]
    fn sampled_is_lower_bound_of_exact() {
        let mut rng = SmallRng::seed_from_u64(7);
        let rows: Vec<Vec<f64>> = (0..120)
            .map(|_| vec![rng.random::<f64>() * 4.0, rng.random::<f64>() * 4.0])
            .collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let exact = max_ged(&ds, &Euclidean, 3);
        let sampled = max_ged_sampled(&ds, &Euclidean, 3, 30, 9);
        assert!(sampled <= exact + 1e-12);
        assert!(sampled > 0.0);
        // Full-sample request falls back to the exact computation.
        assert_eq!(max_ged_sampled(&ds, &Euclidean, 3, 500, 9), exact);
    }

    #[test]
    fn max_ged_handles_small_or_duplicate_sets() {
        let ds = Dataset::from_rows(&[vec![0.0], vec![0.0], vec![0.0]]).unwrap();
        assert_eq!(
            max_ged(&ds, &Euclidean, 1),
            0.0,
            "all-zero distances are degenerate"
        );
        let ds = Dataset::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        assert_eq!(max_ged(&ds, &Euclidean, 1), 0.0, "no outer rank available");
    }
}
