//! Intrinsic-dimensionality estimation.
//!
//! Implements the dimensional models of §3.2 and the estimators of §6 of
//! *Dimensional Testing for Reverse k-Nearest Neighbor Search*:
//!
//! * [`mod@ged`] — the generalized expansion dimension (GED) of two concentric
//!   neighborhood balls, and **MaxGED**, the quantity Theorem 1 compares the
//!   scale parameter `t` against;
//! * [`hill`] — the MLE (Hill) estimator of local intrinsic dimensionality,
//!   averaged over a sample of the dataset;
//! * [`gp`] — the Grassberger–Procaccia correlation-dimension estimator
//!   (log–log fit of the correlation integral over small radii);
//! * [`takens`] — the Takens estimator of correlation dimension.
//!
//! A [`twonn`] (Facco et al.) estimator is included beyond the paper's
//! toolbox as an independent cross-check.
//!
//! All estimators implement [`IdEstimator`] and report diagnostics next to
//! the point estimate, and all of them are exercised against analytically
//! known manifolds in their unit tests (uniform m-cube → ≈ m, segment → ≈ 1,
//! circle in R² → ≈ 1).

#![warn(missing_docs)]

pub mod estimator;
pub mod ged;
pub mod gp;
pub mod hill;
pub mod pairs;
pub mod takens;
pub mod twonn;

pub use estimator::{IdEstimate, IdEstimator};
pub use ged::{ged, max_ged, max_ged_sampled, GedEstimator};
pub use gp::GpEstimator;
pub use hill::HillEstimator;
pub use takens::TakensEstimator;
pub use twonn::TwoNnEstimator;
