//! Sampled pairwise distances, shared by the correlation-dimension
//! estimators.
//!
//! Both the Grassberger–Procaccia and the Takens estimator "compute values
//! for all pairs of distances … leading to a quadratic runtime" (§6). To
//! keep the estimators usable as preprocessing (the paper runs them once per
//! dataset), we sample pairs uniformly without replacement up to a budget;
//! with a budget of `n·(n−1)/2` the computation is exact.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rknn_core::float::sort_f64;
use rknn_core::{Dataset, Metric};

/// Sorted positive pairwise distances of up to `budget` sampled point pairs.
///
/// Zero distances (duplicate points) are discarded: every correlation-
/// dimension formula takes logarithms of distances.
pub fn sampled_pair_distances(
    ds: &Dataset,
    metric: &dyn Metric,
    budget: usize,
    seed: u64,
) -> Vec<f64> {
    let n = ds.len();
    if n < 2 {
        return Vec::new();
    }
    let total = n * (n - 1) / 2;
    let mut out = Vec::with_capacity(budget.min(total));
    if total <= budget {
        for i in 0..n {
            for j in (i + 1)..n {
                let d = metric.dist(ds.point(i), ds.point(j));
                if d > 0.0 {
                    out.push(d);
                }
            }
        }
    } else {
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..budget {
            let i = rng.random_range(0..n);
            let mut j = rng.random_range(0..n - 1);
            if j >= i {
                j += 1;
            }
            let d = metric.dist(ds.point(i), ds.point(j));
            if d > 0.0 {
                out.push(d);
            }
        }
    }
    sort_f64(&mut out);
    out
}

/// The q-quantile (0 ≤ q ≤ 1) of an ascending-sorted slice.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknn_core::Euclidean;

    #[test]
    fn exact_when_budget_covers_all_pairs() {
        let ds = Dataset::from_rows(&[vec![0.0], vec![1.0], vec![3.0]]).unwrap();
        let d = sampled_pair_distances(&ds, &Euclidean, 100, 1);
        assert_eq!(d, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn sampling_respects_budget_and_is_sorted() {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64]).collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let d = sampled_pair_distances(&ds, &Euclidean, 200, 2);
        assert!(d.len() <= 200);
        assert!(d.windows(2).all(|w| w[0] <= w[1]));
        assert!(d.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn duplicates_are_dropped() {
        let ds = Dataset::from_rows(&[vec![1.0], vec![1.0], vec![2.0]]).unwrap();
        let d = sampled_pair_distances(&ds, &Euclidean, 100, 3);
        assert_eq!(d, vec![1.0, 1.0]);
    }

    #[test]
    fn quantiles() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 0.5), 3.0);
        assert_eq!(quantile(&v, 1.0), 5.0);
    }

    #[test]
    fn tiny_datasets_yield_empty() {
        let ds = Dataset::from_rows(&[vec![0.0]]).unwrap();
        assert!(sampled_pair_distances(&ds, &Euclidean, 10, 0).is_empty());
    }
}
