//! The MLE (Hill) estimator of local intrinsic dimensionality (§6, \[5\]).
//!
//! For a point `x` with neighborhood distances `x₁ … x_κ` (ascending) and
//! `w = x_κ`, the estimate is
//!
//! ```text
//! ID_x = − ( (1/κ) Σᵢ ln(xᵢ / w) )⁻¹
//! ```
//!
//! The paper averages `ID_x` over a random sample of 10% of the dataset with
//! κ = 100 neighbors per sampled point, "due to its relative stability and
//! convergence properties".

use crate::estimator::{IdEstimate, IdEstimator};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rknn_core::{BruteForce, Dataset, Metric, SearchStats};
use rknn_index::KnnIndex;
use std::sync::Arc;
use std::time::Instant;

/// Averaged Hill/MLE LID estimator.
#[derive(Debug, Clone)]
pub struct HillEstimator {
    /// Neighborhood size κ per sampled point (paper: 100).
    pub neighbors: usize,
    /// Fraction of dataset points sampled (paper: 0.1).
    pub sample_fraction: f64,
    /// Minimum number of sampled points regardless of fraction.
    pub min_sample: usize,
    /// RNG seed for the point sample.
    pub seed: u64,
}

impl Default for HillEstimator {
    fn default() -> Self {
        HillEstimator {
            neighbors: 100,
            sample_fraction: 0.1,
            min_sample: 50,
            seed: 0x411,
        }
    }
}

impl HillEstimator {
    /// The paper's configuration (κ = 100, 10% sample).
    pub fn new() -> Self {
        Self::default()
    }

    /// Hill estimate for one ascending distance list. Returns `None` when
    /// the list is empty, all-zero, or otherwise degenerate.
    pub fn lid_of_distances(dists: &[f64]) -> Option<f64> {
        let w = *dists.last()?;
        if w <= 0.0 {
            return None;
        }
        let mut acc = 0.0;
        let mut used = 0usize;
        for &d in dists {
            if d > 0.0 {
                acc += (d / w).ln();
                used += 1;
            }
        }
        if used == 0 || acc == 0.0 {
            return None;
        }
        let lid = -(used as f64) / acc;
        lid.is_finite().then_some(lid)
    }

    fn sample_ids(&self, n: usize) -> Vec<usize> {
        let target = ((n as f64 * self.sample_fraction) as usize)
            .max(self.min_sample)
            .min(n);
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut ids: Vec<usize> = (0..n).collect();
        ids.shuffle(&mut rng);
        ids.truncate(target);
        ids
    }

    /// Averaged LID using an arbitrary forward-kNN index for neighborhood
    /// retrieval (the paper's preprocessing path).
    pub fn estimate_with_index<M: Metric, I: KnnIndex<M>>(&self, index: &I) -> IdEstimate {
        let start = Instant::now();
        let n = index.num_points();
        let ids = self.sample_ids(n);
        let k = self.neighbors.min(n.saturating_sub(1)).max(1);
        let mut stats = SearchStats::new();
        let mut sum = 0.0;
        let mut used = 0usize;
        for &q in &ids {
            let nn = index.knn(index.point(q), k, Some(q), &mut stats);
            let dists: Vec<f64> = nn.iter().map(|n| n.dist).collect();
            if let Some(lid) = Self::lid_of_distances(&dists) {
                sum += lid;
                used += 1;
            }
        }
        let id = if used > 0 { sum / used as f64 } else { 0.0 };
        IdEstimate::new(id, used, start.elapsed())
    }
}

impl IdEstimator for HillEstimator {
    fn name(&self) -> &'static str {
        "MLE"
    }

    fn estimate(&self, ds: &Arc<Dataset>, metric: &dyn Metric) -> IdEstimate {
        let start = Instant::now();
        let bf = BruteForce::new(ds.clone(), MetricRef(metric));
        let n = ds.len();
        let ids = self.sample_ids(n);
        let k = self.neighbors.min(n.saturating_sub(1)).max(1);
        let mut stats = SearchStats::new();
        let mut sum = 0.0;
        let mut used = 0usize;
        for &q in &ids {
            let nn = bf.knn(ds.point(q), k, Some(q), &mut stats);
            let dists: Vec<f64> = nn.iter().map(|n| n.dist).collect();
            if let Some(lid) = Self::lid_of_distances(&dists) {
                sum += lid;
                used += 1;
            }
        }
        let id = if used > 0 { sum / used as f64 } else { 0.0 };
        IdEstimate::new(id, used, start.elapsed())
    }
}

/// Adapter letting a `&dyn Metric` satisfy the `Metric` bound of generic
/// components within a single call's lifetime.
#[derive(Debug, Clone, Copy)]
pub struct MetricRef<'a>(pub &'a dyn Metric);

impl<'a> Metric for MetricRef<'a> {
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        self.0.dist(a, b)
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn box_min_dist(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
        self.0.box_min_dist(q, lo, hi)
    }

    fn box_max_dist(&self, q: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
        self.0.box_max_dist(q, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rknn_core::Euclidean;

    fn uniform_cube(n: usize, dim: usize, seed: u64) -> Arc<Dataset> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.random::<f64>()).collect())
            .collect();
        Dataset::from_rows(&rows).unwrap().into_shared()
    }

    #[test]
    fn lid_formula_on_power_law_distances() {
        // Distances d_i = (i/κ)^(1/m) follow an m-dimensional growth law:
        // the Hill estimate must recover m closely.
        for m in [1.0f64, 2.0, 5.0] {
            let k = 400;
            let dists: Vec<f64> = (1..=k)
                .map(|i| ((i as f64) / (k as f64)).powf(1.0 / m))
                .collect();
            let lid = HillEstimator::lid_of_distances(&dists).unwrap();
            assert!((lid - m).abs() < 0.15 * m, "m={m} got {lid}");
        }
    }

    #[test]
    fn lid_rejects_degenerate_lists() {
        assert!(HillEstimator::lid_of_distances(&[]).is_none());
        assert!(HillEstimator::lid_of_distances(&[0.0, 0.0]).is_none());
        // A single positive distance gives ln(w/w) = 0 → degenerate.
        assert!(HillEstimator::lid_of_distances(&[1.0]).is_none());
    }

    #[test]
    fn recovers_cube_dimension() {
        for (dim, tol) in [(2usize, 0.8), (5, 1.8)] {
            let ds = uniform_cube(1200, dim, 42 + dim as u64);
            let est = HillEstimator {
                neighbors: 60,
                ..HillEstimator::default()
            };
            let got = est.estimate(&ds, &Euclidean);
            assert!(
                (got.id - dim as f64).abs() < tol,
                "dim={dim}: estimated {}",
                got.id
            );
            assert!(got.samples > 0);
        }
    }

    #[test]
    fn line_segment_has_id_one() {
        // 1-d manifold embedded in 3-d.
        let mut rng = SmallRng::seed_from_u64(5);
        let rows: Vec<Vec<f64>> = (0..800)
            .map(|_| {
                let t: f64 = rng.random();
                vec![t, 2.0 * t, -t]
            })
            .collect();
        let ds = Dataset::from_rows(&rows).unwrap().into_shared();
        let est = HillEstimator {
            neighbors: 50,
            ..HillEstimator::default()
        };
        let got = est.estimate(&ds, &Euclidean);
        assert!((got.id - 1.0).abs() < 0.4, "got {}", got.id);
    }

    #[test]
    fn index_and_brute_paths_agree() {
        let ds = uniform_cube(400, 3, 77);
        let est = HillEstimator {
            neighbors: 40,
            ..HillEstimator::default()
        };
        let a = est.estimate(&ds, &Euclidean);
        let idx = rknn_index::LinearScan::build(ds.clone(), Euclidean);
        let b = est.estimate_with_index(&idx);
        assert!((a.id - b.id).abs() < 1e-9, "{} vs {}", a.id, b.id);
    }
}
