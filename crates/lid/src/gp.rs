//! The Grassberger–Procaccia correlation-dimension estimator (§6, \[16\]).
//!
//! The correlation integral over pairwise distances is
//!
//! ```text
//! C(r) = 2 / (N(N−1)) · Σ_{i<j} H(r − ‖xᵢ − xⱼ‖)
//! ```
//!
//! and the correlation dimension is the limit of `log C(r) / log r` as
//! `r → 0`. "In practice, the limit is estimated by fitting a straight line
//! to a log–log curve of C(r) versus r, over the smallest values of r"; we
//! evaluate `C` at order statistics of the (sampled) pairwise distance
//! distribution between two configurable quantiles and fit by least squares.

use crate::estimator::{IdEstimate, IdEstimator};
use crate::pairs::sampled_pair_distances;
use rknn_core::{Dataset, Metric};
use std::sync::Arc;
use std::time::Instant;

/// Grassberger–Procaccia estimator configuration.
#[derive(Debug, Clone)]
pub struct GpEstimator {
    /// Maximum number of sampled point pairs.
    pub pair_budget: usize,
    /// Lower quantile of the pair-distance distribution where the fit starts.
    pub q_lo: f64,
    /// Upper quantile where the fit ends ("smallest values of r").
    pub q_hi: f64,
    /// Number of fit points along the log–log curve.
    pub grid: usize,
    /// RNG seed for pair sampling.
    pub seed: u64,
}

impl Default for GpEstimator {
    fn default() -> Self {
        GpEstimator {
            pair_budget: 200_000,
            q_lo: 0.002,
            q_hi: 0.05,
            grid: 16,
            seed: 0x69,
        }
    }
}

impl GpEstimator {
    /// Default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ordinary least-squares slope of `y` on `x`.
    pub(crate) fn ols_slope(xs: &[f64], ys: &[f64]) -> Option<f64> {
        let n = xs.len() as f64;
        if xs.len() < 2 {
            return None;
        }
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for (x, y) in xs.iter().zip(ys) {
            sxx += (x - mx) * (x - mx);
            sxy += (x - mx) * (y - my);
        }
        (sxx > 0.0).then(|| sxy / sxx)
    }

    /// Estimates CD from an ascending-sorted positive pair-distance sample.
    pub fn cd_of_sorted_pairs(&self, sorted: &[f64]) -> Option<f64> {
        let p = sorted.len();
        if p < 16 {
            return None;
        }
        let c_lo = ((p as f64 * self.q_lo) as usize).max(4);
        let c_hi = ((p as f64 * self.q_hi) as usize)
            .min(p - 1)
            .max(c_lo + self.grid);
        if c_hi <= c_lo {
            return None;
        }
        // Evaluate the correlation integral at log-spaced pair counts:
        // C(d_(c)) = c / P with r = d_(c).
        let mut xs = Vec::with_capacity(self.grid);
        let mut ys = Vec::with_capacity(self.grid);
        let ratio = (c_hi as f64 / c_lo as f64).powf(1.0 / (self.grid.max(2) - 1) as f64);
        let mut c = c_lo as f64;
        let mut last_count = 0usize;
        for _ in 0..self.grid {
            let count = (c.round() as usize).clamp(c_lo, c_hi);
            if count != last_count {
                let r = sorted[count - 1];
                if r > 0.0 {
                    xs.push(r.ln());
                    ys.push((count as f64 / p as f64).ln());
                }
                last_count = count;
            }
            c *= ratio;
        }
        Self::ols_slope(&xs, &ys)
    }
}

impl IdEstimator for GpEstimator {
    fn name(&self) -> &'static str {
        "GP"
    }

    fn estimate(&self, ds: &Arc<Dataset>, metric: &dyn Metric) -> IdEstimate {
        let start = Instant::now();
        let pairs = sampled_pair_distances(ds, metric, self.pair_budget, self.seed);
        let id = self.cd_of_sorted_pairs(&pairs).unwrap_or(0.0);
        IdEstimate::new(id, pairs.len(), start.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rknn_core::Euclidean;

    fn uniform_cube(n: usize, dim: usize, seed: u64) -> Arc<Dataset> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.random::<f64>()).collect())
            .collect();
        Dataset::from_rows(&rows).unwrap().into_shared()
    }

    #[test]
    fn ols_slope_on_exact_line() {
        let xs = vec![0.0, 1.0, 2.0, 3.0];
        let ys = vec![1.0, 3.0, 5.0, 7.0];
        assert!((GpEstimator::ols_slope(&xs, &ys).unwrap() - 2.0).abs() < 1e-12);
        assert!(GpEstimator::ols_slope(&[1.0], &[1.0]).is_none());
        assert!(GpEstimator::ols_slope(&[1.0, 1.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn recovers_square_dimension() {
        let ds = uniform_cube(1500, 2, 11);
        let got = GpEstimator::new().estimate(&ds, &Euclidean);
        assert!((got.id - 2.0).abs() < 0.5, "got {}", got.id);
    }

    #[test]
    fn recovers_segment_dimension() {
        let mut rng = SmallRng::seed_from_u64(12);
        let rows: Vec<Vec<f64>> = (0..1500)
            .map(|_| {
                let t: f64 = rng.random();
                vec![t, 0.5 * t]
            })
            .collect();
        let ds = Dataset::from_rows(&rows).unwrap().into_shared();
        let got = GpEstimator::new().estimate(&ds, &Euclidean);
        assert!((got.id - 1.0).abs() < 0.3, "got {}", got.id);
    }

    #[test]
    fn circle_is_one_dimensional() {
        let rows: Vec<Vec<f64>> = (0..1200)
            .map(|i| {
                let a = i as f64 / 1200.0 * std::f64::consts::TAU;
                vec![a.cos(), a.sin()]
            })
            .collect();
        let ds = Dataset::from_rows(&rows).unwrap().into_shared();
        let got = GpEstimator::new().estimate(&ds, &Euclidean);
        assert!((got.id - 1.0).abs() < 0.3, "got {}", got.id);
    }

    #[test]
    fn degenerate_inputs_yield_zero() {
        let ds = Dataset::from_rows(&[vec![0.0], vec![1.0]])
            .unwrap()
            .into_shared();
        let got = GpEstimator::new().estimate(&ds, &Euclidean);
        assert_eq!(got.id, 0.0);
    }
}
