//! The common estimator interface.

use rknn_core::{Dataset, Metric};
use std::sync::Arc;
use std::time::Duration;

/// The result of an intrinsic-dimensionality estimation.
#[derive(Debug, Clone)]
pub struct IdEstimate {
    /// The dimensionality estimate.
    pub id: f64,
    /// How many sample units (points or pairs) contributed.
    pub samples: usize,
    /// Wall-clock time spent estimating.
    pub elapsed: Duration,
}

impl IdEstimate {
    /// Creates an estimate record.
    pub fn new(id: f64, samples: usize, elapsed: Duration) -> Self {
        IdEstimate {
            id,
            samples,
            elapsed,
        }
    }
}

/// A global intrinsic-dimensionality estimator.
///
/// Estimators are deterministic given their configured seed, so experiment
/// tables are reproducible run to run.
pub trait IdEstimator {
    /// Short name used in reports (`"MLE"`, `"GP"`, `"Takens"`).
    fn name(&self) -> &'static str;

    /// Estimates the intrinsic dimensionality of `ds` under `metric`.
    fn estimate(&self, ds: &Arc<Dataset>, metric: &dyn Metric) -> IdEstimate;
}
