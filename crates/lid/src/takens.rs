//! The Takens estimator of correlation dimension (§6, \[45, 42\]).
//!
//! Given a small threshold `r`, the estimator is the maximum-likelihood
//! solution over all pairwise distances `r_ij < r`:
//!
//! ```text
//! ν(r) = 1 / ⟨ log(r / r_ij) ⟩ = −1 / ⟨ log(r_ij / r) ⟩
//! ```
//!
//! We take `r` as a configurable quantile of the (sampled) pairwise distance
//! distribution, matching the "supplied small threshold value" of the paper.

use crate::estimator::{IdEstimate, IdEstimator};
use crate::pairs::{quantile, sampled_pair_distances};
use rknn_core::{Dataset, Metric};
use std::sync::Arc;
use std::time::Instant;

/// Takens estimator configuration.
#[derive(Debug, Clone)]
pub struct TakensEstimator {
    /// Maximum number of sampled point pairs.
    pub pair_budget: usize,
    /// Distance-distribution quantile used as the threshold `r`.
    pub r_quantile: f64,
    /// RNG seed for pair sampling.
    pub seed: u64,
}

impl Default for TakensEstimator {
    fn default() -> Self {
        TakensEstimator {
            pair_budget: 200_000,
            r_quantile: 0.05,
            seed: 0x7a,
        }
    }
}

impl TakensEstimator {
    /// Default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Estimates CD from an ascending-sorted positive pair-distance sample.
    pub fn cd_of_sorted_pairs(&self, sorted: &[f64]) -> Option<f64> {
        if sorted.len() < 16 {
            return None;
        }
        let r = quantile(sorted, self.r_quantile);
        if r <= 0.0 {
            return None;
        }
        let mut acc = 0.0;
        let mut used = 0usize;
        for &d in sorted {
            if d >= r {
                break;
            }
            if d > 0.0 {
                acc += (d / r).ln();
                used += 1;
            }
        }
        if used == 0 || acc == 0.0 {
            return None;
        }
        let cd = -(used as f64) / acc;
        cd.is_finite().then_some(cd)
    }
}

impl IdEstimator for TakensEstimator {
    fn name(&self) -> &'static str {
        "Takens"
    }

    fn estimate(&self, ds: &Arc<Dataset>, metric: &dyn Metric) -> IdEstimate {
        let start = Instant::now();
        let pairs = sampled_pair_distances(ds, metric, self.pair_budget, self.seed);
        let id = self.cd_of_sorted_pairs(&pairs).unwrap_or(0.0);
        IdEstimate::new(id, pairs.len(), start.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rknn_core::Euclidean;

    #[test]
    fn power_law_pairs_recover_dimension() {
        // If pair distances below r follow F(d) ∝ d^m, Takens recovers m.
        for m in [1.0f64, 2.0, 4.0] {
            let p = 20_000;
            let dists: Vec<f64> = (1..=p)
                .map(|i| ((i as f64) / p as f64).powf(1.0 / m))
                .collect();
            let est = TakensEstimator {
                r_quantile: 1.0,
                ..TakensEstimator::default()
            };
            let cd = est.cd_of_sorted_pairs(&dists).unwrap();
            assert!((cd - m).abs() < 0.1 * m, "m={m} got {cd}");
        }
    }

    #[test]
    fn recovers_square_dimension() {
        let mut rng = SmallRng::seed_from_u64(13);
        let rows: Vec<Vec<f64>> = (0..1500)
            .map(|_| vec![rng.random::<f64>(), rng.random::<f64>()])
            .collect();
        let ds = Dataset::from_rows(&rows).unwrap().into_shared();
        let got = TakensEstimator::new().estimate(&ds, &Euclidean);
        assert!((got.id - 2.0).abs() < 0.5, "got {}", got.id);
    }

    #[test]
    fn agrees_with_gp_on_same_manifold() {
        let mut rng = SmallRng::seed_from_u64(14);
        let rows: Vec<Vec<f64>> = (0..1200)
            .map(|_| {
                let t: f64 = rng.random::<f64>() * std::f64::consts::TAU;
                // Noisy circle in 5 dims — intrinsic dimension ≈ 1.
                vec![t.cos(), t.sin(), 0.01 * rng.random::<f64>(), 0.0, 0.0]
            })
            .collect();
        let ds = Dataset::from_rows(&rows).unwrap().into_shared();
        let takens = TakensEstimator::new().estimate(&ds, &Euclidean);
        let gp = crate::gp::GpEstimator::new().estimate(&ds, &Euclidean);
        assert!(
            (takens.id - gp.id).abs() < 0.6,
            "Takens {} vs GP {}",
            takens.id,
            gp.id
        );
    }

    #[test]
    fn degenerate_inputs_yield_zero() {
        let ds = Dataset::from_rows(&[vec![0.0], vec![0.0]])
            .unwrap()
            .into_shared();
        let got = TakensEstimator::new().estimate(&ds, &Euclidean);
        assert_eq!(got.id, 0.0);
    }
}
