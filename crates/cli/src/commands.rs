//! Subcommand implementations.

use crate::args::Args;
use rknn_baselines::{MrknncopAlgorithm, NaiveRknn, RdnnAlgorithm, Sft, TplAlgorithm};
use rknn_core::kernel::{self, Backend};
use rknn_core::{Dataset, Euclidean, KernelTier, Metric, PointId};
use rknn_index::{CoverTree, DynamicIndex, KnnIndex, LinearScan};
use rknn_lid::{GpEstimator, HillEstimator, IdEstimator, TakensEstimator, TwoNnEstimator};
use rknn_rdt::algorithm::{
    run_algorithm_batch, AlgorithmAnswer, AlgorithmOutcome, RdtAlgorithm, RknnAlgorithm,
};
use rknn_rdt::{MaintainedStream, RdtParams, RdtPlus, RdtVariant};
use rknn_serve::{
    advance_snapshot, ChurnOp, Engine, EngineConfig, FaultPlan, QueryRequest, Snapshot,
};
use std::io::{BufRead, Write};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Resolves the `--kernel` / `--tier` flags into a metric instance plus a
/// printable "backend · tier" fragment for output headers.
///
/// `--kernel` pins the SIMD backend process-wide (first selection wins, as
/// with `RKNN_KERNEL`; `auto` leaves the default dispatch); `--tier` pins
/// the kernel tier on the returned metric instance, overriding the ambient
/// `RKNN_KERNEL_TIER` for everything built from it. Without flags the
/// ambient selections apply, so env-var workflows keep working unchanged.
fn kernel_selection(args: &Args) -> Result<(Euclidean, String), String> {
    let ops = match args.get("kernel") {
        Some("auto") | None => kernel::selected(),
        Some(name) => {
            let b = Backend::parse(name).ok_or_else(|| {
                format!("unknown kernel backend '{name}' (scalar|sse2|avx2|auto)")
            })?;
            kernel::pin_backend(b)
        }
    };
    let metric = match args.get("tier") {
        Some(name) => {
            let t = KernelTier::parse(name)
                .ok_or_else(|| format!("unknown kernel tier '{name}' (exact|fast|fast-f32)"))?;
            Euclidean::with_tier(t)
        }
        None => Euclidean,
    };
    let header = format!(
        "kernel {} · tier {}",
        ops.backend().name(),
        metric.tier().name()
    );
    Ok((metric, header))
}

/// Loads the dataset named by `--input` (or its alias `--data`), honoring
/// `--limit N` (keep the first N rows while reading — large files are never
/// materialized whole) and `--dims D` (keep the leading D coordinates).
fn load_dataset(args: &Args) -> Result<Arc<Dataset>, String> {
    let path = args
        .get("input")
        .or_else(|| args.get("data"))
        .ok_or_else(|| "missing required option --input (alias: --data)".to_string())?;
    let mut opts = rknn_data::LoadOptions::all();
    if let Some(v) = args.get("limit") {
        let limit: usize = v
            .parse()
            .map_err(|_| format!("cannot parse --limit value '{v}'"))?;
        if limit == 0 {
            return Err("--limit must be positive".into());
        }
        opts = opts.with_limit(limit);
    }
    if let Some(v) = args.get("dims") {
        let dims: usize = v
            .parse()
            .map_err(|_| format!("cannot parse --dims value '{v}'"))?;
        if dims == 0 {
            return Err("--dims must be positive".into());
        }
        opts = opts.with_dims(dims);
    }
    let ds = rknn_data::load_with(Path::new(path), &opts).map_err(|e| format!("{path}: {e}"))?;
    if ds.is_empty() {
        return Err(format!("{path}: dataset is empty"));
    }
    Ok(ds.into_shared())
}

/// `gen`: write a synthetic dataset to disk.
pub fn gen(args: &Args) -> Result<(), String> {
    let kind = args.require("kind")?;
    let n: usize = args.get_parsed("n", 10_000)?;
    let seed: u64 = args.get_parsed("seed", 1)?;
    let out = args.require("out")?;
    let ds = match kind {
        "sequoia" => rknn_data::sequoia_like(n, seed),
        "aloi" => rknn_data::aloi_like(n, seed),
        "fct" => rknn_data::fct_like(n, seed),
        "mnist" => rknn_data::mnist_like(n, seed),
        "imagenet" => {
            let dim: usize = args.get_parsed("dim", 512)?;
            rknn_data::imagenet_like(n, dim, seed)
        }
        "uniform" => {
            let dim: usize = args.get_parsed("dim", 8)?;
            rknn_data::uniform_cube(n, dim, seed)
        }
        "blobs" => {
            let dim: usize = args.get_parsed("dim", 8)?;
            let clusters: usize = args.get_parsed("clusters", 10)?;
            let sigma: f64 = args.get_parsed("sigma", 0.5)?;
            rknn_data::gaussian_blobs(n, dim, clusters, sigma, seed)
        }
        other => return Err(format!("unknown dataset kind '{other}'")),
    };
    rknn_data::save(&ds, Path::new(out)).map_err(|e| format!("{out}: {e}"))?;
    println!("wrote {} points × {} dims to {}", ds.len(), ds.dim(), out);
    Ok(())
}

/// `estimate`: run all intrinsic-dimensionality estimators.
pub fn estimate(args: &Args) -> Result<(), String> {
    let ds = load_dataset(args)?;
    println!("dataset: {} points × {} dims", ds.len(), ds.dim());
    println!(
        "{:<8} {:>9} {:>10} {:>9}",
        "method", "estimate", "samples", "time_s"
    );
    let estimators: Vec<Box<dyn IdEstimator>> = vec![
        Box::new(HillEstimator::new()),
        Box::new(GpEstimator::new()),
        Box::new(TakensEstimator::new()),
        Box::new(TwoNnEstimator::new()),
    ];
    for est in estimators {
        let r = est.estimate(&ds, &Euclidean);
        println!(
            "{:<8} {:>9.3} {:>10} {:>9.3}",
            est.name(),
            r.id,
            r.samples,
            r.elapsed.as_secs_f64()
        );
    }
    println!("\nsuggestion: use the GP or Takens value as RDT's scale parameter t (§6)");
    Ok(())
}

enum Substrate {
    Cover(CoverTree<Euclidean>),
    Linear(LinearScan<Euclidean>),
}

impl Substrate {
    fn build(args: &Args, ds: Arc<Dataset>, metric: Euclidean) -> Result<(Self, f64), String> {
        let name = args
            .get("substrate")
            .unwrap_or(if ds.dim() > 100 { "linear" } else { "cover" });
        let start = Instant::now();
        let sub = match name {
            "cover" => Substrate::Cover(CoverTree::build(ds, metric)),
            "linear" => Substrate::Linear(LinearScan::build(ds, metric)),
            other => return Err(format!("unknown substrate '{other}' (cover|linear)")),
        };
        Ok((sub, start.elapsed().as_secs_f64() * 1e3))
    }

    fn as_index(&self) -> &dyn KnnIndex<Euclidean> {
        match self {
            Substrate::Cover(t) => t,
            Substrate::Linear(t) => t,
        }
    }
}

/// The shared forward-index type every CLI method dispatches against.
type DynIndex<'a> = dyn KnnIndex<Euclidean> + 'a;

/// Prepares an algorithm and answers the single query through the
/// algorithm-generic batch driver — the same lifecycle and plumbing every
/// method runs in the experiments.
fn run_unified<'a, A>(
    mut algo: A,
    index: &'a DynIndex<'a>,
    q: PointId,
) -> (AlgorithmOutcome<A::Answer>, f64, f64)
where
    A: RknnAlgorithm<Euclidean, DynIndex<'a>>,
{
    let start = Instant::now();
    algo.prepare(index);
    let prepare_ms = start.elapsed().as_secs_f64() * 1e3;
    let out = run_algorithm_batch(&algo, index, &[q], 1);
    let query_ms = out.elapsed.as_secs_f64() * 1e3;
    (out, prepare_ms, query_ms)
}

/// `query`: one reverse-kNN query, dispatched through the unified
/// [`RknnAlgorithm`] lifecycle (prepare → worker → query) for every method.
pub fn query(args: &Args) -> Result<(), String> {
    let ds = load_dataset(args)?;
    let q: usize = args.get_parsed("q", 0)?;
    if q >= ds.len() {
        return Err(format!("query id {q} out of range (n = {})", ds.len()));
    }
    let k: usize = args.get_parsed("k", 10)?;
    if k == 0 {
        return Err("k must be positive".into());
    }
    let method = args.get("method").unwrap_or("rdt+");
    let (metric, kernel_header) = kernel_selection(args)?;
    let (sub, build_ms) = Substrate::build(args, ds.clone(), metric)?;
    let index = sub.as_index();
    let (ids, note, prepare_ms, query_ms) = match method {
        "rdt" | "rdt+" => {
            let algo = if args.has_flag("adaptive") {
                let safety: f64 = args.get_parsed("safety", 2.0)?;
                RdtAlgorithm::adaptive(k, safety, 1.0).with_variant(if method == "rdt+" {
                    RdtVariant::Plus
                } else {
                    RdtVariant::Plain
                })
            } else {
                let t: f64 = args.get_parsed("t", 4.0)?;
                let params = RdtParams::new(k, t);
                if method == "rdt+" {
                    RdtAlgorithm::plus(params)
                } else {
                    RdtAlgorithm::new(params)
                }
            };
            let (out, prepare_ms, query_ms) = run_unified(algo, index, q);
            let ans = &out.answers[0];
            let note = format!(
                "retrieved {} candidates, {} lazy accepts, {} lazy rejects, {} verified, \
                 {} distance computations",
                ans.stats.retrieved,
                ans.stats.lazy_accepts,
                ans.stats.lazy_rejects + ans.stats.excluded,
                ans.stats.verified,
                ans.stats.total_dist_comps()
            );
            (ans.ids(), note, prepare_ms, query_ms)
        }
        "sft" => {
            let alpha: f64 = args.get_parsed("alpha", 4.0)?;
            let (out, prepare_ms, query_ms) = run_unified(Sft::new(k, alpha), index, q);
            let ans = &out.answers[0];
            let note = format!("{} distance computations", ans.work().dist_computations);
            (ans.ids(), note, prepare_ms, query_ms)
        }
        "naive" => {
            let (out, prepare_ms, query_ms) = run_unified(NaiveRknn::new(k), index, q);
            let ans = &out.answers[0];
            let note = format!(
                "{} distance computations (exact)",
                ans.work().dist_computations
            );
            (ans.ids(), note, prepare_ms, query_ms)
        }
        "tpl" => {
            let algo = TplAlgorithm::new(ds.clone(), metric, k);
            let (out, prepare_ms, query_ms) = run_unified(algo, index, q);
            let ans = &out.answers[0];
            let note = format!(
                "{} distance computations (exact; own R-tree built in prepare)",
                ans.work().dist_computations
            );
            (ans.ids(), note, prepare_ms, query_ms)
        }
        "mrknncop" => {
            let k_max: usize = args.get_parsed("kmax", k.max(10))?;
            if k_max < k {
                return Err(format!("kmax {k_max} must be >= k {k}"));
            }
            let algo = MrknncopAlgorithm::new(ds.clone(), metric, k, k_max);
            let (out, prepare_ms, query_ms) = run_unified(algo, index, q);
            let ans = &out.answers[0];
            let note = format!(
                "{} distance computations (exact for any k <= {k_max}; bound lines \
                 fitted in prepare)",
                ans.work().dist_computations
            );
            (ans.ids(), note, prepare_ms, query_ms)
        }
        "rdnn" => {
            let algo = RdnnAlgorithm::new(ds.clone(), metric, k);
            let (out, prepare_ms, query_ms) = run_unified(algo, index, q);
            let ans = &out.answers[0];
            let note = format!(
                "{} distance computations (exact for k = {k} only; kNN pass in prepare)",
                ans.work().dist_computations
            );
            (ans.ids(), note, prepare_ms, query_ms)
        }
        other => {
            return Err(format!(
                "unknown method '{other}' (rdt+|rdt|sft|naive|tpl|mrknncop|rdnn)"
            ))
        }
    };
    println!(
        "RkNN({q}, {k}) via {method} [{} · {kernel_header}]:",
        index.name()
    );
    println!("  {} reverse neighbors: {:?}", ids.len(), ids);
    println!("  {note}");
    println!("  build {build_ms:.2} ms, prepare {prepare_ms:.2} ms, query {query_ms:.3} ms");
    Ok(())
}

/// Prepares one algorithm and times the sampled query batch through the
/// unified driver: (prepare_ms, batch_ms, dist_comps, result_members).
fn bench_one<'a, A>(
    mut algo: A,
    index: &'a DynIndex<'a>,
    qs: &[PointId],
    threads: usize,
) -> (f64, f64, u64, usize)
where
    A: RknnAlgorithm<Euclidean, DynIndex<'a>>,
{
    let start = Instant::now();
    algo.prepare(index);
    let prepare_ms = start.elapsed().as_secs_f64() * 1e3;
    let out = run_algorithm_batch(&algo, index, qs, threads);
    (
        prepare_ms,
        out.elapsed.as_secs_f64() * 1e3,
        out.stats.search.dist_computations,
        out.stats.result_members,
    )
}

/// `bench`: per-algorithm timing over a sampled query batch on a dataset
/// file — the CLI face of the snapshot's `algorithms` section, pointable
/// at real `.fvecs`/`.idx` data via `--data --limit --dims`.
pub fn bench(args: &Args) -> Result<(), String> {
    let ds = load_dataset(args)?;
    let k: usize = args.get_parsed("k", 10)?;
    if k == 0 {
        return Err("k must be positive".into());
    }
    if ds.len() <= k + 2 {
        return Err(format!("dataset too small for k = {k} (n = {})", ds.len()));
    }
    let t: f64 = args.get_parsed("t", 4.0)?;
    let alpha: f64 = args.get_parsed("alpha", 4.0)?;
    let k_max: usize = args.get_parsed("kmax", k)?;
    if k_max < k {
        return Err(format!("kmax {k_max} must be >= k {k}"));
    }
    let queries: usize = args.get_parsed("queries", 32)?;
    let seed: u64 = args.get_parsed("seed", 42)?;
    // `0` (the default) defers to RKNN_THREADS, then to the CPU count, so
    // thread-scaling runs are reproducible on any host without editing the
    // command line.
    let threads: usize = args.get_parsed("threads", 0)?;
    let methods = args.get("methods").unwrap_or("rdt,rdt+,sft,mrknncop,rdnn");
    let (metric, kernel_header) = kernel_selection(args)?;
    let (sub, build_ms) = Substrate::build(args, ds.clone(), metric)?;
    let index = sub.as_index();
    let qs = rknn_data::sample_queries(ds.len(), queries.min(ds.len()), seed);
    println!(
        "bench: {} points × {} dims, {} sampled queries, k = {k} [{} · {kernel_header}]",
        ds.len(),
        ds.dim(),
        qs.len(),
        index.name()
    );
    let effective = rknn_rdt::algorithm::requested_threads(threads).clamp(1, qs.len().max(1));
    println!(
        "  substrate build {build_ms:.2} ms · threads requested {threads}, effective {effective}"
    );
    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>12} {:>9}",
        "method", "prepare_ms", "batch_ms", "ms/query", "dist/query", "members"
    );
    for m in methods.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let (prepare_ms, batch_ms, dist, members) = match m {
            "rdt" => bench_one(RdtAlgorithm::new(RdtParams::new(k, t)), index, &qs, threads),
            "rdt+" => bench_one(
                RdtAlgorithm::plus(RdtParams::new(k, t)),
                index,
                &qs,
                threads,
            ),
            "sft" => bench_one(Sft::new(k, alpha), index, &qs, threads),
            "naive" => bench_one(NaiveRknn::new(k), index, &qs, threads),
            "tpl" => bench_one(
                TplAlgorithm::new(ds.clone(), metric, k),
                index,
                &qs,
                threads,
            ),
            "mrknncop" => bench_one(
                MrknncopAlgorithm::new(ds.clone(), metric, k, k_max),
                index,
                &qs,
                threads,
            ),
            "rdnn" => bench_one(
                RdnnAlgorithm::new(ds.clone(), metric, k),
                index,
                &qs,
                threads,
            ),
            other => {
                return Err(format!(
                    "unknown method '{other}' in --methods \
                     (rdt|rdt+|sft|naive|tpl|mrknncop|rdnn)"
                ))
            }
        };
        println!(
            "{:<10} {:>12.2} {:>10.2} {:>10.3} {:>12.1} {:>9}",
            m,
            prepare_ms,
            batch_ms,
            batch_ms / qs.len().max(1) as f64,
            dist as f64 / qs.len().max(1) as f64,
            members
        );
    }
    Ok(())
}

/// `churn`: a mixed insert/delete workload through the maintained
/// all-points stream ([`MaintainedStream`]) on a dynamic substrate, priced
/// per update against rebuilding the whole answer table from scratch.
pub fn churn(args: &Args) -> Result<(), String> {
    let ds = load_dataset(args)?;
    let k: usize = args.get_parsed("k", 10)?;
    if k == 0 {
        return Err("k must be positive".into());
    }
    if ds.len() <= k + 2 {
        return Err(format!("dataset too small for k = {k} (n = {})", ds.len()));
    }
    let t: f64 = args.get_parsed("t", 50.0)?;
    let updates: usize = args.get_parsed("updates", 60)?;
    let seed: u64 = args.get_parsed("seed", 1)?;
    let threads: usize = args.get_parsed("threads", 2)?;
    let (metric, kernel_header) = kernel_selection(args)?;
    println!("churn [{kernel_header}]");
    match args.get("substrate").unwrap_or("cover") {
        "cover" => churn_on(CoverTree::build(ds, metric), k, t, updates, seed, threads),
        "linear" => churn_on(LinearScan::build(ds, metric), k, t, updates, seed, threads),
        other => Err(format!("unknown substrate '{other}' (cover|linear)")),
    }
}

/// Runs the churn workload on one dynamic substrate: inserts draw uniform
/// points from the dataset's bounding box, every third update deletes a
/// random live point, and the maintained table is compared member-for-
/// member against a rebuild at the end.
fn churn_on<I>(
    mut index: I,
    k: usize,
    t: f64,
    updates: usize,
    seed: u64,
    threads: usize,
) -> Result<(), String>
where
    I: DynamicIndex<Euclidean> + Sync,
{
    let n0 = index.num_points();
    let dim = index.point(0).len();
    let mut lo = vec![f64::INFINITY; dim];
    let mut hi = vec![f64::NEG_INFINITY; dim];
    for id in 0..n0 {
        for (j, &c) in index.point(id).iter().enumerate() {
            lo[j] = lo[j].min(c);
            hi[j] = hi[j].max(c);
        }
    }

    println!("seeding all-points RkNN table over {n0} points (k = {k}, t = {t})...");
    let start = Instant::now();
    let mut stream =
        MaintainedStream::new(RdtAlgorithm::new(RdtParams::new(k, t)), &index, threads);
    println!("  seeded in {:.2} ms", start.elapsed().as_secs_f64() * 1e3);

    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut live: Vec<PointId> = (0..n0).collect();
    let (mut inserts, mut deletes) = (0usize, 0usize);
    let (mut insert_ms, mut delete_ms) = (0.0f64, 0.0f64);
    let mut recomputed = 0usize;
    for step in 0..updates {
        if step % 3 == 2 && live.len() > k + 2 {
            let victim = live.swap_remove(next() as usize % live.len());
            let rep = stream
                .remove(&mut index, victim)
                .ok_or_else(|| format!("point {victim} vanished from the stream"))?;
            deletes += 1;
            delete_ms += rep.elapsed.as_secs_f64() * 1e3;
            recomputed += rep.recomputed;
        } else {
            let point: Vec<f64> = (0..dim)
                .map(|j| {
                    let u = (next() >> 11) as f64 / (1u64 << 53) as f64;
                    lo[j] + u * (hi[j] - lo[j])
                })
                .collect();
            let (id, rep) = stream
                .insert(&mut index, &point)
                .map_err(|e| e.to_string())?;
            live.push(id);
            inserts += 1;
            insert_ms += rep.elapsed.as_secs_f64() * 1e3;
            recomputed += rep.recomputed;
        }
    }
    println!("processed {inserts} inserts + {deletes} deletes:");
    println!(
        "  mean insert {:.3} ms, mean delete {:.3} ms, mean answers recomputed per update {:.1}",
        insert_ms / inserts.max(1) as f64,
        delete_ms / deletes.max(1) as f64,
        recomputed as f64 / updates.max(1) as f64
    );
    println!(
        "  d_k-cache maintenance: {:.3} ms total",
        RknnAlgorithm::<Euclidean, I>::maintenance_time(stream.algo()).as_secs_f64() * 1e3
    );

    // The alternative: rebuild the whole answer table from scratch.
    let start = Instant::now();
    let mut fresh = RdtAlgorithm::new(RdtParams::new(k, t));
    fresh.prepare(&index);
    let mut queries: Vec<PointId> = live.clone();
    queries.sort_unstable();
    let rebuilt = run_algorithm_batch(&fresh, &index, &queries, threads);
    let rebuild_ms = start.elapsed().as_secs_f64() * 1e3;
    let mean_update_ms = (insert_ms + delete_ms) / updates.max(1) as f64;
    println!(
        "  rebuild-from-scratch: {rebuild_ms:.2} ms ({:.3}x per maintained update)",
        mean_update_ms / rebuild_ms.max(1e-9)
    );

    let mismatched = queries
        .iter()
        .zip(&rebuilt.answers)
        .filter(|(&q, want)| {
            stream
                .answer(q)
                .map(|got| got.ids() != want.ids())
                .unwrap_or(true)
        })
        .count();
    if mismatched == 0 {
        println!(
            "  maintained table identical to the rebuild ({} queries)",
            queries.len()
        );
    } else {
        println!(
            "  maintained table differs from the rebuild on {mismatched}/{} queries \
             (expected only at heuristic t; t >= 50 is exact)",
            queries.len()
        );
    }
    Ok(())
}

/// `serve`: run the serving engine as a long-lived process driven by a
/// line protocol on stdin — queries answer through the sharded executor,
/// inserts/removes build a successor snapshot off to the side and publish
/// it epoch-style while queries keep flowing.
pub fn serve(args: &Args) -> Result<(), String> {
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    serve_io(args, stdin.lock(), &mut stdout)
}

/// [`serve`] against caller-supplied streams, so tests (and the CI smoke)
/// can drive the REPL without a terminal.
pub fn serve_io<R: BufRead, W: Write>(args: &Args, input: R, out: &mut W) -> Result<(), String> {
    let ds = load_dataset(args)?;
    let k: usize = args.get_parsed("k", 10)?;
    if k == 0 {
        return Err("k must be positive".into());
    }
    if ds.len() <= k + 2 {
        return Err(format!("dataset too small for k = {k} (n = {})", ds.len()));
    }
    let t: f64 = args.get_parsed("t", 4.0)?;
    let workers: usize = args.get_parsed("threads", 0)?;
    let queue_capacity: usize = args.get_parsed("queue-cap", 128)?;
    if queue_capacity == 0 {
        return Err("--queue-cap must be positive".into());
    }
    let prewarm: usize = args.get_parsed("prewarm", 0)?;
    // Per-query deadline for REPL queries (0 = none): queued or in-flight
    // past this budget resolves as a typed `deadline exceeded` error.
    let deadline_ms: u64 = args.get_parsed("deadline-ms", 0)?;
    let deadline = (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms));
    // `--chaos SEED` arms a deterministic fault plan against the REPL's own
    // engine: injected panics/deaths/delays surface as typed per-query
    // errors while the session keeps serving.
    let faults = match args.get("chaos") {
        None => None,
        Some(v) => {
            let seed: u64 = v.parse().map_err(|_| format!("bad chaos seed '{v}'"))?;
            Some(Arc::new(FaultPlan::scattered(
                seed,
                32,
                2,
                1,
                2,
                Duration::from_millis(2),
            )))
        }
    };
    let (metric, kernel_header) = kernel_selection(args)?;
    match args.get("substrate").unwrap_or("cover") {
        "cover" => serve_on(
            CoverTree::build(ds, metric),
            k,
            t,
            prewarm,
            workers,
            queue_capacity,
            deadline,
            faults,
            &kernel_header,
            input,
            out,
        ),
        "linear" => serve_on(
            LinearScan::build(ds, metric),
            k,
            t,
            prewarm,
            workers,
            queue_capacity,
            deadline,
            faults,
            &kernel_header,
            input,
            out,
        ),
        other => Err(format!("unknown substrate '{other}' (cover|linear)")),
    }
}

/// The REPL proper, generic over the dynamic substrate the engine serves
/// from.
#[allow(clippy::too_many_arguments)]
fn serve_on<I, R, W>(
    index: I,
    k: usize,
    t: f64,
    prewarm: usize,
    workers: usize,
    queue_capacity: usize,
    deadline: Option<Duration>,
    faults: Option<Arc<FaultPlan>>,
    kernel_header: &str,
    input: R,
    out: &mut W,
) -> Result<(), String>
where
    I: DynamicIndex<Euclidean> + Clone + 'static,
    R: BufRead,
    W: Write,
{
    let oops = |e: std::io::Error| format!("write output: {e}");
    let n0 = index.num_points();
    let dim = index.point(0).len();
    let start = Instant::now();
    let snapshot = Snapshot::prepare(
        0,
        index,
        RdtAlgorithm::new(RdtParams::new(k, t)).with_prewarm(prewarm),
    );
    let prepare_ms = start.elapsed().as_secs_f64() * 1e3;
    let engine = Engine::new(
        snapshot,
        EngineConfig {
            workers,
            queue_capacity,
            faults,
            ..EngineConfig::default()
        },
    );
    // Attaches the session-wide deadline (if any) to a query request.
    let with_deadline = |request: QueryRequest| match deadline {
        Some(d) => request.with_timeout(d),
        None => request,
    };
    // Liveness bookkeeping for friendly errors: ids the REPL may query.
    // The slot range grows with inserts; tombstoned slots stay dead.
    let mut live = vec![true; n0];
    writeln!(
        out,
        "serving {n0} points × {dim} dims, k = {k}, t = {t} \
         [{kernel_header}] — {} workers, queue capacity {}, prepare {prepare_ms:.2} ms",
        engine.workers(),
        engine.queue_capacity(),
    )
    .map_err(oops)?;
    writeln!(
        out,
        "commands: q <id> | qc <c1> .. <c{dim}> | insert <c1> .. <c{dim}> | \
         remove <id> | stats | quit"
    )
    .map_err(oops)?;
    for line in input.lines() {
        let line = line.map_err(|e| format!("read input: {e}"))?;
        let mut parts = line.split_whitespace();
        let verb = match parts.next() {
            Some(v) => v,
            None => continue,
        };
        if matches!(verb, "quit" | "exit") {
            break;
        }
        // REPL errors report and continue; only I/O failures exit.
        let outcome: Result<(), String> = match verb {
            "q" => parts
                .next()
                .ok_or_else(|| "usage: q <id>".to_string())
                .and_then(|v| v.parse::<usize>().map_err(|_| format!("bad id '{v}'")))
                .and_then(|id| {
                    if !live.get(id).copied().unwrap_or(false) {
                        return Err(format!("id {id} is not a live point"));
                    }
                    let ticket = engine
                        .submit(with_deadline(QueryRequest::point(id)))
                        .map_err(|e| e.to_string())?;
                    let r = ticket.wait().map_err(|e| e.to_string())?;
                    let ids: Vec<PointId> = r.neighbors.iter().map(|n| n.id).collect();
                    writeln!(
                        out,
                        "q {id} · epoch {} · {} reverse neighbors {ids:?} \
                         ({:.3} ms service, {:.3} ms total, worker {})",
                        r.epoch,
                        ids.len(),
                        r.service().as_secs_f64() * 1e3,
                        r.total().as_secs_f64() * 1e3,
                        r.worker,
                    )
                    .map_err(oops)
                }),
            "qc" => parts
                .map(|v| {
                    v.parse::<f64>()
                        .map_err(|_| format!("bad coordinate '{v}'"))
                })
                .collect::<Result<Vec<f64>, String>>()
                .and_then(|coords| {
                    // No local shape check: the engine validates at submit,
                    // so malformed coordinates exercise the typed
                    // `invalid query` path end to end.
                    let ticket = engine
                        .submit(with_deadline(QueryRequest::coords(coords)))
                        .map_err(|e| e.to_string())?;
                    let r = ticket.wait().map_err(|e| e.to_string())?;
                    let ids: Vec<PointId> = r.neighbors.iter().map(|n| n.id).collect();
                    writeln!(
                        out,
                        "qc · epoch {} · {} reverse neighbors {ids:?} \
                         ({:.3} ms service, worker {})",
                        r.epoch,
                        ids.len(),
                        r.service().as_secs_f64() * 1e3,
                        r.worker,
                    )
                    .map_err(oops)
                }),
            "insert" => parts
                .map(|v| {
                    v.parse::<f64>()
                        .map_err(|_| format!("bad coordinate '{v}'"))
                })
                .collect::<Result<Vec<f64>, String>>()
                .and_then(|coords| {
                    if coords.len() != dim {
                        return Err(format!("expected {dim} coordinates, got {}", coords.len()));
                    }
                    let (next, report) =
                        advance_snapshot(&engine.snapshot(), &[ChurnOp::Insert(coords)])
                            .map_err(|e| e.to_string())?;
                    let epoch = engine.publish(next);
                    let id = report.inserted[0];
                    if live.len() <= id {
                        live.resize(id + 1, false);
                    }
                    live[id] = true;
                    writeln!(
                        out,
                        "inserted id {id} · epoch {epoch} published \
                         ({:.2} ms build, {} maintenance dist comps)",
                        report.build_time.as_secs_f64() * 1e3,
                        report.maintenance.dist_computations,
                    )
                    .map_err(oops)
                }),
            "remove" => parts
                .next()
                .ok_or_else(|| "usage: remove <id>".to_string())
                .and_then(|v| v.parse::<usize>().map_err(|_| format!("bad id '{v}'")))
                .and_then(|id| {
                    if !live.get(id).copied().unwrap_or(false) {
                        return Err(format!("id {id} is not a live point"));
                    }
                    let (next, report) =
                        advance_snapshot(&engine.snapshot(), &[ChurnOp::Remove(id)])
                            .map_err(|e| e.to_string())?;
                    let epoch = engine.publish(next);
                    live[id] = false;
                    writeln!(
                        out,
                        "removed id {id} · epoch {epoch} published \
                         ({:.2} ms build, {} maintenance dist comps)",
                        report.build_time.as_secs_f64() * 1e3,
                        report.maintenance.dist_computations,
                    )
                    .map_err(oops)
                }),
            "stats" => {
                let s = engine.stats();
                writeln!(
                    out,
                    "epoch {} · submitted {} · completed {} · failed {} · rejected {} · \
                     respawns {} · stolen {} · swaps {} · queued {}",
                    s.epoch,
                    s.submitted,
                    s.completed,
                    s.failed,
                    s.rejected,
                    s.respawns,
                    s.stolen,
                    s.swaps,
                    s.queued,
                )
                .map_err(oops)
            }
            "help" => writeln!(
                out,
                "commands: q <id> | qc <c1> .. <c{dim}> | insert <c1> .. <c{dim}> | \
                 remove <id> | stats | quit"
            )
            .map_err(oops),
            other => Err(format!("unknown command '{other}' (try 'help')")),
        };
        if let Err(e) = outcome {
            writeln!(out, "error: {e}").map_err(oops)?;
        }
    }
    let stats = engine.shutdown();
    writeln!(
        out,
        "engine closed: {} completed, {} failed, {} rejected, {} epoch swaps",
        stats.completed, stats.failed, stats.rejected, stats.swaps
    )
    .map_err(oops)?;
    Ok(())
}

/// `hubness`: distribution of reverse-neighbor counts (§1's hubness
/// application \[46\]).
pub fn hubness(args: &Args) -> Result<(), String> {
    let ds = load_dataset(args)?;
    let k: usize = args.get_parsed("k", 10)?;
    let t: f64 = args.get_parsed("t", 8.0)?;
    let (metric, kernel_header) = kernel_selection(args)?;
    let (sub, _) = Substrate::build(args, ds.clone(), metric)?;
    let index = sub.as_index();
    println!("hubness [{} · {kernel_header}]", index.name());
    let rdt = RdtPlus::new(RdtParams::new(k, t));
    let mut counts: Vec<usize> = (0..ds.len())
        .map(|q| rdt.query(index, q).result.len())
        .collect();
    let n = counts.len() as f64;
    let mean = counts.iter().sum::<usize>() as f64 / n;
    let var = counts
        .iter()
        .map(|&c| (c as f64 - mean).powi(2))
        .sum::<f64>()
        / n;
    let sd = var.sqrt();
    let skew = if sd > 0.0 {
        counts
            .iter()
            .map(|&c| ((c as f64 - mean) / sd).powi(3))
            .sum::<f64>()
            / n
    } else {
        0.0
    };
    counts.sort_unstable();
    let pct = |p: f64| counts[((counts.len() - 1) as f64 * p) as usize];
    println!(
        "reverse-{k}NN count distribution over {} points (t = {t}):",
        ds.len()
    );
    println!("  mean {mean:.2}  sd {sd:.2}  skewness {skew:.2}");
    println!(
        "  min {}  p25 {}  median {}  p75 {}  p99 {}  max {}",
        counts[0],
        pct(0.25),
        pct(0.5),
        pct(0.75),
        pct(0.99),
        counts[counts.len() - 1]
    );
    let antihubs = counts.iter().filter(|&&c| c == 0).count();
    println!("  anti-hubs (count 0): {antihubs}");
    println!("  positive skewness = hubness: a few points dominate many k-NN lists");
    Ok(())
}

/// `info`: dataset summary.
pub fn info(args: &Args) -> Result<(), String> {
    let ds = load_dataset(args)?;
    println!("points: {}", ds.len());
    println!("dims:   {}", ds.dim());
    let m = ds.dim();
    let mut lo = vec![f64::INFINITY; m];
    let mut hi = vec![f64::NEG_INFINITY; m];
    for (_, p) in ds.iter() {
        for j in 0..m {
            lo[j] = lo[j].min(p[j]);
            hi[j] = hi[j].max(p[j]);
        }
    }
    let extent: f64 = lo.iter().zip(&hi).map(|(l, h)| h - l).sum::<f64>() / m as f64;
    println!("mean per-dimension extent: {extent:.4}");
    let show = m.min(5);
    for j in 0..show {
        println!("  dim {j}: [{:.4}, {:.4}]", lo[j], hi[j]);
    }
    if m > show {
        println!("  … {} more dimensions", m - show);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(|x| x.to_string())).unwrap()
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(name)
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn gen_estimate_query_roundtrip() {
        let path = tmp("rknn_cli_test.fvb");
        gen(&args(&format!(
            "gen --kind blobs --n 400 --dim 4 --out {path} --seed 3"
        )))
        .unwrap();
        info(&args(&format!("info --input {path}"))).unwrap();
        estimate(&args(&format!("estimate --input {path}"))).unwrap();
        query(&args(&format!("query --input {path} --q 5 --k 5 --t 6"))).unwrap();
        query(&args(&format!(
            "query --input {path} --q 5 --k 5 --adaptive"
        )))
        .unwrap();
        query(&args(&format!(
            "query --input {path} --q 5 --k 5 --method sft --alpha 4"
        )))
        .unwrap();
        query(&args(&format!(
            "query --input {path} --q 5 --k 5 --method naive"
        )))
        .unwrap();
        query(&args(&format!(
            "query --input {path} --q 5 --k 5 --method tpl"
        )))
        .unwrap();
        query(&args(&format!(
            "query --input {path} --q 5 --k 5 --method mrknncop --kmax 8"
        )))
        .unwrap();
        query(&args(&format!(
            "query --input {path} --q 5 --k 5 --method rdnn"
        )))
        .unwrap();
        bench(&args(&format!(
            "bench --input {path} --k 3 --queries 8 --methods rdt,rdt+,sft,naive"
        )))
        .unwrap();
        hubness(&args(&format!("hubness --input {path} --k 3 --t 6"))).unwrap();
        churn(&args(&format!(
            "churn --input {path} --k 3 --updates 9 --threads 2"
        )))
        .unwrap();
        churn(&args(&format!(
            "churn --input {path} --k 3 --updates 6 --substrate linear"
        )))
        .unwrap();
        // Kernel-tier flags: every tier is selectable per invocation, the
        // backend flag pins (or no-ops, if dispatch already ran) the SIMD
        // backend, and `auto` is accepted as "don't pin".
        for tier in ["exact", "fast", "fast-f32"] {
            query(&args(&format!(
                "query --input {path} --q 5 --k 5 --t 6 --tier {tier} --substrate linear"
            )))
            .unwrap();
        }
        query(&args(&format!(
            "query --input {path} --q 5 --k 5 --t 6 --tier fast --kernel auto"
        )))
        .unwrap();
        query(&args(&format!(
            "query --input {path} --q 5 --k 5 --t 6 --kernel scalar"
        )))
        .unwrap();
        churn(&args(&format!(
            "churn --input {path} --k 3 --updates 6 --tier fast --substrate linear"
        )))
        .unwrap();
        hubness(&args(&format!(
            "hubness --input {path} --k 3 --t 6 --tier fast"
        )))
        .unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn data_alias_limit_and_dims_slice_interchange_files() {
        let path = tmp("rknn_cli_slice.fvecs");
        gen(&args(&format!(
            "gen --kind blobs --n 200 --dim 6 --out {path} --seed 9"
        )))
        .unwrap();
        // --data is an alias for --input; --limit/--dims slice on the way in.
        let sliced =
            load_dataset(&args(&format!("info --data {path} --limit 50 --dims 3"))).unwrap();
        assert_eq!((sliced.len(), sliced.dim()), (50, 3));
        let full = load_dataset(&args(&format!("info --input {path}"))).unwrap();
        assert_eq!((full.len(), full.dim()), (200, 6));
        // The slice is a prefix of the full load in both axes.
        for i in 0..sliced.len() {
            assert_eq!(sliced.point(i), &full.point(i)[..3]);
        }
        query(&args(&format!(
            "query --data {path} --limit 50 --dims 3 --q 5 --k 3 --t 6"
        )))
        .unwrap();
        bench(&args(&format!(
            "bench --data {path} --limit 60 --dims 4 --k 3 --queries 8 --methods rdt+"
        )))
        .unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn serve_repl_queries_churns_and_swaps_epochs() {
        let path = tmp("rknn_cli_serve.fvb");
        gen(&args(&format!(
            "gen --kind blobs --n 200 --dim 3 --out {path} --seed 5"
        )))
        .unwrap();
        let script = "stats\n\
                      q 5\n\
                      insert 0.5 0.5 0.5\n\
                      q 5\n\
                      remove 7\n\
                      q 200\n\
                      stats\n\
                      help\n\
                      bogus\n\
                      q 7\n\
                      quit\n";
        let mut out = Vec::new();
        serve_io(
            &args(&format!(
                "serve --input {path} --k 4 --t 5 --threads 2 --prewarm 50"
            )),
            script.as_bytes(),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("serving 200 points × 3 dims"), "{text}");
        assert!(
            text.contains("inserted id 200 · epoch 1 published"),
            "{text}"
        );
        assert!(text.contains("removed id 7 · epoch 2 published"), "{text}");
        // The inserted point is queryable in the new epoch.
        assert!(text.contains("q 200 · epoch 2"), "{text}");
        // Removed and unknown inputs get REPL errors, not process exits.
        assert!(text.contains("error: id 7 is not a live point"), "{text}");
        assert!(text.contains("error: unknown command 'bogus'"), "{text}");
        assert!(
            text.contains("engine closed: 3 completed, 0 failed, 0 rejected, 2 epoch swaps"),
            "{text}"
        );
        // Same REPL on the linear substrate and a pinned tier.
        let mut out2 = Vec::new();
        serve_io(
            &args(&format!(
                "serve --input {path} --k 4 --substrate linear --tier fast --threads 1"
            )),
            "q 0\nquit\n".as_bytes(),
            &mut out2,
        )
        .unwrap();
        let text2 = String::from_utf8(out2).unwrap();
        assert!(text2.contains("q 0 · epoch 0"), "{text2}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn serve_repl_types_errors_and_survives_chaos() {
        let path = tmp("rknn_cli_serve_chaos.fvb");
        gen(&args(&format!(
            "gen --kind blobs --n 120 --dim 3 --out {path} --seed 11"
        )))
        .unwrap();
        // Coordinate queries validate at the engine boundary: non-finite
        // values and wrong arity come back as typed `invalid query` errors,
        // well-formed ones answer. `--deadline-ms` attaches a per-query
        // budget generous enough that every answer lands inside it.
        let script = "qc nan 0 0\n\
                      qc 0.1 0.2\n\
                      qc 0.1 0.2 0.3\n\
                      q 4\n\
                      quit\n";
        let mut out = Vec::new();
        serve_io(
            &args(&format!(
                "serve --input {path} --k 3 --substrate linear --threads 1 --deadline-ms 5000"
            )),
            script.as_bytes(),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("error: invalid query: non-finite coordinate"),
            "{text}"
        );
        assert!(
            text.contains("error: invalid query: dimension mismatch: expected 3, got 2"),
            "{text}"
        );
        assert!(text.contains("qc · epoch 0"), "{text}");
        assert!(text.contains("q 4 · epoch 0"), "{text}");
        // Invalid inputs are refused at submit — never admitted, so they
        // count in neither `completed` nor `failed`.
        assert!(
            text.contains("engine closed: 2 completed, 0 failed, 0 rejected, 0 epoch swaps"),
            "{text}"
        );
        // `--chaos` injects seeded panics/deaths/delays: faulted queries
        // report typed errors, the supervisor respawns, the REPL survives
        // to a clean shutdown.
        let script2: String =
            (0..40).map(|i| format!("q {i}\n")).collect::<String>() + "stats\nquit\n";
        let mut out2 = Vec::new();
        serve_io(
            &args(&format!(
                "serve --input {path} --k 3 --substrate linear --threads 2 --chaos 7"
            )),
            script2.as_bytes(),
            &mut out2,
        )
        .unwrap();
        let text2 = String::from_utf8(out2).unwrap();
        assert!(text2.contains("engine closed:"), "{text2}");
        assert!(!text2.contains("engine closed: 40 completed"), "{text2}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn serve_rejects_bad_configs() {
        let path = tmp("rknn_cli_serve_err.fvb");
        gen(&args(&format!(
            "gen --kind uniform --n 30 --dim 2 --out {path}"
        )))
        .unwrap();
        let empty = std::io::empty();
        let mut sink = Vec::new();
        assert!(serve_io(
            &args(&format!("serve --input {path} --k 0")),
            std::io::BufReader::new(empty),
            &mut sink
        )
        .is_err());
        assert!(serve_io(
            &args(&format!("serve --input {path} --k 3 --queue-cap 0")),
            "quit\n".as_bytes(),
            &mut sink
        )
        .is_err());
        assert!(serve_io(
            &args(&format!("serve --input {path} --k 3 --substrate woo")),
            "quit\n".as_bytes(),
            &mut sink
        )
        .is_err());
        assert!(serve_io(
            &args(&format!("serve --input {path} --k 29")),
            "quit\n".as_bytes(),
            &mut sink
        )
        .is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(gen(&args("gen --kind nope --n 10 --out /tmp/x.csv")).is_err());
        assert!(query(&args("query --input /nonexistent.csv --q 0 --k 3")).is_err());
        let path = tmp("rknn_cli_err.csv");
        gen(&args(&format!(
            "gen --kind uniform --n 20 --dim 2 --out {path}"
        )))
        .unwrap();
        assert!(query(&args(&format!("query --input {path} --q 999 --k 3"))).is_err());
        assert!(query(&args(&format!("query --input {path} --q 0 --k 0"))).is_err());
        assert!(query(&args(&format!(
            "query --input {path} --q 0 --k 3 --method woo"
        )))
        .is_err());
        assert!(query(&args(&format!(
            "query --input {path} --q 0 --k 5 --method mrknncop --kmax 3"
        )))
        .is_err());
        assert!(query(&args(&format!(
            "query --input {path} --q 0 --k 3 --substrate woo"
        )))
        .is_err());
        assert!(churn(&args(&format!(
            "churn --input {path} --k 3 --substrate woo"
        )))
        .is_err());
        assert!(churn(&args(&format!("churn --input {path} --k 19"))).is_err());
        assert!(query(&args(&format!(
            "query --input {path} --q 0 --k 3 --tier warp-speed"
        )))
        .is_err());
        assert!(query(&args(&format!(
            "query --input {path} --q 0 --k 3 --kernel woo"
        )))
        .is_err());
        assert!(query(&args(&format!("query --data {path} --q 0 --k 3 --limit 0"))).is_err());
        assert!(query(&args(&format!("query --data {path} --q 0 --k 3 --dims x"))).is_err());
        assert!(bench(&args(&format!("bench --input {path} --k 3 --methods warp"))).is_err());
        assert!(bench(&args("bench --k 3")).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
