//! Minimal dependency-free argument parsing.
//!
//! Supports `--key value` pairs and positional arguments. Deliberately
//! small: the CLI surface is a handful of flags per subcommand, not worth a
//! parser dependency under this workspace's dependency policy.

use std::collections::HashMap;

/// Parsed arguments: a subcommand, positionals, and `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// First positional argument (the subcommand).
    pub command: Option<String>,
    /// Remaining positional arguments.
    pub positional: Vec<String>,
    /// `--key value` options.
    pub options: HashMap<String, String>,
    /// Bare `--flag`s (no value).
    pub flags: Vec<String>,
}

impl Args {
    /// Parses an argument list (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(items: I) -> Result<Args, String> {
        let mut out = Args::default();
        let mut iter = items.into_iter().peekable();
        while let Some(item) = iter.next() {
            if let Some(key) = item.strip_prefix("--") {
                if key.is_empty() {
                    return Err("empty option name '--'".into());
                }
                // A value follows unless the next token is another option
                // or the stream ends.
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let value = iter.next().expect("peeked");
                        out.options.insert(key.to_string(), value);
                    }
                    _ => out.flags.push(key.to_string()),
                }
            } else if out.command.is_none() {
                out.command = Some(item);
            } else {
                out.positional.push(item);
            }
        }
        Ok(out)
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    /// A required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// A parsed numeric/typed option with default.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("cannot parse --{key} value '{v}'")),
        }
    }

    /// Whether a bare flag is present.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(|x| x.to_string())).unwrap()
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse("query extra --input pts.csv --k 10 --verbose");
        assert_eq!(a.command.as_deref(), Some("query"));
        assert_eq!(a.get("input"), Some("pts.csv"));
        assert_eq!(a.get_parsed::<usize>("k", 1).unwrap(), 10);
        assert!(a.has_flag("verbose"));
        assert_eq!(a.positional, vec!["extra".to_string()]);
        // Greedy rule: a non-option token after `--key` is its value.
        let a = parse("query --verbose extra");
        assert_eq!(a.get("verbose"), Some("extra"));
        assert!(!a.has_flag("verbose"));
    }

    #[test]
    fn defaults_and_requirements() {
        let a = parse("gen --n 100");
        assert_eq!(a.get_parsed::<usize>("n", 5).unwrap(), 100);
        assert_eq!(a.get_parsed::<f64>("t", 2.5).unwrap(), 2.5);
        assert!(a.require("output").is_err());
        assert!(a.get_parsed::<usize>("n", 0).is_ok());
    }

    #[test]
    fn bad_values_error_cleanly() {
        let a = parse("gen --n abc");
        assert!(a.get_parsed::<usize>("n", 1).is_err());
        assert!(Args::parse(vec!["--".to_string()]).is_err());
    }

    #[test]
    fn flag_followed_by_option() {
        let a = parse("estimate --quiet --k 7");
        assert!(a.has_flag("quiet"));
        assert_eq!(a.get("k"), Some("7"));
    }
}
