//! `rknn-cli` — reverse k-nearest neighbor search from the command line.
//!
//! ```text
//! rknn-cli gen      --kind sequoia --n 10000 --out pts.fvb [--seed 1] [--dim 64]
//! rknn-cli estimate --input pts.fvb
//! rknn-cli query    --data base.fvecs --q 123 --k 10 [--t 5 | --adaptive]
//!                   [--limit N] [--dims D]
//!                   [--method rdt+|rdt|sft|naive|tpl|mrknncop|rdnn]
//!                   [--tier exact|fast|fast-f32] [--kernel scalar|sse2|avx2|auto]
//! rknn-cli bench    --data base.fvecs --k 10 [--limit N] [--dims D]
//!                   [--methods rdt,rdt+,sft,...] [--queries Q] [--threads T]
//! rknn-cli hubness  --input pts.fvb --k 10 [--t 8] [--tier ...] [--kernel ...]
//! rknn-cli churn    --input pts.fvb --k 10 [--updates 60] [--t 50] [--tier ...]
//! rknn-cli serve    --input pts.fvb --k 10 [--t 5] [--threads T] [--queue-cap C]
//! rknn-cli info     --input pts.fvb
//! ```
//!
//! Datasets are CSV (one point per line), the `.fvb` binary format of
//! `rknn-data`, or the interchange formats `.fvecs`/`.ivecs`/`.bvecs`/`.idx`
//! (texmex and MNIST conventions). `--input` and `--data` are aliases;
//! `--limit N` keeps the first N rows while reading and `--dims D` keeps the
//! leading D coordinates, so a million-row file slices down without ever
//! being materialized whole.

mod args;
mod commands;

use args::Args;
use std::process::ExitCode;

const USAGE: &str = "\
rknn-cli — reverse k-nearest neighbor search by dimensional testing

USAGE:
  rknn-cli gen      --kind <sequoia|aloi|fct|mnist|imagenet|uniform|blobs>
                    --n <points> --out <file[.csv|.fvb]> [--seed S] [--dim D]
  rknn-cli estimate --input <file>            intrinsic-dimensionality estimates
  rknn-cli query    --input <file> --q <id> --k <rank>
                    [--t <scale> | --adaptive]
                    [--method rdt+|rdt|sft|naive|tpl|mrknncop|rdnn]
                    [--substrate cover|linear] [--alpha A] [--kmax K]
                    [--tier exact|fast|fast-f32] [--kernel scalar|sse2|avx2|auto]
  rknn-cli bench    --input <file> --k <rank> [--t <scale>] [--queries Q]
                    [--methods rdt,rdt+,sft,naive,tpl,mrknncop,rdnn]
                    [--threads T] [--seed S] [--substrate cover|linear]
                    [--alpha A] [--kmax K] [--tier ..] [--kernel ..]
                    per-algorithm prepare/batch timing on a dataset file
  rknn-cli hubness  --input <file> --k <rank> [--t <scale>] [--tier ..] [--kernel ..]
  rknn-cli churn    --input <file> --k <rank> [--updates U] [--t <scale>]
                    [--substrate cover|linear] [--seed S] [--threads T]
                    [--tier exact|fast|fast-f32] [--kernel scalar|sse2|avx2|auto]
                    maintained all-points RkNN under insert/delete churn,
                    priced per update against rebuild-from-scratch
  rknn-cli serve    --input <file> --k <rank> [--t <scale>] [--threads T]
                    [--queue-cap C] [--prewarm P] [--substrate cover|linear]
                    [--tier exact|fast|fast-f32] [--kernel scalar|sse2|avx2|auto]
                    long-lived serving engine driven by stdin:
                    q <id> | insert <coords...> | remove <id> | stats | quit
                    (inserts/removes publish a new snapshot epoch; queries
                    never block on updates)
  rknn-cli info     --input <file>            dataset summary

Datasets: CSV (comma-separated coordinates, '#' comments), .fvb binary, or
.fvecs/.ivecs/.bvecs/.idx interchange files. --data is an alias for --input;
--limit N keeps the first N rows while reading, --dims D the leading D
coordinates (both stream — the full file is never materialized).
Kernel tiers: exact (default, bit-identical) | fast (FMA, ULP-bounded) |
fast-f32 (f32 storage on linear scans); see README \"Kernel tiers\".
Threads: --threads 0 (the bench/serve default) defers to the RKNN_THREADS
environment override, then to the CPU count — set RKNN_THREADS to make
worker counts reproducible across hosts.
";

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_deref() {
        Some("gen") => commands::gen(&args),
        Some("estimate") => commands::estimate(&args),
        Some("query") => commands::query(&args),
        Some("bench") => commands::bench(&args),
        Some("hubness") => commands::hubness(&args),
        Some("churn") => commands::churn(&args),
        Some("serve") => commands::serve(&args),
        Some("info") => commands::info(&args),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\nrun 'rknn-cli help' for usage");
            ExitCode::FAILURE
        }
    }
}
