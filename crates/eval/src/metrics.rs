//! Result-quality measures.

use rknn_core::PointId;
use std::collections::HashSet;

/// Recall of `reported` against `truth` (1.0 when the truth is empty, as a
/// query with no reverse neighbors is answered perfectly by an empty set).
pub fn recall(reported: &[PointId], truth: &HashSet<PointId>) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let hits = reported.iter().filter(|id| truth.contains(id)).count();
    hits as f64 / truth.len() as f64
}

/// Precision of `reported` against `truth` (1.0 for an empty report).
pub fn precision(reported: &[PointId], truth: &HashSet<PointId>) -> f64 {
    if reported.is_empty() {
        return 1.0;
    }
    let hits = reported.iter().filter(|id| truth.contains(id)).count();
    hits as f64 / reported.len() as f64
}

/// Micro-averaged recall/precision accumulator over a query batch.
#[derive(Debug, Clone, Copy, Default)]
pub struct QualityAccum {
    hits: usize,
    truth_total: usize,
    reported_total: usize,
}

impl QualityAccum {
    /// An empty accumulator.
    pub fn new() -> Self {
        QualityAccum::default()
    }

    /// Adds one query's outcome.
    pub fn add(&mut self, reported: &[PointId], truth: &HashSet<PointId>) {
        self.hits += reported.iter().filter(|id| truth.contains(id)).count();
        self.truth_total += truth.len();
        self.reported_total += reported.len();
    }

    /// Micro-averaged recall.
    pub fn recall(&self) -> f64 {
        if self.truth_total == 0 {
            1.0
        } else {
            self.hits as f64 / self.truth_total as f64
        }
    }

    /// Micro-averaged precision.
    pub fn precision(&self) -> f64 {
        if self.reported_total == 0 {
            1.0
        } else {
            self.hits as f64 / self.reported_total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth(ids: &[PointId]) -> HashSet<PointId> {
        ids.iter().copied().collect()
    }

    #[test]
    fn recall_and_precision_basics() {
        let t = truth(&[1, 2, 3, 4]);
        assert_eq!(recall(&[1, 2], &t), 0.5);
        assert_eq!(precision(&[1, 2], &t), 1.0);
        assert_eq!(precision(&[1, 9], &t), 0.5);
        assert_eq!(recall(&[], &truth(&[])), 1.0);
        assert_eq!(precision(&[], &t), 1.0);
    }

    #[test]
    fn accumulator_micro_averages() {
        let mut acc = QualityAccum::new();
        acc.add(&[1, 2], &truth(&[1, 2, 3, 4])); // 2/4
        acc.add(&[5], &truth(&[5])); // 1/1
        assert_eq!(acc.recall(), 3.0 / 5.0);
        assert_eq!(acc.precision(), 1.0);
        let empty = QualityAccum::new();
        assert_eq!(empty.recall(), 1.0);
        assert_eq!(empty.precision(), 1.0);
    }
}
