//! The experiment framework regenerating the paper's evaluation.
//!
//! Each experiment function returns structured rows that the harness
//! binaries in `rknn-bench` render as the paper's tables/figure series:
//!
//! * [`experiments::table1`] — intrinsic-dimensionality estimates and
//!   estimator runtimes per dataset (Table 1);
//! * [`tradeoff`] — recall-vs-query-time curves for RDT/RDT+/SFT with
//!   estimator-selected operating points, plus query and precomputation
//!   times for MRkNNCoP, RdNN-Tree and TPL (Figures 3–6);
//! * [`experiments::lazy`] — lazy-accept/reject/verify proportions as a
//!   function of the scale parameter (Figure 7);
//! * [`experiments::scalability`] — Imagenet-like subset scaling
//!   (Figure 8);
//! * [`experiments::amortization`] — queries answerable within the
//!   RdNN-Tree precomputation budget (Figure 9);
//! * [`experiments::substrates`] — beyond the paper: the batch all-points
//!   workload on all six forward substrates through the shared traversal
//!   core, with per-substrate work accounting;
//! * [`experiments::churn`] — beyond the paper: a maintained all-points
//!   answer table under mixed insert/delete churn, priced per update
//!   against rebuild-from-scratch and verified byte-identical to it.
//!
//! Supporting modules: [`truth`] (exact ground truth via per-point kNN
//! distance tables, parallelized with crossbeam), [`metrics`]
//! (recall/precision), [`report`] (ASCII tables + CSV), [`forward`] (the
//! runtime choice between cover-tree and sequential-scan substrates, §7.1).

#![warn(missing_docs)]

pub mod experiments;
pub mod forward;
pub mod metrics;
pub mod report;
pub mod tradeoff;
pub mod truth;

pub use forward::Forward;
pub use metrics::{precision, recall};
pub use report::Table;
pub use tradeoff::{run_tradeoff, TradeoffConfig, TradeoffRow};
pub use truth::{dataset_fingerprint, DkTable, GroundTruth, SampledTruth};
