//! Plain-text tables and CSV output for the experiment harness.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple column-aligned text table that can also be saved as CSV.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut first = true;
            for (w, c) in widths.iter().zip(cells) {
                if !first {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:>w$}", w = w);
                first = false;
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Writes the table as CSV.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        let mut s = String::new();
        let escape = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let _ = writeln!(
            s,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                s,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        std::fs::write(path, s)
    }
}

/// Formats a float with 3 decimal places (experiment-table convention).
pub fn f3(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        format!("{v:.3}")
    }
}

/// Formats milliseconds with adaptive precision.
pub fn ms(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["method", "recall"]);
        t.push_row(vec!["RDT".into(), "0.95".into()]);
        t.push_row(vec!["MRkNNCoP".into(), "1".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("MRkNNCoP"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let dir = std::env::temp_dir().join("rknn_table_test.csv");
        let mut t = Table::new("demo", &["name", "v"]);
        t.push_row(vec!["a,b".into(), "1".into()]);
        t.write_csv(&dir).unwrap();
        let s = std::fs::read_to_string(&dir).unwrap();
        assert!(s.contains("\"a,b\",1"));
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f3(f64::NAN), "-");
        assert_eq!(ms(250.0), "250");
        assert_eq!(ms(2.5), "2.50");
        assert_eq!(ms(0.0123), "0.0123");
    }
}
