//! Runtime choice of the forward-kNN substrate.
//!
//! "For our experimentation, we chose as examples two different methods:
//! the Cover Tree, and straightforward sequential database scan. … for
//! [MNIST and Imagenet], all experimental results were reported using
//! sequential scan, while for the remaining sets, the results reported are
//! for the Cover Tree." (§7.1)

use rknn_core::{CursorScratch, Dataset, Metric, Neighbor, PointId, SearchStats};
use rknn_index::{CoverTree, KnnIndex, LinearScan, NnCursor};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A forward index that is either a cover tree or a sequential scan.
#[derive(Debug)]
pub enum Forward<M: Metric> {
    /// Cover-tree substrate.
    Cover(CoverTree<M>),
    /// Sequential-scan substrate.
    Linear(LinearScan<M>),
}

impl<M: Metric + Clone> Forward<M> {
    /// Builds the requested substrate, returning it with its build time.
    pub fn build(ds: Arc<Dataset>, metric: M, cover: bool) -> (Self, Duration) {
        let start = Instant::now();
        let fwd = if cover {
            Forward::Cover(CoverTree::build(ds, metric))
        } else {
            Forward::Linear(LinearScan::build(ds, metric))
        };
        (fwd, start.elapsed())
    }
}

impl<M: Metric> KnnIndex<M> for Forward<M> {
    fn num_points(&self) -> usize {
        match self {
            Forward::Cover(t) => t.num_points(),
            Forward::Linear(t) => t.num_points(),
        }
    }

    fn dim(&self) -> usize {
        match self {
            Forward::Cover(t) => t.dim(),
            Forward::Linear(t) => t.dim(),
        }
    }

    fn point(&self, id: PointId) -> &[f64] {
        match self {
            Forward::Cover(t) => t.point(id),
            Forward::Linear(t) => t.point(id),
        }
    }

    fn metric(&self) -> &M {
        match self {
            Forward::Cover(t) => t.metric(),
            Forward::Linear(t) => t.metric(),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Forward::Cover(t) => t.name(),
            Forward::Linear(t) => t.name(),
        }
    }

    fn cursor<'a>(&'a self, q: &'a [f64], exclude: Option<PointId>) -> Box<dyn NnCursor + 'a> {
        match self {
            Forward::Cover(t) => t.cursor(q, exclude),
            Forward::Linear(t) => t.cursor(q, exclude),
        }
    }

    fn cursor_with<'a>(
        &'a self,
        q: &'a [f64],
        exclude: Option<PointId>,
        scratch: &'a mut CursorScratch,
    ) -> Box<dyn NnCursor + 'a> {
        match self {
            Forward::Cover(t) => t.cursor_with(q, exclude, scratch),
            Forward::Linear(t) => t.cursor_with(q, exclude, scratch),
        }
    }

    fn cursor_bounded<'a>(
        &'a self,
        q: &'a [f64],
        exclude: Option<PointId>,
        limit: usize,
        scratch: &'a mut CursorScratch,
    ) -> Box<dyn NnCursor + 'a> {
        match self {
            Forward::Cover(t) => t.cursor_bounded(q, exclude, limit, scratch),
            Forward::Linear(t) => t.cursor_bounded(q, exclude, limit, scratch),
        }
    }

    fn knn(
        &self,
        q: &[f64],
        k: usize,
        exclude: Option<PointId>,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        match self {
            Forward::Cover(t) => t.knn(q, k, exclude, stats),
            Forward::Linear(t) => t.knn(q, k, exclude, stats),
        }
    }

    fn range(
        &self,
        q: &[f64],
        r: f64,
        exclude: Option<PointId>,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        match self {
            Forward::Cover(t) => t.range(q, r, exclude, stats),
            Forward::Linear(t) => t.range(q, r, exclude, stats),
        }
    }

    fn range_count(
        &self,
        q: &[f64],
        r: f64,
        strict: bool,
        exclude: Option<PointId>,
        stats: &mut SearchStats,
    ) -> usize {
        match self {
            Forward::Cover(t) => t.range_count(q, r, strict, exclude, stats),
            Forward::Linear(t) => t.range_count(q, r, strict, exclude, stats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknn_core::Euclidean;

    #[test]
    fn both_substrates_answer_identically() {
        let ds = rknn_data::uniform_cube(300, 3, 7).into_shared();
        let (cover, _) = Forward::build(ds.clone(), Euclidean, true);
        let (linear, _) = Forward::build(ds.clone(), Euclidean, false);
        assert_eq!(cover.name(), "cover-tree");
        assert_eq!(linear.name(), "linear-scan");
        let mut st = SearchStats::new();
        for q in [0usize, 120, 299] {
            let a: Vec<_> = cover
                .knn(ds.point(q), 8, Some(q), &mut st)
                .iter()
                .map(|n| n.id)
                .collect();
            let b: Vec<_> = linear
                .knn(ds.point(q), 8, Some(q), &mut st)
                .iter()
                .map(|n| n.id)
                .collect();
            assert_eq!(a, b);
        }
    }
}
