//! Table 1: intrinsic-dimensionality estimates per dataset.
//!
//! "The intrinsic dimensionality of each data set as estimated by the
//! different estimators used in our experiments, together with their
//! representational dimensions (D). The average execution times … of the
//! estimators are shown in parentheses."

use rknn_core::{Dataset, Euclidean};
use rknn_lid::{GpEstimator, HillEstimator, IdEstimator, TakensEstimator};
use std::sync::Arc;

/// One Table 1 row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Dataset label.
    pub dataset: String,
    /// Representational dimension D.
    pub d: usize,
    /// Averaged Hill/MLE estimate.
    pub mle: f64,
    /// MLE wall-clock seconds.
    pub mle_s: f64,
    /// Grassberger–Procaccia estimate.
    pub gp: f64,
    /// GP wall-clock seconds.
    pub gp_s: f64,
    /// Takens estimate.
    pub takens: f64,
    /// Takens wall-clock seconds.
    pub takens_s: f64,
}

/// Runs all three estimators on each dataset.
pub fn run_table1(datasets: &[(String, Arc<Dataset>)]) -> Vec<Table1Row> {
    let mle = HillEstimator::new();
    let gp = GpEstimator::new();
    let takens = TakensEstimator::new();
    datasets
        .iter()
        .map(|(name, ds)| {
            let a = mle.estimate(ds, &Euclidean);
            let b = gp.estimate(ds, &Euclidean);
            let c = takens.estimate(ds, &Euclidean);
            Table1Row {
                dataset: name.clone(),
                d: ds.dim(),
                mle: a.id,
                mle_s: a.elapsed.as_secs_f64(),
                gp: b.id,
                gp_s: b.elapsed.as_secs_f64(),
                takens: c.id,
                takens_s: c.elapsed.as_secs_f64(),
            }
        })
        .collect()
}

/// Renders Table 1 rows.
pub fn rows_to_table(rows: &[Table1Row]) -> crate::report::Table {
    let mut t = crate::report::Table::new(
        "Table 1: intrinsic dimensionality estimates (times in seconds)",
        &[
            "dataset", "D", "MLE", "MLE_s", "GP", "GP_s", "Takens", "Takens_s",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.dataset.clone(),
            r.d.to_string(),
            format!("{:.2}", r.mle),
            format!("{:.2}", r.mle_s),
            format!("{:.2}", r.gp),
            format!("{:.2}", r.gp_s),
            format!("{:.2}", r.takens),
            format!("{:.2}", r.takens_s),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_on_small_datasets() {
        let sets = vec![
            (
                "uniform2".to_string(),
                rknn_data::uniform_cube(600, 2, 31).into_shared(),
            ),
            (
                "sequoia".to_string(),
                rknn_data::sequoia_like(600, 32).into_shared(),
            ),
        ];
        let rows = run_table1(&sets);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].d, 2);
        assert!(
            (rows[0].mle - 2.0).abs() < 0.8,
            "uniform square MLE {}",
            rows[0].mle
        );
        assert!(rows[0].mle_s >= 0.0);
        let rendered = rows_to_table(&rows).render();
        assert!(rendered.contains("sequoia"));
    }
}
