//! Figure 9: queries answerable within the RdNN-Tree precomputation budget.
//!
//! "…we show for Imagenet100 and Imagenet250 the number of queries for each
//! method that can be performed during the same amount of time required for
//! the precomputation of the RdNN-Tree." A method with precomputation `P`
//! and mean query time `τ` answers `max(0, (B − P)) / τ` queries inside a
//! budget `B` (the RdNN-Tree itself therefore answers 0 before its own
//! precomputation ends — which is the figure's point).

use crate::forward::Forward;
use rknn_baselines::{MrknncopAlgorithm, RdnnAlgorithm};
use rknn_core::Euclidean;
use rknn_data::{imagenet_like, sample_queries};
use rknn_rdt::algorithm::{run_algorithm_batch, RdtAlgorithm, RknnAlgorithm};
use rknn_rdt::RdtParams;
use std::sync::Arc;

/// Configuration for the amortization comparison.
#[derive(Debug, Clone)]
pub struct AmortizationConfig {
    /// Subset sizes (paper: 100k and 250k; defaults laptop-scaled).
    pub sizes: Vec<usize>,
    /// Feature dimension.
    pub dim: usize,
    /// Reverse rank (paper: 10).
    pub k: usize,
    /// RDT+ scale parameter (paper uses t = 10 for the full set).
    pub t: f64,
    /// Queries used to estimate mean query time.
    pub queries: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for AmortizationConfig {
    fn default() -> Self {
        AmortizationConfig {
            sizes: vec![1000, 2500],
            dim: 512,
            k: 10,
            t: 10.0,
            queries: 10,
            seed: 0x1a6e,
        }
    }
}

/// One Figure 9 bar.
#[derive(Debug, Clone)]
pub struct AmortizationRow {
    /// Subset size.
    pub n: usize,
    /// Method label.
    pub method: String,
    /// One-off setup cost in milliseconds.
    pub precompute_ms: f64,
    /// Mean query time in milliseconds.
    pub query_ms: f64,
    /// Queries answerable inside the RdNN precomputation budget.
    pub queries_in_budget: f64,
}

/// Runs the comparison. Every method — the two precomputation-heavy exact
/// baselines and the RDT+ heuristic — is measured through the
/// algorithm-generic batch driver with one worker, so per-query means come
/// off identical plumbing (scratch reuse, threshold-pruned cursors) and
/// differ only by algorithm.
pub fn run_amortization(cfg: &AmortizationConfig) -> Vec<AmortizationRow> {
    let mut out = Vec::new();
    for &n in &cfg.sizes {
        let ds = Arc::new(imagenet_like(n, cfg.dim, cfg.seed));
        let (forward, build) = Forward::build(ds.clone(), Euclidean, false);
        let queries = sample_queries(n, cfg.queries, cfg.seed);
        let per_query_ms = |elapsed: std::time::Duration| {
            elapsed.as_secs_f64() * 1e3 / queries.len().max(1) as f64
        };

        let mut rdnn = RdnnAlgorithm::new(ds.clone(), Euclidean, cfg.k);
        rdnn.prepare(&forward);
        let budget_ms =
            RknnAlgorithm::<_, Forward<Euclidean>>::precompute_time(&rdnn).as_secs_f64() * 1e3;
        let rdnn_q = per_query_ms(run_algorithm_batch(&rdnn, &forward, &queries, 1).elapsed);

        let mut mrk = MrknncopAlgorithm::new(ds.clone(), Euclidean, cfg.k, cfg.k);
        mrk.prepare(&forward);
        let mrk_pre =
            RknnAlgorithm::<_, Forward<Euclidean>>::precompute_time(&mrk).as_secs_f64() * 1e3;
        let mrk_q = per_query_ms(run_algorithm_batch(&mrk, &forward, &queries, 1).elapsed);

        // d_k reuse stays off for the heuristic so no amortized
        // precomputation hides inside the mean query time while rdt_pre
        // only charges the index build.
        let rdt_pre = build.as_secs_f64() * 1e3;
        let mut rdt = RdtAlgorithm::plus(RdtParams::new(cfg.k, cfg.t)).with_dk_reuse(false);
        rdt.prepare(&forward);
        let rdt_q = per_query_ms(run_algorithm_batch(&rdt, &forward, &queries, 1).elapsed);

        let in_budget = |pre: f64, q: f64| {
            if q <= 0.0 {
                f64::INFINITY
            } else {
                ((budget_ms - pre).max(0.0)) / q
            }
        };
        out.push(AmortizationRow {
            n,
            method: "RdNN".into(),
            precompute_ms: budget_ms,
            query_ms: rdnn_q,
            queries_in_budget: in_budget(budget_ms, rdnn_q),
        });
        out.push(AmortizationRow {
            n,
            method: "MRkNNCoP".into(),
            precompute_ms: mrk_pre,
            query_ms: mrk_q,
            queries_in_budget: in_budget(mrk_pre, mrk_q),
        });
        out.push(AmortizationRow {
            n,
            method: format!("RDT+(t={})", cfg.t),
            precompute_ms: rdt_pre,
            query_ms: rdt_q,
            queries_in_budget: in_budget(rdt_pre, rdt_q),
        });
    }
    out
}

/// Renders Figure 9 rows.
pub fn rows_to_table(rows: &[AmortizationRow]) -> crate::report::Table {
    use crate::report::ms;
    let mut t = crate::report::Table::new(
        "Figure 9: queries answerable within the RdNN precomputation budget (k=10)",
        &[
            "n",
            "method",
            "precompute_ms",
            "query_ms",
            "queries_in_budget",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.n.to_string(),
            r.method.clone(),
            ms(r.precompute_ms),
            ms(r.query_ms),
            format!("{:.0}", r.queries_in_budget),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdt_amortizes_far_better_than_exact_methods() {
        let cfg = AmortizationConfig {
            sizes: vec![800],
            dim: 64,
            k: 5,
            t: 6.0,
            queries: 6,
            ..AmortizationConfig::default()
        };
        let rows = run_amortization(&cfg);
        assert_eq!(rows.len(), 3);
        let rdnn = rows.iter().find(|r| r.method == "RdNN").unwrap();
        let rdt = rows.iter().find(|r| r.method.starts_with("RDT+")).unwrap();
        // RdNN spends its whole budget on precomputation.
        assert_eq!(rdnn.queries_in_budget, 0.0);
        assert!(
            rdt.queries_in_budget > 0.0,
            "RDT+ answers queries inside the budget: {rows:?}"
        );
        assert!(rdt.precompute_ms < rdnn.precompute_ms);
        assert!(rows_to_table(&rows).render().contains("RdNN"));
    }
}
