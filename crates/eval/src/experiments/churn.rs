//! Beyond the paper: RkNN maintenance cost under churn.
//!
//! The paper motivates RkNN with the data-warehouse update scenario —
//! "determining those objects that would potentially be affected by a
//! particular data update operation" — but evaluates only static
//! snapshots. This experiment measures the dynamic story end to end: a
//! [`rknn_rdt::MaintainedStream`] keeps the all-points answer table live
//! through a mixed insert/delete workload on a dynamic forward index,
//! and every update's cost is compared against the alternative the
//! precomputation-heavy baselines are stuck with — re-running the whole
//! all-points batch from scratch.

use rknn_core::{Euclidean, PointId};
use rknn_data::gaussian_blobs;
use rknn_index::CoverTree;
use rknn_rdt::algorithm::{run_algorithm_batch, RdtAlgorithm, RknnAlgorithm};
use rknn_rdt::{MaintainedStream, RdtParams};
use std::time::Instant;

/// Configuration for the churn experiment.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Initial dataset size.
    pub n: usize,
    /// Feature dimension.
    pub dim: usize,
    /// Generator clusters.
    pub clusters: usize,
    /// Generator spread.
    pub sigma: f64,
    /// Reverse rank.
    pub k: usize,
    /// RDT scale parameter. The default (50) is the exact regime, which is
    /// what makes the maintained-vs-rebuild verification byte-exact.
    pub t: f64,
    /// Total updates (two inserts to every delete, interleaved).
    pub updates: usize,
    /// Batch-driver workers for seeding and recomputation.
    pub threads: usize,
    /// Seed.
    pub seed: u64,
    /// Verify the maintained table against a rebuild-from-scratch batch
    /// after the workload (byte-identity, requires the exact regime).
    pub verify: bool,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            n: 600,
            dim: 8,
            clusters: 6,
            sigma: 0.4,
            k: 5,
            t: 50.0,
            updates: 45,
            threads: 2,
            seed: 0xc4a2,
            verify: true,
        }
    }
}

/// Aggregate outcome of the churn workload.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// Initial dataset size.
    pub n: usize,
    /// Reverse rank.
    pub k: usize,
    /// Inserts performed.
    pub inserts: usize,
    /// Deletes performed.
    pub deletes: usize,
    /// Mean wall-clock per insert (index mutation + cache repair +
    /// localized recomputation), milliseconds.
    pub mean_insert_ms: f64,
    /// Mean wall-clock per delete, milliseconds.
    pub mean_delete_ms: f64,
    /// Mean answers recomputed per update — the localization footprint.
    pub mean_recomputed: f64,
    /// Mean points whose `d_k` the update could have changed.
    pub mean_affected: f64,
    /// Total `d_k`-cache maintenance time attributed through
    /// [`RknnAlgorithm::maintenance_time`], milliseconds.
    pub maintenance_ms: f64,
    /// Rebuilding the whole answer table from scratch at the final size,
    /// milliseconds — what every update would cost without localization.
    pub rebuild_ms: f64,
    /// Mean per-update cost over the rebuild cost (≪ 1 is the point).
    pub update_vs_rebuild: f64,
    /// Whether the maintained table matched the rebuild byte for byte
    /// (`false` when verification was skipped).
    pub verified: bool,
}

/// Deterministic xorshift64* so the experiment needs no RNG dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Runs the mixed insert/delete workload through a maintained stream on a
/// dynamic cover tree and prices each update against a rebuild.
pub fn run_churn(cfg: &ChurnConfig) -> ChurnReport {
    let ds = gaussian_blobs(cfg.n, cfg.dim, cfg.clusters, cfg.sigma, cfg.seed).into_shared();
    let mut index = CoverTree::build(ds, Euclidean);
    let params = RdtParams::new(cfg.k, cfg.t);
    let mut stream = MaintainedStream::new(RdtAlgorithm::new(params), &index, cfg.threads);

    let mut rng = Rng(cfg.seed | 1);
    let mut live: Vec<PointId> = (0..cfg.n).collect();
    let (mut inserts, mut deletes) = (0usize, 0usize);
    let (mut insert_ms, mut delete_ms) = (0.0f64, 0.0f64);
    let (mut recomputed, mut affected) = (0usize, 0usize);

    for step in 0..cfg.updates {
        if step % 3 == 2 && live.len() > cfg.k + 1 {
            let victim = live.swap_remove(rng.next() as usize % live.len());
            let rep = stream
                .remove(&mut index, victim)
                .expect("victim is live and maintained");
            deletes += 1;
            delete_ms += rep.elapsed.as_secs_f64() * 1e3;
            recomputed += rep.recomputed;
            affected += rep.affected;
        } else {
            let point: Vec<f64> = (0..cfg.dim).map(|_| rng.unit() * 10.0).collect();
            let (id, rep) = stream.insert(&mut index, &point).expect("valid point");
            live.push(id);
            inserts += 1;
            insert_ms += rep.elapsed.as_secs_f64() * 1e3;
            recomputed += rep.recomputed;
            affected += rep.affected;
        }
    }

    // The alternative every update is priced against: re-prepare and re-run
    // the all-points batch over the surviving queries from scratch.
    let rebuild_start = Instant::now();
    let mut fresh = RdtAlgorithm::new(params);
    fresh.prepare(&index);
    let mut queries: Vec<PointId> = live.clone();
    queries.sort_unstable();
    let rebuilt = run_algorithm_batch(&fresh, &index, &queries, cfg.threads);
    let rebuild_ms = rebuild_start.elapsed().as_secs_f64() * 1e3;

    let mut verified = false;
    if cfg.verify {
        assert_eq!(stream.live(), queries.len());
        for (&q, want) in queries.iter().zip(&rebuilt.answers) {
            let got = stream.answer(q).expect("live point is maintained");
            assert_eq!(got.ids(), want.ids(), "maintained diverged at q={q}");
            let gd: Vec<u64> = got.result.iter().map(|x| x.dist.to_bits()).collect();
            let wd: Vec<u64> = want.result.iter().map(|x| x.dist.to_bits()).collect();
            assert_eq!(gd, wd, "maintained distance bits diverged at q={q}");
        }
        verified = true;
    }

    let updates = (inserts + deletes).max(1);
    let mean_update_ms = (insert_ms + delete_ms) / updates as f64;
    ChurnReport {
        n: cfg.n,
        k: cfg.k,
        inserts,
        deletes,
        mean_insert_ms: insert_ms / inserts.max(1) as f64,
        mean_delete_ms: delete_ms / deletes.max(1) as f64,
        mean_recomputed: recomputed as f64 / updates as f64,
        mean_affected: affected as f64 / updates as f64,
        maintenance_ms: RknnAlgorithm::<Euclidean, CoverTree<Euclidean>>::maintenance_time(
            stream.algo(),
        )
        .as_secs_f64()
            * 1e3,
        rebuild_ms,
        update_vs_rebuild: if rebuild_ms > 0.0 {
            mean_update_ms / rebuild_ms
        } else {
            f64::INFINITY
        },
        verified,
    }
}

/// Renders the churn report as one table row.
pub fn report_to_table(r: &ChurnReport) -> crate::report::Table {
    use crate::report::ms;
    let mut t = crate::report::Table::new(
        "Churn: maintained all-points RkNN vs rebuild-from-scratch",
        &[
            "n",
            "k",
            "inserts",
            "deletes",
            "insert_ms",
            "delete_ms",
            "recomputed/update",
            "rebuild_ms",
            "update/rebuild",
            "verified",
        ],
    );
    t.push_row(vec![
        r.n.to_string(),
        r.k.to_string(),
        r.inserts.to_string(),
        r.deletes.to_string(),
        ms(r.mean_insert_ms),
        ms(r.mean_delete_ms),
        format!("{:.1}", r.mean_recomputed),
        ms(r.rebuild_ms),
        format!("{:.3}", r.update_vs_rebuild),
        r.verified.to_string(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_workload_stays_byte_identical_to_rebuild() {
        let cfg = ChurnConfig {
            n: 220,
            dim: 4,
            k: 3,
            updates: 18,
            threads: 2,
            ..ChurnConfig::default()
        };
        let report = run_churn(&cfg);
        assert!(report.verified);
        assert_eq!(report.inserts + report.deletes, cfg.updates);
        assert!(report.deletes > 0, "workload mixes deletes in");
        assert!(
            report.mean_recomputed >= 1.0,
            "every update recomputes at least its own footprint"
        );
        assert!(
            report.mean_recomputed < cfg.n as f64,
            "localization beats recomputing everything"
        );
        assert!(report_to_table(&report).render().contains("verified"));
    }
}
