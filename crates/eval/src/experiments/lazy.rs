//! Figure 7: efficacy of lazy acceptance and lazy rejection.
//!
//! "Comparison of the proportion of lazy accepts, lazy rejects and
//! explicitly verified candidates performed by RDT+ as a function of the
//! scale parameter t, for a fixed reverse neighbor rank of k = 10. The
//! dashed line represents the achieved levels of recall."

use crate::forward::Forward;
use crate::metrics::QualityAccum;
use crate::truth::{DkTable, GroundTruth};
use rknn_core::{Dataset, Euclidean};
use rknn_data::sample_queries;
use rknn_rdt::batch::{run_batch, BatchConfig};
use rknn_rdt::{RdtParams, RdtVariant};
use std::sync::Arc;

/// Configuration for the lazy-mechanism profile.
#[derive(Debug, Clone)]
pub struct LazyConfig {
    /// Dataset label.
    pub dataset: String,
    /// Fixed reverse rank (paper: 10).
    pub k: usize,
    /// Scale-parameter grid (paper: 2–14).
    pub t_grid: Vec<f64>,
    /// Number of queries.
    pub queries: usize,
    /// Substrate selection.
    pub use_cover_tree: bool,
    /// Workload seed.
    pub seed: u64,
    /// Ground-truth worker threads.
    pub threads: usize,
}

impl LazyConfig {
    /// Paper-like defaults.
    pub fn new(dataset: impl Into<String>) -> Self {
        LazyConfig {
            dataset: dataset.into(),
            k: 10,
            t_grid: vec![2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0],
            queries: 40,
            use_cover_tree: true,
            seed: 0x5eed,
            threads: 8,
        }
    }
}

/// One Figure 7 point: candidate-treatment proportions and recall at one t.
#[derive(Debug, Clone)]
pub struct LazyRow {
    /// Dataset label.
    pub dataset: String,
    /// Scale parameter.
    pub t: f64,
    /// Fraction of retrieved candidates verified explicitly.
    pub verify: f64,
    /// Fraction lazily accepted (Assertion 2).
    pub accept: f64,
    /// Fraction lazily rejected (Assertion 1 + RDT+ exclusions).
    pub reject: f64,
    /// Mean recall at this t.
    pub recall: f64,
    /// Mean retrieved candidates per query.
    pub mean_retrieved: f64,
}

/// Profiles RDT+ candidate treatment across the t grid.
pub fn run_lazy_profile(ds: Arc<Dataset>, cfg: &LazyConfig) -> Vec<LazyRow> {
    let (forward, _) = Forward::build(ds.clone(), Euclidean, cfg.use_cover_tree);
    let queries = sample_queries(ds.len(), cfg.queries, cfg.seed);
    let table = DkTable::compute(&forward, &[cfg.k], cfg.threads);
    let truth = GroundTruth::compute(&forward, &table, &queries, cfg.k, cfg.threads);
    let batch_cfg = BatchConfig::default()
        .with_threads(cfg.threads)
        .with_variant(RdtVariant::Plus);
    let mut rows = Vec::new();
    for &t in &cfg.t_grid {
        // The whole query batch runs through the parallel driver; the
        // per-query proportions (a per-answer quantity) are then averaged
        // in query order, identical to the former sequential loop.
        let out = run_batch(&forward, &queries, RdtParams::new(cfg.k, t), &batch_cfg);
        let mut verify = 0.0;
        let mut accept = 0.0;
        let mut reject = 0.0;
        let mut quality = QualityAccum::new();
        for (i, ans) in out.answers.iter().enumerate() {
            let (v, a, r) = ans.stats.proportions();
            verify += v;
            accept += a;
            reject += r;
            quality.add(&ans.ids(), truth.answer(i));
        }
        let retrieved = out.stats.retrieved;
        let nq = queries.len().max(1) as f64;
        rows.push(LazyRow {
            dataset: cfg.dataset.clone(),
            t,
            verify: verify / nq,
            accept: accept / nq,
            reject: reject / nq,
            recall: quality.recall(),
            mean_retrieved: retrieved as f64 / nq,
        });
    }
    rows
}

/// Renders Figure 7 rows.
pub fn rows_to_table(rows: &[LazyRow]) -> crate::report::Table {
    use crate::report::f3;
    let mut t = crate::report::Table::new(
        "Figure 7: lazy accept / lazy reject / verify proportions (RDT+, k=10)",
        &[
            "dataset",
            "t",
            "verify",
            "accept",
            "reject",
            "recall",
            "retrieved",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.dataset.clone(),
            format!("{:.0}", r.t),
            f3(r.verify),
            f3(r.accept),
            f3(r.reject),
            f3(r.recall),
            format!("{:.0}", r.mean_retrieved),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportions_partition_and_recall_grows() {
        let ds = rknn_data::sequoia_like(900, 41).into_shared();
        let cfg = LazyConfig {
            k: 5,
            t_grid: vec![2.0, 6.0, 12.0],
            queries: 10,
            threads: 2,
            ..LazyConfig::new("seq")
        };
        let rows = run_lazy_profile(ds, &cfg);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                (r.verify + r.accept + r.reject - 1.0).abs() < 1e-9,
                "proportions must partition: {r:?}"
            );
        }
        assert!(rows.last().unwrap().recall >= rows[0].recall - 0.05);
        // More candidates are retrieved at larger t.
        assert!(rows.last().unwrap().mean_retrieved >= rows[0].mean_retrieved);
        assert!(rows_to_table(&rows).render().contains("seq"));
    }
}
