//! Ablation: what the witness machinery and the RDT+ exclusion actually
//! buy (§4.1/§4.3/§8.2 — the design choices `DESIGN.md` calls out).
//!
//! Runs the same queries through three engine variants — plain RDT, RDT+,
//! and RDT with witness maintenance disabled (every surviving candidate is
//! explicitly verified) — and reports verification counts, witness costs,
//! query times and result quality side by side.

use crate::forward::Forward;
use crate::metrics::QualityAccum;
use crate::truth::{DkTable, GroundTruth};
use rknn_core::{Dataset, Euclidean};
use rknn_data::sample_queries;
use rknn_rdt::batch::{run_batch, BatchConfig};
use rknn_rdt::engine::RdtVariant;
use rknn_rdt::{RdtAdaptive, RdtParams};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of the ablation run.
#[derive(Debug, Clone)]
pub struct AblationConfig {
    /// Dataset label.
    pub dataset: String,
    /// Reverse rank.
    pub k: usize,
    /// Scale parameters to compare at.
    pub t_grid: Vec<f64>,
    /// Number of queries.
    pub queries: usize,
    /// Substrate selection.
    pub use_cover_tree: bool,
    /// Workload seed.
    pub seed: u64,
    /// Ground-truth worker threads.
    pub threads: usize,
}

impl AblationConfig {
    /// Defaults mirroring the Figure 7 setup.
    pub fn new(dataset: impl Into<String>) -> Self {
        AblationConfig {
            dataset: dataset.into(),
            k: 10,
            t_grid: vec![2.0, 4.0, 8.0],
            queries: 30,
            use_cover_tree: true,
            seed: 0x5eed,
            threads: 8,
        }
    }
}

/// One measured variant at one t.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Dataset label.
    pub dataset: String,
    /// Scale parameter (NaN for the adaptive schedule).
    pub t: f64,
    /// Variant label.
    pub variant: String,
    /// Micro-averaged recall.
    pub recall: f64,
    /// Micro-averaged precision.
    pub precision: f64,
    /// Mean query milliseconds.
    pub query_ms: f64,
    /// Mean explicit verifications per query.
    pub verified: f64,
    /// Mean witness-maintenance pair updates per query (the paper's
    /// filter-phase cost model; comparable across variants, unlike raw
    /// distance evaluations — see [`rknn_rdt::RdtQueryStats`]).
    pub witness_pairs: f64,
}

/// Runs the ablation.
pub fn run_ablation(ds: Arc<Dataset>, cfg: &AblationConfig) -> Vec<AblationRow> {
    let (forward, _) = Forward::build(ds.clone(), Euclidean, cfg.use_cover_tree);
    let queries = sample_queries(ds.len(), cfg.queries, cfg.seed);
    let table = DkTable::compute(&forward, &[cfg.k], cfg.threads);
    let truth = GroundTruth::compute(&forward, &table, &queries, cfg.k, cfg.threads);
    let mut rows = Vec::new();
    let variants: [(&str, RdtVariant); 3] = [
        ("RDT", RdtVariant::Plain),
        ("RDT+", RdtVariant::Plus),
        ("no-witness", RdtVariant::NoWitness),
    ];
    for &t in &cfg.t_grid {
        for (label, variant) in variants {
            let params = RdtParams::new(cfg.k, t);
            // Sequential batch execution: scratch reuse across the query
            // list without changing what a "mean query time" means. The
            // d_k cache stays off — this ablation's whole point is the
            // per-query verification cost gap between variants, which
            // cross-query threshold reuse would collapse.
            let cfg_batch = BatchConfig::sequential()
                .with_variant(variant)
                .with_dk_reuse(false);
            let out = run_batch(&forward, &queries, params, &cfg_batch);
            let mut quality = QualityAccum::new();
            for (i, ans) in out.answers.iter().enumerate() {
                quality.add(&ans.ids(), truth.answer(i));
            }
            let nq = queries.len().max(1) as f64;
            rows.push(AblationRow {
                dataset: cfg.dataset.clone(),
                t,
                variant: label.to_string(),
                recall: quality.recall(),
                precision: quality.precision(),
                query_ms: out.elapsed.as_secs_f64() * 1e3 / nq,
                verified: out.stats.verified as f64 / nq,
                witness_pairs: out.stats.witness_pairs as f64 / nq,
            });
        }
    }
    // The adaptive-t schedule (§9 future work) as a fourth contender.
    let adaptive = RdtAdaptive::new(cfg.k, 2.0);
    let mut quality = QualityAccum::new();
    let mut verified = 0usize;
    let mut witness = 0u64;
    let start = Instant::now();
    for (i, &q) in queries.iter().enumerate() {
        let ans = adaptive.query(&forward, q);
        verified += ans.stats.verified;
        witness += ans.stats.witness_pairs;
        quality.add(&ans.ids(), truth.answer(i));
    }
    let nq = queries.len().max(1) as f64;
    rows.push(AblationRow {
        dataset: cfg.dataset.clone(),
        t: f64::NAN,
        variant: "RDT+(adaptive)".to_string(),
        recall: quality.recall(),
        precision: quality.precision(),
        query_ms: start.elapsed().as_secs_f64() * 1e3 / nq,
        verified: verified as f64 / nq,
        witness_pairs: witness as f64 / nq,
    });
    rows
}

/// Renders ablation rows.
pub fn rows_to_table(rows: &[AblationRow]) -> crate::report::Table {
    use crate::report::{f3, ms};
    let mut t = crate::report::Table::new(
        "Ablation: witness machinery, RDT+ exclusion, adaptive t (k=10)",
        &[
            "dataset",
            "t",
            "variant",
            "recall",
            "precision",
            "query_ms",
            "verified/q",
            "witness_pairs/q",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.dataset.clone(),
            f3(r.t),
            r.variant.clone(),
            f3(r.recall),
            f3(r.precision),
            ms(r.query_ms),
            format!("{:.1}", r.verified),
            format!("{:.0}", r.witness_pairs),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_witness_variant_verifies_most() {
        let ds = rknn_data::sequoia_like(800, 71).into_shared();
        let cfg = AblationConfig {
            k: 5,
            t_grid: vec![4.0],
            queries: 8,
            threads: 2,
            ..AblationConfig::new("seq")
        };
        let rows = run_ablation(ds, &cfg);
        // 3 fixed-variant rows + 1 adaptive row.
        assert_eq!(rows.len(), 4);
        let get = |v: &str| rows.iter().find(|r| r.variant == v).unwrap();
        let plain = get("RDT");
        let plus = get("RDT+");
        let nw = get("no-witness");
        let adaptive = get("RDT+(adaptive)");
        assert!(
            nw.verified > plain.verified,
            "witnesses must remove verifications"
        );
        assert_eq!(nw.witness_pairs, 0.0);
        assert!(plus.witness_pairs <= plain.witness_pairs);
        // All variants are high-quality at this t.
        for r in [plain, plus, nw] {
            assert!(r.recall > 0.9, "{}: recall {}", r.variant, r.recall);
        }
        assert!(
            adaptive.recall > 0.85,
            "adaptive recall {}",
            adaptive.recall
        );
        assert!(rows_to_table(&rows).render().contains("no-witness"));
    }
}
