//! Figure 8: scalability on Imagenet-like subsets.
//!
//! "Comparison of the performance curves of RDT+ with those of its
//! competitors on subsets of the Imagenet dataset … for choices of the
//! reverse neighbor rank k ∈ {10, 50}. We also compare initialization and
//! query times." Exact methods are dropped once their precomputation
//! becomes prohibitive, exactly as the paper excludes RdNN/MRkNNCoP beyond
//! Imagenet250.

use crate::tradeoff::{run_tradeoff, TradeoffConfig, TradeoffRow};
use rknn_data::imagenet_like;
use std::sync::Arc;

/// Configuration of the scalability sweep.
#[derive(Debug, Clone)]
pub struct ScalabilityConfig {
    /// Subset sizes (the paper uses 100k/250k/500k/1.28M; defaults here are
    /// laptop-scaled with the same ratios).
    pub sizes: Vec<usize>,
    /// Feature dimension (paper: 4096).
    pub dim: usize,
    /// Reverse ranks (paper: {10, 50}).
    pub ks: Vec<usize>,
    /// Scale-parameter sweep for RDT+.
    pub t_grid: Vec<f64>,
    /// Queries per subset.
    pub queries: usize,
    /// Largest subset for which exact methods are still built.
    pub exact_max_n: usize,
    /// Seed.
    pub seed: u64,
    /// Ground-truth worker threads.
    pub threads: usize,
}

impl Default for ScalabilityConfig {
    fn default() -> Self {
        ScalabilityConfig {
            sizes: vec![1000, 2500, 5000],
            dim: 512,
            ks: vec![10, 50],
            t_grid: vec![2.0, 4.0, 6.0, 8.0, 10.0],
            queries: 15,
            exact_max_n: 2500,
            seed: 0x1a6e,
            threads: 8,
        }
    }
}

/// A tradeoff row tagged with its subset size.
#[derive(Debug, Clone)]
pub struct ScalabilityRow {
    /// Subset size.
    pub n: usize,
    /// The underlying measurement.
    pub row: TradeoffRow,
}

/// Runs the sweep. Uses the sequential-scan substrate, as the paper does
/// for Imagenet.
pub fn run_scalability(cfg: &ScalabilityConfig) -> Vec<ScalabilityRow> {
    let mut out = Vec::new();
    for &n in &cfg.sizes {
        let ds = Arc::new(imagenet_like(n, cfg.dim, cfg.seed));
        let include_exact = n <= cfg.exact_max_n;
        let tcfg = TradeoffConfig {
            queries: cfg.queries,
            ks: cfg.ks.clone(),
            t_grid: cfg.t_grid.clone(),
            alpha_grid: vec![],
            use_cover_tree: false,
            include_exact,
            // TPL's R-tree trimming is useless at this dimensionality; the
            // paper likewise omits it from the Imagenet comparison.
            include_tpl: false,
            include_estimators: false,
            seed: cfg.seed,
            threads: cfg.threads,
            ..TradeoffConfig::new(format!("Imagenet-like(n={n})"))
        };
        for row in run_tradeoff(ds, &tcfg) {
            out.push(ScalabilityRow { n, row });
        }
    }
    out
}

/// Renders Figure 8 rows.
pub fn rows_to_table(rows: &[ScalabilityRow]) -> crate::report::Table {
    use crate::report::{f3, ms};
    let mut t = crate::report::Table::new(
        "Figure 8: Imagenet-like scalability (sequential-scan substrate)",
        &[
            "n",
            "k",
            "method",
            "param",
            "recall",
            "query_ms",
            "precompute_ms",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.n.to_string(),
            r.row.k.to_string(),
            r.row.method.clone(),
            f3(r.row.param),
            f3(r.row.recall),
            ms(r.row.mean_query_ms),
            ms(r.row.precompute_ms),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_methods_dropped_beyond_threshold() {
        let cfg = ScalabilityConfig {
            sizes: vec![300, 700],
            dim: 32,
            ks: vec![5],
            t_grid: vec![2.0, 6.0],
            queries: 5,
            exact_max_n: 400,
            threads: 2,
            ..ScalabilityConfig::default()
        };
        let rows = run_scalability(&cfg);
        let small_has_exact = rows
            .iter()
            .any(|r| r.n == 300 && (r.row.method == "RdNN" || r.row.method == "MRkNNCoP"));
        let large_has_exact = rows
            .iter()
            .any(|r| r.n == 700 && (r.row.method == "RdNN" || r.row.method == "MRkNNCoP"));
        assert!(small_has_exact, "exact methods present at small n");
        assert!(!large_has_exact, "exact methods excluded beyond the budget");
        assert!(rows_to_table(&rows).len() == rows.len());
    }
}
