//! Substrate sweep: the batch all-points RkNN workload on every forward
//! index.
//!
//! The paper demonstrates index-agnosticism by swapping the cover tree for
//! a sequential scan (§7.1); this experiment runs the same batch workload
//! over *all six* substrates of `rknn-index` through the shared traversal
//! core, verifying identical result sets and reporting where each
//! substrate's work goes (build time, batch time, metric evaluations, node
//! expansions). It is the experiment behind the per-substrate section of
//! `BENCH_rdt.json`.

use rknn_core::{Dataset, Euclidean};
use rknn_index::{BallTree, CoverTree, KnnIndex, LinearScan, MTree, RTree, VpTree};
use rknn_rdt::batch::{run_all_points, BatchConfig, BatchOutcome};
use rknn_rdt::RdtParams;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of the substrate sweep.
#[derive(Debug, Clone)]
pub struct SubstrateSweepConfig {
    /// Dataset size.
    pub n: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Gaussian blob count of the generated dataset.
    pub clusters: usize,
    /// Blob standard deviation.
    pub sigma: f64,
    /// Reverse rank.
    pub k: usize,
    /// Scale parameter.
    pub t: f64,
    /// Batch worker threads (0 = one per CPU).
    pub threads: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Default for SubstrateSweepConfig {
    fn default() -> Self {
        SubstrateSweepConfig {
            n: 2000,
            dim: 16,
            clusters: 8,
            sigma: 0.3,
            k: 10,
            t: 4.0,
            threads: 4,
            seed: 0x5b57,
        }
    }
}

/// One substrate's measurements.
#[derive(Debug, Clone)]
pub struct SubstrateRow {
    /// Substrate name as reported by [`KnnIndex::name`].
    pub substrate: &'static str,
    /// Index construction time in milliseconds.
    pub build_ms: f64,
    /// Batch all-points RkNN time in milliseconds.
    pub batch_ms: f64,
    /// Total metric evaluations (index work + witness maintenance).
    pub total_dist_comps: u64,
    /// Tree nodes expanded across the batch.
    pub nodes_visited: u64,
    /// Heap insertions across the batch.
    pub heap_pushes: u64,
    /// Total reported reverse neighbors.
    pub result_members: usize,
    /// Whether every per-query result set matched the linear-scan run.
    pub matches_linear: bool,
}

/// Builds every substrate over the same dataset and runs the identical
/// batch all-points workload on each; the linear scan is the reference
/// every other substrate's answers are compared against.
pub fn run_substrate_sweep(cfg: &SubstrateSweepConfig) -> Vec<SubstrateRow> {
    let ds =
        rknn_data::gaussian_blobs(cfg.n, cfg.dim, cfg.clusters, cfg.sigma, cfg.seed).into_shared();
    let params = RdtParams::new(cfg.k, cfg.t);
    let batch_cfg = BatchConfig::default().with_threads(cfg.threads.max(1));

    let builds: Vec<(BoxedIndex, f64)> = substrate_builders()
        .into_iter()
        .map(|build| {
            let start = Instant::now();
            let index = build(&ds);
            (index, start.elapsed().as_secs_f64() * 1e3)
        })
        .collect();

    let mut reference: Option<BatchOutcome> = None;
    let mut rows = Vec::with_capacity(builds.len());
    for (index, build_ms) in &builds {
        let out = run_all_points(&**index, params, &batch_cfg);
        let matches_linear = match &reference {
            None => true, // the linear scan itself
            Some(r) => r
                .answers
                .iter()
                .zip(&out.answers)
                .all(|(a, b)| a.ids() == b.ids()),
        };
        rows.push(SubstrateRow {
            substrate: index.name(),
            build_ms: *build_ms,
            batch_ms: out.elapsed.as_secs_f64() * 1e3,
            total_dist_comps: out.stats.total_dist_comps(),
            nodes_visited: out.stats.search.nodes_visited,
            heap_pushes: out.stats.search.heap_pushes,
            result_members: out.stats.result_members,
            matches_linear,
        });
        if reference.is_none() {
            reference = Some(out);
        }
    }
    rows
}

/// A type-erased forward index over the experiment's metric.
type BoxedIndex = Box<dyn KnnIndex<Euclidean>>;

/// The six substrates, linear scan first (it is the reference).
fn substrate_builders() -> Vec<fn(&Arc<Dataset>) -> BoxedIndex> {
    vec![
        |ds| Box::new(LinearScan::build(ds.clone(), Euclidean)),
        |ds| Box::new(CoverTree::build(ds.clone(), Euclidean)),
        |ds| Box::new(VpTree::build(ds.clone(), Euclidean)),
        |ds| Box::new(BallTree::build(ds.clone(), Euclidean)),
        |ds| Box::new(MTree::build(ds.clone(), Euclidean)),
        |ds| Box::new(RTree::build(ds.clone(), Euclidean)),
    ]
}

/// Renders sweep rows as a report table.
pub fn rows_to_table(rows: &[SubstrateRow]) -> crate::report::Table {
    use crate::report::ms;
    let mut t = crate::report::Table::new(
        "Substrate sweep: batch all-points RkNN through the shared traversal core",
        &[
            "substrate",
            "build_ms",
            "batch_ms",
            "dist_comps",
            "nodes_visited",
            "heap_pushes",
            "result_members",
            "matches_linear",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.substrate.to_string(),
            ms(r.build_ms),
            ms(r.batch_ms),
            r.total_dist_comps.to_string(),
            r.nodes_visited.to_string(),
            r.heap_pushes.to_string(),
            r.result_members.to_string(),
            r.matches_linear.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_six_substrates_agree_with_linear_scan() {
        let cfg = SubstrateSweepConfig {
            n: 250,
            dim: 4,
            clusters: 4,
            k: 4,
            t: 3.0,
            threads: 2,
            ..SubstrateSweepConfig::default()
        };
        let rows = run_substrate_sweep(&cfg);
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].substrate, "linear-scan");
        for r in &rows {
            assert!(
                r.matches_linear,
                "{} diverged from the linear scan",
                r.substrate
            );
            assert_eq!(r.result_members, rows[0].result_members, "{}", r.substrate);
        }
        // The scan expands no tree nodes; every tree substrate does.
        assert_eq!(rows[0].nodes_visited, 0);
        for r in &rows[1..] {
            assert!(r.nodes_visited > 0, "{}", r.substrate);
        }
        assert!(rows_to_table(&rows).render().contains("cover-tree"));
    }
}
