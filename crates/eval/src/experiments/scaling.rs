//! Per-algorithm scaling curves over n- and d-grids — the experiment that
//! tests the paper's headline claim at scale.
//!
//! The claim (§7, Figures 3–8): RDT's dimensional testing needs no heavy
//! precomputation, so as `n` grows its *total* cost (per-dataset
//! precompute + query batch) overtakes MRkNNCoP's O(n log n) regression
//! fit and RdNN's full kNN-graph build. Every previously recorded number
//! lived at n=2000; this sweep builds each grid point through the
//! streaming dataset builder, scores answers against cached
//! [`SampledTruth`], and records wall/distance/precompute per algorithm,
//! then locates the crossover points.
//!
//! Naive and TPL are exact but quadratic-ish; above their honesty caps
//! they are recorded as skipped with a reason instead of burning hours —
//! silent truncation would read as "covered everything".

use crate::forward::Forward;
use crate::truth::SampledTruth;
use rknn_baselines::{MrknncopAlgorithm, NaiveRknn, RdnnAlgorithm, Sft, TplAlgorithm};
use rknn_core::{Euclidean, PointId};
use rknn_data::gaussian_blobs;
use rknn_rdt::algorithm::{run_algorithm_batch, AlgorithmAnswer, RknnAlgorithm};
use rknn_rdt::{RdtAlgorithm, RdtParams};
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of the scaling sweep.
#[derive(Debug, Clone)]
pub struct ScalingConfig {
    /// Dataset sizes of the n-sweep (at [`ScalingConfig::dim`]).
    pub n_grid: Vec<usize>,
    /// Dimensions of the d-sweep (at [`ScalingConfig::d_grid_n`] points).
    pub d_grid: Vec<usize>,
    /// Dataset size used for the d-sweep.
    pub d_grid_n: usize,
    /// Dimension used for the n-sweep.
    pub dim: usize,
    /// Gaussian mixture shape.
    pub clusters: usize,
    /// Per-cluster standard deviation.
    pub sigma: f64,
    /// The rank.
    pub k: usize,
    /// RDT scale parameter.
    pub t: f64,
    /// SFT filter parameter.
    pub alpha: f64,
    /// Queries sampled per grid point.
    pub queries: usize,
    /// Base RNG seed (dataset and query sampling derive from it).
    pub seed: u64,
    /// Worker threads for batch runs and truth computation.
    pub threads: usize,
    /// Largest n the naive baseline runs at (skipped-with-reason above).
    pub naive_max_n: usize,
    /// Largest n TPL runs at (skipped-with-reason above).
    pub tpl_max_n: usize,
    /// Directory for the sampled-truth cache; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        ScalingConfig {
            n_grid: vec![1_000, 10_000, 100_000],
            d_grid: vec![8, 32, 128],
            d_grid_n: 10_000,
            dim: 32,
            clusters: 8,
            sigma: 0.08,
            k: 10,
            t: 8.0,
            alpha: 4.0,
            queries: 32,
            seed: 42,
            threads: 4,
            naive_max_n: 5_000,
            tpl_max_n: 20_000,
            cache_dir: None,
        }
    }
}

/// One algorithm's measurements at one grid point.
#[derive(Debug, Clone)]
pub struct ScalingEntry {
    /// Algorithm label.
    pub algorithm: String,
    /// Per-dataset precompute wall time (ms) — the algorithm's own
    /// preparation beyond the shared forward index.
    pub precompute_ms: f64,
    /// Distance computations spent in that precompute.
    pub precompute_dist: u64,
    /// Wall time of the whole query batch (ms).
    pub batch_ms: f64,
    /// Mean wall time per query (ms).
    pub query_ms: f64,
    /// Mean distance computations per query.
    pub dist_per_query: f64,
    /// `precompute_ms + batch_ms` — the amortized-total the crossover
    /// analysis compares.
    pub total_ms: f64,
    /// Recall against the sampled exact truth (1.0 for exact methods).
    pub recall: f64,
}

/// One grid point of the sweep.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Dataset size.
    pub n: usize,
    /// Dataset dimension.
    pub dim: usize,
    /// Streaming dataset generation+build wall time (ms).
    pub dataset_build_ms: f64,
    /// Shared forward (cover tree) index build wall time (ms).
    pub index_build_ms: f64,
    /// Sampled-truth wall time (ms; 0.0 on a cache hit).
    pub truth_ms: f64,
    /// Whether the truth came from the on-disk cache.
    pub truth_from_cache: bool,
    /// Mean exact reverse-neighborhood size over the sample.
    pub truth_mean_size: f64,
    /// Per-algorithm measurements.
    pub entries: Vec<ScalingEntry>,
    /// `(algorithm, reason)` for methods not run at this point.
    pub skipped: Vec<(String, String)>,
}

impl ScalingPoint {
    /// The entry for `algorithm`, if it ran at this point.
    pub fn entry(&self, algorithm: &str) -> Option<&ScalingEntry> {
        self.entries.iter().find(|e| e.algorithm == algorithm)
    }
}

/// A located crossover: the smallest grid `n` where RDT's total cost beats
/// a precompute-heavy baseline's.
#[derive(Debug, Clone)]
pub struct Crossover {
    /// The baseline RDT is compared against.
    pub baseline: String,
    /// Smallest n-grid size where `RDT.total_ms < baseline.total_ms`
    /// (`None` when the baseline wins everywhere it ran).
    pub n: Option<usize>,
    /// RDT's total at that point (ms).
    pub rdt_total_ms: f64,
    /// The baseline's total at that point (ms).
    pub baseline_total_ms: f64,
}

/// The full sweep result.
#[derive(Debug, Clone)]
pub struct ScalingReport {
    /// n-sweep points (ascending n, fixed dim).
    pub n_points: Vec<ScalingPoint>,
    /// d-sweep points (ascending dim, fixed n).
    pub d_points: Vec<ScalingPoint>,
    /// Crossovers of RDT vs the precompute-heavy exact baselines, from
    /// the n-sweep.
    pub crossovers: Vec<Crossover>,
}

fn measure<A>(
    label: &str,
    algo: &A,
    forward: &Forward<Euclidean>,
    queries: &[PointId],
    truth: &SampledTruth,
    threads: usize,
) -> ScalingEntry
where
    A: RknnAlgorithm<Euclidean, Forward<Euclidean>>,
{
    let out = run_algorithm_batch(algo, forward, queries, threads);
    let mut hit = 0usize;
    let mut want_total = 0usize;
    let mut dist = 0u64;
    for (i, ans) in out.answers.iter().enumerate() {
        let ids: HashSet<PointId> = ans.neighbors().iter().map(|n| n.id).collect();
        let want = truth.answer(i);
        hit += ids.intersection(want).count();
        want_total += want.len();
        dist += ans.work().dist_computations;
    }
    let nq = queries.len().max(1) as f64;
    let pre = algo.precompute_time().as_secs_f64() * 1e3;
    let batch_ms = out.elapsed.as_secs_f64() * 1e3;
    ScalingEntry {
        algorithm: label.to_string(),
        precompute_ms: pre,
        precompute_dist: algo.precompute_stats().dist_computations,
        batch_ms,
        query_ms: batch_ms / nq,
        dist_per_query: dist as f64 / nq,
        total_ms: pre + batch_ms,
        recall: if want_total == 0 {
            1.0
        } else {
            hit as f64 / want_total as f64
        },
    }
}

/// Runs every algorithm at one `(n, dim)` grid point.
fn run_point(cfg: &ScalingConfig, n: usize, dim: usize) -> ScalingPoint {
    let t0 = Instant::now();
    let ds = gaussian_blobs(
        n,
        dim,
        cfg.clusters,
        cfg.sigma,
        cfg.seed ^ (n as u64) ^ ((dim as u64) << 32),
    );
    let dataset_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let shared: Arc<_> = ds.clone().into_shared();
    let (forward, build_time) = Forward::build(shared.clone(), Euclidean, true);
    let index_build_ms = build_time.as_secs_f64() * 1e3;

    let truth = match &cfg.cache_dir {
        Some(dir) => SampledTruth::load_or_compute(
            dir,
            &forward,
            &ds,
            cfg.k,
            cfg.queries,
            cfg.seed,
            cfg.threads,
        ),
        None => SampledTruth::compute(&forward, &ds, cfg.k, cfg.queries, cfg.seed, cfg.threads),
    };
    let queries = truth.queries();

    let mut entries = Vec::new();
    let mut skipped = Vec::new();

    let mut rdt = RdtAlgorithm::new(RdtParams::new(cfg.k, cfg.t)).with_dk_reuse(false);
    rdt.prepare(&forward);
    entries.push(measure(
        "RDT",
        &rdt,
        &forward,
        &queries,
        &truth,
        cfg.threads,
    ));

    let mut plus = RdtAlgorithm::plus(RdtParams::new(cfg.k, cfg.t)).with_dk_reuse(false);
    plus.prepare(&forward);
    entries.push(measure(
        "RDT+",
        &plus,
        &forward,
        &queries,
        &truth,
        cfg.threads,
    ));

    let sft = Sft::new(cfg.k, cfg.alpha);
    entries.push(measure(
        "SFT",
        &sft,
        &forward,
        &queries,
        &truth,
        cfg.threads,
    ));

    let mut mrk = MrknncopAlgorithm::new(shared.clone(), Euclidean, cfg.k, cfg.k);
    mrk.prepare(&forward);
    entries.push(measure(
        "MRkNNCoP",
        &mrk,
        &forward,
        &queries,
        &truth,
        cfg.threads,
    ));

    let mut rdnn = RdnnAlgorithm::new(shared.clone(), Euclidean, cfg.k);
    rdnn.prepare(&forward);
    entries.push(measure(
        "RdNN",
        &rdnn,
        &forward,
        &queries,
        &truth,
        cfg.threads,
    ));

    if n <= cfg.tpl_max_n {
        let mut tpl = TplAlgorithm::new(shared.clone(), Euclidean, cfg.k);
        tpl.prepare(&forward);
        entries.push(measure(
            "TPL",
            &tpl,
            &forward,
            &queries,
            &truth,
            cfg.threads,
        ));
    } else {
        skipped.push((
            "TPL".to_string(),
            format!("n={n} exceeds tpl_max_n={}", cfg.tpl_max_n),
        ));
    }

    if n <= cfg.naive_max_n {
        let naive = NaiveRknn::new(cfg.k);
        entries.push(measure(
            "naive",
            &naive,
            &forward,
            &queries,
            &truth,
            cfg.threads,
        ));
    } else {
        skipped.push((
            "naive".to_string(),
            format!("n={n} exceeds naive_max_n={}", cfg.naive_max_n),
        ));
    }

    ScalingPoint {
        n,
        dim,
        dataset_build_ms,
        index_build_ms,
        truth_ms: truth.elapsed.as_secs_f64() * 1e3,
        truth_from_cache: truth.from_cache,
        truth_mean_size: truth.mean_size(),
        entries,
        skipped,
    }
}

/// Locates, per precompute-heavy baseline, the smallest n-grid point where
/// RDT's total cost (precompute + batch) undercuts the baseline's.
pub fn find_crossovers(n_points: &[ScalingPoint]) -> Vec<Crossover> {
    ["MRkNNCoP", "RdNN"]
        .iter()
        .map(|&baseline| {
            let mut found: Option<(usize, f64, f64)> = None;
            for p in n_points {
                if let (Some(rdt), Some(base)) = (p.entry("RDT"), p.entry(baseline)) {
                    if rdt.total_ms < base.total_ms {
                        found = Some((p.n, rdt.total_ms, base.total_ms));
                        break;
                    }
                }
            }
            match found {
                Some((n, r, b)) => Crossover {
                    baseline: baseline.to_string(),
                    n: Some(n),
                    rdt_total_ms: r,
                    baseline_total_ms: b,
                },
                None => {
                    // Record the largest point both ran at, so the "no
                    // crossover" honesty field carries the actual numbers.
                    let last = n_points
                        .iter()
                        .rev()
                        .find_map(|p| p.entry("RDT").zip(p.entry(baseline)));
                    Crossover {
                        baseline: baseline.to_string(),
                        n: None,
                        rdt_total_ms: last.map_or(f64::NAN, |(r, _)| r.total_ms),
                        baseline_total_ms: last.map_or(f64::NAN, |(_, b)| b.total_ms),
                    }
                }
            }
        })
        .collect()
}

/// Runs the full sweep: the n-grid at `cfg.dim`, the d-grid at
/// `cfg.d_grid_n`, and the crossover analysis over the n-sweep.
pub fn run_scaling(cfg: &ScalingConfig) -> ScalingReport {
    let mut n_grid = cfg.n_grid.clone();
    n_grid.sort_unstable();
    n_grid.dedup();
    let n_points: Vec<ScalingPoint> = n_grid.iter().map(|&n| run_point(cfg, n, cfg.dim)).collect();
    let mut d_grid = cfg.d_grid.clone();
    d_grid.sort_unstable();
    d_grid.dedup();
    let d_points = d_grid
        .iter()
        .map(|&d| run_point(cfg, cfg.d_grid_n, d))
        .collect();
    let crossovers = find_crossovers(&n_points);
    ScalingReport {
        n_points,
        d_points,
        crossovers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_records_curves_skips_and_crossovers() {
        let cfg = ScalingConfig {
            n_grid: vec![200, 600],
            d_grid: vec![4, 8],
            d_grid_n: 300,
            dim: 8,
            clusters: 3,
            k: 4,
            queries: 8,
            threads: 2,
            naive_max_n: 300,
            tpl_max_n: 600,
            ..ScalingConfig::default()
        };
        let report = run_scaling(&cfg);
        assert_eq!(report.n_points.len(), 2);
        assert_eq!(report.d_points.len(), 2);
        let p0 = &report.n_points[0];
        assert_eq!(p0.n, 200);
        // Exact methods score perfect recall against the sampled truth.
        for name in ["RDT", "MRkNNCoP", "RdNN", "TPL", "naive"] {
            let e = p0.entry(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(e.recall, 1.0, "{name} must be exact");
            assert!(e.total_ms >= e.batch_ms);
        }
        // Above the naive cap the skip is recorded with a reason.
        let p1 = &report.n_points[1];
        assert!(p1.entry("naive").is_none());
        assert!(p1
            .skipped
            .iter()
            .any(|(a, why)| a == "naive" && why.contains("naive_max_n")));
        // Crossover analysis covers both precompute-heavy baselines.
        assert_eq!(report.crossovers.len(), 2);
        for c in &report.crossovers {
            if let Some(n) = c.n {
                assert!(cfg.n_grid.contains(&n));
                assert!(c.rdt_total_ms < c.baseline_total_ms);
            } else {
                assert!(c.rdt_total_ms.is_finite());
            }
        }
    }

    #[test]
    fn truth_cache_short_circuits_the_second_sweep() {
        let dir = std::env::temp_dir().join(format!("rknn-scaling-cache-{}", std::process::id()));
        let cfg = ScalingConfig {
            n_grid: vec![150],
            d_grid: vec![],
            d_grid_n: 150,
            dim: 4,
            clusters: 2,
            k: 3,
            queries: 5,
            threads: 1,
            cache_dir: Some(dir.clone()),
            ..ScalingConfig::default()
        };
        let first = run_scaling(&cfg);
        assert!(!first.n_points[0].truth_from_cache);
        let second = run_scaling(&cfg);
        assert!(second.n_points[0].truth_from_cache);
        assert_eq!(
            first.n_points[0].truth_mean_size,
            second.n_points[0].truth_mean_size
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
