//! Hubness: the skew of reverse-neighbor counts as dimensionality grows.
//!
//! The paper's introduction motivates RkNN queries with hubness analysis
//! ("the degree of hubness of a node can be computed by means of RkNN
//! queries" \[46\]). This experiment quantifies the phenomenon with the
//! library itself: on uniform data, the distribution of |RkNN(x, k)| over
//! points `x` becomes increasingly right-skewed as the (intrinsic)
//! dimension rises — a few hub points appear in many k-NN lists while
//! anti-hubs appear in none.

use crate::forward::Forward;
use crate::truth::DkTable;
use rknn_core::{Euclidean, Metric};
use rknn_data::uniform_cube;
use std::sync::Arc;

/// Configuration for the hubness sweep.
#[derive(Debug, Clone)]
pub struct HubnessConfig {
    /// Dimensions to sweep.
    pub dims: Vec<usize>,
    /// Points per dataset.
    pub n: usize,
    /// Neighborhood rank.
    pub k: usize,
    /// Seed.
    pub seed: u64,
    /// Ground-truth worker threads.
    pub threads: usize,
}

impl Default for HubnessConfig {
    fn default() -> Self {
        HubnessConfig {
            dims: vec![2, 4, 8, 16, 32],
            n: 2000,
            k: 10,
            seed: 0x4b,
            threads: 8,
        }
    }
}

/// Hubness statistics for one dimension.
#[derive(Debug, Clone)]
pub struct HubnessRow {
    /// Representational (= intrinsic, for uniform cubes) dimension.
    pub dim: usize,
    /// Skewness of the reverse-neighbor count distribution.
    pub skewness: f64,
    /// Fraction of points with an empty reverse neighborhood (anti-hubs).
    pub antihub_fraction: f64,
    /// Largest reverse-neighborhood size (the strongest hub).
    pub max_count: usize,
}

/// Computes exact reverse-neighbor counts for every point via the
/// `d_k`-table identity: `|RkNN(x)| = #{y : d(y, x) ≤ d_k(y)}`.
pub fn run_hubness(cfg: &HubnessConfig) -> Vec<HubnessRow> {
    cfg.dims
        .iter()
        .map(|&dim| {
            let ds = Arc::new(uniform_cube(cfg.n, dim, cfg.seed));
            let (forward, _) = Forward::build(ds.clone(), Euclidean, dim <= 16);
            let table = DkTable::compute(&forward, &[cfg.k], cfg.threads);
            // |RkNN(q)| for every q at once: each point x is a reverse
            // neighbor of exactly the points inside its own d_k(x) ball.
            let mut counts = vec![0usize; ds.len()];
            for (x, xp) in ds.iter() {
                let dk_x = table.dk_of(x, cfg.k);
                for (q, qp) in ds.iter() {
                    if q != x && Euclidean.dist(xp, qp) <= dk_x {
                        counts[q] += 1;
                    }
                }
            }
            let n = counts.len() as f64;
            let mean = counts.iter().sum::<usize>() as f64 / n;
            let var = counts
                .iter()
                .map(|&c| (c as f64 - mean).powi(2))
                .sum::<f64>()
                / n;
            let sd = var.sqrt();
            let skewness = if sd > 0.0 {
                counts
                    .iter()
                    .map(|&c| ((c as f64 - mean) / sd).powi(3))
                    .sum::<f64>()
                    / n
            } else {
                0.0
            };
            HubnessRow {
                dim,
                skewness,
                antihub_fraction: counts.iter().filter(|&&c| c == 0).count() as f64 / n,
                max_count: counts.iter().copied().max().unwrap_or(0),
            }
        })
        .collect()
}

/// Renders hubness rows.
pub fn rows_to_table(k: usize, rows: &[HubnessRow]) -> crate::report::Table {
    let mut t = crate::report::Table::new(
        format!("Hubness: reverse-{k}NN count skew vs dimension (uniform data)"),
        &["dim", "skewness", "antihub_frac", "max_count"],
    );
    for r in rows {
        t.push_row(vec![
            r.dim.to_string(),
            format!("{:.3}", r.skewness),
            format!("{:.3}", r.antihub_fraction),
            r.max_count.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_and_antihubs_grow_with_dimension() {
        let cfg = HubnessConfig {
            dims: vec![2, 16],
            n: 500,
            k: 5,
            threads: 2,
            ..HubnessConfig::default()
        };
        let rows = run_hubness(&cfg);
        assert_eq!(rows.len(), 2);
        let low = &rows[0];
        let high = &rows[1];
        assert!(
            high.skewness > low.skewness,
            "hubness must grow with dimension: {} vs {}",
            low.skewness,
            high.skewness
        );
        assert!(high.antihub_fraction >= low.antihub_fraction);
        assert!(high.max_count >= low.max_count);
        assert!(rows_to_table(5, &rows).render().contains("skewness"));
    }
}
