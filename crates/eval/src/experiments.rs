//! The remaining paper experiments: Table 1 and Figures 7–9.

pub mod ablation;
pub mod amortization;
pub mod hubness;
pub mod lazy;
pub mod scalability;
pub mod table1;
