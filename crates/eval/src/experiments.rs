//! The remaining paper experiments: Table 1 and Figures 7–9, plus the
//! substrate sweep exercising the shared tree-traversal core.

pub mod ablation;
pub mod amortization;
pub mod churn;
pub mod hubness;
pub mod lazy;
pub mod scalability;
pub mod scaling;
pub mod substrates;
pub mod table1;
