//! Exact ground truth via per-point kNN-distance tables.
//!
//! Computing exact reverse-kNN answers naively costs O(n²) per query. The
//! experiment harness instead materializes `d_k(x)` for every point `x` and
//! every evaluated `k` once per dataset — a single (parallelized) kNN pass —
//! after which the exact answer for any query is one O(n) scan:
//! `RkNN(q, k) = {x ≠ q : d(x, q) ≤ d_k(x)}`.
//!
//! Ground truth inherits the kernel tier of the index's metric. To serve
//! as the reference across tiers (e.g. when benchmarking the fast tier
//! against exact answers), build the truth index with an explicitly
//! exact-tier metric — `Euclidean::exact()` — rather than the ambient
//! default, which follows `RKNN_KERNEL_TIER`.

use crossbeam::thread;
use rknn_core::{Metric, PointId, SearchStats};
use rknn_index::KnnIndex;
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Per-point kNN distances at a fixed set of ranks.
#[derive(Debug, Clone)]
pub struct DkTable {
    /// The evaluated ranks, ascending.
    pub ks: Vec<usize>,
    /// `dk[i][j]` = `d_{ks[j]}`-distance of point `i` (`+∞` when fewer than
    /// `ks[j]` other points exist).
    pub dk: Vec<Vec<f64>>,
    /// Wall-clock time of the table computation.
    pub elapsed: Duration,
}

impl DkTable {
    /// Computes the table with one kNN query per point, parallelized over
    /// `threads` workers.
    pub fn compute<M, I>(index: &I, ks: &[usize], threads: usize) -> Self
    where
        M: Metric,
        I: KnnIndex<M> + Sync + ?Sized,
    {
        assert!(!ks.is_empty(), "need at least one rank");
        let mut ks = ks.to_vec();
        ks.sort_unstable();
        ks.dedup();
        let k_max = *ks.last().expect("non-empty");
        let n = index.num_points();
        let start = Instant::now();
        let threads = threads.max(1);
        let chunk = n.div_ceil(threads);
        let mut dk = vec![Vec::new(); n];
        thread::scope(|scope| {
            for (w, slice) in dk.chunks_mut(chunk).enumerate() {
                let ks = &ks;
                scope.spawn(move |_| {
                    let mut stats = SearchStats::new();
                    for (off, row) in slice.iter_mut().enumerate() {
                        let i = w * chunk + off;
                        let nn = index.knn(index.point(i), k_max, Some(i), &mut stats);
                        *row = ks
                            .iter()
                            .map(|&k| {
                                if nn.len() < k {
                                    f64::INFINITY
                                } else {
                                    nn[k - 1].dist
                                }
                            })
                            .collect();
                    }
                });
            }
        })
        .expect("dk workers do not panic");
        DkTable {
            ks,
            dk,
            elapsed: start.elapsed(),
        }
    }

    /// Column index of rank `k`.
    fn col(&self, k: usize) -> usize {
        self.ks
            .iter()
            .position(|&x| x == k)
            .expect("rank was included at construction")
    }

    /// `d_k` of point `i`.
    pub fn dk_of(&self, i: PointId, k: usize) -> f64 {
        self.dk[i][self.col(k)]
    }
}

/// Exact reverse-kNN sets for a batch of queries at one rank.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// The rank.
    pub k: usize,
    /// `(query, answer set)` pairs, in the order queries were supplied.
    pub answers: Vec<(PointId, HashSet<PointId>)>,
}

impl GroundTruth {
    /// Computes exact answers for `queries` from a [`DkTable`],
    /// parallelized over `threads` workers.
    ///
    /// Each answer is one O(n) scan; `x` belongs to `RkNN(q, k)` exactly
    /// when `d(x, q) <= d_k(x)`, so a distance accumulation may be
    /// abandoned once it provably exceeds `d_k(x)` (the closed ball at
    /// `d_k(x)` is the open ball below its successor float).
    pub fn compute<M, I>(
        index: &I,
        table: &DkTable,
        queries: &[PointId],
        k: usize,
        threads: usize,
    ) -> Self
    where
        M: Metric,
        I: KnnIndex<M> + Sync + ?Sized,
    {
        let col = table.col(k);
        let metric = index.metric();
        let n = index.num_points();
        let answer_one = |q: PointId| {
            let qp = index.point(q);
            let mut set = HashSet::new();
            // Tile fast path: when the index exposes its points as one
            // contiguous identity-mapped dataset, stream the query against
            // the padded rows in blocks through `Metric::dist_tile`, with
            // each row bounded by its own membership radius. Admission is
            // exactly the per-point `dist_under` decision (the query's own
            // row is evaluated with its block but skipped at commit).
            if let Some(ds) = index.base_rows().filter(|ds| ds.len() == n) {
                const TILE: usize = 64;
                let (stride, dim) = (ds.stride(), ds.dim());
                let mut qpad = vec![0.0; stride];
                qpad[..dim].copy_from_slice(qp);
                let rows = ds.padded_flat();
                let mut bounds = [0.0f64; TILE];
                let mut out = [0.0f64; TILE];
                let mut start = 0usize;
                while start < n {
                    let m = TILE.min(n - start);
                    for (b, x) in bounds[..m].iter_mut().zip(start..) {
                        *b = table.dk[x][col].next_up();
                    }
                    metric.dist_tile(
                        &qpad,
                        &rows[start * stride..(start + m) * stride],
                        stride,
                        dim,
                        &bounds[..m],
                        &mut out[..m],
                    );
                    for (i, &d) in out[..m].iter().enumerate() {
                        let x = start + i;
                        if x != q && !d.is_nan() {
                            set.insert(x);
                        }
                    }
                    start += m;
                }
                return (q, set);
            }
            for x in 0..n {
                if x == q {
                    continue;
                }
                // `dist_under`: when x has fewer than k other points its
                // d_k is +∞ and every query — even at overflowing distance
                // — trivially has x as a reverse neighbor.
                let bound = table.dk[x][col].next_up();
                if metric.dist_under(index.point(x), qp, bound).is_some() {
                    set.insert(x);
                }
            }
            (q, set)
        };
        let threads = threads.clamp(1, queries.len().max(1));
        let mut answers: Vec<(PointId, HashSet<PointId>)> =
            vec![(0, HashSet::new()); queries.len()];
        if threads <= 1 {
            for (&q, slot) in queries.iter().zip(answers.iter_mut()) {
                *slot = answer_one(q);
            }
        } else {
            // Same chunked scoped fan-out as DkTable::compute above:
            // workers write into disjoint slices of the pre-sized output.
            let chunk = queries.len().div_ceil(threads);
            thread::scope(|scope| {
                for (qs, out) in queries.chunks(chunk).zip(answers.chunks_mut(chunk)) {
                    scope.spawn(move |_| {
                        for (&q, slot) in qs.iter().zip(out.iter_mut()) {
                            *slot = answer_one(q);
                        }
                    });
                }
            })
            .expect("ground-truth workers do not panic");
        }
        GroundTruth { k, answers }
    }

    /// The answer set for the i-th query.
    pub fn answer(&self, i: usize) -> &HashSet<PointId> {
        &self.answers[i].1
    }

    /// Mean reverse-neighborhood size over the batch.
    pub fn mean_size(&self) -> f64 {
        if self.answers.is_empty() {
            return 0.0;
        }
        self.answers.iter().map(|(_, s)| s.len()).sum::<usize>() as f64 / self.answers.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknn_core::{BruteForce, Euclidean};
    use rknn_index::LinearScan;

    #[test]
    fn table_matches_brute_force_dk() {
        let ds = rknn_data::uniform_cube(120, 2, 11).into_shared();
        let idx = LinearScan::build(ds.clone(), Euclidean);
        let table = DkTable::compute(&idx, &[3, 1, 7], 3);
        assert_eq!(table.ks, vec![1, 3, 7]);
        let mut st = SearchStats::new();
        let bf = BruteForce::new(ds, Euclidean);
        for i in [0usize, 60, 119] {
            for &k in &table.ks {
                assert_eq!(
                    table.dk_of(i, k),
                    bf.dk(i, k, &mut st).unwrap(),
                    "i={i} k={k}"
                );
            }
        }
    }

    #[test]
    fn infinity_when_k_exceeds_n() {
        let ds = rknn_data::uniform_cube(4, 2, 12).into_shared();
        let idx = LinearScan::build(ds.clone(), Euclidean);
        let table = DkTable::compute(&idx, &[10], 2);
        assert!(table.dk_of(0, 10).is_infinite());
    }

    #[test]
    fn ground_truth_matches_brute_force_rknn() {
        let ds = rknn_data::uniform_cube(150, 3, 13).into_shared();
        let idx = LinearScan::build(ds.clone(), Euclidean);
        let table = DkTable::compute(&idx, &[5], 4);
        let queries = vec![0, 42, 149];
        let truth = GroundTruth::compute(&idx, &table, &queries, 5, 3);
        let sequential = GroundTruth::compute(&idx, &table, &queries, 5, 1);
        assert_eq!(
            truth.answers, sequential.answers,
            "threading must not change answers"
        );
        let bf = BruteForce::new(ds, Euclidean);
        let mut st = SearchStats::new();
        for (i, &q) in queries.iter().enumerate() {
            let want: HashSet<_> = bf.rknn(q, 5, &mut st).iter().map(|n| n.id).collect();
            assert_eq!(truth.answer(i), &want, "q={q}");
        }
        assert!(truth.mean_size() > 0.0);
    }
}
