//! Exact ground truth via per-point kNN-distance tables.
//!
//! Computing exact reverse-kNN answers naively costs O(n²) per query. The
//! experiment harness instead materializes `d_k(x)` for every point `x` and
//! every evaluated `k` once per dataset — a single (parallelized) kNN pass —
//! after which the exact answer for any query is one O(n) scan:
//! `RkNN(q, k) = {x ≠ q : d(x, q) ≤ d_k(x)}`.
//!
//! Ground truth inherits the kernel tier of the index's metric. To serve
//! as the reference across tiers (e.g. when benchmarking the fast tier
//! against exact answers), build the truth index with an explicitly
//! exact-tier metric — `Euclidean::exact()` — rather than the ambient
//! default, which follows `RKNN_KERNEL_TIER`.

use crossbeam::thread;
use rknn_core::{CursorScratch, Dataset, Metric, PointId, SearchStats};
use rknn_index::KnnIndex;
use std::collections::HashSet;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Per-point kNN distances at a fixed set of ranks.
#[derive(Debug, Clone)]
pub struct DkTable {
    /// The evaluated ranks, ascending.
    pub ks: Vec<usize>,
    /// `dk[i][j]` = `d_{ks[j]}`-distance of point `i` (`+∞` when fewer than
    /// `ks[j]` other points exist).
    pub dk: Vec<Vec<f64>>,
    /// Wall-clock time of the table computation.
    pub elapsed: Duration,
}

impl DkTable {
    /// Computes the table with one kNN query per point, parallelized over
    /// `threads` workers.
    pub fn compute<M, I>(index: &I, ks: &[usize], threads: usize) -> Self
    where
        M: Metric,
        I: KnnIndex<M> + Sync + ?Sized,
    {
        assert!(!ks.is_empty(), "need at least one rank");
        let mut ks = ks.to_vec();
        ks.sort_unstable();
        ks.dedup();
        let k_max = *ks.last().expect("non-empty");
        let n = index.num_points();
        let start = Instant::now();
        let threads = threads.max(1);
        let chunk = n.div_ceil(threads);
        let mut dk = vec![Vec::new(); n];
        thread::scope(|scope| {
            for (w, slice) in dk.chunks_mut(chunk).enumerate() {
                let ks = &ks;
                scope.spawn(move |_| {
                    let mut stats = SearchStats::new();
                    for (off, row) in slice.iter_mut().enumerate() {
                        let i = w * chunk + off;
                        let nn = index.knn(index.point(i), k_max, Some(i), &mut stats);
                        *row = ks
                            .iter()
                            .map(|&k| {
                                if nn.len() < k {
                                    f64::INFINITY
                                } else {
                                    nn[k - 1].dist
                                }
                            })
                            .collect();
                    }
                });
            }
        })
        .expect("dk workers do not panic");
        DkTable {
            ks,
            dk,
            elapsed: start.elapsed(),
        }
    }

    /// Column index of rank `k`.
    fn col(&self, k: usize) -> usize {
        self.ks
            .iter()
            .position(|&x| x == k)
            .expect("rank was included at construction")
    }

    /// `d_k` of point `i`.
    pub fn dk_of(&self, i: PointId, k: usize) -> f64 {
        self.dk[i][self.col(k)]
    }
}

/// Exact reverse-kNN sets for a batch of queries at one rank.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// The rank.
    pub k: usize,
    /// `(query, answer set)` pairs, in the order queries were supplied.
    pub answers: Vec<(PointId, HashSet<PointId>)>,
}

impl GroundTruth {
    /// Computes exact answers for `queries` from a [`DkTable`],
    /// parallelized over `threads` workers.
    ///
    /// Each answer is one O(n) scan; `x` belongs to `RkNN(q, k)` exactly
    /// when `d(x, q) <= d_k(x)`, so a distance accumulation may be
    /// abandoned once it provably exceeds `d_k(x)` (the closed ball at
    /// `d_k(x)` is the open ball below its successor float).
    pub fn compute<M, I>(
        index: &I,
        table: &DkTable,
        queries: &[PointId],
        k: usize,
        threads: usize,
    ) -> Self
    where
        M: Metric,
        I: KnnIndex<M> + Sync + ?Sized,
    {
        let col = table.col(k);
        let metric = index.metric();
        let n = index.num_points();
        let answer_one = |q: PointId| {
            let qp = index.point(q);
            let mut set = HashSet::new();
            // Tile fast path: when the index exposes its points as one
            // contiguous identity-mapped dataset, stream the query against
            // the padded rows in blocks through `Metric::dist_tile`, with
            // each row bounded by its own membership radius. Admission is
            // exactly the per-point `dist_under` decision (the query's own
            // row is evaluated with its block but skipped at commit).
            if let Some(ds) = index.base_rows().filter(|ds| ds.len() == n) {
                const TILE: usize = 64;
                let (stride, dim) = (ds.stride(), ds.dim());
                let mut qpad = vec![0.0; stride];
                qpad[..dim].copy_from_slice(qp);
                let rows = ds.padded_flat();
                let mut bounds = [0.0f64; TILE];
                let mut out = [0.0f64; TILE];
                let mut start = 0usize;
                while start < n {
                    let m = TILE.min(n - start);
                    for (b, x) in bounds[..m].iter_mut().zip(start..) {
                        *b = table.dk[x][col].next_up();
                    }
                    metric.dist_tile(
                        &qpad,
                        &rows[start * stride..(start + m) * stride],
                        stride,
                        dim,
                        &bounds[..m],
                        &mut out[..m],
                    );
                    for (i, &d) in out[..m].iter().enumerate() {
                        let x = start + i;
                        if x != q && !d.is_nan() {
                            set.insert(x);
                        }
                    }
                    start += m;
                }
                return (q, set);
            }
            for x in 0..n {
                if x == q {
                    continue;
                }
                // `dist_under`: when x has fewer than k other points its
                // d_k is +∞ and every query — even at overflowing distance
                // — trivially has x as a reverse neighbor.
                let bound = table.dk[x][col].next_up();
                if metric.dist_under(index.point(x), qp, bound).is_some() {
                    set.insert(x);
                }
            }
            (q, set)
        };
        let threads = threads.clamp(1, queries.len().max(1));
        let mut answers: Vec<(PointId, HashSet<PointId>)> =
            vec![(0, HashSet::new()); queries.len()];
        if threads <= 1 {
            for (&q, slot) in queries.iter().zip(answers.iter_mut()) {
                *slot = answer_one(q);
            }
        } else {
            // Same chunked scoped fan-out as DkTable::compute above:
            // workers write into disjoint slices of the pre-sized output.
            let chunk = queries.len().div_ceil(threads);
            thread::scope(|scope| {
                for (qs, out) in queries.chunks(chunk).zip(answers.chunks_mut(chunk)) {
                    scope.spawn(move |_| {
                        for (&q, slot) in qs.iter().zip(out.iter_mut()) {
                            *slot = answer_one(q);
                        }
                    });
                }
            })
            .expect("ground-truth workers do not panic");
        }
        GroundTruth { k, answers }
    }

    /// The answer set for the i-th query.
    pub fn answer(&self, i: usize) -> &HashSet<PointId> {
        &self.answers[i].1
    }

    /// Mean reverse-neighborhood size over the batch.
    pub fn mean_size(&self) -> f64 {
        if self.answers.is_empty() {
            return 0.0;
        }
        self.answers.iter().map(|(_, s)| s.len()).sum::<usize>() as f64 / self.answers.len() as f64
    }
}

/// A 64-bit FNV-1a fingerprint of a dataset's logical contents (`n`, `dim`
/// and every coordinate's bit pattern, row-major). Two datasets share a
/// fingerprint exactly when they are `==` — the key cached sampled truth is
/// filed under.
pub fn dataset_fingerprint(ds: &Dataset) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(&(ds.len() as u64).to_le_bytes());
    eat(&(ds.dim() as u64).to_le_bytes());
    for (_, row) in ds.iter() {
        for &v in row {
            eat(&v.to_bits().to_le_bytes());
        }
    }
    h
}

/// Magic header of the cached sampled-truth file format.
const TRUTH_MAGIC: &[u8; 8] = b"RKNNTRU1";

/// Exact reverse-kNN truth for a *seeded sample* of queries — the scale
/// replacement for all-pairs [`GroundTruth`].
///
/// [`DkTable::compute`] + [`GroundTruth::compute`] cost O(n²)-ish work in
/// total (`n` kNN queries, then an O(n) scan per query) — ~10¹² distance
/// pairs at n=10⁶. Evaluation does not need every point's answer: a seeded
/// query sample scored against *exact* answers measures recall/cost with
/// the same fidelity. The exact answers come from one sweep over the
/// dataset — per point, a single bounded `d_k` census (one threshold-pruned
/// cursor at the largest query distance) decides membership against every
/// sampled query at once, sharing no machinery with the algorithms under
/// evaluation — so the cost is O(n) cursor walks and "minutes at n=10⁵",
/// not days.
///
/// Answers are cached on disk keyed by [`dataset_fingerprint`] plus the
/// sampling parameters; see [`SampledTruth::load_or_compute`].
#[derive(Debug, Clone, PartialEq)]
pub struct SampledTruth {
    /// The rank.
    pub k: usize,
    /// Seed of the query sample ([`rknn_data::sample_queries`]).
    pub seed: u64,
    /// Number of queries requested from the sampler.
    pub sample: usize,
    /// Fingerprint of the dataset the answers are exact for.
    pub fingerprint: u64,
    /// `(query, exact answer set)` pairs, in sample order.
    pub answers: Vec<(PointId, HashSet<PointId>)>,
    /// Wall-clock time of the truth computation ([`Duration::ZERO`] on a
    /// cache hit).
    pub elapsed: Duration,
    /// Distance computations spent (0 on a cache hit).
    pub dist_computations: u64,
    /// Whether the answers came from the on-disk cache.
    pub from_cache: bool,
}

impl SampledTruth {
    /// Computes exact answers for a seeded sample of `sample` queries in
    /// **one sweep over the dataset**: every point's membership against
    /// *all* sampled queries is decided by a single bounded forward
    /// verification, its `d_k` census resolved through one threshold-pruned
    /// cursor at the largest query distance. Per-query verification (the
    /// naive baseline's shape) would pay `|sample|` cursor walks per point;
    /// this pays one — the difference between minutes and the better part
    /// of an hour at n=10⁵.
    pub fn compute<M, I>(
        index: &I,
        ds: &Dataset,
        k: usize,
        sample: usize,
        seed: u64,
        threads: usize,
    ) -> Self
    where
        M: Metric,
        I: KnnIndex<M> + Sync + ?Sized,
    {
        let queries = rknn_data::sample_queries(ds.len(), sample, seed);
        let start = Instant::now();
        let n = index.num_points();
        let metric = index.metric();

        // One worker sweeps a contiguous point range, recording members per
        // query slot; ranges merge in order below, so the answers do not
        // depend on the thread count.
        let sweep = |range: std::ops::Range<PointId>| -> (Vec<Vec<PointId>>, u64) {
            let mut members: Vec<Vec<PointId>> = vec![Vec::new(); queries.len()];
            let mut scratch = CursorScratch::new();
            let mut stats = SearchStats::new();
            let mut direct = 0u64;
            let mut dxq = vec![0.0f64; queries.len()];
            for x in range {
                let xp = index.point(x);
                let mut t_max = f64::NEG_INFINITY;
                for (&q, slot) in queries.iter().zip(dxq.iter_mut()) {
                    if q == x {
                        // A point is never a member of its own answer.
                        *slot = f64::NAN;
                        continue;
                    }
                    direct += 1;
                    *slot = metric.dist(index.point(q), xp);
                    t_max = t_max.max(*slot);
                }
                if t_max == f64::NEG_INFINITY {
                    continue;
                }
                // `x ∈ RkNN(q)` iff fewer than `k` points lie strictly
                // closer to `x` than `q` does (verify_rknn's census). The
                // cursor stream is nondecreasing, so pulling until the k-th
                // entry strictly below `t_max` — or until the stream leaves
                // that ball — yields `d_k(x)` exactly whenever any query
                // could fail the test, and every query's verdict is then a
                // single comparison.
                let mut cursor = index.cursor_bounded(xp, Some(x), k, &mut scratch);
                let mut closer = 0usize;
                let mut kth = f64::INFINITY;
                loop {
                    match cursor.next() {
                        Some(nb) if nb.dist < t_max => {
                            closer += 1;
                            if closer >= k {
                                kth = nb.dist;
                                break;
                            }
                        }
                        _ => break,
                    }
                }
                stats.absorb(&cursor.stats());
                for (slot, &d) in members.iter_mut().zip(dxq.iter()) {
                    if !d.is_nan() && (closer < k || kth >= d) {
                        slot.push(x);
                    }
                }
            }
            (members, direct + stats.dist_computations)
        };

        let workers = threads.clamp(1, n.max(1));
        let chunk = n.div_ceil(workers).max(1);
        let ranges: Vec<std::ops::Range<PointId>> = (0..n)
            .step_by(chunk)
            .map(|s| s..(s + chunk).min(n))
            .collect();
        let mut parts: Vec<(Vec<Vec<PointId>>, u64)> =
            ranges.iter().map(|_| (Vec::new(), 0)).collect();
        if ranges.len() <= 1 {
            if let Some(r) = ranges.first() {
                parts[0] = sweep(r.clone());
            }
        } else {
            thread::scope(|scope| {
                for (r, slot) in ranges.iter().zip(parts.iter_mut()) {
                    scope.spawn(move |_| {
                        *slot = sweep(r.clone());
                    });
                }
            })
            .expect("sampled-truth workers do not panic");
        }

        let mut dist = 0u64;
        let mut answers: Vec<(PointId, HashSet<PointId>)> =
            queries.iter().map(|&q| (q, HashSet::new())).collect();
        for (members, d) in parts {
            dist += d;
            for ((_, set), ids) in answers.iter_mut().zip(members) {
                set.extend(ids);
            }
        }
        SampledTruth {
            k,
            seed,
            sample,
            fingerprint: dataset_fingerprint(ds),
            answers,
            elapsed: start.elapsed(),
            dist_computations: dist,
            from_cache: false,
        }
    }

    /// The sampled query ids, in order.
    pub fn queries(&self) -> Vec<PointId> {
        self.answers.iter().map(|&(q, _)| q).collect()
    }

    /// The answer set for the i-th sampled query.
    pub fn answer(&self, i: usize) -> &HashSet<PointId> {
        &self.answers[i].1
    }

    /// Mean reverse-neighborhood size over the sample.
    pub fn mean_size(&self) -> f64 {
        if self.answers.is_empty() {
            return 0.0;
        }
        self.answers.iter().map(|(_, s)| s.len()).sum::<usize>() as f64 / self.answers.len() as f64
    }

    /// The cache file a parameter combination is filed under.
    pub fn cache_file(dir: &Path, fingerprint: u64, k: usize, sample: usize, seed: u64) -> PathBuf {
        dir.join(format!(
            "truth-{fingerprint:016x}-k{k}-q{sample}-s{seed}.bin"
        ))
    }

    /// Serializes the truth (little-endian binary, answers as sorted id
    /// lists) to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        w.write_all(TRUTH_MAGIC)?;
        for word in [
            self.fingerprint,
            self.k as u64,
            self.seed,
            self.sample as u64,
            self.answers.len() as u64,
        ] {
            w.write_all(&word.to_le_bytes())?;
        }
        for (q, set) in &self.answers {
            let mut ids: Vec<u64> = set.iter().map(|&x| x as u64).collect();
            ids.sort_unstable();
            w.write_all(&(*q as u64).to_le_bytes())?;
            w.write_all(&(ids.len() as u64).to_le_bytes())?;
            for id in ids {
                w.write_all(&id.to_le_bytes())?;
            }
        }
        w.flush()
    }

    /// Deserializes a truth file. Returns `None` (never panics) when the
    /// file is missing, malformed, or does not match the expected
    /// fingerprint and parameters.
    pub fn load(path: &Path, fingerprint: u64, k: usize, sample: usize, seed: u64) -> Option<Self> {
        let mut r = std::io::BufReader::new(std::fs::File::open(path).ok()?);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic).ok()?;
        if &magic != TRUTH_MAGIC {
            return None;
        }
        let mut word = [0u8; 8];
        let mut next = |r: &mut std::io::BufReader<std::fs::File>| -> Option<u64> {
            r.read_exact(&mut word).ok()?;
            Some(u64::from_le_bytes(word))
        };
        let (fp, fk, fseed, fsample, nq) = (
            next(&mut r)?,
            next(&mut r)?,
            next(&mut r)?,
            next(&mut r)?,
            next(&mut r)?,
        );
        if fp != fingerprint || fk != k as u64 || fseed != seed || fsample != sample as u64 {
            return None;
        }
        let mut answers = Vec::with_capacity(nq as usize);
        for _ in 0..nq {
            let q = next(&mut r)? as usize;
            let len = next(&mut r)?;
            let mut set = HashSet::with_capacity(len as usize);
            for _ in 0..len {
                set.insert(next(&mut r)? as usize);
            }
            answers.push((q, set));
        }
        Some(SampledTruth {
            k,
            seed,
            sample,
            fingerprint,
            answers,
            elapsed: Duration::ZERO,
            dist_computations: 0,
            from_cache: true,
        })
    }

    /// Loads cached truth for `(dataset, k, sample, seed)` from `cache_dir`
    /// or computes and caches it. Cache write failures are non-fatal (the
    /// freshly computed truth is still returned).
    pub fn load_or_compute<M, I>(
        cache_dir: &Path,
        index: &I,
        ds: &Dataset,
        k: usize,
        sample: usize,
        seed: u64,
        threads: usize,
    ) -> Self
    where
        M: Metric,
        I: KnnIndex<M> + Sync + ?Sized,
    {
        let fingerprint = dataset_fingerprint(ds);
        let path = Self::cache_file(cache_dir, fingerprint, k, sample, seed);
        if let Some(truth) = Self::load(&path, fingerprint, k, sample, seed) {
            return truth;
        }
        let truth = Self::compute(index, ds, k, sample, seed, threads);
        let _ = truth.save(&path);
        truth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknn_core::{BruteForce, Euclidean};
    use rknn_index::LinearScan;

    #[test]
    fn table_matches_brute_force_dk() {
        let ds = rknn_data::uniform_cube(120, 2, 11).into_shared();
        let idx = LinearScan::build(ds.clone(), Euclidean);
        let table = DkTable::compute(&idx, &[3, 1, 7], 3);
        assert_eq!(table.ks, vec![1, 3, 7]);
        let mut st = SearchStats::new();
        let bf = BruteForce::new(ds, Euclidean);
        for i in [0usize, 60, 119] {
            for &k in &table.ks {
                assert_eq!(
                    table.dk_of(i, k),
                    bf.dk(i, k, &mut st).unwrap(),
                    "i={i} k={k}"
                );
            }
        }
    }

    #[test]
    fn infinity_when_k_exceeds_n() {
        let ds = rknn_data::uniform_cube(4, 2, 12).into_shared();
        let idx = LinearScan::build(ds.clone(), Euclidean);
        let table = DkTable::compute(&idx, &[10], 2);
        assert!(table.dk_of(0, 10).is_infinite());
    }

    #[test]
    fn sampled_truth_matches_full_ground_truth_on_the_sample() {
        // The acceptance cross-check: at small n the sampled-truth answers
        // must be identical (as sets, per query) to the all-pairs
        // GroundTruth computation restricted to the sampled queries.
        let k = 4;
        let ds = rknn_data::gaussian_blobs(300, 6, 3, 0.4, 21);
        let shared = ds.clone().into_shared();
        let idx = LinearScan::build(shared, Euclidean);
        let truth = SampledTruth::compute(&idx, &ds, k, 24, 77, 2);
        assert_eq!(truth.answers.len(), 24);
        assert!(!truth.from_cache);
        assert_eq!(truth.fingerprint, dataset_fingerprint(&ds));
        let queries = truth.queries();
        assert_eq!(queries, rknn_data::sample_queries(ds.len(), 24, 77));
        let table = DkTable::compute(&idx, &[k], 2);
        let full = GroundTruth::compute(&idx, &table, &queries, k, 2);
        for (i, (q, set)) in truth.answers.iter().enumerate() {
            assert_eq!(*q, full.answers[i].0);
            assert_eq!(set, full.answer(i), "q={q}");
        }
        // Threading must not change the answers.
        let st1 = SampledTruth::compute(&idx, &ds, k, 24, 77, 1);
        assert_eq!(st1.answers, truth.answers);
    }

    #[test]
    fn sampled_truth_cache_roundtrips_and_rejects_mismatches() {
        let ds = rknn_data::uniform_cube(120, 3, 5);
        let shared = ds.clone().into_shared();
        let idx = LinearScan::build(shared, Euclidean);
        let dir = std::env::temp_dir().join(format!("rknn-truth-cache-{}", std::process::id()));
        let truth = SampledTruth::load_or_compute(&dir, &idx, &ds, 3, 10, 9, 1);
        assert!(!truth.from_cache);
        // Second call hits the cache and yields identical answers.
        let cached = SampledTruth::load_or_compute(&dir, &idx, &ds, 3, 10, 9, 1);
        assert!(cached.from_cache);
        assert_eq!(cached.answers, truth.answers);
        assert_eq!(cached.fingerprint, truth.fingerprint);
        // A different dataset fingerprint refuses the cached file.
        let other = rknn_data::uniform_cube(120, 3, 6);
        assert_ne!(dataset_fingerprint(&other), dataset_fingerprint(&ds));
        let path = SampledTruth::cache_file(&dir, truth.fingerprint, 3, 10, 9);
        assert!(SampledTruth::load(&path, dataset_fingerprint(&other), 3, 10, 9).is_none());
        // Different parameters refuse it too; malformed bytes never panic.
        assert!(SampledTruth::load(&path, truth.fingerprint, 4, 10, 9).is_none());
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() / 2);
        std::fs::write(&path, &bytes).unwrap();
        assert!(SampledTruth::load(&path, truth.fingerprint, 3, 10, 9).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ground_truth_matches_brute_force_rknn() {
        let ds = rknn_data::uniform_cube(150, 3, 13).into_shared();
        let idx = LinearScan::build(ds.clone(), Euclidean);
        let table = DkTable::compute(&idx, &[5], 4);
        let queries = vec![0, 42, 149];
        let truth = GroundTruth::compute(&idx, &table, &queries, 5, 3);
        let sequential = GroundTruth::compute(&idx, &table, &queries, 5, 1);
        assert_eq!(
            truth.answers, sequential.answers,
            "threading must not change answers"
        );
        let bf = BruteForce::new(ds, Euclidean);
        let mut st = SearchStats::new();
        for (i, &q) in queries.iter().enumerate() {
            let want: HashSet<_> = bf.rknn(q, 5, &mut st).iter().map(|n| n.id).collect();
            assert_eq!(truth.answer(i), &want, "q={q}");
        }
        assert!(truth.mean_size() > 0.0);
    }
}
