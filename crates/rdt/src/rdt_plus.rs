//! RDT+ — the candidate-set–reduction variant (§4.3).

use crate::answer::RknnAnswer;
use crate::engine::run_query;
use crate::params::RdtParams;
use rknn_core::{Metric, PointId};
use rknn_index::KnnIndex;

/// RDT with first-pass candidate exclusion.
///
/// A newly retrieved point that accumulates `k` or more witnesses during its
/// first cycle through the witness procedure is excluded from the filter
/// set: it cannot be a reverse neighbor (Assertion 1), and the paper argues
/// such points "are themselves unlikely to be decisive witnesses for the
/// rejection of other objects". The exclusion keeps the quadratic witness
/// maintenance affordable on large, high-dimensional data, at the risk of a
/// precision drop: lazy accepts then act on *undercounted* witness sets, so
/// — unlike plain [`crate::Rdt`] — RDT+ can report false positives.
#[derive(Debug, Clone, Copy)]
pub struct RdtPlus {
    params: RdtParams,
}

impl RdtPlus {
    /// Creates an RDT+ query handle.
    pub fn new(params: RdtParams) -> Self {
        RdtPlus { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> RdtParams {
        self.params
    }

    /// Answers a reverse-kNN query located at dataset point `q`.
    pub fn query<M, I>(&self, index: &I, q: PointId) -> RknnAnswer
    where
        M: Metric,
        I: KnnIndex<M> + ?Sized,
    {
        run_query(index, index.point(q), Some(q), self.params, true)
    }

    /// Answers a reverse-kNN query at an arbitrary location `q ∉ S`.
    pub fn query_at<M, I>(&self, index: &I, q: &[f64]) -> RknnAnswer
    where
        M: Metric,
        I: KnnIndex<M> + ?Sized,
    {
        run_query(index, q, None, self.params, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdt::Rdt;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rknn_core::{BruteForce, Dataset, Euclidean, SearchStats};
    use rknn_index::LinearScan;
    use std::sync::Arc;

    fn uniform(n: usize, dim: usize, seed: u64) -> Arc<Dataset> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.random::<f64>() * 10.0).collect())
            .collect();
        Dataset::from_rows(&rows).unwrap().into_shared()
    }

    #[test]
    fn excludes_candidates_that_plain_rdt_keeps() {
        let ds = uniform(800, 4, 70);
        let idx = LinearScan::build(ds, Euclidean);
        let params = RdtParams::new(5, 5.0);
        let mut total_excluded = 0usize;
        for q in [0usize, 100, 500] {
            let plain = Rdt::new(params).query(&idx, q);
            let plus = RdtPlus::new(params).query(&idx, q);
            assert_eq!(plain.stats.excluded, 0, "plain RDT never excludes");
            assert!(plus.stats.filter_set_size <= plain.stats.filter_set_size);
            total_excluded += plus.stats.excluded;
        }
        assert!(
            total_excluded > 0,
            "exclusion fires on a uniform cloud at moderate t"
        );
    }

    #[test]
    fn witness_cost_not_higher_than_plain() {
        let ds = uniform(1500, 6, 71);
        let idx = LinearScan::build(ds, Euclidean);
        let params = RdtParams::new(10, 4.0);
        let plain = Rdt::new(params).query(&idx, 3);
        let plus = RdtPlus::new(params).query(&idx, 3);
        assert!(
            plus.stats.witness_pairs <= plain.stats.witness_pairs,
            "RDT+ must not pay more witness maintenance: {} vs {}",
            plus.stats.witness_pairs,
            plain.stats.witness_pairs
        );
    }

    #[test]
    fn recall_close_to_plain_at_matched_t() {
        let ds = uniform(600, 3, 72);
        let idx = LinearScan::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds, Euclidean);
        let mut st = SearchStats::new();
        let params = RdtParams::new(8, 8.0);
        let mut plain_hits = 0usize;
        let mut plus_hits = 0usize;
        let mut total = 0usize;
        for q in 0..25usize {
            let truth: std::collections::HashSet<_> =
                bf.rknn(q, 8, &mut st).iter().map(|n| n.id).collect();
            plain_hits += Rdt::new(params)
                .query(&idx, q)
                .result
                .iter()
                .filter(|n| truth.contains(&n.id))
                .count();
            plus_hits += RdtPlus::new(params)
                .query(&idx, q)
                .result
                .iter()
                .filter(|n| truth.contains(&n.id))
                .count();
            total += truth.len();
        }
        let plain_recall = plain_hits as f64 / total as f64;
        let plus_recall = plus_hits as f64 / total as f64;
        assert!(plain_recall > 0.95);
        assert!(
            plus_recall > plain_recall - 0.1,
            "{plus_recall} vs {plain_recall}"
        );
    }

    #[test]
    fn first_k_candidates_are_never_excluded() {
        // With a dataset of exactly k points (plus query), nothing can reach
        // k witnesses, so RDT+ degenerates to RDT.
        let ds = uniform(6, 2, 73);
        let idx = LinearScan::build(ds, Euclidean);
        let params = RdtParams::new(5, 10.0);
        let plus = RdtPlus::new(params).query(&idx, 0);
        assert_eq!(plus.stats.excluded, 0);
    }
}
