//! Adaptive-t RDT — the paper's stated future work (§9).
//!
//! "For future work, it would be interesting to study the behavior of RDT
//! and RDT+ when the value of t is dynamically adjusted during the
//! execution of individual queries."
//!
//! [`RdtAdaptive`] implements that idea: instead of a precomputed global
//! estimate, each query maintains an *online* Hill/MLE estimate of the
//! local intrinsic dimensionality over the distances its own expanding
//! search has observed, and drives the dimensional test with
//! `t = safety · estimate` (floored at a configurable minimum). The
//! estimate is precisely the §6 MLE evaluated on the query's live
//! neighborhood rather than on a global sample, so the termination radius
//! adapts to the density regime the query actually sits in — the quantity
//! the global estimators can only approximate on heterogeneous data.
//!
//! The dimensional test stays disarmed until the estimate has seen at
//! least `max(k, 8)` positive distances, so warm-up noise cannot terminate
//! the search early.

use crate::answer::RknnAnswer;
use crate::engine::{run_query_scheduled, RdtVariant, TSchedule};
use crate::params::RdtParams;
use rknn_core::{Metric, PointId};
use rknn_index::KnnIndex;

/// RDT/RDT+ with per-query online adjustment of the scale parameter.
#[derive(Debug, Clone, Copy)]
pub struct RdtAdaptive {
    k: usize,
    /// Multiplier applied to the online Hill estimate. MaxGED upper-bounds
    /// what the Hill estimator tracks centrally, so safety > 1 trades time
    /// for accuracy exactly like t does in plain RDT.
    safety: f64,
    /// Floor for t (the warm-up value).
    t_floor: f64,
    /// Run the RDT+ candidate-set reduction.
    plus: bool,
}

impl RdtAdaptive {
    /// Creates an adaptive handle with the given reverse rank and safety
    /// factor (sensible range: 1.0–4.0).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `safety` is not positive and finite.
    pub fn new(k: usize, safety: f64) -> Self {
        assert!(k > 0, "reverse-neighbor rank k must be positive");
        assert!(
            safety.is_finite() && safety > 0.0,
            "safety factor must be positive"
        );
        RdtAdaptive {
            k,
            safety,
            t_floor: 1.0,
            plus: true,
        }
    }

    /// Sets the floor for t (default 1.0).
    pub fn with_t_floor(mut self, t_floor: f64) -> Self {
        assert!(t_floor.is_finite() && t_floor > 0.0);
        self.t_floor = t_floor;
        self
    }

    /// Chooses between RDT (false) and RDT+ (true, default) filtering.
    pub fn with_plus(mut self, plus: bool) -> Self {
        self.plus = plus;
        self
    }

    /// The safety factor.
    pub fn safety(&self) -> f64 {
        self.safety
    }

    /// Answers a reverse-kNN query located at dataset point `q`.
    pub fn query<M, I>(&self, index: &I, q: PointId) -> RknnAnswer
    where
        M: Metric,
        I: KnnIndex<M> + ?Sized,
    {
        run_query_scheduled(
            index,
            index.point(q),
            Some(q),
            RdtParams::new(self.k, self.t_floor),
            if self.plus {
                RdtVariant::Plus
            } else {
                RdtVariant::Plain
            },
            TSchedule::Adaptive {
                safety: self.safety,
            },
        )
    }

    /// Answers a reverse-kNN query at an arbitrary location.
    pub fn query_at<M, I>(&self, index: &I, q: &[f64]) -> RknnAnswer
    where
        M: Metric,
        I: KnnIndex<M> + ?Sized,
    {
        run_query_scheduled(
            index,
            q,
            None,
            RdtParams::new(self.k, self.t_floor),
            if self.plus {
                RdtVariant::Plus
            } else {
                RdtVariant::Plain
            },
            TSchedule::Adaptive {
                safety: self.safety,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknn_core::{BruteForce, Euclidean, SearchStats};
    use rknn_index::LinearScan;
    use std::collections::HashSet;

    #[test]
    fn reasonable_recall_without_manual_t() {
        let ds = rknn_data::sequoia_like(2000, 61).into_shared();
        let idx = LinearScan::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds.clone(), Euclidean);
        let mut st = SearchStats::new();
        let adaptive = RdtAdaptive::new(10, 2.0);
        let queries = rknn_data::sample_queries(ds.len(), 20, 5);
        let mut hits = 0usize;
        let mut total = 0usize;
        for &q in &queries {
            let truth: HashSet<_> = bf.rknn(q, 10, &mut st).iter().map(|n| n.id).collect();
            let got = adaptive.query(&idx, q);
            hits += got.result.iter().filter(|n| truth.contains(&n.id)).count();
            total += truth.len();
        }
        let recall = hits as f64 / total.max(1) as f64;
        assert!(recall >= 0.9, "adaptive-t recall {recall} too low");
    }

    #[test]
    fn terminates_well_before_exhaustion_on_low_id_data() {
        let ds = rknn_data::sequoia_like(5000, 62).into_shared();
        let idx = LinearScan::build(ds.clone(), Euclidean);
        let adaptive = RdtAdaptive::new(10, 2.0);
        let ans = adaptive.query(&idx, 17);
        assert!(
            ans.stats.retrieved < ds.len() / 4,
            "adaptive search should stop early on 2-d data, retrieved {}",
            ans.stats.retrieved
        );
    }

    #[test]
    fn safety_factor_trades_work_for_recall() {
        let ds = rknn_data::fct_like(2000, 63).into_shared();
        let idx = LinearScan::build(ds.clone(), Euclidean);
        let small = RdtAdaptive::new(10, 1.0).query(&idx, 5);
        let large = RdtAdaptive::new(10, 3.0).query(&idx, 5);
        assert!(small.stats.retrieved <= large.stats.retrieved);
    }

    #[test]
    fn plain_variant_has_no_exclusions_and_no_false_positives() {
        let ds = rknn_data::fct_like(1200, 64).into_shared();
        let idx = LinearScan::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds, Euclidean);
        let mut st = SearchStats::new();
        let adaptive = RdtAdaptive::new(5, 2.0).with_plus(false);
        for q in [0usize, 600] {
            let ans = adaptive.query(&idx, q);
            assert_eq!(ans.stats.excluded, 0);
            let truth: HashSet<_> = bf.rknn(q, 5, &mut st).iter().map(|n| n.id).collect();
            for n in &ans.result {
                assert!(
                    truth.contains(&n.id),
                    "plain adaptive RDT reported non-member"
                );
            }
        }
    }

    #[test]
    fn external_queries_work() {
        let ds = rknn_data::sequoia_like(1000, 65).into_shared();
        let idx = LinearScan::build(ds.clone(), Euclidean);
        let adaptive = RdtAdaptive::new(5, 2.5);
        let ans = adaptive.query_at(&idx, &[0.5, 0.5]);
        // Sanity: answers are dataset members with consistent distances.
        for n in &ans.result {
            assert!(n.id < ds.len());
        }
    }

    #[test]
    #[should_panic(expected = "safety factor")]
    fn rejects_bad_safety() {
        let _ = RdtAdaptive::new(5, 0.0);
    }
}
