//! A maintained all-points RkNN stream under insert/delete churn.
//!
//! The paper's experimental workload is the *all-points* protocol: every
//! dataset point's reverse k-nearest neighbors. This module keeps that
//! entire answer table **live** while the underlying index churns: each
//! insert or delete repairs exactly the answers it can have touched,
//! instead of re-running the whole batch.
//!
//! # The localization argument
//!
//! A point `v ≠ q` belongs to `RkNN(q)` iff `d(v, q) ≤ d_k(v)` — membership
//! depends only on the pairwise distance and `v`'s verification threshold,
//! never on the rest of the point set. An update at point `p` can therefore
//! change query `q`'s answer only through one of two channels:
//!
//! * **`p`'s own membership** — `p` joins (insert) or leaves (delete)
//!   answers of exactly the queries `q` with `d(p, q) ≤ d_k(p)`: the ball
//!   around `p` of radius `d_k(p)` (post-insert / pre-delete respectively).
//! * **A threshold change** — `d_k(v)` changes only for points `v` whose
//!   k-nearest neighborhood gains or loses `p`, and every such `v`
//!   satisfies `d(v, p) ≤ d_k(v)` against the larger of its old/new
//!   thresholds — i.e. `v ∈ RkNN(p, k)` evaluated on the side of the
//!   update where `p` is live. For such a `v`, membership of `v` can only
//!   change in answers of queries `q` with `d(v, q) ≤ max(d_k^old(v),
//!   d_k^new(v))`: the ball around `v` of its larger threshold.
//!
//! The recompute set is the union of those balls; every query outside it
//! provably keeps a byte-identical answer (distances are bitwise symmetric
//! across all kernel backends, see `rknn_core::kernel`). Repaired queries
//! are re-run through the deterministic batch driver, so the maintained
//! table equals a rebuild-from-scratch *bit for bit* — the churn
//! equivalence tests assert exactly that at every step.
//!
//! # Exactness requirement
//!
//! The byte-identity guarantee holds when the configured engine is $exact$
//! (scale parameter `t` large enough that RDT reports the true RkNN sets —
//! the tests use `t = 50`). At heuristic `t`, RDT's termination tests
//! depend on global quantities (`n`, witness dynamics), so an update may
//! legitimately change the *heuristic* answer of a far-away query; the
//! maintained stream still repairs every exactly-affected query, but
//! equality with a rebuild is then approximate, as is RDT itself.

use crate::algorithm::{
    run_algorithm_all_points, run_algorithm_batch, IndexUpdate, RdtAlgorithm, RknnAlgorithm,
};
use crate::answer::RknnAnswer;
use rknn_core::{CoreError, CursorScratch, Metric, PointId, SearchStats};
use rknn_index::{DynamicIndex, KnnIndex};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// What one maintained update did: the localization footprint and its cost.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UpdateReport {
    /// Points whose verification threshold the update may have changed
    /// (`|RkNN(p)|` on the side of the update where `p` is live).
    pub affected: usize,
    /// Queries re-run through the batch driver.
    pub recomputed: usize,
    /// Localization overhead: the threshold probes and range queries that
    /// computed the recompute set (the per-query re-runs report their own
    /// work through the maintained answers).
    pub overhead: SearchStats,
    /// Wall-clock time of the whole update (index mutation, cache
    /// maintenance, localization, and recomputation).
    pub elapsed: Duration,
}

/// A live all-points RkNN answer table over a dynamic index.
///
/// Construction seeds the table with one all-points batch;
/// [`insert`](Self::insert) and [`remove`](Self::remove) own the index
/// mutation (the stream must observe the index on the correct side of
/// every update) and repair the table locally. Answers are indexed by
/// point id and exist exactly for live points.
#[derive(Debug)]
pub struct MaintainedStream {
    algo: RdtAlgorithm,
    threads: usize,
    answers: Vec<Option<RknnAnswer>>,
    scratch: CursorScratch,
}

/// `d_k(v)` drained from a bounded forward cursor, optionally skipping one
/// point id — `skip = Some(p)` yields the threshold the index *would* have
/// without `p`, which is how the stream reads pre-update thresholds after
/// an insert (and post-update thresholds before a delete) without ever
/// holding two index versions.
fn dk_excluding<M, I>(
    index: &I,
    v: PointId,
    k: usize,
    skip: Option<PointId>,
    scratch: &mut CursorScratch,
    stats: &mut SearchStats,
) -> f64
where
    M: Metric,
    I: KnnIndex<M> + ?Sized,
{
    let limit = k + usize::from(skip.is_some());
    let mut cursor = index.cursor_bounded(index.point(v), Some(v), limit, scratch);
    let mut dk = f64::INFINITY;
    let mut got = 0usize;
    while got < k {
        match cursor.next() {
            Some(n) => {
                if Some(n.id) == skip {
                    continue;
                }
                dk = n.dist;
                got += 1;
            }
            None => break,
        }
    }
    stats.absorb(&cursor.stats());
    if got < k {
        f64::INFINITY
    } else {
        dk
    }
}

impl MaintainedStream {
    /// Seeds the maintained table: prepares `algo` against `index` and runs
    /// one all-points batch.
    ///
    /// Requires an un-churned index (ids `0..num_points()` are exactly the
    /// live points) — grow and shrink it afterwards *through the stream*,
    /// which keeps the table in lockstep.
    pub fn new<M, I>(mut algo: RdtAlgorithm, index: &I, threads: usize) -> Self
    where
        M: Metric,
        I: KnnIndex<M> + Sync + ?Sized,
    {
        algo.prepare(index);
        let out = run_algorithm_all_points(&algo, index, threads);
        MaintainedStream {
            algo,
            threads,
            answers: out.answers.into_iter().map(Some).collect(),
            scratch: CursorScratch::new(),
        }
    }

    /// The maintained answer of a live point, `None` for removed or unknown
    /// ids.
    pub fn answer(&self, id: PointId) -> Option<&RknnAnswer> {
        self.answers.get(id).and_then(|a| a.as_ref())
    }

    /// All live `(id, answer)` pairs in id order.
    pub fn answers(&self) -> impl Iterator<Item = (PointId, &RknnAnswer)> {
        self.answers
            .iter()
            .enumerate()
            .filter_map(|(id, a)| a.as_ref().map(|a| (id, a)))
    }

    /// Number of live maintained answers.
    pub fn live(&self) -> usize {
        self.answers.iter().filter(|a| a.is_some()).count()
    }

    /// The engine configuration behind the table (its maintenance
    /// accounting — [`RknnAlgorithm::maintenance_time`] /
    /// [`RknnAlgorithm::maintenance_stats`] — accumulates across updates).
    pub fn algo(&self) -> &RdtAlgorithm {
        &self.algo
    }

    /// Inserts a point through the stream: mutates the index, repairs the
    /// `d_k` cache, and recomputes exactly the answers the insert can have
    /// touched. Returns the new id and the update's footprint.
    pub fn insert<M, I>(
        &mut self,
        index: &mut I,
        point: &[f64],
    ) -> Result<(PointId, UpdateReport), CoreError>
    where
        M: Metric,
        I: DynamicIndex<M> + Sync + ?Sized,
    {
        let start = Instant::now();
        let mut overhead = SearchStats::new();
        let k = self.algo.params().k;
        let p = index.insert(point)?;
        self.algo.apply_update(&*index, IndexUpdate::Inserted(p));
        let index = &*index;

        // A = RkNN(p) post-insert ⊇ every point whose threshold changed.
        let p_answer = run_algorithm_batch(&self.algo, index, &[p], 1)
            .answers
            .pop()
            .expect("one answer per query");
        let affected: Vec<PointId> = p_answer.result.iter().map(|n| n.id).collect();

        let mut recompute: BTreeSet<PointId> = BTreeSet::new();
        recompute.insert(p);
        // Queries that may gain p as a member.
        let dk_p = dk_excluding(index, p, k, None, &mut self.scratch, &mut overhead);
        for n in index.range(index.point(p), dk_p, Some(p), &mut overhead) {
            recompute.insert(n.id);
        }
        // Queries that may lose a v whose threshold shrank: ball of the
        // *pre-insert* threshold, read post-insert by skipping p.
        for &v in &affected {
            let dk_old = dk_excluding(index, v, k, Some(p), &mut self.scratch, &mut overhead);
            for n in index.range(index.point(v), dk_old, Some(v), &mut overhead) {
                recompute.insert(n.id);
            }
        }

        let queries: Vec<PointId> = recompute.into_iter().collect();
        let out = run_algorithm_batch(&self.algo, index, &queries, self.threads);
        if self.answers.len() <= p {
            self.answers.resize_with(p + 1, || None);
        }
        for (&q, ans) in queries.iter().zip(out.answers) {
            self.answers[q] = Some(ans);
        }
        Ok((
            p,
            UpdateReport {
                affected: affected.len(),
                recomputed: queries.len(),
                overhead,
                elapsed: start.elapsed(),
            },
        ))
    }

    /// Removes a live point through the stream: localizes against the
    /// pre-delete index, then tombstones, repairs the `d_k` cache, and
    /// recomputes the touched answers. Returns `None` (index untouched) if
    /// `id` is not a live maintained point.
    pub fn remove<M, I>(&mut self, index: &mut I, id: PointId) -> Option<UpdateReport>
    where
        M: Metric,
        I: DynamicIndex<M> + Sync + ?Sized,
    {
        // PRE-delete: A = RkNN(id) is the maintained answer itself;
        // post-delete thresholds are read by skipping `id`. `None` here
        // means `id` is not live — refuse without touching the index.
        let affected: Vec<PointId> = self.answer(id)?.result.iter().map(|n| n.id).collect();
        let start = Instant::now();
        let mut overhead = SearchStats::new();
        let k = self.algo.params().k;
        let mut recompute: BTreeSet<PointId> = BTreeSet::new();
        // Queries that lose `id` as a member.
        let dk_p = dk_excluding(&*index, id, k, None, &mut self.scratch, &mut overhead);
        for n in index.range(index.point(id), dk_p, Some(id), &mut overhead) {
            recompute.insert(n.id);
        }
        // Queries that may gain a v whose threshold grew: ball of the
        // *post-delete* threshold, read pre-delete by skipping `id`.
        for &v in &affected {
            let dk_new = dk_excluding(&*index, v, k, Some(id), &mut self.scratch, &mut overhead);
            for n in index.range(index.point(v), dk_new, Some(v), &mut overhead) {
                recompute.insert(n.id);
            }
        }
        recompute.remove(&id);

        assert!(index.remove(id), "maintained id was live in the index");
        self.algo.apply_update(&*index, IndexUpdate::Removed(id));
        self.answers[id] = None;

        let queries: Vec<PointId> = recompute.into_iter().collect();
        let out = run_algorithm_batch(&self.algo, &*index, &queries, self.threads);
        for (&q, ans) in queries.iter().zip(out.answers) {
            self.answers[q] = Some(ans);
        }
        Some(UpdateReport {
            affected: affected.len(),
            recomputed: queries.len(),
            overhead,
            elapsed: start.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RdtParams;
    use rknn_core::Euclidean;
    use rknn_index::{CoverTree, LinearScan};

    /// Exact configuration: t = 50 makes RDT report true RkNN sets, the
    /// precondition of the byte-identity guarantee.
    fn exact_algo(k: usize) -> RdtAlgorithm {
        RdtAlgorithm::new(RdtParams::new(k, 50.0))
    }

    /// Tie-heavy half-integer grid: the adversarial input for anything that
    /// mishandles `(dist, id)` ordering.
    fn grid(n: usize, dim: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|j| ((i * 7 + j * 3) % 9) as f64 * 0.5)
                    .collect()
            })
            .collect()
    }

    fn check_matches_rebuild<M, I>(stream: &MaintainedStream, index: &I, k: usize)
    where
        M: Metric,
        I: KnnIndex<M> + Sync + ?Sized,
    {
        let mut fresh = exact_algo(k);
        fresh.prepare(index);
        // Rebuild answers every maintained id (the rebuild sees the same
        // ids — churn never renumbers).
        let queries: Vec<PointId> = stream.answers().map(|(id, _)| id).collect();
        let rebuilt = run_algorithm_batch(&fresh, index, &queries, 2);
        for (&q, want) in queries.iter().zip(&rebuilt.answers) {
            let got = stream.answer(q).expect("maintained answer exists");
            assert_eq!(got.ids(), want.ids(), "q={q}");
            let gd: Vec<u64> = got.result.iter().map(|n| n.dist.to_bits()).collect();
            let wd: Vec<u64> = want.result.iter().map(|n| n.dist.to_bits()).collect();
            assert_eq!(gd, wd, "q={q}");
        }
    }

    #[test]
    fn maintained_stream_tracks_mixed_churn_exactly() {
        let rows = grid(90, 2);
        let ds = rknn_core::Dataset::from_rows(&rows).unwrap().into_shared();
        let mut index = LinearScan::build(ds, Euclidean);
        let k = 3;
        let mut stream = MaintainedStream::new(exact_algo(k), &index, 2);
        assert_eq!(stream.live(), 90);

        // Mixed workload on the tie-heavy grid, checking byte-identity to a
        // rebuild after every step.
        let (id_a, rep) = stream.insert(&mut index, &[1.25, 0.75]).unwrap();
        assert!(rep.recomputed >= 1);
        check_matches_rebuild(&stream, &index, k);

        let rep = stream.remove(&mut index, 7).unwrap();
        assert!(rep.recomputed > 0 || rep.affected == 0);
        check_matches_rebuild(&stream, &index, k);

        let (_, _) = stream.insert(&mut index, &[0.0, 0.0]).unwrap();
        check_matches_rebuild(&stream, &index, k);

        let _ = stream.remove(&mut index, id_a).unwrap();
        check_matches_rebuild(&stream, &index, k);

        // Double-remove and unknown ids are refused without touching state.
        assert!(stream.remove(&mut index, id_a).is_none());
        assert!(stream.remove(&mut index, 10_000).is_none());
        assert_eq!(stream.live(), 90);
    }

    #[test]
    fn maintained_stream_works_on_tree_substrates() {
        let rows = grid(70, 3);
        let ds = rknn_core::Dataset::from_rows(&rows).unwrap().into_shared();
        let mut index = CoverTree::build(ds, Euclidean);
        let k = 2;
        let mut stream = MaintainedStream::new(exact_algo(k), &index, 1);
        stream.insert(&mut index, &[2.0, 0.5, 1.0]).unwrap();
        stream.remove(&mut index, 3).unwrap();
        stream.insert(&mut index, &[0.5, 0.5, 0.5]).unwrap();
        check_matches_rebuild(&stream, &index, k);
    }

    #[test]
    fn update_reports_expose_the_localization_footprint() {
        let rows = grid(60, 2);
        let ds = rknn_core::Dataset::from_rows(&rows).unwrap().into_shared();
        let mut index = LinearScan::build(ds, Euclidean);
        let mut stream = MaintainedStream::new(exact_algo(3), &index, 1);
        let (_, rep) = stream.insert(&mut index, &[1.0, 1.0]).unwrap();
        assert!(rep.recomputed <= 61, "recompute set is bounded by n");
        assert!(
            rep.overhead.dist_computations > 0,
            "localization is charged"
        );
        assert!(rep.elapsed > Duration::ZERO);
    }
}
