//! Executable forms of the paper's theoretical statements (§5).
//!
//! These helpers exist so tests and experiments can *check* the theory
//! against observed behavior rather than assume it:
//!
//! * [`reverse_rank_bound`] — Lemma 1: if `t ≥ MaxGED(S, k)` then the
//!   forward rank of any reverse neighbor satisfies
//!   `ρ(x, v) ≤ 2^t · ρ(v, x)`;
//! * [`guarantee_radius`] — Theorem 1: every reverse k-nearest neighbor
//!   missed by Algorithm 1 lies farther from the query than
//!   `d_{k+1}(q) / ((s/k)^{1/t} − 1)`;
//! * [`exactness_threshold`] — the MaxGED value above which Theorem 1
//!   promises an exact result. Because this workspace uses self-excluding
//!   ranks (`DESIGN.md` §2) while the paper's ball cardinalities include the
//!   center, thresholds can differ by one rank unit; callers wanting a hard
//!   guarantee should add a small safety margin (the integration tests use
//!   `+0.5`).

use rknn_core::{Dataset, Metric};
use rknn_lid::max_ged;

/// Lemma 1's bound on the forward rank of a reverse neighbor:
/// `ρ(x, v) ≤ 2^t · ρ(v, x)`.
///
/// Returns the right-hand side.
pub fn reverse_rank_bound(t: f64, reverse_rank: usize) -> f64 {
    (2.0f64).powf(t) * reverse_rank as f64
}

/// Theorem 1's miss-distance guarantee: any reverse k-nearest neighbor not
/// reported by the algorithm has distance to the query strictly greater
/// than `d_ref / ((s/k)^{1/t} − 1)`, where `d_ref` is the (k+1)-NN distance
/// of the query and `s ≥ k+1` the number of objects discovered.
///
/// Returns `+∞` when the denominator degenerates (`s ≤ k`), meaning the
/// search cannot have missed anything yet.
pub fn guarantee_radius(d_ref: f64, s: usize, k: usize, t: f64) -> f64 {
    if s <= k || d_ref <= 0.0 {
        return f64::INFINITY;
    }
    let denom = (s as f64 / k as f64).powf(1.0 / t) - 1.0;
    if denom <= 0.0 {
        f64::INFINITY
    } else {
        d_ref / denom
    }
}

/// The scale-parameter threshold above which Theorem 1 guarantees an exact
/// query result for queries drawn from the dataset: `MaxGED(S, k)`.
///
/// Exact enumeration — `O(n² log n)` — intended for validation-scale sets.
pub fn exactness_threshold(ds: &Dataset, metric: &dyn Metric, k: usize) -> f64 {
    max_ged(ds, metric, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rknn_core::rank::{ball_count, rank};
    use rknn_core::{Dataset, Euclidean};

    fn uniform(n: usize, dim: usize, seed: u64) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.random::<f64>()).collect())
            .collect();
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn reverse_rank_bound_shape() {
        assert_eq!(reverse_rank_bound(1.0, 4), 8.0);
        assert_eq!(reverse_rank_bound(3.0, 2), 16.0);
    }

    #[test]
    fn guarantee_radius_monotone_in_t() {
        // Larger t ⇒ larger guaranteed radius ⇒ stronger result quality.
        let mut prev = 0.0;
        for t in [1.0, 2.0, 4.0, 8.0] {
            let r = guarantee_radius(1.0, 100, 10, t);
            assert!(r > prev, "t={t}");
            prev = r;
        }
        assert_eq!(guarantee_radius(1.0, 5, 10, 2.0), f64::INFINITY);
        assert_eq!(guarantee_radius(0.0, 100, 10, 2.0), f64::INFINITY);
    }

    #[test]
    fn lemma1_proof_chain_holds_empirically() {
        // Recompute the proof's own quantity: for every ordered pair (x, v),
        // t_pair = log2(|B(v, 2d)| / |B(v, d)|) with inclusive ball counts;
        // with t = max over pairs, verify ρ(x,v) ≤ 2^t · ρ(v,x).
        let ds = uniform(60, 2, 90);
        let m = Euclidean;
        let mut t_max: f64 = 0.0;
        for (v, vp) in ds.iter() {
            for (x, xp) in ds.iter() {
                if v == x {
                    continue;
                }
                let d = m.dist(vp, xp);
                if d <= 0.0 {
                    continue;
                }
                let inner = ball_count(&ds, &m, vp, d, false, None) as f64;
                let outer = ball_count(&ds, &m, vp, 2.0 * d, false, None) as f64;
                t_max = t_max.max((outer / inner).log2());
            }
        }
        for (v, vp) in ds.iter() {
            for (x, xp) in ds.iter() {
                if v == x {
                    continue;
                }
                let fwd = rank(&ds, &m, xp, v, None) as f64;
                let rev = rank(&ds, &m, vp, x, None) as f64;
                assert!(
                    fwd <= reverse_rank_bound(t_max, rev as usize) + 1e-9,
                    "Lemma 1 violated: ρ(x,v)={fwd} > 2^{t_max}·{rev}"
                );
            }
        }
    }

    #[test]
    fn exactness_threshold_is_positive_on_generic_data() {
        // MaxGED is "extremely conservative and loose" (§6): near-tied
        // distances d_s ≈ d_k with s > k blow the ratio up, so the value on
        // random data is large — but it must be finite and positive.
        let ds = uniform(80, 2, 91);
        let t = exactness_threshold(&ds, &Euclidean, 3);
        assert!(t > 0.5 && t.is_finite(), "got {t}");
    }
}
