//! RDT and RDT+ — reverse k-nearest neighbor queries by dimensional testing.
//!
//! This crate is the paper's primary contribution (Casanova et al., PVLDB
//! 10(7), 2017, §4–§6): a filter–refinement RkNN heuristic whose expanding
//! forward-NN search is terminated by a *dimensional test* derived from the
//! generalized expansion dimension, with *witness counters* driving lazy
//! acceptance (Assertion 2) and lazy rejection (Assertion 1) of candidates.
//!
//! * [`rdt::Rdt`] — Algorithm 1 verbatim (modulo the documented witness-line
//!   erratum, see `DESIGN.md` §2);
//! * [`rdt_plus::RdtPlus`] — the candidate-set–reduction variant of §4.3;
//! * [`params`] — the scale parameter `t` and its automatic selection via
//!   the estimators of §6;
//! * [`theory`] — the quantitative statements of Lemma 1 and Theorem 1 as
//!   checkable functions;
//! * [`bichromatic`] — an extension answering bichromatic RkNN queries with
//!   the same witness/dimensional-test machinery (the paper discusses the
//!   bichromatic problem in §1; this is our implementation of it on top of
//!   RDT's primitives).
//!
//! The algorithms work on *any* [`rknn_index::KnnIndex`]; substrate
//! agreement is covered by the workspace integration tests.

#![warn(missing_docs)]

pub mod adaptive;
pub mod answer;
pub mod bichromatic;
pub mod engine;
pub mod params;
pub mod rdt;
pub mod rdt_plus;
pub mod theory;

pub use adaptive::RdtAdaptive;
pub use answer::{RdtQueryStats, RknnAnswer, Termination};
pub use bichromatic::BichromaticRdt;
pub use engine::{RdtVariant, TSchedule};
pub use params::{RdtParams, ScalePolicy};
pub use rdt::Rdt;
pub use rdt_plus::RdtPlus;
