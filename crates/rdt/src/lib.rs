//! RDT and RDT+ — reverse k-nearest neighbor queries by dimensional testing.
//!
//! This crate is the paper's primary contribution (Casanova et al., PVLDB
//! 10(7), 2017, §4–§6): a filter–refinement RkNN heuristic whose expanding
//! forward-NN search is terminated by a *dimensional test* derived from the
//! generalized expansion dimension, with *witness counters* driving lazy
//! acceptance (Assertion 2) and lazy rejection (Assertion 1) of candidates.
//!
//! * [`rdt::Rdt`] — Algorithm 1 verbatim (modulo the documented witness-line
//!   erratum, see `DESIGN.md` §2);
//! * [`rdt_plus::RdtPlus`] — the candidate-set–reduction variant of §4.3;
//! * [`params`] — the scale parameter `t` and its automatic selection via
//!   the estimators of §6;
//! * [`theory`] — the quantitative statements of Lemma 1 and Theorem 1 as
//!   checkable functions;
//! * [`bichromatic`] — an extension answering bichromatic RkNN queries with
//!   the same witness/dimensional-test machinery (the paper discusses the
//!   bichromatic problem in §1; this is our implementation of it on top of
//!   RDT's primitives);
//! * [`algorithm`] — the algorithm-generic RkNN abstraction: the
//!   [`RknnAlgorithm`] lifecycle trait (prepare → per-worker state →
//!   per-query work, with uniform precompute-time reporting) and the
//!   crossbeam-sharded batch driver every method — RDT and the five
//!   baselines of `rknn-baselines` — executes through;
//! * [`batch`] — the RDT-flavored batch entry points: all-points (or any
//!   query list) RkNN jobs with RDT's rich per-query statistics, thin
//!   wrappers over the [`algorithm`] driver.
//!
//! The algorithms work on *any* [`rknn_index::KnnIndex`]; substrate
//! agreement is covered by the workspace integration tests.
//!
//! # Work counters under early abandonment
//!
//! The engine prunes witness-pass metric evaluations with
//! [`rknn_core::Metric::dist_lt`], which may abandon a distance
//! accumulation once a monotone partial sum proves the comparison bound
//! unreachable. This changes **neither** of the two witness-cost counters:
//!
//! * [`RdtQueryStats::witness_pairs`] counts maintenance *pair updates* —
//!   the paper's `(s choose 2)`-bounded cost model — and is independent of
//!   how (or whether) a pair's distance is evaluated;
//! * [`RdtQueryStats::witness_dist_comps`] counts distance *evaluations*,
//!   and an early-abandoned evaluation still counts as one: abandonment
//!   reduces the coordinates touched per evaluation, not the number of
//!   evaluations. The counter only drops below `witness_pairs` through the
//!   decided-pair shortcut (pairs whose both sides are already decided are
//!   never evaluated at all).
//!
//! Result sets, terminations, and every counter are therefore identical
//! between the early-abandoning fast path and a plain full-precision
//! evaluation; only the per-coordinate work shrinks.

#![warn(missing_docs)]

pub mod adaptive;
pub mod algorithm;
pub mod answer;
pub mod batch;
pub mod bichromatic;
pub mod engine;
pub mod params;
pub mod rdt;
pub mod rdt_plus;
pub mod stream;
pub mod theory;

pub use adaptive::RdtAdaptive;
pub use algorithm::{
    run_algorithm_all_points, run_algorithm_batch, AlgorithmAnswer, AlgorithmBatchStats,
    AlgorithmOutcome, BasicAnswer, IndexUpdate, MaintenanceCost, RdtAlgorithm, RknnAlgorithm,
};
pub use answer::{RdtQueryStats, RknnAnswer, Termination};
pub use batch::{BatchConfig, BatchOutcome, BatchStats};
pub use bichromatic::BichromaticRdt;
pub use engine::{DkCache, RdtVariant, TSchedule};
pub use params::{RdtParams, ScalePolicy};
pub use rdt::Rdt;
pub use rdt_plus::RdtPlus;
pub use stream::{MaintainedStream, UpdateReport};
