//! Query answers and the per-query accounting behind Figures 7–9.

use rknn_core::{Neighbor, SearchStats};

/// Why the filter phase stopped expanding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// The dimensional test fired: `d(q, v) > ω` (Theorem 1's certificate).
    Omega,
    /// The rank cap `s ≥ ⌊2^t·k⌋` was reached (Lemma 1's certificate).
    RankCap,
    /// The index was exhausted (`s = n`); the whole dataset was scanned.
    Exhausted,
}

/// Work and outcome counters for a single RDT/RDT+ query.
///
/// `verified + lazy_accepts + lazy_rejects + excluded` accounts for every
/// retrieved candidate, which is exactly the decomposition plotted in
/// Figure 7 of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RdtQueryStats {
    /// Number of points retrieved by the expanding search (`s`).
    pub retrieved: usize,
    /// Size of the filter set `F` at termination.
    pub filter_set_size: usize,
    /// Candidates excluded from `F` by the RDT+ first-pass criterion.
    pub excluded: usize,
    /// Candidates accepted by Assertion 2 without verification.
    pub lazy_accepts: usize,
    /// Candidates rejected by Assertion 1 (`W ≥ k`) without verification.
    pub lazy_rejects: usize,
    /// Candidates verified by an explicit forward kNN query.
    pub verified: usize,
    /// How many verifications accepted the candidate.
    pub verified_accepted: usize,
    /// Witness-maintenance pair updates — the paper's cost model for the
    /// filter phase (bounded by `(s choose 2)` in §4.2, and the quantity
    /// the §4.3 candidate-set reduction provably shrinks: RDT+'s filter set
    /// is a subset of RDT's at every retrieval rank).
    pub witness_pairs: u64,
    /// Distance computations actually evaluated during witness
    /// maintenance. At most [`witness_pairs`](Self::witness_pairs): the
    /// engine skips the metric evaluation for pairs whose both sides are
    /// already decided. *Not* monotone across variants — skip opportunities
    /// depend on filter-set composition — so cross-variant cost claims must
    /// compare `witness_pairs`.
    pub witness_dist_comps: u64,
    /// Final value of the termination bound ω.
    pub omega: f64,
    /// Why the filter phase stopped.
    pub termination: Termination,
    /// Index work (cursor expansion + verification kNN queries).
    pub search: SearchStats,
}

impl RdtQueryStats {
    /// Total distance computations: index work plus witness maintenance.
    pub fn total_dist_comps(&self) -> u64 {
        self.search.dist_computations + self.witness_dist_comps
    }

    /// Fraction of retrieved candidates handled by each mechanism:
    /// `(verified, lazily accepted, lazily rejected)`; rejection includes
    /// RDT+ exclusions. Returns zeros for an empty retrieval.
    pub fn proportions(&self) -> (f64, f64, f64) {
        let total = self.retrieved.max(1) as f64;
        (
            self.verified as f64 / total,
            self.lazy_accepts as f64 / total,
            (self.lazy_rejects + self.excluded) as f64 / total,
        )
    }
}

/// The result of a reverse-kNN query.
#[derive(Debug, Clone)]
pub struct RknnAnswer {
    /// Reported reverse k-nearest neighbors, ascending by distance from the
    /// query.
    pub result: Vec<Neighbor>,
    /// Per-query accounting.
    pub stats: RdtQueryStats,
}

impl RknnAnswer {
    /// Ids of the reported reverse neighbors.
    pub fn ids(&self) -> Vec<rknn_core::PointId> {
        self.result.iter().map(|n| n.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> RdtQueryStats {
        RdtQueryStats {
            retrieved: 10,
            filter_set_size: 8,
            excluded: 2,
            lazy_accepts: 3,
            lazy_rejects: 1,
            verified: 4,
            verified_accepted: 2,
            witness_pairs: 45,
            witness_dist_comps: 30,
            omega: 1.5,
            termination: Termination::Omega,
            search: SearchStats {
                dist_computations: 70,
                nodes_visited: 5,
                heap_pushes: 9,
            },
        }
    }

    #[test]
    fn proportions_partition_the_retrieved_set() {
        let s = stats();
        let (v, a, r) = s.proportions();
        assert!((v + a + r - 1.0).abs() < 1e-12);
        assert!((v - 0.4).abs() < 1e-12);
        assert!((a - 0.3).abs() < 1e-12);
        assert!((r - 0.3).abs() < 1e-12);
    }

    #[test]
    fn total_dist_comps_sums_sources() {
        assert_eq!(stats().total_dist_comps(), 100);
    }

    #[test]
    fn answer_ids() {
        let ans = RknnAnswer {
            result: vec![Neighbor::new(4, 0.5), Neighbor::new(2, 1.0)],
            stats: stats(),
        };
        assert_eq!(ans.ids(), vec![4, 2]);
    }
}
